//! Randomized differential proof of the plane evaluator tier.
//!
//! PR 3 proved the compiled evaluator outcome-identical to the reference
//! interpreter, and `tests/tv_differential.rs` proves the staged checker
//! verdict-identical to the retained single-stage path over the curated
//! corpora. This file closes the remaining gap with *generated* coverage:
//! [`lpo_interp::fuzz`] builds random straight-line scalar-integer functions
//! — the exact domain the [`PlanePlan`] tier claims — and every one is
//! checked three ways:
//!
//! * **plane ≡ batch ≡ reference** on full outcomes (values, poison/undef,
//!   UB messages, step counts), including tiny step limits;
//! * **lane isolation**: a batched plane sweep is bit-identical to running
//!   each lane alone, so a trapping lane cannot contaminate a neighbour;
//! * **TV parity**: `SourceCache` verdicts and source-eval counts are
//!   identical with the plane tier on and off, and a survivor only falls
//!   back to the batched sweep when its compiled form really has no plan;
//! * **digest sanity**: structurally distinct fuzz functions never share a
//!   [`hash_function`] digest (the compile cache's correctness assumption).
//!
//! Every test walks a fixed seed block (deterministic in CI and locally) and
//! appends a rotating block derived from `LPO_FUZZ_SEED` when that variable
//! is set — the CI fuzz-smoke step derives it from the commit hash and logs
//! it, so any failure is replayable with
//! `LPO_FUZZ_SEED=<seed> cargo test --test plane_differential`.

use lpo_bench::twist_return;
use lpo_interp::compiled::{CompiledFunction, EvalArena};
use lpo_interp::eval::evaluate_reference;
use lpo_interp::fuzz::random_function;
use lpo_interp::memory::Memory;
use lpo_interp::value::EvalValue;
use lpo_ir::hash::hash_function;
use lpo_ir::printer::print_function;
use lpo_tv::inputs::{generate_inputs, InputConfig};
use lpo_tv::prelude::{SourceCache, TvConfig};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Step budget for the evaluator-level sweeps; far above any fuzz function's
/// instruction count, matching how the verifier runs them.
const STEP_LIMIT: usize = 1 << 14;

/// The base seed block every test walks. Golden-ratio striding keeps the
/// seeds spread over the space instead of clustered near zero.
fn seed_block(count: usize, salt: u64) -> Vec<u64> {
    let mut seeds: Vec<u64> =
        (0..count as u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt)).collect();
    if let Some(rotating) = rotating_seed() {
        // One extra block per run, derived from the environment; logged so
        // a CI failure is replayable locally.
        eprintln!(
            "plane fuzz: appending {} rotating seeds from LPO_FUZZ_SEED={rotating:#x}",
            count / 4
        );
        seeds.extend(
            (0..count as u64 / 4)
                .map(|i| rotating.wrapping_add(salt).wrapping_add(i.wrapping_mul(0x9e37_79b9))),
        );
    }
    seeds
}

/// The rotating seed from the environment, accepting decimal or `0x` hex.
fn rotating_seed() -> Option<u64> {
    let raw = std::env::var("LPO_FUZZ_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("LPO_FUZZ_SEED must be a u64 (decimal or 0x hex), got {raw:?}"),
    }
}

/// A compact input set per function: corner values plus a few samples keep
/// the sweep fast in debug builds; the seed ties inputs to the function.
fn input_config(seed: u64) -> InputConfig {
    InputConfig { exhaustive_bits: 8, random_samples: 24, seed }
}

/// All three evaluators on the same function and inputs; asserts full
/// outcome equality (result, memory, steps, UB message) per lane.
fn check_three_ways(seed: u64, arena: &mut EvalArena, step_limit: usize) -> usize {
    let func = random_function(seed);
    let compiled = CompiledFunction::compile(&func);
    let plan = compiled
        .plane()
        .unwrap_or_else(|| panic!("fuzz function from seed {seed:#x} must be plane-eligible"));
    let inputs = generate_inputs(&func, &input_config(seed));
    let take = inputs.len().min(64);
    let lanes: Vec<&[EvalValue]> = inputs[..take].iter().map(|i| i.args.as_slice()).collect();
    let result = plan
        .evaluate_lanes(arena, &lanes, step_limit)
        .expect("generated inputs always fit the plan's own signature");
    let batch_lanes: Vec<(&[EvalValue], Memory)> =
        inputs[..take].iter().map(|i| (i.args.as_slice(), i.memory.clone())).collect();
    let batch = compiled.evaluate_batch_with_limit(arena, batch_lanes, step_limit);
    for (lane, (input, batch_out)) in inputs[..take].iter().zip(&batch).enumerate() {
        let plane_out = result.outcome(lane, input.memory.clone());
        assert_eq!(
            &plane_out,
            batch_out,
            "plane vs batch diverged: seed {seed:#x} lane {lane} limit {step_limit} args {:?}\n{}",
            input.args,
            print_function(&func)
        );
        let reference = evaluate_reference(&func, &input.args, input.memory.clone(), step_limit);
        assert_eq!(
            plane_out,
            reference,
            "plane vs reference diverged: seed {seed:#x} lane {lane} limit {step_limit} args {:?}\n{}",
            input.args,
            print_function(&func)
        );
    }
    take
}

#[test]
fn plane_matches_batch_and_reference_on_random_functions() {
    let mut arena = EvalArena::new();
    let mut checked = 0usize;
    for seed in seed_block(2_000, 0x51de_5eed) {
        checked += check_three_ways(seed, &mut arena, STEP_LIMIT);
    }
    assert!(checked >= 2_000 * 16, "fuzz sweep looks too small: {checked} lane checks");
}

#[test]
fn plane_matches_batch_and_reference_at_tiny_step_limits() {
    // The step-limit boundary is where the three evaluators are most likely
    // to disagree (which instruction "counts", whether `ret` is a step), so
    // sweep every limit from 0 to past the longest fuzz function.
    let mut arena = EvalArena::new();
    for seed in seed_block(150, 0x5e11_1111) {
        for limit in 0..=13 {
            check_three_ways(seed, &mut arena, limit);
        }
    }
}

#[test]
fn batched_lanes_match_isolated_lanes() {
    // A full-width sweep must be bit-identical to evaluating every lane on
    // its own — UB, poison or a step-limit hit in one lane cannot leak into
    // a neighbour's planes.
    let mut arena = EvalArena::new();
    let mut solo_arena = EvalArena::new();
    for seed in seed_block(200, 0x1a9e_1501) {
        let func = random_function(seed);
        let compiled = CompiledFunction::compile(&func);
        let plan = compiled.plane().expect("fuzz functions are plane-eligible");
        let inputs = generate_inputs(&func, &input_config(seed));
        let take = inputs.len().min(48);
        let lanes: Vec<&[EvalValue]> = inputs[..take].iter().map(|i| i.args.as_slice()).collect();
        let together = plan.evaluate_lanes(&mut arena, &lanes, STEP_LIMIT).unwrap();
        for (lane, input) in inputs[..take].iter().enumerate() {
            let alone = plan
                .evaluate_lanes(&mut solo_arena, &lanes[lane..=lane], STEP_LIMIT)
                .unwrap();
            assert_eq!(
                together.outcome(lane, input.memory.clone()),
                alone.outcome(0, input.memory.clone()),
                "lane {lane} differs batched vs alone: seed {seed:#x}\n{}",
                print_function(&func)
            );
        }
    }
}

/// Quick TV configuration with the plane tier on or off; everything else
/// (inputs, probe window) identical. The abstract pre-verification tier is
/// disabled so the engagement assertions below keep measuring the *plane*
/// tier: with it on, src-vs-src survivors are proved abstractly and never
/// reach a concrete sweep (`tests/absint_differential.rs` owns that tier's
/// verdict parity).
fn tv_config(plane_sweep: bool, seed: u64) -> TvConfig {
    TvConfig {
        inputs: InputConfig { exhaustive_bits: 8, random_samples: 24, seed },
        plane_sweep,
        absint: false,
        ..TvConfig::default()
    }
}

#[test]
fn tv_verdicts_identical_with_plane_tier_on_and_off() {
    let mut arena = EvalArena::new();
    let mut plane_survivors = 0usize;
    for seed in seed_block(250, 0x7ea0_0f0f) {
        let src = random_function(seed);
        // The source itself (a guaranteed survivor) plus its twisted return
        // (refuted mid-sweep) exercise both verdict paths.
        let mut candidates = vec![src.clone()];
        candidates.extend(twist_return(&src));
        let with_plane = SourceCache::new(&src, tv_config(true, seed));
        let without = SourceCache::new(&src, tv_config(false, seed));
        for candidate in &candidates {
            let on = with_plane.verify_with(candidate, &mut arena);
            let off = without.verify_with(candidate, &mut arena);
            assert_eq!(
                on,
                off,
                "plane tier changed a verdict: seed {seed:#x}\n{}",
                print_function(candidate)
            );
        }
        assert_eq!(
            with_plane.source_eval_count(),
            without.source_eval_count(),
            "plane tier changed the source evaluation count: seed {seed:#x}"
        );
        plane_survivors += with_plane.plane_sweeps();
    }
    assert!(plane_survivors > 200, "plane tier barely engaged: {plane_survivors} sweeps");
}

#[test]
fn survivors_fall_back_only_when_really_ineligible() {
    // For every corpus case and candidate: if the candidate survives the
    // probe, the plane tier handles it exactly when its compiled form
    // carries a plan — fallback is never triggered by an input the plan
    // spuriously rejects.
    let mut arena = EvalArena::new();
    let mut plane = 0usize;
    let mut fallback = 0usize;
    for case in lpo_corpus::rq1_suite().iter().chain(lpo_corpus::rq2_suite().iter()) {
        let src = &case.function;
        let mut candidates = vec![src.clone()];
        candidates.extend(twist_return(src));
        let cache = SourceCache::new(src, tv_config(true, u64::from(case.issue_id)));
        for candidate in &candidates {
            let survivors_before = cache.survivors();
            let sweeps_before = cache.plane_sweeps();
            let _ = cache.verify_with(candidate, &mut arena);
            let survived = cache.survivors() > survivors_before;
            let planed = cache.plane_sweeps() > sweeps_before;
            let has_plan = CompiledFunction::compile(candidate).plane().is_some();
            if !survived {
                assert!(!planed, "non-survivor counted a plane sweep: @{}", candidate.name);
                continue;
            }
            assert_eq!(
                planed, has_plan,
                "survivor @{} fell back with a plan present (or planed without one)",
                candidate.name
            );
            if planed {
                plane += 1;
            } else {
                fallback += 1;
            }
        }
    }
    // The corpora contain both populations: the plane tier must be covering
    // the scalar-int bulk while memory/vector/control-flow cases fall back.
    assert!(plane > 20, "too few plane-swept survivors: {plane}");
    assert!(fallback > 0, "no fallback survivors — the eligibility test lost its teeth");
}

#[test]
fn structural_digests_separate_distinct_fuzz_functions() {
    // The compile cache keys on `hash_function` alone, so a digest collision
    // between behaviourally different functions would silently reuse the
    // wrong compiled code. Names are not hashed; normalize them so printed
    // text equality mirrors structural equality.
    let mut by_digest: HashMap<u64, String> = HashMap::new();
    let mut distinct = 0usize;
    for seed in seed_block(10_000, 0xd165_7a5b) {
        let mut func = random_function(seed);
        func.name = "f".into();
        let digest = hash_function(&func).0;
        let text = print_function(&func);
        match by_digest.entry(digest) {
            Entry::Occupied(entry) => assert_eq!(
                entry.get(),
                &text,
                "digest collision between distinct functions at seed {seed:#x}"
            ),
            Entry::Vacant(slot) => {
                slot.insert(text);
                distinct += 1;
            }
        }
    }
    assert!(distinct > 9_000, "fuzz generator produced too few distinct shapes: {distinct}");
}
