//! Randomized differential proof of the abstract pre-verification tier.
//!
//! The tier (Stage 3a₀, `lpo_absint`) may *prove* a candidate correct or
//! *refute* it before a single concrete evaluation, so its certificates must
//! never disagree with the concrete reference. This file closes that claim
//! with generated coverage, the same way `tests/plane_differential.rs` does
//! for the plane evaluator: [`lpo_interp::fuzz::random_pair`] derives a
//! candidate from every fuzz function through a seeded mix of
//! semantics-preserving rewrites (α-renaming, identity insertion,
//! commutative swaps, flag drops) and semantics-changing ones (return
//! twists, constant nudges, flag additions, constant returns), and every
//! pair is checked three ways:
//!
//! * **certificate ≡ reference**: an abstract `Proved` implies the concrete
//!   sweep's `Correct`, an abstract `Refuted` implies `Incorrect` — over
//!   thousands of pairs, with engagement floors so the tier can't pass by
//!   staying silent;
//! * **tier transparency**: full verdicts (including counterexample text)
//!   are byte-identical with the tier on and off;
//! * **jobs determinism**: the engine's reports and tier counters are
//!   identical across `--jobs` widths with the tier on.
//!
//! Every test walks a fixed seed block and appends a rotating block derived
//! from `LPO_FUZZ_SEED` when set — the CI fuzz-smoke step derives it from
//! the commit hash and logs it, so any failure is replayable with
//! `LPO_FUZZ_SEED=<seed> cargo test --test absint_differential`.

use lpo::prelude::*;
use lpo_absint::{certificate, Certificate, FunctionAnalysis};
use lpo_corpus::rq1_suite;
use lpo_interp::fuzz::random_pair;
use lpo_ir::function::Function;
use lpo_ir::printer::print_function;
use lpo_llm::prelude::{gemini2_0t, SimulatedModelFactory};
use lpo_tv::inputs::InputConfig;
use lpo_tv::prelude::{EvalArena, SourceCache, TvConfig, Verdict};

/// The base seed block every test walks, plus the rotating block from
/// `LPO_FUZZ_SEED` (same protocol as `tests/plane_differential.rs`).
fn seed_block(count: usize, salt: u64) -> Vec<u64> {
    let mut seeds: Vec<u64> =
        (0..count as u64).map(|i| i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(salt)).collect();
    if let Some(rotating) = rotating_seed() {
        eprintln!(
            "absint fuzz: appending {} rotating seeds from LPO_FUZZ_SEED={rotating:#x}",
            count / 4
        );
        seeds.extend(
            (0..count as u64 / 4)
                .map(|i| rotating.wrapping_add(salt).wrapping_add(i.wrapping_mul(0x9e37_79b9))),
        );
    }
    seeds
}

/// The rotating seed from the environment, accepting decimal or `0x` hex.
fn rotating_seed() -> Option<u64> {
    let raw = std::env::var("LPO_FUZZ_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("LPO_FUZZ_SEED must be a u64 (decimal or 0x hex), got {raw:?}"),
    }
}

/// A compact input set per pair keeps the concrete reference sweeps fast in
/// debug builds; the seed ties inputs to the pair.
fn tv_config(absint: bool, seed: u64) -> TvConfig {
    TvConfig {
        inputs: InputConfig { exhaustive_bits: 8, random_samples: 24, seed },
        absint,
        ..TvConfig::default()
    }
}

fn pair_text(src: &Function, tgt: &Function) -> String {
    format!("{}\n{}", print_function(src), print_function(tgt))
}

#[test]
fn certificates_never_disagree_with_the_concrete_reference() {
    let mut arena = EvalArena::new();
    let (mut pairs, mut analyzed, mut proved, mut refuted) = (0usize, 0usize, 0usize, 0usize);
    for seed in seed_block(2_000, 0xab5_1de0) {
        let (src, tgt) = random_pair(seed);
        pairs += 1;
        // Both sides are straight-line scalar-int by construction, but some
        // shapes still fall outside the abstract fragment (e.g. an intrinsic
        // with no transfer); those are exactly the concrete tier's job.
        let (Some(src_abs), Some(tgt_abs)) =
            (FunctionAnalysis::analyze(&src), FunctionAnalysis::analyze(&tgt))
        else {
            continue;
        };
        analyzed += 1;
        let Some(cert) = certificate(&src, &src_abs, &tgt, &tgt_abs) else { continue };
        // The concrete reference: the full staged sweep with the tier off.
        let case = SourceCache::new(&src, tv_config(false, seed));
        let verdict = case.verify_with(&tgt, &mut arena);
        match cert {
            Certificate::Proved => {
                proved += 1;
                assert!(
                    verdict.is_correct(),
                    "abstract proof contradicts the concrete sweep: seed {seed:#x}\n\
                     verdict: {verdict:?}\n{}",
                    pair_text(&src, &tgt)
                );
            }
            Certificate::Refuted => {
                refuted += 1;
                assert!(
                    matches!(verdict, Verdict::Incorrect(_)),
                    "abstract refutation contradicts the concrete sweep: seed {seed:#x}\n\
                     verdict: {verdict:?}\n{}",
                    pair_text(&src, &tgt)
                );
            }
        }
    }
    eprintln!(
        "absint fuzz: {pairs} pairs, {analyzed} analyzed, {proved} proved, {refuted} refuted"
    );
    // Engagement floors: the tier must decide a healthy slice of the stream
    // in *both* directions, or the agreement above proves nothing.
    assert!(analyzed * 4 >= pairs * 3, "abstract fragment coverage collapsed: {analyzed}/{pairs}");
    assert!(proved >= 150, "too few abstract proofs to trust the differential: {proved}");
    assert!(refuted >= 50, "too few abstract refutations to trust the differential: {refuted}");
}

#[test]
fn verdicts_are_byte_identical_with_the_tier_on_and_off() {
    let mut arena = EvalArena::new();
    let (mut proved, mut refuted) = (0usize, 0usize);
    for seed in seed_block(1_500, 0x0a11_7155) {
        let (src, tgt) = random_pair(seed);
        let with_tier = SourceCache::new(&src, tv_config(true, seed));
        let without = SourceCache::new(&src, tv_config(false, seed));
        let on = with_tier.verify_with(&tgt, &mut arena);
        let off = without.verify_with(&tgt, &mut arena);
        assert_eq!(
            on,
            off,
            "abstract tier changed a verdict: seed {seed:#x}\n{}",
            pair_text(&src, &tgt)
        );
        proved += with_tier.proved();
        refuted += with_tier.absint_refuted();
    }
    eprintln!("absint fuzz: tier engaged on {proved} proofs, {refuted} refutations");
    assert!(proved >= 100, "abstract tier barely proved anything: {proved}");
    assert!(refuted >= 40, "abstract tier barely refuted anything: {refuted}");
}

#[test]
fn tier_counters_and_reports_keep_jobs_determinism() {
    // The tier runs inside the engine's parallel Stage 3; its verdicts and
    // the new proved/refuted-abstract counters must not depend on worker
    // scheduling. (tests/determinism.rs pins the full pipeline; this is the
    // focused tier-counter check.)
    let sequences: Vec<Function> =
        rq1_suite().into_iter().take(8).map(|case| case.function).collect();
    let factory = SimulatedModelFactory::new(gemini2_0t(), 23);

    let serial_lpo = Lpo::new(LpoConfig::default());
    let parallel_lpo = Lpo::new(LpoConfig::default());
    let serial = serial_lpo.run_sequences(&factory, 0, &sequences, &ExecConfig::with_jobs(1));
    let parallel = parallel_lpo.run_sequences(&factory, 0, &sequences, &ExecConfig::with_jobs(4));

    let serial_prints: Vec<String> = serial.reports.iter().map(CaseReport::fingerprint).collect();
    let parallel_prints: Vec<String> =
        parallel.reports.iter().map(CaseReport::fingerprint).collect();
    assert_eq!(serial_prints, parallel_prints);
    assert_eq!(serial.stats.tv.proved, parallel.stats.tv.proved);
    assert_eq!(serial.stats.tv.absint_refuted, parallel.stats.tv.absint_refuted);
    assert_eq!(serial.stats.tv.survivors, parallel.stats.tv.survivors);
}
