//! Differential testing of the worklist canonicalization engine.
//!
//! The worklist-driven `-O2` pipeline ([`Pipeline::run`]) must print
//! **byte-identical** results to the retained rescan-to-fixpoint engine
//! ([`Pipeline::optimize_reference`]), and agree on the `changed` flag, on:
//!
//! * every function of the rq1 and rq2 corpora (the calibrated suites);
//! * every sequence extracted from a synthesized corpus (the Table 4 shape),
//!   including the raw, pre-filter sequences that are *not* fixpoints;
//! * every synthesized whole function, which exercises multi-block control
//!   flow, phis, vectors and memory traffic;
//! * the same set under a pipeline extended with all accepted patches.

use lpo_ir::function::Function;
use lpo_ir::printer::print_function;
use lpo_opt::patches::all_patches;
use lpo_opt::pipeline::{OptLevel, Pipeline};

fn assert_differential(pipeline: &Pipeline, func: &Function, what: &str) {
    let mut fast = func.clone();
    let mut slow = func.clone();
    let fast_stats = pipeline.run(&mut fast);
    let slow_stats = pipeline.optimize_reference(&mut slow);
    assert_eq!(
        print_function(&fast),
        print_function(&slow),
        "worklist and reference diverged on {what} @{}\ninput:\n{}",
        func.name,
        print_function(func),
    );
    assert_eq!(
        fast_stats.changed, slow_stats.changed,
        "changed flags diverged on {what} @{}",
        func.name
    );
    // The canonical form must be a fixpoint of both engines.
    let mut again = fast.clone();
    assert!(!pipeline.run(&mut again).changed, "worklist output not a fixpoint on {what} @{}", func.name);
    lpo_ir::verifier::verify_function(&fast).expect("worklist output must verify");
}

#[test]
fn worklist_matches_reference_on_rq_corpora() {
    let pipeline = Pipeline::new(OptLevel::O2);
    let mut checked = 0;
    for case in lpo_corpus::rq1_suite().iter().chain(lpo_corpus::rq2_suite().iter()) {
        assert_differential(&pipeline, &case.function, "rq corpus");
        checked += 1;
    }
    assert_eq!(checked, 87, "the calibrated suites hold 25 + 62 cases");
}

#[test]
fn worklist_matches_reference_on_synthesized_functions() {
    let corpus = lpo_corpus::generate_corpus(&lpo_corpus::CorpusConfig {
        modules_per_project: 2,
        functions_per_module: 4,
        ..Default::default()
    });
    let pipeline = Pipeline::new(OptLevel::O2);
    let mut functions = 0;
    for project in corpus.iter().take(8) {
        for module in &project.modules {
            for func in &module.functions {
                assert_differential(&pipeline, func, "synthesized function");
                functions += 1;
            }
        }
    }
    assert!(functions >= 32, "synthesized sweep looks too small: {functions}");
}

#[test]
fn worklist_matches_reference_on_raw_extracted_sequences() {
    use lpo_extract::{ExtractConfig, Extractor};
    // Keep the optimizable sequences: those are exactly the non-fixpoint
    // inputs where the two engines have real work to agree on.
    let config = ExtractConfig {
        min_instructions: 2,
        filter_already_optimizable: false,
        ..Default::default()
    };
    let corpus = lpo_corpus::generate_corpus(&lpo_corpus::CorpusConfig {
        modules_per_project: 2,
        functions_per_module: 3,
        ..Default::default()
    });
    let pipeline = Pipeline::new(OptLevel::O2);
    let mut sequences = 0;
    let mut changed = 0;
    for project in corpus.iter().take(6) {
        for module in &project.modules {
            let mut extractor = Extractor::new(config.clone());
            for seq in extractor.extract_module(module) {
                let mut probe = seq.function.clone();
                if pipeline.run(&mut probe).changed {
                    changed += 1;
                }
                assert_differential(&pipeline, &seq.function, "extracted sequence");
                sequences += 1;
            }
        }
    }
    assert!(sequences >= 50, "extraction sweep looks too small: {sequences}");
    assert!(changed >= 5, "the sweep must include non-fixpoint inputs: {changed}");
}

#[test]
fn worklist_matches_reference_with_all_patches_installed() {
    let pipeline = Pipeline::new(OptLevel::O2).with_patches(all_patches());
    for case in lpo_corpus::rq1_suite().iter().chain(lpo_corpus::rq2_suite().iter()) {
        assert_differential(&pipeline, &case.function, "rq corpus (patched)");
    }
}

#[test]
fn worklist_matches_reference_when_layout_differs_from_rpo() {
    // Block layout is entry, b, a while control flow visits a before b: if
    // the worklist swept blocks in RPO instead of layout order, the
    // expanding clamp patch (select → smax + umin) would fire in %a before
    // %b and assign its helper names in the opposite order to the reference,
    // breaking printed byte-equality. Regression test for exactly that.
    let text = "define i8 @f(i32 %x, i1 %p) {\n\
        entry:\n  br i1 %p, label %a, label %b\n\
        b:\n\
          %c2 = icmp slt i32 %x, 0\n\
          %m2 = call i32 @llvm.umin.i32(i32 %x, i32 255)\n\
          %t2 = trunc nuw i32 %m2 to i8\n\
          %s2 = select i1 %c2, i8 0, i8 %t2\n\
          ret i8 %s2\n\
        a:\n\
          %c1 = icmp slt i32 %x, 0\n\
          %m1 = call i32 @llvm.umin.i32(i32 %x, i32 255)\n\
          %t1 = trunc nuw i32 %m1 to i8\n\
          %s1 = select i1 %c1, i8 0, i8 %t1\n\
          ret i8 %s1\n}";
    let func = lpo_ir::parser::parse_function(text).unwrap();
    let pipeline = Pipeline::new(OptLevel::O2).with_patches(all_patches());
    assert_differential(&pipeline, &func, "layout != RPO with expanding patch");
}
