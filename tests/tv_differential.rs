//! Differential acceptance tests for the staged translation validator.
//!
//! PR 3 proved the compiled evaluator outcome-identical to the reference
//! evaluator; PR 4 proved the worklist canonicalizer byte-identical to the
//! rescan engine. This file does the same for Stage 3: the staged checker
//! (probe → lazy compile → batched sweep, `SourceCache::verify_with`) must
//! produce **bit-identical verdicts** — including counterexample text, UB
//! messages and exhaustiveness flags — to the retained pre-staging path
//! (`verify_refinement_reference` / `SourceCache::verify_reference`), over
//! the rq1/rq2 corpora and synthesized UB/memory/control-flow cases, for
//! every probe-window size. It also proves the compile-once contract of the
//! structural-hash compiled-function cache and that staging keeps the
//! engine's `--jobs` determinism.

use lpo::prelude::*;
use lpo_bench::twist_return;
use lpo_corpus::{rq1_suite, rq2_suite};
use lpo_ir::function::Function;
use lpo_ir::parser::parse_function;
use lpo_llm::strategies::{apply_strategy, library};
use lpo_llm::prelude::{gemini2_0t, SimulatedModelFactory};
use lpo_tv::inputs::InputConfig;
use lpo_tv::prelude::{CompileCache, EvalArena, SourceCache, TvConfig};
use lpo_tv::refine::{verify_refinement_reference, verify_refinement_with};

/// A compact input set so sweeping the whole corpus stays fast in debug
/// builds while still covering exhaustive, corner and random inputs.
fn quick_inputs() -> InputConfig {
    InputConfig { exhaustive_bits: 8, random_samples: 24, seed: 0xd1ff }
}

fn config_with_probe(probe_inputs: usize) -> TvConfig {
    TvConfig { inputs: quick_inputs(), probe_inputs, ..TvConfig::default() }
}

/// Candidate rewrites for one corpus case: the source itself (a guaranteed
/// survivor), the twisted source (refuted on the earliest concrete input),
/// and every applicable strategy from the rewrite library (a mix of correct,
/// incorrect and uninteresting shapes — the realistic candidate traffic).
fn candidates_for(src: &Function) -> Vec<Function> {
    let mut out = vec![src.clone()];
    out.extend(twist_return(src));
    for strategy in library() {
        if let Some(candidate) = apply_strategy(&strategy, src) {
            out.push(candidate);
        }
    }
    out
}

#[test]
fn staged_matches_reference_over_the_corpora() {
    let mut checked = 0usize;
    for case in rq1_suite().iter().chain(rq2_suite().iter()) {
        let src = &case.function;
        for candidate in candidates_for(src) {
            // Window edges: straight to compile (0), mid-probe refutations
            // (1/4), the default-ish window (16), and everything-in-probe.
            for probe in [0usize, 1, 4, 16, usize::MAX] {
                let config = config_with_probe(probe);
                let staged = verify_refinement_with(src, &candidate, &config);
                let reference = verify_refinement_reference(src, &candidate, &config);
                assert_eq!(
                    staged, reference,
                    "issue {} diverged (probe {probe})",
                    case.issue_id
                );
                // The diagnostic-free entry must agree bit-for-bit on the
                // verdict.
                let source_cache = SourceCache::new(src, config.clone());
                let mut arena = EvalArena::new();
                assert_eq!(
                    source_cache.verify_outcome_only(&candidate, &mut arena),
                    staged.is_correct(),
                    "issue {} outcome-only diverged (probe {probe})",
                    case.issue_id
                );
                checked += 1;
            }
        }
    }
    assert!(checked > 1000, "expected a real corpus sweep, got {checked} comparisons");
}

#[test]
fn staged_matches_reference_on_ub_memory_and_control_flow() {
    // (src, tgt) pairs hitting the refinement rules the corpora underexercise:
    // UB introduction/removal, memory mismatches, poison, infinite loops
    // (step-limit UB) and multi-block targets (the batched sweep's fallback).
    let pairs = [
        // Target introduces UB (udiv by a parameter).
        (
            "define i32 @s(i32 %x, i32 %y) {\n %r = add i32 %x, %y\n ret i32 %r\n}",
            "define i32 @t(i32 %x, i32 %y) {\n %d = udiv i32 %x, %y\n %r = add i32 %x, %y\n ret i32 %r\n}",
        ),
        // Source UB excuses anything.
        (
            "define i32 @s(i32 %x) {\n %r = udiv i32 %x, %x\n ret i32 %r\n}",
            "define i32 @t(i32 %x) {\n ret i32 1\n}",
        ),
        // Memory: wrong stored value.
        (
            "define void @s(ptr %p) {\n store i32 1, ptr %p, align 4\n ret void\n}",
            "define void @t(ptr %p) {\n store i32 2, ptr %p, align 4\n ret void\n}",
        ),
        // Memory: equivalent store through a computation.
        (
            "define void @s(ptr %p) {\n store i32 1, ptr %p, align 4\n ret void\n}",
            "define void @t(ptr %p) {\n %v = add i32 0, 1\n store i32 %v, ptr %p, align 4\n ret void\n}",
        ),
        // Load widening (case study 1).
        (
            "define i32 @s(ptr %0) {\n\
             %2 = load i16, ptr %0, align 2\n\
             %3 = getelementptr i8, ptr %0, i64 2\n\
             %4 = load i16, ptr %3, align 1\n\
             %5 = zext i16 %4 to i32\n\
             %6 = shl nuw i32 %5, 16\n\
             %7 = zext i16 %2 to i32\n\
             %8 = or disjoint i32 %6, %7\n\
             ret i32 %8\n}",
            "define i32 @t(ptr %0) {\n %2 = load i32, ptr %0, align 2\n ret i32 %2\n}",
        ),
        // Added poison via a wrongly claimed flag.
        (
            "define i8 @s(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}",
            "define i8 @t(i8 %x) {\n %r = add nuw i8 %x, 1\n ret i8 %r\n}",
        ),
        // Target loops forever: step-limit UB on every input.
        (
            "define i32 @s(i32 %x) {\n ret i32 %x\n}",
            "define i32 @t(i32 %x) {\n\
             entry:\n  br label %loop\n\
             loop:\n  br label %loop\n}",
        ),
        // Multi-block, phi-carrying target (batched sweep falls back to the
        // per-lane path) that is nevertheless correct.
        (
            "define i32 @s(i32 %x) {\n %r = add i32 %x, 1\n ret i32 %r\n}",
            "define i32 @t(i32 %x) {\n\
             entry:\n  %c = icmp eq i32 %x, 0\n  br i1 %c, label %zero, label %other\n\
             zero:\n  br label %join\n\
             other:\n  %a = add i32 %x, 1\n  br label %join\n\
             join:\n  %r = phi i32 [ 1, %zero ], [ %a, %other ]\n  ret i32 %r\n}",
        ),
        // Signature mismatch: rejected before any evaluation.
        (
            "define i32 @s(i32 %x) {\n ret i32 %x\n}",
            "define i32 @t(i32 %x, i32 %y) {\n ret i32 %x\n}",
        ),
    ];
    for (src_text, tgt_text) in pairs {
        let src = parse_function(src_text).unwrap();
        let tgt = parse_function(tgt_text).unwrap();
        for probe in [0usize, 1, 3, 16, usize::MAX] {
            let config = TvConfig { probe_inputs: probe, ..TvConfig::default() };
            let staged = verify_refinement_with(&src, &tgt, &config);
            let reference = verify_refinement_reference(&src, &tgt, &config);
            assert_eq!(staged, reference, "pair diverged (probe {probe}):\n{src_text}\n→\n{tgt_text}");
        }
    }
}

#[test]
fn staged_source_eval_counts_match_the_reference() {
    // The lazy per-input source-outcome fill must behave identically under
    // staging: a candidate refuted at input k costs exactly k+1 source
    // evaluations on both paths, including refutations inside the batched
    // sweep (where target lanes run ahead of the comparisons).
    let src = parse_function("define i8 @s(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").unwrap();
    // Wrong only for x >= 100: refuted mid-sweep, well past the probe window.
    let late_wrong = parse_function(
        "define i8 @t(i8 %x) {\n\
         %c = icmp ult i8 %x, 100\n\
         %r = add i8 %x, 1\n\
         %w = add i8 %x, 2\n\
         %s = select i1 %c, i8 %r, i8 %w\n\
         ret i8 %s\n}",
    )
    .unwrap();
    let early_wrong = parse_function("define i8 @t(i8 %x) {\n %r = add i8 %x, 2\n ret i8 %r\n}").unwrap();
    let correct = parse_function("define i8 @t(i8 %x) {\n %r = sub i8 %x, -1\n ret i8 %r\n}").unwrap();

    for candidate in [&early_wrong, &late_wrong, &correct] {
        let staged_case = SourceCache::new(&src, TvConfig::default());
        let reference_case = SourceCache::new(&src, TvConfig::default());
        let mut arena = EvalArena::new();
        let staged = staged_case.verify_with(candidate, &mut arena);
        let reference = reference_case.verify_reference(candidate, &mut arena);
        assert_eq!(staged, reference);
        assert_eq!(
            staged_case.source_eval_count(),
            reference_case.source_eval_count(),
            "source-side evaluation counts diverged"
        );
    }
}

#[test]
fn compile_cache_compiles_each_structural_digest_once() {
    let src = parse_function("define i8 @s(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").unwrap();
    // Textually different, structurally identical survivors.
    let a = parse_function("define i8 @t(i8 %v) {\n %out = sub i8 %v, -1\n ret i8 %out\n}").unwrap();
    let b = parse_function("define i8 @q(i8 %w) {\n %z = sub i8 %w, -1\n ret i8 %z\n}").unwrap();
    // A structurally distinct survivor.
    let c = parse_function("define i8 @u(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").unwrap();

    let cache = CompileCache::new();
    // Abstract pre-verification off: this test pins the *compile cache*
    // traffic of surviving candidates, and with the tier on these survivors
    // are proved without ever compiling or sweeping.
    let config = TvConfig { absint: false, ..TvConfig::default() };
    let case = SourceCache::new(&src, config).with_compile_cache(&cache);
    let mut arena = EvalArena::new();

    for _ in 0..3 {
        assert!(case.verify_with(&a, &mut arena).is_correct());
    }
    assert_eq!(cache.misses(), 1, "the same candidate must compile exactly once");
    assert_eq!(cache.hits(), 2);

    assert!(case.verify_with(&b, &mut arena).is_correct());
    assert_eq!(cache.misses(), 1, "a renamed twin must reuse the compiled function");
    assert_eq!(cache.hits(), 3);

    assert!(case.verify_with(&c, &mut arena).is_correct());
    assert_eq!(cache.misses(), 2, "a structurally new candidate must compile");
    assert_eq!(case.survivors(), 5);
    assert_eq!(case.probe_rejects(), 0);

    // A probe-refuted candidate never touches the cache.
    let wrong = parse_function("define i8 @t(i8 %x) {\n %r = add i8 %x, 2\n ret i8 %r\n}").unwrap();
    assert!(!case.verify_with(&wrong, &mut arena).is_correct());
    assert_eq!(cache.misses(), 2);
    assert_eq!(case.probe_rejects(), 1);
}

#[test]
fn staging_and_cache_keep_jobs_determinism() {
    // The LPO engine now verifies through the staged checker with a shared
    // compile cache; reports must stay byte-identical across worker counts,
    // and the probe/survivor split (a per-case count) must too. Only the
    // compile-cache traffic may differ with scheduling.
    let sequences: Vec<Function> =
        rq1_suite().into_iter().take(8).map(|case| case.function).collect();
    let factory = SimulatedModelFactory::new(gemini2_0t(), 11);

    let serial_lpo = Lpo::new(LpoConfig::default());
    let parallel_lpo = Lpo::new(LpoConfig::default());
    let serial = serial_lpo.run_sequences(&factory, 0, &sequences, &ExecConfig::with_jobs(1));
    let parallel = parallel_lpo.run_sequences(&factory, 0, &sequences, &ExecConfig::with_jobs(4));

    let serial_prints: Vec<String> = serial.reports.iter().map(CaseReport::fingerprint).collect();
    let parallel_prints: Vec<String> =
        parallel.reports.iter().map(CaseReport::fingerprint).collect();
    assert_eq!(serial_prints, parallel_prints);
    assert_eq!(serial.stats.tv.candidates, parallel.stats.tv.candidates);
    assert_eq!(serial.stats.tv.probe_rejects, parallel.stats.tv.probe_rejects);
    assert_eq!(serial.stats.tv.survivors, parallel.stats.tv.survivors);
    // Every checked candidate is probe-rejected, swept as a survivor, or —
    // for signatures whose whole input set fits in the probe window —
    // accepted inside the probe.
    assert!(
        serial.stats.tv.probe_rejects + serial.stats.tv.survivors <= serial.stats.tv.candidates
    );
    assert!(serial.stats.tv.candidates > 0);
}
