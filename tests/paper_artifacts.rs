//! Artefact-level checks: the paper's concrete examples (Figure 1, Figure 3,
//! Figure 4 case studies) behave as described when pushed through the
//! reproduction's components.

use lpo_ir::parser::parse_function;
use lpo_mca::{CostModel, Target};
use lpo_opt::patches::all_patches;
use lpo_opt::pipeline::{OptLevel, Pipeline};
use lpo_tv::refine::verify_refinement;

#[test]
fn figure_1_pair_is_a_verified_improvement() {
    let src = parse_function(
        "define i8 @src(i32 %0) {\n\
         %2 = icmp slt i32 %0, 0\n\
         %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
         %4 = trunc nuw i32 %3 to i8\n\
         %5 = select i1 %2, i8 0, i8 %4\n\
         ret i8 %5\n}",
    )
    .unwrap();
    let tgt = parse_function(
        "define i8 @tgt(i32 %0) {\n\
         %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
         %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
         %4 = trunc nuw i32 %3 to i8\n\
         ret i8 %4\n}",
    )
    .unwrap();
    assert!(verify_refinement(&src, &tgt).is_correct());
    let model = CostModel::new(Target::Btver2Like);
    assert!(model.estimate(&tgt).is_better_than(&model.estimate(&src)));
    // The base optimizer misses it; with the accepted patches it is handled.
    let mut missed = src.clone();
    assert!(!Pipeline::new(OptLevel::O2).run(&mut missed).changed);
    let mut fixed = src.clone();
    Pipeline::new(OptLevel::O2).with_patches(all_patches()).run(&mut fixed);
    assert_eq!(fixed.instruction_count(), 3);
}

#[test]
fn figure_4_case_studies_verify() {
    let cases = [
        (
            // Case study 1: adjacent load merge.
            "define i32 @src(ptr %0) {\n\
             %2 = load i16, ptr %0, align 2\n\
             %3 = getelementptr i8, ptr %0, i64 2\n\
             %4 = load i16, ptr %3, align 1\n\
             %5 = zext i16 %4 to i32\n\
             %6 = shl nuw i32 %5, 16\n\
             %7 = zext i16 %2 to i32\n\
             %8 = or disjoint i32 %6, %7\n\
             ret i32 %8\n}",
            "define i32 @tgt(ptr %0) {\n %2 = load i32, ptr %0, align 2\n ret i32 %2\n}",
        ),
        (
            // Case study 2: redundant umax.
            "define i8 @src(i8 %0) {\n\
             %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)\n\
             %3 = shl nuw i8 %2, 1\n\
             %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)\n\
             ret i8 %4\n}",
            "define i8 @tgt(i8 %0) {\n\
             %2 = shl nuw i8 %0, 1\n\
             %3 = call i8 @llvm.umax.i8(i8 %2, i8 16)\n\
             ret i8 %3\n}",
        ),
        (
            // Case study 3: fcmp ord + select.
            "define i1 @src(double %0) {\n\
             %2 = fcmp ord double %0, 0.000000e+00\n\
             %3 = select i1 %2, double %0, double 0.000000e+00\n\
             %4 = fcmp oeq double %3, 1.000000e+00\n\
             ret i1 %4\n}",
            "define i1 @tgt(double %0) {\n %2 = fcmp oeq double %0, 1.000000e+00\n ret i1 %2\n}",
        ),
    ];
    for (src, tgt) in cases {
        let s = parse_function(src).unwrap();
        let t = parse_function(tgt).unwrap();
        assert!(verify_refinement(&s, &t).is_correct(), "case study failed:\n{src}");
        assert!(t.instruction_count() < s.instruction_count());
    }
}

#[test]
fn benchmark_suites_have_the_papers_inventory() {
    assert_eq!(lpo_corpus::rq1_suite().len(), 25);
    let rq2 = lpo_corpus::rq2_suite();
    assert_eq!(rq2.len(), 62);
    assert_eq!(rq2.iter().filter(|c| c.status == lpo_corpus::Status::Confirmed).count(), 28);
    assert_eq!(rq2.iter().filter(|c| c.status == lpo_corpus::Status::Fixed).count(), 13);
    assert_eq!(all_patches().len(), 15);
}
