//! The fault-injection harness: chaos for the discovery engine's failure
//! model.
//!
//! A [`FaultyModelFactory`] injects seeded timeouts, backend errors, garbage
//! completions and panics into otherwise-deterministic simulated model
//! sessions. These tests pin the three robustness contracts of the engine:
//!
//! - **Containment** — a case the chaos never touched reports byte-identically
//!   to a fault-free run; a case it did touch fails *alone*, as a
//!   [`CaseOutcome::Failed`] report in the ordinary stream, never by aborting
//!   the run.
//! - **Reproducibility** — which calls fault is a pure function of the chaos
//!   seed, so a chaotic run itself fingerprints identically across `--jobs`.
//! - **Crash-safe resume** — every byte prefix of the verdict store is a
//!   valid crash image: reopening after a mid-run kill and rerunning with
//!   resume recovers the torn tail and converges to the uninterrupted
//!   fingerprints.
//!
//! Every test walks a fixed chaos-seed block and appends a rotating seed from
//! `LPO_CHAOS_SEED` when set — the CI chaos-smoke step derives it from the
//! commit hash and logs it, so any failure is replayable with
//! `LPO_CHAOS_SEED=<seed> cargo test --test fault_injection`.

use lpo::prelude::*;
use lpo_corpus::rq1_suite;
use lpo_ir::function::Function;
use lpo_llm::prelude::{gemini2_0t, FaultRates, FaultyModelFactory, SimulatedModelFactory};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The acceptance fault rate: ~10% of model calls fault, split evenly over
/// the four fault kinds.
const CHAOS_RATE: f64 = 0.10;

fn suite() -> Vec<Function> {
    rq1_suite().into_iter().map(|case| case.function).collect()
}

fn fingerprints(batch: &BatchResult) -> (Vec<String>, String) {
    (batch.reports.iter().map(CaseReport::fingerprint).collect(), batch.summary.fingerprint())
}

/// The fixed chaos seeds every test walks, plus (flagged `true`) a rotating
/// seed from the environment. Assertions about *how much* chaos a seed causes
/// only apply to the fixed block — a commit-derived seed may legitimately
/// draw few faults, and must not fail CI for it.
fn chaos_seeds() -> Vec<(u64, bool)> {
    let mut seeds = vec![
        (0x04a0_5eed_0000_0001, false),
        (0x9e37_79b9_7f4a_7c15, false),
        (0xbf58_476d_1ce4_e5b9, false),
    ];
    if let Some(rotating) = rotating_seed() {
        eprintln!("chaos: appending rotating seed LPO_CHAOS_SEED={rotating:#x}");
        seeds.push((rotating, true));
    }
    seeds
}

/// The rotating seed from the environment, accepting decimal or `0x` hex.
fn rotating_seed() -> Option<u64> {
    let raw = std::env::var("LPO_CHAOS_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("LPO_CHAOS_SEED must be a u64 (decimal or 0x hex), got {raw:?}"),
    }
}

/// A scratch store path unique to this test process.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lpo-fault-test-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{tag}.log"))
}

/// Removes a scratch store file and its lock sibling.
fn clean(path: &Path) {
    let _ = fs::remove_file(path);
    let mut lock = path.as_os_str().to_os_string();
    lock.push(".lock");
    let _ = fs::remove_file(PathBuf::from(lock));
}

#[test]
fn injected_faults_never_change_unfaulted_case_reports() {
    let sequences = suite();
    let lpo = Lpo::new(LpoConfig::default());
    let plain = SimulatedModelFactory::new(gemini2_0t(), 42);
    let config = ExecConfig::with_jobs(4);

    for (chaos_seed, rotating) in chaos_seeds() {
        let faulty = FaultyModelFactory::new(
            SimulatedModelFactory::new(gemini2_0t(), 42),
            FaultRates::uniform(CHAOS_RATE),
            chaos_seed,
        );
        for round in 0..3u64 {
            let reference = lpo.run_sequences(&plain, round, &sequences, &config);
            let chaotic = lpo.run_sequences(&faulty, round, &sequences, &config);
            assert_eq!(
                chaotic.reports.len(),
                reference.reports.len(),
                "chaos dropped a case from the report stream (seed {chaos_seed:#x})"
            );

            let faulted: BTreeSet<(u64, u64)> = faulty.faulted_cases().into_iter().collect();
            let mut compared = 0usize;
            for (index, (chaos, clean)) in
                chaotic.reports.iter().zip(&reference.reports).enumerate()
            {
                if faulted.contains(&(round, index as u64)) {
                    continue;
                }
                compared += 1;
                assert_eq!(
                    chaos.fingerprint(),
                    clean.fingerprint(),
                    "unfaulted case {index} diverged (seed {chaos_seed:#x}, round {round})"
                );
            }
            assert!(
                compared > 0,
                "every case faulted at a {CHAOS_RATE} rate — suspicious (seed {chaos_seed:#x})"
            );
        }
        if !rotating {
            assert!(
                faulty.injected().total() > 0,
                "fixed chaos seed {chaos_seed:#x} injected nothing over 3 rounds"
            );
        }
    }
}

#[test]
fn chaotic_runs_complete_with_failures_contained() {
    // A panic-heavy storm: the engine must contain every blast in its case's
    // catch_unwind, keep the other workers going, and report the failure as
    // an ordinary CaseReport — never abort or deadlock the batch.
    let sequences = suite();
    let lpo = Lpo::new(LpoConfig::default());
    let rates = FaultRates { timeout: 0.05, garbage: 0.05, error: 0.05, panic: 0.30 };

    let faulty = FaultyModelFactory::new(
        SimulatedModelFactory::new(gemini2_0t(), 42),
        rates,
        0xabad_5eed_0dd5_0c1a,
    );
    let batch = lpo.run_sequences(&faulty, 0, &sequences, &ExecConfig::with_jobs(4));

    assert_eq!(batch.reports.len(), sequences.len(), "a fault dropped a case from the stream");
    assert!(faulty.injected().panics > 0, "a 0.3 panic rate must inject at least one panic");
    assert!(batch.summary.failed > 0, "injected panics must surface as failed cases");
    assert_eq!(batch.stats.failed_cases, batch.summary.failed);
    let failures = batch.reports.iter().filter(|r| r.outcome.is_failed()).count();
    assert_eq!(failures, batch.summary.failed, "summary.failed disagrees with the stream");
    for report in &batch.reports {
        if let CaseOutcome::Failed { error } = &report.outcome {
            assert!(!error.is_empty(), "a failed case must record why");
        }
    }

    // The storm itself is seeded: an identical factory on a different worker
    // count reproduces the chaotic run byte-for-byte.
    let replay = FaultyModelFactory::new(
        SimulatedModelFactory::new(gemini2_0t(), 42),
        rates,
        0xabad_5eed_0dd5_0c1a,
    );
    let serial = lpo.run_sequences(&replay, 0, &sequences, &ExecConfig::with_jobs(1));
    assert_eq!(
        fingerprints(&serial),
        fingerprints(&batch),
        "a seeded chaotic run is not deterministic across --jobs"
    );
}

#[test]
fn resume_after_a_kill_reproduces_the_uninterrupted_fingerprint() {
    let sequences = suite();
    let factory = SimulatedModelFactory::new(gemini2_0t(), 42);
    let config = ExecConfig::with_jobs(2);

    // The uninterrupted, storeless reference.
    let reference = {
        let lpo = Lpo::new(LpoConfig::default());
        fingerprints(&lpo.run_sequences(&factory, 0, &sequences, &config))
    };

    // A complete persisted run captures the full log image this run would
    // have written had it never been killed.
    let path = scratch("kill-resume");
    clean(&path);
    {
        let store = Arc::new(VerdictStore::open(&path).expect("open scratch store"));
        let lpo = Lpo::new(LpoConfig::default()).with_verdict_store(Arc::clone(&store));
        let persist = Persist { store: &store, run_key: "chaos/kill", resume: false };
        let batch = lpo.run_sequences_persisted(&factory, 0, &sequences, &config, Some(&persist));
        assert_eq!(fingerprints(&batch), reference, "store-backed run diverged from reference");
    }
    let full_image = fs::read(&path).expect("read full store image");
    assert!(!full_image.is_empty(), "a persisted run must write the store");

    // Every byte prefix of an append-only log is a valid crash image: a
    // SIGKILL can land anywhere, recovery truncates the torn tail, and the
    // resumed run must converge to the reference fingerprints.
    let cuts = [
        0,
        1,
        full_image.len() / 3,
        full_image.len() / 2,
        full_image.len() - 3,
        full_image.len(),
    ];
    for cut in cuts {
        clean(&path);
        fs::write(&path, &full_image[..cut]).expect("write crash image");
        let store = Arc::new(
            VerdictStore::open(&path)
                .unwrap_or_else(|error| panic!("reopen after cut {cut} failed: {error}")),
        );
        let lpo = Lpo::new(LpoConfig::default()).with_verdict_store(Arc::clone(&store));
        let persist = Persist { store: &store, run_key: "chaos/kill", resume: true };
        let batch = lpo.run_sequences_persisted(&factory, 0, &sequences, &config, Some(&persist));
        assert_eq!(fingerprints(&batch), reference, "resume from a cut at byte {cut} diverged");
        assert!(
            batch.stats.resumed_cases <= sequences.len(),
            "resumed more cases than exist (cut {cut})"
        );
        if cut == full_image.len() {
            // The intact log replays every case without recomputing any.
            assert_eq!(
                batch.stats.resumed_cases,
                sequences.len(),
                "an intact log must resume every case"
            );
        }
    }
    clean(&path);
}

#[test]
fn failed_cases_are_retried_on_resume_and_converge_to_the_reference() {
    // Chaos during a checkpointed run must never poison the store: failed
    // cases are not checkpointed, so once the model is healthy again a
    // resume retries exactly those and lands on the fault-free fingerprints.
    // (Garbage completions are excluded here: a case that swallows junk and
    // still succeeds legitimately reports more attempts than the fault-free
    // run — it is marked faulted, not failed.)
    let sequences = suite();
    let config = ExecConfig::with_jobs(2);
    let plain = SimulatedModelFactory::new(gemini2_0t(), 42);
    let reference = {
        let lpo = Lpo::new(LpoConfig::default());
        fingerprints(&lpo.run_sequences(&plain, 0, &sequences, &config))
    };
    let rates = FaultRates { timeout: 0.1, garbage: 0.0, error: 0.1, panic: 0.1 };

    for (chaos_seed, rotating) in chaos_seeds() {
        let path = scratch(&format!("chaos-retry-{chaos_seed:016x}"));
        clean(&path);

        // Pass 1: the chaotic, checkpointed run.
        let failed_under_chaos = {
            let faulty = FaultyModelFactory::new(
                SimulatedModelFactory::new(gemini2_0t(), 42),
                rates,
                chaos_seed,
            );
            let store = Arc::new(VerdictStore::open(&path).expect("open scratch store"));
            let lpo = Lpo::new(LpoConfig::default()).with_verdict_store(Arc::clone(&store));
            let persist = Persist { store: &store, run_key: "chaos/retry", resume: false };
            let batch =
                lpo.run_sequences_persisted(&faulty, 0, &sequences, &config, Some(&persist));
            batch.summary.failed
        };
        if !rotating {
            assert!(
                failed_under_chaos > 0,
                "fixed chaos seed {chaos_seed:#x} failed nothing; the retry path is untested"
            );
        }

        // Pass 2: the model is healthy again; resume replays the clean
        // checkpoints and retries only what failed.
        {
            let store = Arc::new(VerdictStore::open(&path).expect("reopen scratch store"));
            let lpo = Lpo::new(LpoConfig::default()).with_verdict_store(Arc::clone(&store));
            let persist = Persist { store: &store, run_key: "chaos/retry", resume: true };
            let batch = lpo.run_sequences_persisted(&plain, 0, &sequences, &config, Some(&persist));
            assert_eq!(
                fingerprints(&batch),
                reference,
                "seed {chaos_seed:#x}: resumed run diverged from the fault-free reference"
            );
            assert_eq!(batch.summary.failed, 0, "a healthy resume must clear every failure");
            assert_eq!(
                batch.stats.resumed_cases,
                sequences.len() - failed_under_chaos,
                "resume must replay exactly the non-failed checkpoints"
            );
        }
        clean(&path);
    }
}
