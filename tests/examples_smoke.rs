//! Smoke tests: every workspace example must run to completion.
//!
//! These shell out to `cargo run --example …` so the examples are exercised
//! exactly the way the README tells users to run them. `--release` is used
//! because the tier-1 flow (`cargo build --release && cargo test -q`) has the
//! release artifacts already cached, and the heavier examples are much faster
//! there.

use std::process::Command;

fn run_example(name: &str) {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "--release", "--quiet", "--example", name])
        .current_dir(manifest_dir)
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example `{name}`: {e}"));
    assert!(
        output.status.success(),
        "example `{name}` exited with {:?}\n--- stdout\n{}\n--- stderr\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    assert!(
        !output.stdout.is_empty(),
        "example `{name}` produced no output"
    );
}

#[test]
fn quickstart_runs_to_completion() {
    run_example("quickstart");
}

#[test]
fn verify_rewrite_runs_to_completion() {
    run_example("verify_rewrite");
}

#[test]
fn discover_missed_optimizations_runs_to_completion() {
    run_example("discover_missed_optimizations");
}

#[test]
fn superoptimizer_comparison_runs_to_completion() {
    run_example("superoptimizer_comparison");
}
