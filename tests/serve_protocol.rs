//! Wire-protocol contract tests for the serving shell (`lpo-serve`).
//!
//! The contract under test is *fingerprint identity*: a job submitted to a
//! real server over a real socket must stream back per-case reports whose
//! fingerprints are byte-identical to a batch-mode `run_batch_persisted`
//! run of the same corpus — for any server worker count, for cold and warm
//! stores, and with other clients interleaving jobs on the same server.
//! Warm resubmissions additionally must *report* their verdict-store hits:
//! the streamed `store_hit` tags, the `done` frame's hit counters and the
//! server `stats` all have to show the cache working, not just be fast.

use lpo::prelude::*;
use lpo_corpus::rq1_suite;
use lpo_ir::function::Function;
use lpo_llm::prelude::{gemini2_0t, SimulatedModelFactory};
use lpo_serve::json::Json;
use lpo_serve::prelude::{JobOutcome, ServeClient, ServeConfig, Server, SubmitOptions};
use std::sync::Arc;
use std::thread;

fn suite() -> Vec<Function> {
    rq1_suite().into_iter().map(|case| case.function).collect()
}

/// The batch-mode reference: the same corpus through `run_batch_persisted`
/// with the same model and seed the protocol defaults to.
fn reference() -> (Vec<String>, String) {
    let lpo = Lpo::new(LpoConfig::default());
    let factory = SimulatedModelFactory::new(gemini2_0t(), 42);
    let batch = lpo::exec::run_batch_persisted(
        &lpo,
        &factory,
        0,
        &suite(),
        &ExecConfig::with_jobs(2),
        None,
    );
    (batch.reports.iter().map(CaseReport::fingerprint).collect(), batch.summary.fingerprint())
}

/// Starts a server on an ephemeral loopback port with a fresh in-memory
/// store. The caller must send `shutdown` and join the handle.
fn start(config: ServeConfig) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let store = Arc::new(VerdictStore::in_memory());
    let server = Server::bind("127.0.0.1:0", config, store).expect("bind ephemeral server");
    let addr = server.local_addr().to_string();
    (addr, thread::spawn(move || server.run()))
}

/// Reassembles a job's streamed fingerprints into input order (settle order
/// is scheduling-dependent) and checks every case arrived exactly once.
fn streamed_fingerprints(outcome: &JobOutcome, cases: usize) -> Vec<String> {
    let mut slots: Vec<Option<String>> = vec![None; cases];
    for frame in outcome.cases() {
        let index = frame.get("case").and_then(Json::as_num).expect("case index") as usize;
        let fingerprint =
            frame.get("fingerprint").and_then(Json::as_str).expect("fingerprint").to_string();
        assert!(slots[index].is_none(), "case {index} streamed twice");
        slots[index] = Some(fingerprint);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| slot.unwrap_or_else(|| panic!("case {index} never streamed")))
        .collect()
}

fn num(frame: &Json, key: &str) -> f64 {
    frame.get(key).and_then(Json::as_num).unwrap_or_else(|| panic!("frame has no '{key}'"))
}

#[test]
fn served_jobs_are_byte_identical_to_batch_mode_across_jobs() {
    let (expected, expected_summary) = reference();
    for jobs in [1usize, 4] {
        let (addr, server) = start(ServeConfig { jobs, ..ServeConfig::default() });
        let mut client = ServeClient::connect(&addr).expect("connect");

        // Cold submission against the empty store.
        let cold = client.submit(&SubmitOptions::corpus("rq1")).expect("cold submit");
        assert_eq!(
            streamed_fingerprints(&cold, expected.len()),
            expected,
            "cold served fingerprints diverged from batch mode (jobs {jobs})"
        );
        assert_eq!(
            cold.done().get("summary").and_then(Json::as_str),
            Some(expected_summary.as_str()),
            "cold summary fingerprint diverged (jobs {jobs})"
        );

        // Warm resubmission: answered from the shared store, same bytes.
        let warm = client.submit(&SubmitOptions::corpus("rq1")).expect("warm submit");
        assert_eq!(
            streamed_fingerprints(&warm, expected.len()),
            expected,
            "warm served fingerprints diverged from batch mode (jobs {jobs})"
        );
        assert_eq!(
            warm.done().get("summary").and_then(Json::as_str),
            Some(expected_summary.as_str())
        );

        client.shutdown().expect("shutdown");
        server.join().expect("server thread").expect("server run");
    }
}

#[test]
fn interleaved_concurrent_clients_each_get_identical_streams() {
    let (expected, expected_summary) = reference();
    let (addr, server) = start(ServeConfig { jobs: 2, ..ServeConfig::default() });

    let workers: Vec<_> = (0..3)
        .map(|_| {
            let addr = addr.clone();
            thread::spawn(move || {
                let mut client = ServeClient::connect(&addr).expect("connect");
                let first = client.submit(&SubmitOptions::corpus("rq1")).expect("submit");
                let second = client.submit(&SubmitOptions::corpus("rq1")).expect("resubmit");
                (first, second)
            })
        })
        .collect();
    for (worker, handle) in workers.into_iter().enumerate() {
        let (first, second) = handle.join().expect("client thread");
        for (label, outcome) in [("first", first), ("second", second)] {
            assert_eq!(
                streamed_fingerprints(&outcome, expected.len()),
                expected,
                "client {worker} {label} job diverged under interleaving"
            );
            assert_eq!(
                outcome.done().get("summary").and_then(Json::as_str),
                Some(expected_summary.as_str()),
                "client {worker} {label} summary diverged"
            );
        }
    }

    let mut closer = ServeClient::connect(&addr).expect("connect closer");
    let stats = closer.stats().expect("stats");
    assert_eq!(num(&stats, "jobs_accepted"), 6.0, "every interleaved job must be accounted");
    assert_eq!(num(&stats, "jobs_completed"), 6.0);
    closer.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

/// The warm-path regression test: a second submission of the same corpus
/// must *report* `cache_hits > 0` — in the streamed case frames, the job's
/// `done` counters and the server stats — not merely run fast. This pins
/// the fix for warm resubmissions recomputing Stage-3 verdicts without ever
/// surfacing the hit/miss counters.
#[test]
fn warm_resubmission_reports_store_hits_in_stream_and_stats() {
    let (addr, server) = start(ServeConfig { jobs: 2, ..ServeConfig::default() });
    let mut client = ServeClient::connect(&addr).expect("connect");

    let cold = client.submit(&SubmitOptions::corpus("rq1")).expect("cold submit");
    let cold_hits = num(cold.done(), "verdict_hits");
    let cold_misses = num(cold.done(), "verdict_misses");
    assert!(cold_misses > 0.0, "a cold run must miss the empty store");
    let cold_hit_cases =
        cold.cases().iter().filter(|f| f.get("store_hit") == Some(&Json::Bool(true))).count();

    let warm = client.submit(&SubmitOptions::corpus("rq1")).expect("warm submit");
    let warm_hits = num(warm.done(), "verdict_hits");
    let warm_misses = num(warm.done(), "verdict_misses");
    let warm_rate = num(warm.done(), "cache_hit_rate");

    // The warm run performs the same verdict lookups; every one must hit.
    assert_eq!(warm_misses, 0.0, "a warm resubmission must not miss the store");
    assert_eq!(
        warm_hits,
        cold_hits + cold_misses,
        "warm hits must cover every lookup the cold run made"
    );
    assert!(warm_hits > 0.0, "warm resubmission reported no cache hits");
    assert_eq!(warm_rate, 1.0, "warm cache-hit rate must be exactly 1.0");
    assert!(warm_rate >= 0.9, "the BENCH_baseline serve_cache_hit_rate floor must hold");

    // The streamed frames must carry the same story case by case.
    let warm_hit_cases =
        warm.cases().iter().filter(|f| f.get("store_hit") == Some(&Json::Bool(true))).count();
    assert!(warm_hit_cases > 0, "no warm case frame was tagged store_hit");
    assert!(
        warm_hit_cases > cold_hit_cases,
        "warm submissions must tag more store hits than the cold run \
         ({warm_hit_cases} vs {cold_hit_cases})"
    );

    // And the server-wide stats must expose the aggregate (both jobs).
    let stats = client.stats().expect("stats");
    assert_eq!(
        num(&stats, "verdict_hits"),
        cold_hits + warm_hits,
        "stats must aggregate the hit counters of every job"
    );
    assert!(num(&stats, "cache_hit_rate") > 0.0);
    assert!(num(&stats, "requests_per_second") > 0.0);
    assert!(num(&stats, "uptime_seconds") > 0.0);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

#[test]
fn module_submissions_dedup_and_reproduce() {
    // Two structurally identical functions: one computed case, one dedup
    // replay, both streaming their (equal) fingerprints.
    let module = "define i32 @a(i32 %x) {\n %r = add i32 %x, 0\n ret i32 %r\n}\n\
                  define i32 @b(i32 %y) {\n %r = add i32 %y, 0\n ret i32 %r\n}";
    let (addr, server) = start(ServeConfig { jobs: 1, ..ServeConfig::default() });
    let mut client = ServeClient::connect(&addr).expect("connect");

    let first = client.submit(&SubmitOptions::module(module)).expect("submit module");
    assert_eq!(num(first.done(), "cases"), 2.0);
    assert_eq!(num(first.done(), "dedup_hits"), 1.0, "identical functions must dedup");
    let fingerprints = streamed_fingerprints(&first, 2);
    assert_eq!(fingerprints[0], fingerprints[1], "a dedup replay must clone its representative");
    let dedup_frames =
        first.cases().iter().filter(|f| f.get("dedup") == Some(&Json::Bool(true))).count();
    assert_eq!(dedup_frames, 1, "exactly one case frame must be tagged as a dedup replay");

    // Identical submission on the same connection reproduces byte-for-byte.
    let again = client.submit(&SubmitOptions::module(module)).expect("resubmit module");
    assert_eq!(streamed_fingerprints(&again, 2), fingerprints);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}
