//! Adversarial-input tests for the serving shell's wire boundary.
//!
//! A server on an open socket must treat every byte as hostile: garbage
//! frames, oversized payloads, invalid IR, unknown request kinds and
//! abruptly dying clients all have to produce a structured `error` frame or
//! a clean cancellation — never a panic, a wedged queue, or a poisoned
//! verdict store. Each test finishes by proving the server still serves a
//! pristine job whose fingerprints match the batch-mode reference.

use lpo::prelude::*;
use lpo_corpus::rq1_suite;
use lpo_ir::function::Function;
use lpo_llm::prelude::{gemini2_0t, SimulatedModelFactory};
use lpo_serve::json::Json;
use lpo_serve::prelude::{JobOutcome, ServeClient, ServeConfig, Server, SubmitOptions};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// A small frame cap so the oversized-payload path is cheap to exercise.
const TEST_FRAME_CAP: usize = 4096;

fn suite() -> Vec<Function> {
    rq1_suite().into_iter().map(|case| case.function).collect()
}

fn reference() -> Vec<String> {
    let lpo = Lpo::new(LpoConfig::default());
    let factory = SimulatedModelFactory::new(gemini2_0t(), 42);
    let batch = lpo::exec::run_batch_persisted(
        &lpo,
        &factory,
        0,
        &suite(),
        &ExecConfig::with_jobs(2),
        None,
    );
    batch.reports.iter().map(CaseReport::fingerprint).collect()
}

fn start() -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let config = ServeConfig { jobs: 2, max_frame_bytes: TEST_FRAME_CAP, ..ServeConfig::default() };
    let store = Arc::new(VerdictStore::in_memory());
    let server = Server::bind("127.0.0.1:0", config, store).expect("bind ephemeral server");
    let addr = server.local_addr().to_string();
    (addr, thread::spawn(move || server.run()))
}

fn streamed_fingerprints(outcome: &JobOutcome, cases: usize) -> Vec<String> {
    let mut slots: Vec<Option<String>> = vec![None; cases];
    for frame in outcome.cases() {
        let index = frame.get("case").and_then(Json::as_num).expect("case index") as usize;
        let fingerprint =
            frame.get("fingerprint").and_then(Json::as_str).expect("fingerprint").to_string();
        assert!(slots[index].is_none(), "case {index} streamed twice");
        slots[index] = Some(fingerprint);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| slot.unwrap_or_else(|| panic!("case {index} never streamed")))
        .collect()
}

/// Asserts `frame` is an `error` frame whose message contains `needle`.
fn assert_error(frame: &Json, needle: &str, context: &str) {
    assert_eq!(
        frame.get("kind").and_then(Json::as_str),
        Some("error"),
        "{context}: expected an error frame, got {frame:?}"
    );
    let message = frame.get("message").and_then(Json::as_str).unwrap_or_default();
    assert!(
        message.contains(needle),
        "{context}: error {message:?} does not mention {needle:?}"
    );
}

#[test]
fn malformed_requests_error_without_killing_the_connection() {
    let (addr, server) = start();
    let mut client = ServeClient::connect(&addr).expect("connect");

    // Every entry is one hostile line and the substring its structured
    // error must carry. The same connection absorbs all of them in order:
    // an error frame must never leave the stream unusable.
    let hostile: &[(&str, &str)] = &[
        ("not json at all", "malformed request"),
        ("{\"jobs\": 4}", "no \"kind\""),
        ("{\"kind\":\"frobnicate\"}", "unknown request kind"),
        ("{\"kind\":\"submit\"}", "needs a \"module\" or a \"corpus\""),
        (
            "{\"kind\":\"submit\",\"corpus\":\"rq1\",\"module\":\"define\"}",
            "both \"module\" and \"corpus\"",
        ),
        ("{\"kind\":\"submit\",\"corpus\":\"rq9\"}", "unknown corpus"),
        ("{\"kind\":\"submit\",\"corpus\":\"rq1\",\"model\":\"NotAModel\"}", "unknown model"),
        ("{\"kind\":\"submit\",\"corpus\":\"rq1\",\"seed\":-7}", "non-negative integer"),
        ("{\"kind\":\"submit\",\"corpus\":42}", "\"corpus\" must be a string"),
        ("{\"kind\":\"submit\",\"module\":\"define i32 @broken(\"}", "invalid IR"),
        ("{\"kind\":\"submit\",\"module\":\"\"}", "no functions"),
    ];
    for (line, needle) in hostile {
        let frame = client.request(line).unwrap_or_else(|e| panic!("request {line:?}: {e}"));
        assert_error(&frame, needle, line);
        // The connection must answer an ordinary request right after.
        let stats = client.stats().expect("stats after hostile frame");
        assert_eq!(stats.get("kind").and_then(Json::as_str), Some("stats"));
    }

    // None of the garbage may have queued a job or poisoned the pipeline:
    // a well-formed submission still runs end to end.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("jobs_accepted").and_then(Json::as_num), Some(0.0));
    let expected = reference();
    let good = client.submit(&SubmitOptions::corpus("rq1")).expect("clean submit");
    assert_eq!(streamed_fingerprints(&good, expected.len()), expected);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

#[test]
fn oversized_frames_are_drained_and_rejected_in_bounded_memory() {
    let (addr, server) = start();
    let mut client = ServeClient::connect(&addr).expect("connect");

    // One giant line, far past the cap. The server must refuse it without
    // buffering the whole payload and without desynchronizing the stream.
    let mut payload = vec![b'x'; TEST_FRAME_CAP * 8];
    payload.push(b'\n');
    client.send_raw(&payload).expect("send oversized frame");
    let frame = client.read_frame().expect("error frame");
    assert_error(&frame, "exceeds", "oversized frame");

    // A module just under the server's cap but structurally valid must be
    // parsed, not confused with the drained garbage before it.
    let expected = reference();
    let good = client.submit(&SubmitOptions::corpus("rq1")).expect("submit after oversize");
    assert_eq!(streamed_fingerprints(&good, expected.len()), expected);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

#[test]
fn truncated_frames_and_abrupt_disconnects_leave_the_server_healthy() {
    let (addr, server) = start();

    // A client that writes half a request and vanishes mid-frame.
    {
        let mut rude = ServeClient::connect(&addr).expect("connect rude client");
        rude.send_raw(b"{\"kind\":\"submit\",\"corp").expect("send truncated frame");
        // Dropped here without ever finishing the line.
    }

    // The server must shrug it off: a fresh client gets full clean service.
    let expected = reference();
    let mut client = ServeClient::connect(&addr).expect("connect");
    let good = client.submit(&SubmitOptions::corpus("rq1")).expect("submit after truncation");
    assert_eq!(streamed_fingerprints(&good, expected.len()), expected);

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}

#[test]
fn mid_job_disconnect_cancels_cleanly_and_never_poisons_the_store() {
    let (addr, server) = start();

    // Submit, read a couple of streamed cases, then die mid-job.
    {
        let mut victim = ServeClient::connect(&addr).expect("connect victim");
        victim.send_line(&SubmitOptions::corpus("rq1").request_line()).expect("submit");
        let accepted = victim.read_frame().expect("accepted frame");
        assert_eq!(accepted.get("kind").and_then(Json::as_str), Some("accepted"));
        for _ in 0..2 {
            let frame = victim.read_frame().expect("streamed case");
            assert_eq!(frame.get("kind").and_then(Json::as_str), Some("case"));
        }
    }

    // Wait until the server has settled the abandoned job.
    let mut client = ServeClient::connect(&addr).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let stats = client.stats().expect("stats");
        let settled = stats.get("jobs_completed").and_then(Json::as_num).unwrap_or(0.0)
            + stats.get("jobs_cancelled").and_then(Json::as_num).unwrap_or(0.0);
        if settled >= 1.0 {
            assert_eq!(
                stats.get("jobs_accepted").and_then(Json::as_num),
                Some(1.0),
                "the abandoned job must be accounted exactly once"
            );
            break;
        }
        assert!(Instant::now() < deadline, "abandoned job never settled");
        thread::sleep(Duration::from_millis(25));
    }

    // Whatever the cancelled job wrote to the shared store must be clean:
    // the same corpus resubmitted now yields the full batch-mode reference
    // with no failed cases.
    let expected = reference();
    let good = client.submit(&SubmitOptions::corpus("rq1")).expect("resubmit");
    assert_eq!(
        streamed_fingerprints(&good, expected.len()),
        expected,
        "a cancelled job poisoned the store for its successor"
    );
    assert_eq!(good.done().get("failed").and_then(Json::as_num), Some(0.0));

    client.shutdown().expect("shutdown");
    server.join().expect("server thread").expect("server run");
}
