//! Differential testing of the register-file evaluator.
//!
//! The compiled evaluator ([`CompiledFunction`]) must be **outcome-identical**
//! to the straightforward reference evaluator ([`evaluate_reference`]) —
//! same returned value, same poison/undef classification, same UB (including
//! the exact message), same final memory state, same step count — on:
//!
//! * every function of the rq1 and rq2 corpora, over the full
//!   translation-validation input set of each (exhaustive or corner+random);
//! * randomly synthesized functions from the corpus generator (seeded via
//!   the vendored `rand`, so failures reproduce);
//! * one shared [`EvalArena`] across all of it, proving arena reuse leaks no
//!   state between evaluations of different functions.

use lpo_interp::prelude::*;
use lpo_ir::function::Function;
use lpo_tv::prelude::{generate_inputs, InputConfig};

/// Step limit matching the translation validator's.
const STEP_LIMIT: usize = 1 << 14;

/// Bounded input generation: exhaustive up to 12 bits keeps the whole-corpus
/// sweep fast while still covering every i8-style signature completely.
fn input_config(seed: u64) -> InputConfig {
    InputConfig { exhaustive_bits: 12, random_samples: 64, seed }
}

/// Asserts reference ≡ compiled on every generated input of `func`, reusing
/// the shared arena. Returns how many inputs were checked.
fn check_function(func: &Function, arena: &mut EvalArena, seed: u64) -> usize {
    let inputs = generate_inputs(func, &input_config(seed));
    let compiled = CompiledFunction::compile(func);
    for (index, input) in inputs.iter().enumerate() {
        let fast =
            compiled.evaluate_with_limit(arena, &input.args, input.memory.clone(), STEP_LIMIT);
        let slow = evaluate_reference(func, &input.args, input.memory.clone(), STEP_LIMIT);
        assert_eq!(
            fast, slow,
            "evaluators diverged on @{} input #{index} (args {:?})",
            func.name, input.args
        );
    }
    inputs.len()
}

#[test]
fn compiled_evaluator_matches_reference_on_rq1_corpus() {
    let mut arena = EvalArena::new();
    let mut checked = 0;
    for case in lpo_corpus::rq1_suite() {
        checked += check_function(&case.function, &mut arena, u64::from(case.issue_id));
    }
    assert!(checked > 2_000, "rq1 sweep looks too small: {checked} inputs");
}

#[test]
fn compiled_evaluator_matches_reference_on_rq2_corpus() {
    let mut arena = EvalArena::new();
    let mut checked = 0;
    for case in lpo_corpus::rq2_suite() {
        checked += check_function(&case.function, &mut arena, u64::from(case.issue_id));
    }
    assert!(checked > 2_000, "rq2 sweep looks too small: {checked} inputs");
}

#[test]
fn compiled_evaluator_matches_reference_on_synthesized_functions() {
    let corpus = lpo_corpus::generate_corpus(&lpo_corpus::CorpusConfig {
        modules_per_project: 1,
        functions_per_module: 4,
        ..Default::default()
    });
    let mut arena = EvalArena::new();
    let mut functions = 0;
    for (pi, project) in corpus.iter().enumerate().take(6) {
        for (mi, module) in project.modules.iter().enumerate() {
            for func in &module.functions {
                functions += 1;
                check_function(func, &mut arena, (pi * 31 + mi) as u64);
            }
        }
    }
    assert!(functions >= 24, "synthesized sweep looks too small: {functions} functions");
}

#[test]
fn ub_classification_and_step_limits_match() {
    // Functions engineered to hit each UB class, checked under several step
    // limits so limit-exceeded errors trigger at identical points.
    let texts = [
        // Division by zero and signed overflow.
        "define i32 @div(i32 %x, i32 %y) {\n %r = sdiv i32 %x, %y\n ret i32 %r\n}",
        // Branch on poison.
        "define i32 @brp(i32 %x) {\n\
         %p = add nuw i32 %x, 1\n\
         %c = icmp eq i32 %p, 0\n\
         br i1 %c, label %a, label %b\n\
         a:\n  ret i32 1\n\
         b:\n  ret i32 2\n}",
        // Out-of-bounds store.
        "define void @oob(ptr %p) {\n\
         %q = getelementptr i32, ptr %p, i64 100\n\
         store i32 1, ptr %q, align 4\n\
         ret void\n}",
        // Unbounded-ish loop for step limits.
        "define i32 @spin(i32 %n) {\n\
         entry:\n  br label %h\n\
         h:\n  %i = phi i32 [ 0, %entry ], [ %j, %h ]\n\
             %j = add i32 %i, 1\n\
             %c = icmp ult i32 %j, %n\n\
             br i1 %c, label %h, label %x\n\
         x:\n  ret i32 %j\n}",
    ];
    let mut arena = EvalArena::new();
    for text in texts {
        let func = lpo_ir::parser::parse_function(text).unwrap();
        let compiled = CompiledFunction::compile(&func);
        for input in generate_inputs(&func, &input_config(7)) {
            for limit in [4, 64, STEP_LIMIT] {
                let fast =
                    compiled.evaluate_with_limit(&mut arena, &input.args, input.memory.clone(), limit);
                let slow = evaluate_reference(&func, &input.args, input.memory.clone(), limit);
                assert_eq!(fast, slow, "diverged on @{} at limit {limit}", func.name);
            }
        }
    }
}
