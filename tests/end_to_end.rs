//! Cross-crate integration tests: the complete workflow of Figure 2 from a
//! module, through extraction, the simulated LLM, `opt`, the interestingness
//! check, and the translation validator.

use lpo::prelude::*;
use lpo_extract::ExtractConfig;
use lpo_ir::parser::parse_module;
use lpo_llm::prelude::{gemini2_0t, gemma3, LanguageModel, SimulatedModel};
use lpo_mca::Target;

const MODULE: &str = "define i8 @clamp_like(i32 %x) {\n\
    %c = icmp slt i32 %x, 0\n\
    %m = call i32 @llvm.umin.i32(i32 %x, i32 255)\n\
    %t = trunc nuw i32 %m to i8\n\
    %s = select i1 %c, i8 0, i8 %t\n\
    ret i8 %s\n}\n\
    define i32 @boring(i32 %x, i32 %y) {\n\
    %a = mul i32 %x, %y\n\
    %b = add i32 %a, %y\n\
    ret i32 %b\n}";

#[test]
fn figure_2_workflow_end_to_end() {
    let module = parse_module(MODULE).unwrap();
    let lpo = Lpo::new(LpoConfig::default());
    let mut model = SimulatedModel::new(gemini2_0t(), 3);

    let mut found_any = false;
    for round in 0..8 {
        model.reset(round);
        let (results, summary) = lpo.run_corpus(&mut model, [&module], ExtractConfig::default());
        assert_eq!(results.len(), summary.cases);
        for (seq, report) in &results {
            if let CaseOutcome::Found { candidate } = &report.outcome {
                found_any = true;
                // Every reported find must be interesting and verified.
                assert!(is_interesting(&seq.function, candidate, Target::Btver2Like));
                assert!(lpo_tv::refine::verify_refinement(&seq.function, candidate).is_correct());
            }
        }
        if found_any {
            break;
        }
    }
    assert!(found_any, "the reasoning model should discover the clamp rewrite within a few rounds");
}

#[test]
fn weaker_models_find_no_more_than_stronger_ones() {
    let module = parse_module(MODULE).unwrap();
    let lpo = Lpo::new(LpoConfig::default());
    let mut weak_total = 0;
    let mut strong_total = 0;
    for round in 0..6 {
        let mut weak = SimulatedModel::new(gemma3(), 5);
        let mut strong = SimulatedModel::new(gemini2_0t(), 5);
        weak.reset(round);
        strong.reset(round);
        let (_, w) = lpo.run_corpus(&mut weak, [&module], ExtractConfig::default());
        let (_, s) = lpo.run_corpus(&mut strong, [&module], ExtractConfig::default());
        weak_total += w.found;
        strong_total += s.found;
    }
    assert!(weak_total <= strong_total);
}

#[test]
fn baselines_cannot_handle_the_intrinsic_clamp() {
    let module = parse_module(MODULE).unwrap();
    let clamp = &module.functions[0];
    let souper = lpo_souper::superoptimize(clamp, &lpo_souper::SouperConfig::with_enum(3));
    assert!(matches!(souper.outcome, lpo_souper::Outcome::Unsupported(_)));
    assert!(!lpo_minotaur::superoptimize(clamp).found());
}
