//! Cross-crate integration tests: the complete workflow of Figure 2 from a
//! module, through extraction, the simulated LLM, `opt`, the interestingness
//! check, and the translation validator — driven through the session-based
//! execution engine.

use lpo::prelude::*;
use lpo_extract::ExtractConfig;
use lpo_ir::parser::parse_module;
use lpo_llm::prelude::{gemini2_0t, gemma3, SimulatedModelFactory};
use lpo_mca::Target;

const MODULE: &str = "define i8 @clamp_like(i32 %x) {\n\
    %c = icmp slt i32 %x, 0\n\
    %m = call i32 @llvm.umin.i32(i32 %x, i32 255)\n\
    %t = trunc nuw i32 %m to i8\n\
    %s = select i1 %c, i8 0, i8 %t\n\
    ret i8 %s\n}\n\
    define i32 @boring(i32 %x, i32 %y) {\n\
    %a = mul i32 %x, %y\n\
    %b = add i32 %a, %y\n\
    ret i32 %b\n}";

#[test]
fn figure_2_workflow_end_to_end() {
    let module = parse_module(MODULE).unwrap();
    let lpo = Lpo::new(LpoConfig::default());
    let factory = SimulatedModelFactory::new(gemini2_0t(), 3);

    let mut found_any = false;
    for round in 0..8 {
        let (results, summary, stats) =
            lpo.run_corpus(&factory, round, [&module], ExtractConfig::default(), &ExecConfig::default());
        assert_eq!(results.len(), summary.cases);
        assert_eq!(stats.cases, summary.cases);
        for (seq, report) in &results {
            if let CaseOutcome::Found { candidate } = &report.outcome {
                found_any = true;
                // Every reported find must be interesting and verified.
                assert!(is_interesting(&seq.function, candidate, Target::Btver2Like));
                assert!(lpo_tv::refine::verify_refinement(&seq.function, candidate).is_correct());
            }
        }
        if found_any {
            break;
        }
    }
    assert!(found_any, "the reasoning model should discover the clamp rewrite within a few rounds");
}

#[test]
fn weaker_models_find_no_more_than_stronger_ones() {
    let module = parse_module(MODULE).unwrap();
    let lpo = Lpo::new(LpoConfig::default());
    let weak = SimulatedModelFactory::new(gemma3(), 5);
    let strong = SimulatedModelFactory::new(gemini2_0t(), 5);
    let mut weak_total = 0;
    let mut strong_total = 0;
    for round in 0..6 {
        let (_, w, _) =
            lpo.run_corpus(&weak, round, [&module], ExtractConfig::default(), &ExecConfig::serial());
        let (_, s, _) =
            lpo.run_corpus(&strong, round, [&module], ExtractConfig::default(), &ExecConfig::serial());
        weak_total += w.found;
        strong_total += s.found;
    }
    assert!(weak_total <= strong_total);
}

#[test]
fn baselines_cannot_handle_the_intrinsic_clamp() {
    let module = parse_module(MODULE).unwrap();
    let clamp = &module.functions[0];
    let souper = lpo_souper::superoptimize(clamp, &lpo_souper::SouperConfig::with_enum(3));
    assert!(matches!(souper.outcome, lpo_souper::Outcome::Unsupported(_)));
    assert!(!lpo_minotaur::superoptimize(clamp).found());
}
