//! Chaos and crash-recovery tests for the serving shell.
//!
//! The serving layer inherits the engine's failure model and must not
//! weaken it at the wire boundary:
//!
//! - **Containment over the socket** — with a [`FaultyModelFactory`]
//!   injecting seeded faults behind the server's factory boundary, cases
//!   the chaos never touched stream byte-identically to a fault-free run;
//!   faulted cases arrive as ordinary `failed` frames; the job's `done`
//!   frame arrives and the queue keeps serving afterwards.
//! - **Kill + restart resume** — a client that dies mid-job cancels the
//!   job but keeps its completed checkpoints; a server restarted on the
//!   same `--store` path (even with a torn tail from the kill) serves a
//!   `"resume": true` resubmission that converges to the uninterrupted
//!   fingerprints.
//!
//! Like `tests/fault_injection.rs`, every test walks a fixed chaos-seed
//! block and appends a rotating seed from `LPO_CHAOS_SEED` when set (the CI
//! chaos-smoke step derives it from the commit hash), so any failure is
//! replayable with `LPO_CHAOS_SEED=<seed> cargo test --test serve_chaos`.

use lpo::prelude::*;
use lpo_corpus::rq1_suite;
use lpo_ir::function::Function;
use lpo_llm::model::ModelFactory;
use lpo_llm::prelude::{gemini2_0t, FaultRates, FaultyModelFactory, SimulatedModelFactory};
use lpo_llm::profiles::ModelProfile;
use lpo_serve::json::Json;
use lpo_serve::prelude::{
    FactoryProvider, JobOutcome, ServeClient, ServeConfig, Server, SubmitOptions,
};
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// The acceptance fault rate, matching the engine-level chaos tests.
const CHAOS_RATE: f64 = 0.10;

fn suite() -> Vec<Function> {
    rq1_suite().into_iter().map(|case| case.function).collect()
}

fn reference() -> (Vec<String>, String) {
    let lpo = Lpo::new(LpoConfig::default());
    let factory = SimulatedModelFactory::new(gemini2_0t(), 42);
    let batch = lpo::exec::run_batch_persisted(
        &lpo,
        &factory,
        0,
        &suite(),
        &ExecConfig::with_jobs(2),
        None,
    );
    (batch.reports.iter().map(CaseReport::fingerprint).collect(), batch.summary.fingerprint())
}

/// The fixed chaos seeds plus (flagged `true`) the rotating `LPO_CHAOS_SEED`.
/// Injection-volume assertions only apply to the fixed block — a
/// commit-derived seed may legitimately draw few faults.
fn chaos_seeds() -> Vec<(u64, bool)> {
    let mut seeds =
        vec![(0x5e4e_5eed_0000_0001, false), (0x9e37_79b9_7f4a_7c15, false)];
    if let Some(rotating) = rotating_seed() {
        eprintln!("serve chaos: appending rotating seed LPO_CHAOS_SEED={rotating:#x}");
        seeds.push((rotating, true));
    }
    seeds
}

fn rotating_seed() -> Option<u64> {
    let raw = std::env::var("LPO_CHAOS_SEED").ok()?;
    let raw = raw.trim();
    let parsed = match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse(),
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("LPO_CHAOS_SEED must be a u64 (decimal or 0x hex), got {raw:?}"),
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lpo-serve-chaos-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    dir.join(format!("{tag}.log"))
}

/// Opens the scratch store, retrying briefly: after `Server::run` returns,
/// a connection thread may still be dropping its last `Arc` to the store,
/// and the lock is only released on the final drop.
fn open_store_retry(path: &Path) -> VerdictStore {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match VerdictStore::open(path) {
            Ok(store) => return store,
            Err(err) => {
                assert!(Instant::now() < deadline, "store stayed locked: {err:?}");
                thread::sleep(Duration::from_millis(25));
            }
        }
    }
}

fn clean(path: &Path) {
    let _ = fs::remove_file(path);
    let mut lock = path.as_os_str().to_os_string();
    lock.push(".lock");
    let _ = fs::remove_file(PathBuf::from(lock));
}

/// A provider that hands every job the same shared faulty factory, keeping a
/// test-side handle to its injected-fault ledger.
struct ChaosProvider {
    faulty: Arc<FaultyModelFactory<SimulatedModelFactory>>,
}

impl FactoryProvider for ChaosProvider {
    fn build(&self, _profile: ModelProfile, _seed: u64) -> Box<dyn ModelFactory> {
        Box::new(Arc::clone(&self.faulty))
    }
}

fn streamed(outcome: &JobOutcome, cases: usize) -> Vec<(String, String)> {
    let mut slots: Vec<Option<(String, String)>> = vec![None; cases];
    for frame in outcome.cases() {
        let index = frame.get("case").and_then(Json::as_num).expect("case index") as usize;
        let outcome_kind =
            frame.get("outcome").and_then(Json::as_str).expect("outcome").to_string();
        let fingerprint =
            frame.get("fingerprint").and_then(Json::as_str).expect("fingerprint").to_string();
        assert!(slots[index].is_none(), "case {index} streamed twice");
        slots[index] = Some((outcome_kind, fingerprint));
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(index, slot)| slot.unwrap_or_else(|| panic!("case {index} never streamed")))
        .collect()
}

#[test]
fn faulted_jobs_stream_contained_failures_and_never_wedge_the_queue() {
    let (expected, _) = reference();
    for (chaos_seed, rotating) in chaos_seeds() {
        let faulty = Arc::new(FaultyModelFactory::new(
            SimulatedModelFactory::new(gemini2_0t(), 42),
            FaultRates::uniform(CHAOS_RATE),
            chaos_seed,
        ));
        let store = Arc::new(VerdictStore::in_memory());
        let server = Server::bind_with_provider(
            "127.0.0.1:0",
            ServeConfig { jobs: 2, ..ServeConfig::default() },
            store,
            Box::new(ChaosProvider { faulty: Arc::clone(&faulty) }),
        )
        .expect("bind chaos server");
        let addr = server.local_addr().to_string();
        let handle = thread::spawn(move || server.run());
        let mut client = ServeClient::connect(&addr).expect("connect");

        let chaotic = client.submit(&SubmitOptions::corpus("rq1")).expect("chaotic submit");
        let faulted: BTreeSet<u64> = faulty
            .faulted_cases()
            .into_iter()
            .filter(|(round, _)| *round == 0)
            .map(|(_, case)| case)
            .collect();
        let cases = streamed(&chaotic, expected.len());
        let mut compared = 0usize;
        for (index, (outcome_kind, fingerprint)) in cases.iter().enumerate() {
            if faulted.contains(&(index as u64)) {
                continue;
            }
            compared += 1;
            assert_eq!(
                fingerprint,
                &expected[index],
                "unfaulted case {index} diverged over the wire (seed {chaos_seed:#x}, \
                 outcome {outcome_kind})"
            );
        }
        assert!(compared > 0, "every case faulted at rate {CHAOS_RATE} (seed {chaos_seed:#x})");
        if !rotating {
            assert!(
                faulty.injected().total() > 0,
                "fixed chaos seed {chaos_seed:#x} injected nothing; the chaos path is untested"
            );
        }

        // The queue must keep serving after a faulted job: the next job
        // completes end to end on the same connection and a fresh one.
        let again = client.submit(&SubmitOptions::corpus("rq1")).expect("submit after chaos");
        assert_eq!(again.cases().len(), expected.len());
        let mut second = ServeClient::connect(&addr).expect("second connection");
        let other = second.submit(&SubmitOptions::corpus("rq1")).expect("fresh-client submit");
        assert_eq!(other.cases().len(), expected.len());

        client.shutdown().expect("shutdown");
        handle.join().expect("server thread").expect("server run");
    }
}

#[test]
fn panic_storms_stream_as_failed_frames_and_the_done_frame_still_arrives() {
    // A panic-heavy storm (mirroring the engine-level chaos test): every
    // blast must surface as an ordinary `failed` case frame — the job's
    // `done` frame still arrives, and the next job serves cleanly.
    let faulty = Arc::new(FaultyModelFactory::new(
        SimulatedModelFactory::new(gemini2_0t(), 42),
        FaultRates { timeout: 0.05, garbage: 0.05, error: 0.05, panic: 0.30 },
        0xabad_5eed_0dd5_0c1a,
    ));
    let store = Arc::new(VerdictStore::in_memory());
    let server = Server::bind_with_provider(
        "127.0.0.1:0",
        ServeConfig { jobs: 2, ..ServeConfig::default() },
        store,
        Box::new(ChaosProvider { faulty: Arc::clone(&faulty) }),
    )
    .expect("bind storm server");
    let addr = server.local_addr().to_string();
    let handle = thread::spawn(move || server.run());
    let mut client = ServeClient::connect(&addr).expect("connect");

    let stormy = client.submit(&SubmitOptions::corpus("rq1")).expect("storm submit");
    assert!(faulty.injected().panics > 0, "a 0.3 panic rate must inject at least one panic");
    let failed_frames = stormy
        .cases()
        .iter()
        .filter(|f| f.get("outcome").and_then(Json::as_str) == Some("failed"))
        .count();
    assert!(failed_frames > 0, "injected panics must stream as failed case frames");
    let done_failed = stormy.done().get("failed").and_then(Json::as_num).expect("failed count");
    assert_eq!(failed_frames as f64, done_failed, "done frame disagrees with the stream");
    assert_eq!(stormy.cases().len(), suite().len(), "a panic dropped a case from the stream");

    // The storm must not wedge the queue: the next job completes in full.
    let next = client.submit(&SubmitOptions::corpus("rq1")).expect("submit after storm");
    assert_eq!(next.cases().len(), suite().len());

    client.shutdown().expect("shutdown");
    handle.join().expect("server thread").expect("server run");
}

#[test]
fn killed_job_resumes_on_a_restarted_server_with_a_torn_store_tail() {
    let (expected, expected_summary) = reference();
    let path = scratch("serve-kill-resume");
    clean(&path);
    let config = ServeConfig { jobs: 1, ..ServeConfig::default() };

    // Server 1: a client submits, reads a few streamed cases, then dies.
    {
        let store = Arc::new(open_store_retry(&path));
        let server = Server::bind("127.0.0.1:0", config.clone(), store).expect("bind server 1");
        let addr = server.local_addr().to_string();
        let handle = thread::spawn(move || server.run());

        {
            let mut victim = ServeClient::connect(&addr).expect("connect victim");
            victim.send_line(&SubmitOptions::corpus("rq1").request_line()).expect("submit");
            let accepted = victim.read_frame().expect("accepted");
            assert_eq!(accepted.get("kind").and_then(Json::as_str), Some("accepted"));
            for _ in 0..3 {
                let frame = victim.read_frame().expect("streamed case");
                assert_eq!(frame.get("kind").and_then(Json::as_str), Some("case"));
            }
            // Drop the connection mid-job: the watcher must cancel the rest.
        }

        // Wait for the server to settle the killed job, then stop it.
        let mut closer = ServeClient::connect(&addr).expect("connect closer");
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let stats = closer.stats().expect("stats");
            let settled = stats.get("jobs_completed").and_then(Json::as_num).unwrap_or(0.0)
                + stats.get("jobs_cancelled").and_then(Json::as_num).unwrap_or(0.0);
            if settled >= 1.0 {
                break;
            }
            assert!(Instant::now() < deadline, "killed job never settled");
            thread::sleep(Duration::from_millis(25));
        }
        closer.shutdown().expect("shutdown server 1");
        handle.join().expect("server 1 thread").expect("server 1 run");
    }

    // The kill could have torn the store's final write: chop a few bytes.
    // Wait for the last store handle to drop before touching the file.
    drop(open_store_retry(&path));
    let image = fs::read(&path).expect("read store image");
    assert!(!image.is_empty(), "the killed job checkpointed nothing");
    fs::write(&path, &image[..image.len().saturating_sub(3)]).expect("write torn image");

    // Server 2 on the same path: a resume resubmission must replay the
    // surviving checkpoints and converge to the uninterrupted fingerprints.
    {
        let store = Arc::new(open_store_retry(&path));
        let server = Server::bind("127.0.0.1:0", config, store).expect("bind server 2");
        let addr = server.local_addr().to_string();
        let handle = thread::spawn(move || server.run());
        let mut client = ServeClient::connect(&addr).expect("connect");

        let mut resume = SubmitOptions::corpus("rq1");
        resume.resume = true;
        let resumed = client.submit(&resume).expect("resume submit");
        let cases = streamed(&resumed, expected.len());
        for (index, (outcome_kind, fingerprint)) in cases.iter().enumerate() {
            assert_ne!(outcome_kind.as_str(), "failed", "case {index} failed after resume");
            assert_eq!(
                fingerprint,
                &expected[index],
                "case {index} diverged after kill + restart + torn-tail recovery"
            );
        }
        assert_eq!(
            resumed.done().get("summary").and_then(Json::as_str),
            Some(expected_summary.as_str()),
            "resumed summary diverged from the uninterrupted reference"
        );
        let replayed =
            resumed.done().get("resumed").and_then(Json::as_num).expect("resumed count");
        assert!(
            replayed > 0.0,
            "the restarted server replayed no checkpoints from the killed job"
        );
        let resumed_frames = resumed
            .cases()
            .iter()
            .filter(|f| f.get("resumed") == Some(&Json::Bool(true)))
            .count();
        assert_eq!(resumed_frames as f64, replayed, "resumed tags disagree with the counter");

        client.shutdown().expect("shutdown server 2");
        handle.join().expect("server 2 thread").expect("server 2 run");
    }
    clean(&path);
}
