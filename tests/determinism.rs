//! The execution engine's determinism contract: a run is bit-identical for
//! every worker count, and the dedup cache replays rather than recomputes.
//!
//! This is the `--jobs 1` vs `--jobs 4` acceptance check of the parallel
//! discovery engine: the per-case [`CaseReport`] stream and the aggregate
//! [`RunSummary`] must fingerprint identically (fingerprints cover every
//! deterministic field — outcome, candidate text, attempts, modeled time,
//! exact cost bits — and exclude only real wall-clock time).

use lpo::prelude::*;
use lpo_corpus::rq1_suite;
use lpo_ir::function::Function;
use lpo_llm::prelude::{gemini2_0t, llama3_3, SimulatedModelFactory};

/// The rq1 suite plus structural duplicates of a few of its cases, so the
/// dedup cache is exercised by the same run.
fn suite_with_duplicates() -> Vec<Function> {
    let mut sequences: Vec<Function> =
        rq1_suite().into_iter().map(|case| case.function).collect();
    let copies: Vec<Function> = sequences.iter().take(4).cloned().collect();
    sequences.extend(copies);
    sequences
}

fn fingerprints(batch: &BatchResult) -> (Vec<String>, String) {
    (batch.reports.iter().map(CaseReport::fingerprint).collect(), batch.summary.fingerprint())
}

#[test]
fn jobs_1_and_jobs_4_are_byte_identical_on_the_rq1_suite() {
    let sequences = suite_with_duplicates();
    let lpo = Lpo::new(LpoConfig::default());

    for (profile, seed) in [(gemini2_0t(), 42u64), (llama3_3(), 7u64)] {
        let factory = SimulatedModelFactory::new(profile, seed);
        for round in 0..2 {
            let serial = lpo.run_sequences(&factory, round, &sequences, &ExecConfig::with_jobs(1));
            let parallel = lpo.run_sequences(&factory, round, &sequences, &ExecConfig::with_jobs(4));

            let (serial_reports, serial_summary) = fingerprints(&serial);
            let (parallel_reports, parallel_summary) = fingerprints(&parallel);
            assert_eq!(serial_reports, parallel_reports, "per-case streams diverged (round {round})");
            assert_eq!(serial_summary, parallel_summary, "summaries diverged (round {round})");

            assert_eq!(serial.stats.jobs, 1);
            assert_eq!(parallel.stats.jobs, 4);
            assert_eq!(serial.stats.cache_hits, parallel.stats.cache_hits);
            assert_eq!(serial.stats.cache_hits, 4, "the 4 appended duplicates must replay");
            assert_eq!(serial.stats.unique_cases, sequences.len() - 4);
        }
    }
}

#[test]
fn dedup_replay_is_byte_identical_to_its_representative() {
    let sequences = suite_with_duplicates();
    let originals = sequences.len() - 4;
    let lpo = Lpo::new(LpoConfig::default());
    let factory = SimulatedModelFactory::new(gemini2_0t(), 42);
    let batch = lpo.run_sequences(&factory, 0, &sequences, &ExecConfig::default());
    for dup in 0..4 {
        assert_eq!(
            batch.reports[originals + dup].fingerprint(),
            batch.reports[dup].fingerprint(),
            "duplicate {dup} did not replay its first occurrence"
        );
    }
}
