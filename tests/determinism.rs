//! The execution engine's determinism contract: a run is bit-identical for
//! every worker count, and the dedup cache replays rather than recomputes.
//!
//! This is the `--jobs 1` vs `--jobs 4` acceptance check of the parallel
//! discovery engine: the per-case [`CaseReport`] stream and the aggregate
//! [`RunSummary`] must fingerprint identically (fingerprints cover every
//! deterministic field — outcome, candidate text, attempts, modeled time,
//! exact cost bits — and exclude only real wall-clock time).

use lpo::prelude::*;
use lpo_corpus::rq1_suite;
use lpo_ir::function::Function;
use lpo_llm::prelude::{gemini2_0t, llama3_3, SimulatedModelFactory};

/// The rq1 suite plus structural duplicates of a few of its cases, so the
/// dedup cache is exercised by the same run.
fn suite_with_duplicates() -> Vec<Function> {
    let mut sequences: Vec<Function> =
        rq1_suite().into_iter().map(|case| case.function).collect();
    let copies: Vec<Function> = sequences.iter().take(4).cloned().collect();
    sequences.extend(copies);
    sequences
}

fn fingerprints(batch: &BatchResult) -> (Vec<String>, String) {
    (batch.reports.iter().map(CaseReport::fingerprint).collect(), batch.summary.fingerprint())
}

#[test]
fn jobs_1_and_jobs_4_are_byte_identical_on_the_rq1_suite() {
    let sequences = suite_with_duplicates();
    let lpo = Lpo::new(LpoConfig::default());

    for (profile, seed) in [(gemini2_0t(), 42u64), (llama3_3(), 7u64)] {
        let factory = SimulatedModelFactory::new(profile, seed);
        for round in 0..2 {
            let serial = lpo.run_sequences(&factory, round, &sequences, &ExecConfig::with_jobs(1));
            let parallel = lpo.run_sequences(&factory, round, &sequences, &ExecConfig::with_jobs(4));

            let (serial_reports, serial_summary) = fingerprints(&serial);
            let (parallel_reports, parallel_summary) = fingerprints(&parallel);
            assert_eq!(serial_reports, parallel_reports, "per-case streams diverged (round {round})");
            assert_eq!(serial_summary, parallel_summary, "summaries diverged (round {round})");

            assert_eq!(serial.stats.jobs, 1);
            assert_eq!(parallel.stats.jobs, 4);
            assert_eq!(serial.stats.cache_hits, parallel.stats.cache_hits);
            assert_eq!(serial.stats.cache_hits, 4, "the 4 appended duplicates must replay");
            assert_eq!(serial.stats.unique_cases, sequences.len() - 4);
        }
    }
}

#[test]
fn shard_boundary_matrix_is_byte_identical() {
    // The sharded engine's contract: every (--shard-size, --jobs) cell —
    // including degenerate 1-input shards and ∞ (one shard per survivor) —
    // produces the same byte-identical run, and all of them match the
    // case-granular engine with sharding disabled.
    let sequences = suite_with_duplicates();
    let lpo = Lpo::new(LpoConfig::default());
    let factory = SimulatedModelFactory::new(gemini2_0t(), 42);

    let mut unsharded = ExecConfig::with_jobs(1);
    unsharded.shard_inputs = false;
    let reference = lpo.run_sequences(&factory, 0, &sequences, &unsharded);
    let (reference_reports, reference_summary) = fingerprints(&reference);

    for shard_size in [1usize, 7, 256, usize::MAX] {
        for jobs in [1usize, 4] {
            let mut config = ExecConfig::with_jobs(jobs);
            config.shard_size = shard_size;
            let batch = lpo.run_sequences(&factory, 0, &sequences, &config);
            let (reports, summary) = fingerprints(&batch);
            assert_eq!(
                reports, reference_reports,
                "per-case streams diverged (shard size {shard_size}, jobs {jobs})"
            );
            assert_eq!(
                summary, reference_summary,
                "summaries diverged (shard size {shard_size}, jobs {jobs})"
            );
        }
    }
}

#[test]
fn store_backed_matrix_is_byte_identical_to_the_storeless_reference() {
    use std::fs;
    use std::sync::Arc;

    // The verdict store is a pure memo: every (--jobs, --shard-size) cell
    // run against one shared store — cold on the first pass, fully warm on
    // the second — must fingerprint identically to a storeless serial run.
    let sequences = suite_with_duplicates();
    let factory = SimulatedModelFactory::new(gemini2_0t(), 42);
    let (reference_reports, reference_summary) = {
        let lpo = Lpo::new(LpoConfig::default());
        fingerprints(&lpo.run_sequences(&factory, 0, &sequences, &ExecConfig::with_jobs(1)))
    };

    let dir = std::env::temp_dir().join(format!("lpo-determinism-test-{}", std::process::id()));
    fs::create_dir_all(&dir).expect("create scratch dir");
    let path = dir.join("matrix.log");
    let mut lock = path.as_os_str().to_os_string();
    lock.push(".lock");
    let lock = std::path::PathBuf::from(lock);
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&lock);

    {
        let store = Arc::new(VerdictStore::open(&path).expect("open scratch store"));
        let lpo = Lpo::new(LpoConfig::default()).with_verdict_store(Arc::clone(&store));
        for pass in ["cold", "warm"] {
            for jobs in [1usize, 4] {
                for shard_size in [7usize, usize::MAX] {
                    let mut config = ExecConfig::with_jobs(jobs);
                    config.shard_size = shard_size;
                    let batch = lpo.run_sequences(&factory, 0, &sequences, &config);
                    let (reports, summary) = fingerprints(&batch);
                    assert_eq!(
                        reports, reference_reports,
                        "per-case streams diverged ({pass} store, jobs {jobs}, shard size {shard_size})"
                    );
                    assert_eq!(
                        summary, reference_summary,
                        "summaries diverged ({pass} store, jobs {jobs}, shard size {shard_size})"
                    );
                }
            }
        }
        assert!(store.stats().verdict_hits > 0, "warm passes must replay stored verdicts");
        assert!(store.warnings().is_empty(), "a clean store reported recovery warnings");
    }
    let _ = fs::remove_file(&path);
    let _ = fs::remove_file(&lock);
}

#[test]
fn cancellation_never_changes_the_reported_counterexample() {
    use lpo_ir::parser::parse_function;
    use lpo_tv::prelude::{EvalArena, SourceCache, TvConfig, Verdict};
    use std::sync::Arc;

    // A candidate wrong for *every* negative i8 input: with 4-input shards,
    // dozens of shards past the first refuting one also refute, and under 4
    // workers any of them can finish first and cut the group. The merge must
    // still report the first refuting input in input order — the same
    // counterexample the serial sweep finds.
    let src = parse_function("define i8 @s(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").unwrap();
    let wrong = parse_function(
        "define i8 @t(i8 %x) {\n\
         %c = icmp slt i8 %x, 0\n\
         %bad = add i8 %x, 2\n\
         %good = add i8 %x, 1\n\
         %r = select i1 %c, i8 %bad, i8 %good\n\
         ret i8 %r\n}",
    )
    .unwrap();

    fn cex_text(verdict: &Verdict) -> String {
        match verdict {
            Verdict::Incorrect(cex) => cex.to_string(),
            other => panic!("expected a refutation, got {other:?}"),
        }
    }

    let serial_case = SourceCache::new(&src, TvConfig::default());
    let expected = cex_text(&serial_case.verify_with(&wrong, &mut EvalArena::new()));

    for _ in 0..10 {
        let runtime = ShardRuntime::new(4, Arc::new(ShardCounters::new()));
        let driver = RuntimeSweepDriver::new(runtime.clone());
        let verdicts = runtime.run_cases(1, |_, arena| {
            let case = SourceCache::new(&src, TvConfig::default());
            cex_text(&case.verify_with_driver(&wrong, arena, &driver, 4))
        });
        assert_eq!(verdicts[0], expected, "a racing cut changed the reported counterexample");
    }
}

#[test]
fn dedup_replay_is_byte_identical_to_its_representative() {
    let sequences = suite_with_duplicates();
    let originals = sequences.len() - 4;
    let lpo = Lpo::new(LpoConfig::default());
    let factory = SimulatedModelFactory::new(gemini2_0t(), 42);
    let batch = lpo.run_sequences(&factory, 0, &sequences, &ExecConfig::default());
    for dup in 0..4 {
        assert_eq!(
            batch.reports[originals + dup].fingerprint(),
            batch.reports[dup].fingerprint(),
            "duplicate {dup} did not replay its first occurrence"
        );
    }
}
