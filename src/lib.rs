//! Umbrella package holding workspace-level examples and integration tests.
