//! Use the translation validator directly, the way Alive2 is used in §2.4:
//! prove the Figure 1 transformation correct and show the counterexample the
//! verifier produces for a wrong variant.
//!
//! ```text
//! cargo run --example verify_rewrite
//! ```

use lpo_ir::parser::parse_function;
use lpo_tv::prelude::*;

fn main() {
    let src = parse_function(
        "define i8 @src(i32 %0) {\n\
         %2 = icmp slt i32 %0, 0\n\
         %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
         %4 = trunc nuw i32 %3 to i8\n\
         %5 = select i1 %2, i8 0, i8 %4\n\
         ret i8 %5\n}",
    )
    .unwrap();
    let good = parse_function(
        "define i8 @tgt(i32 %0) {\n\
         %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
         %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
         %4 = trunc nuw i32 %3 to i8\n\
         ret i8 %4\n}",
    )
    .unwrap();
    let bad = parse_function(
        "define i8 @tgt(i32 %0) {\n\
         %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
         %4 = trunc i32 %3 to i8\n\
         ret i8 %4\n}",
    )
    .unwrap();

    match verify_refinement(&src, &good) {
        Verdict::Correct { inputs_checked, exhaustive } => println!(
            "smax/umin candidate verified on {inputs_checked} inputs (exhaustive: {exhaustive})"
        ),
        other => println!("unexpected verdict: {other:?}"),
    }

    match verify_refinement(&src, &bad) {
        Verdict::Incorrect(cex) => println!("\nwrong candidate rejected:\n{cex}"),
        other => println!("unexpected verdict: {other:?}"),
    }
}
