//! Quickstart: run the LPO loop on the paper's Figure 1 clamp function.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use lpo::prelude::*;
use lpo_ir::parser::parse_function;
use lpo_ir::printer::print_function;
use lpo_llm::prelude::{gemini2_0t, ModelFactory, SimulatedModelFactory};

fn main() {
    // The suboptimal instruction sequence of Figure 1b: x < 0 ? 0 : umin(x, 255).
    let source = parse_function(
        "define i8 @src(i32 %0) {\n\
         %2 = icmp slt i32 %0, 0\n\
         %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
         %4 = trunc nuw i32 %3 to i8\n\
         %5 = select i1 %2, i8 0, i8 %4\n\
         ret i8 %5\n}",
    )
    .expect("the example parses");

    println!("== original ==\n{}", print_function(&source));

    let lpo = Lpo::new(LpoConfig::default());
    // A simulated stand-in for gemini-2.0-flash-thinking (see DESIGN.md). The
    // factory is the shared description; each round gets its own session.
    let factory = SimulatedModelFactory::new(gemini2_0t(), 2024);

    for round in 0..5 {
        let mut session = factory.session(round, 0);
        let report = lpo.optimize_sequence(session.as_mut(), &source);
        match report.outcome {
            CaseOutcome::Found { candidate } => {
                println!(
                    "round {round}: found a verified missed optimization after {} attempt(s):\n{}",
                    report.attempts,
                    print_function(&candidate)
                );
                println!("model: {}, modeled time {:.1}s", factory.name(), report.modeled_time.as_secs_f64());
                return;
            }
            other => println!("round {round}: {other:?}"),
        }
    }
    println!("the model did not find the rewrite in 5 rounds — try another seed");
}
