//! Discover missed optimizations in a synthetic project corpus, end to end:
//! extraction (Algorithm 2) → parallel LLM proposals → verification
//! (Algorithm 1), on the session-based execution engine.
//!
//! ```text
//! cargo run --release --example discover_missed_optimizations
//! ```

use lpo::prelude::*;
use lpo_corpus::{generate_corpus, CorpusConfig};
use lpo_extract::ExtractConfig;
use lpo_llm::prelude::{o4_mini, SimulatedModelFactory};

fn main() {
    let corpus = generate_corpus(&CorpusConfig {
        modules_per_project: 2,
        functions_per_module: 3,
        pattern_rate: 0.7,
        ..Default::default()
    });
    println!("generated {} projects", corpus.len());

    let lpo = Lpo::new(LpoConfig::default());
    let factory = SimulatedModelFactory::new(o4_mini(), 7);
    // All cores; the engine is bit-identical for any worker count.
    let exec = ExecConfig::default();
    let mut found = 0usize;
    let mut processed = 0usize;
    let mut cache_hits = 0usize;
    let mut workers = 0usize;
    let mut total_cost = 0.0f64;

    for project in &corpus {
        let (results, summary, stats) =
            lpo.run_corpus(&factory, 0, project.modules.iter(), ExtractConfig::default(), &exec);
        processed += summary.cases;
        cache_hits += stats.cache_hits;
        workers = workers.max(stats.jobs);
        total_cost += summary.total_cost_usd;
        for (seq, report) in results {
            if let CaseOutcome::Found { candidate } = report.outcome {
                found += 1;
                println!(
                    "[{}] {}::{} — {} instructions -> {}",
                    project.name,
                    seq.source_module,
                    seq.source_function,
                    seq.function.instruction_count(),
                    candidate.instruction_count()
                );
            }
        }
    }
    println!("\nprocessed {processed} unique sequences, found {found} potential missed optimizations");
    println!("engine: up to {workers} worker(s) per batch, {cache_hits} dedup cache hit(s)");
    println!("total modeled LLM cost so far: ${total_cost:.4}");
}
