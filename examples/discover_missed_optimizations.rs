//! Discover missed optimizations in a synthetic project corpus, end to end:
//! extraction (Algorithm 2) → LLM proposals → verification (Algorithm 1).
//!
//! ```text
//! cargo run --release --example discover_missed_optimizations
//! ```

use lpo::prelude::*;
use lpo_corpus::{generate_corpus, CorpusConfig};
use lpo_extract::ExtractConfig;
use lpo_llm::prelude::{o4_mini, SimulatedModel};

fn main() {
    let corpus = generate_corpus(&CorpusConfig {
        modules_per_project: 2,
        functions_per_module: 3,
        pattern_rate: 0.7,
        ..Default::default()
    });
    println!("generated {} projects", corpus.len());

    let lpo = Lpo::new(LpoConfig::default());
    let mut model = SimulatedModel::new(o4_mini(), 7);
    let mut found = 0usize;
    let mut processed = 0usize;

    for project in &corpus {
        let (results, summary) =
            lpo.run_corpus(&mut model, project.modules.iter(), ExtractConfig::default());
        processed += summary.cases;
        for (seq, report) in results {
            if let CaseOutcome::Found { candidate } = report.outcome {
                found += 1;
                println!(
                    "[{}] {}::{} — {} instructions -> {}",
                    project.name,
                    seq.source_module,
                    seq.source_function,
                    seq.function.instruction_count(),
                    candidate.instruction_count()
                );
            }
        }
    }
    println!("\nprocessed {processed} unique sequences, found {found} potential missed optimizations");
    println!("total modeled LLM cost so far: ${:.4}", model.total_cost_usd());
}
