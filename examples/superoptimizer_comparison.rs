//! Compare LPO with the Souper and Minotaur baselines on a few benchmark
//! cases, mirroring the RQ1 comparison of the paper.
//!
//! ```text
//! cargo run --release --example superoptimizer_comparison
//! ```

use lpo::prelude::*;
use lpo_corpus::rq1_suite;
use lpo_llm::prelude::{gemini2_0t, ModelFactory, SimulatedModelFactory};
use lpo_souper::{superoptimize, SouperConfig};

fn main() {
    let lpo = Lpo::new(LpoConfig::default());
    println!("{:<10} {:<22} {:>6} {:>8} {:>9}", "Issue", "Family", "LPO", "Souper", "Minotaur");
    for case in rq1_suite().iter().take(10) {
        let factory = SimulatedModelFactory::new(gemini2_0t(), 11);
        let lpo_found = (0..3).any(|round| {
            let mut session = factory.session(round, 0);
            lpo.optimize_sequence(session.as_mut(), &case.function).outcome.is_found()
        });
        let mut config = SouperConfig::with_enum(2);
        config.candidate_budget = 1200;
        let souper_found = superoptimize(&case.function, &config).found();
        let minotaur_found = lpo_minotaur::superoptimize(&case.function).found();
        println!(
            "{:<10} {:<22} {:>6} {:>8} {:>9}",
            case.issue_id,
            case.family,
            if lpo_found { "yes" } else { "-" },
            if souper_found { "yes" } else { "-" },
            if minotaur_found { "yes" } else { "-" },
        );
    }
}
