//! Offline drop-in shim for the subset of the [`rand`] 0.8 API this
//! workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range`, and `gen_bool`.
//!
//! The build environment has no network access to crates.io, so the real
//! crate cannot be fetched; this shim keeps the dependency surface identical
//! (`use rand::{Rng, SeedableRng}` etc.) while providing a small, fully
//! deterministic generator. The engine is xoshiro256++ seeded via SplitMix64
//! — statistically solid for test-input generation and corpus synthesis,
//! though not the ChaCha12 stream the real `StdRng` uses, so absolute seed →
//! value mappings differ from upstream `rand`. Everything in the workspace
//! treats seeds as opaque reproducibility handles, which is exactly the
//! property this shim preserves.
//!
//! [`rand`]: https://docs.rs/rand/0.8

use core::ops::Range;

/// A seedable random number generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// The user-facing generator trait, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a uniform value of type `T` (standard distribution).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open, `low..high`).
    ///
    /// Panics if the range is empty, like the real `rand`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Types samplable from the "standard" distribution (full value range for
/// integers, `[0, 1)` for floats).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1), the standard conversion.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "cannot sample empty range {}..{}",
                    range.start,
                    range.end
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire, without the
                // rejection step); bias is < 2^-64 per draw.
                let hi = ((u128::from(rng.next_u64()) * span) >> 64) as i128;
                (range.start as i128 + hi) as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Expand the seed with SplitMix64, as upstream `rand` does.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(xs, (0..16).map(|_| c.gen()).collect::<Vec<u64>>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v: u8 = rng.gen_range(0..10);
            assert!(v < 10);
            let w = rng.gen_range(2usize..200);
            assert!((2..200).contains(&w));
            let s = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!((0..1000).all(|_| !rng.gen_bool(0.0)));
        assert!((0..1000).all(|_| rng.gen_bool(1.0)));
    }
}
