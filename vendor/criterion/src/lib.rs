//! Offline drop-in shim for the subset of the [`criterion`] API this
//! workspace's benches use: [`Criterion`] with `bench_function` plus the
//! `sample_size` / `measurement_time` / `warm_up_time` builders, [`Bencher`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! The build environment has no network access to crates.io, so the real
//! harness cannot be fetched. This shim runs each benchmark long enough to
//! meet the configured measurement time (or sample count), then reports the
//! mean and min/max per-iteration wall time. It has no statistical analysis,
//! plots, or baseline comparison — it exists so `cargo bench` compiles, runs,
//! and prints honest timings, and can be swapped for the real crate without
//! touching bench code once network access is available.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark harness, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Sets the wall-time budget for the measurement phase.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the wall-time budget for the warm-up phase.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark and prints its per-iteration timing.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            let mut b = Bencher::default();
            f(&mut b);
        }

        // Measurement: one `Bencher::iter` run per sample.
        let mut samples = Vec::with_capacity(self.sample_size);
        let run_start = Instant::now();
        for _ in 0..self.sample_size {
            let mut b = Bencher::default();
            f(&mut b);
            if let Some(per_iter) = b.per_iter() {
                samples.push(per_iter);
            }
            if run_start.elapsed() > self.measurement_time {
                break;
            }
        }

        if samples.is_empty() {
            println!("{name:<28} no samples collected");
            return self;
        }
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        let max = samples.iter().max().copied().unwrap_or_default();
        println!(
            "{name:<28} time: [{} {} {}]  ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            samples.len()
        );
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Timer handle passed to each benchmark closure, mirroring `criterion::Bencher`.
#[derive(Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // A small fixed batch keeps per-call timer overhead negligible while
        // staying cheap enough for the slowest workspace benches.
        const BATCH: u64 = 8;
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }

    fn per_iter(&self) -> Option<Duration> {
        (self.iters > 0).then(|| self.elapsed / self.iters as u32)
    }
}

/// Declares a benchmark group, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench entry point, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    fn noop_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    criterion_group! {
        name = test_group;
        config = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(10));
        targets = noop_bench
    }

    #[test]
    fn group_macro_expands_and_runs() {
        test_group();
    }
}
