//! # lpo-corpus
//!
//! Benchmark data for the LPO reproduction: the curated RQ1 (25 cases) and
//! RQ2 (62 cases) issue suites keyed by the paper's LLVM issue numbers, and a
//! synthetic stand-in for the LLVM Opt Benchmark corpus (14 projects) plus the
//! SPEC-like module set used by the Figure 5 experiment.
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

pub mod cases;
pub mod synth;

pub use cases::{family_source, rq1_suite, rq2_suite, strategy_for_family, IssueCase, Status};
pub use synth::{
    generate_corpus, generate_project, spec_benchmarks, CorpusConfig, Project, PROJECT_NAMES,
    SPEC_BENCHMARKS,
};
