//! The curated benchmark suites: the 25 previously-reported missed
//! optimizations of RQ1 (Table 2) and the 62 newly-found ones of RQ2 (Table 3).
//!
//! Each case is keyed by the LLVM issue number the paper reports and carries
//! the *family* of rewrite it embodies. The concrete IR is generated from a
//! per-family template with small per-case parameter variations (bit widths
//! and constants), so every case is structurally distinct while staying in its
//! family. The family determines which tools can, in principle, detect the
//! optimization: Souper cannot handle memory/FP/vector/intrinsic families,
//! Minotaur only knows its few SIMD/mask templates, and the simulated LLMs
//! know a family iff it is in `lpo-llm`'s strategy library.

use lpo_ir::function::Function;
use lpo_ir::parser::parse_function;

/// The report status of a found missed optimization (Table 3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Status {
    /// Reported by LPO and confirmed by maintainers.
    Confirmed,
    /// Reported and already fixed in LLVM.
    Fixed,
    /// Reported, not yet triaged.
    Unconfirmed,
    /// Closed as a duplicate of another report.
    Duplicate,
    /// Closed as "won't fix".
    Wontfix,
    /// An RQ1 case: reported by someone else before LPO existed.
    PreviouslyReported,
}

impl Status {
    /// The label used in Table 3.
    pub fn label(self) -> &'static str {
        match self {
            Status::Confirmed => "Confirmed",
            Status::Fixed => "Fixed",
            Status::Unconfirmed => "Unconfirmed",
            Status::Duplicate => "Duplicate",
            Status::Wontfix => "Wontfix",
            Status::PreviouslyReported => "Reported",
        }
    }
}

/// One benchmark case.
#[derive(Clone, Debug)]
pub struct IssueCase {
    /// The LLVM issue number, as listed in the paper's tables.
    pub issue_id: u32,
    /// The report status.
    pub status: Status,
    /// The rewrite family (strategy name, or `"unknown"` for the cases no tool finds).
    pub family: &'static str,
    /// The suboptimal function.
    pub function: Function,
}

impl IssueCase {
    fn new(issue_id: u32, status: Status, family: &'static str, text: String) -> Self {
        let function = parse_function(&text)
            .unwrap_or_else(|e| panic!("case {issue_id} ({family}) does not parse: {e}\n{text}"));
        Self { issue_id, status, family, function }
    }
}

// ---------------------------------------------------------------------------
// Family templates. `v` is a small per-case variation index.
// ---------------------------------------------------------------------------

fn clamp_select(v: u32) -> String {
    let hi = [255u32, 127, 63, 1023, 4095, 2047, 511][v as usize % 7];
    let (wide, narrow) = if hi > 255 { ("i32", "i16") } else { ("i32", "i8") };
    format!(
        "define {narrow} @src({wide} %x) {{\n\
         %c = icmp slt {wide} %x, 0\n\
         %m = call {wide} @llvm.umin.{wide}({wide} %x, {wide} {hi})\n\
         %t = trunc nuw {wide} %m to {narrow}\n\
         %s = select i1 %c, {narrow} 0, {narrow} %t\n\
         ret {narrow} %s\n}}"
    )
}

fn vector_clamp(v: u32) -> String {
    let hi = [255u32, 127, 63, 31][v as usize % 4];
    format!(
        "define <4 x i8> @src(<4 x i32> %x) {{\n\
         %c = icmp slt <4 x i32> %x, zeroinitializer\n\
         %m = call <4 x i32> @llvm.umin.v4i32(<4 x i32> %x, <4 x i32> splat (i32 {hi}))\n\
         %t = trunc nuw <4 x i32> %m to <4 x i8>\n\
         %s = select <4 x i1> %c, <4 x i8> zeroinitializer, <4 x i8> %t\n\
         ret <4 x i8> %s\n}}"
    )
}

fn load_merge(v: u32) -> String {
    // Three structurally distinct variants: two ways of addressing the high
    // half (i8 index 2 vs. i16 index 1) and one with the `or` operands swapped.
    let (elem, idx, or_operands) = [
        ("i8", 2u32, "%sh, %lz"),
        ("i16", 1, "%sh, %lz"),
        ("i8", 2, "%lz, %sh"),
    ][v as usize % 3];
    format!(
        "define i32 @src(ptr %p) {{\n\
         %lo = load i16, ptr %p, align 2\n\
         %gep = getelementptr {elem}, ptr %p, i64 {idx}\n\
         %hi = load i16, ptr %gep, align 1\n\
         %hz = zext i16 %hi to i32\n\
         %sh = shl nuw i32 %hz, 16\n\
         %lz = zext i16 %lo to i32\n\
         %or = or disjoint i32 {or_operands}\n\
         ret i32 %or\n}}"
    )
}

fn redundant_umax(v: u32) -> String {
    let (c1, c3) = [(1u32, 16u32), (2, 32), (1, 8)][v as usize % 3];
    format!(
        "define i8 @src(i8 %x) {{\n\
         %a = call i8 @llvm.umax.i8(i8 %x, i8 {c1})\n\
         %b = shl nuw i8 %a, 1\n\
         %c = call i8 @llvm.umax.i8(i8 %b, i8 {c3})\n\
         ret i8 %c\n}}"
    )
}

fn fcmp_ord_select(v: u32) -> String {
    let c = [1.0f64, 2.5, 4.0][v as usize % 3];
    format!(
        "define i1 @src(double %x) {{\n\
         %ord = fcmp ord double %x, 0.000000e+00\n\
         %sel = select i1 %ord, double %x, double 0.000000e+00\n\
         %cmp = fcmp oeq double %sel, {c:e}\n\
         ret i1 %cmp\n}}"
    )
}

fn icmp_of_xor(v: u32) -> String {
    let (w, c1, c2) = [("i8", 12u32, 5u32), ("i32", 1024, 7), ("i16", 96, 33)][v as usize % 3];
    format!(
        "define i1 @src({w} %x) {{\n\
         %a = xor {w} %x, {c1}\n\
         %c = icmp eq {w} %a, {c2}\n\
         ret i1 %c\n}}"
    )
}

fn icmp_of_neg(v: u32) -> String {
    let w = ["i32", "i64", "i16", "i8"][v as usize % 4];
    format!(
        "define i1 @src({w} %x) {{\n\
         %n = sub {w} 0, %x\n\
         %c = icmp eq {w} %n, 0\n\
         ret i1 %c\n}}"
    )
}

fn umin_of_zext(v: u32) -> String {
    let (narrow, bound) = [("i16", 70000u64), ("i8", 300), ("i16", 65535)][v as usize % 3];
    format!(
        "define i32 @src({narrow} %x) {{\n\
         %z = zext {narrow} %x to i32\n\
         %m = call i32 @llvm.umin.i32(i32 %z, i32 {bound})\n\
         %a = add i32 %m, 1\n\
         ret i32 %a\n}}"
    )
}

fn low_bit_test(v: u32) -> String {
    let w = ["i32", "i64", "i16"][v as usize % 3];
    format!(
        "define i1 @src({w} %x) {{\n\
         %a = and {w} %x, 1\n\
         %c = icmp ne {w} %a, 0\n\
         ret i1 %c\n}}"
    )
}

fn not_of_icmp(v: u32) -> String {
    let (w, pred) = [("i32", "ult"), ("i16", "slt"), ("i64", "ugt")][v as usize % 3];
    format!(
        "define i1 @src({w} %x, {w} %y) {{\n\
         %c = icmp {pred} {w} %x, %y\n\
         %n = xor i1 %c, true\n\
         ret i1 %n\n}}"
    )
}

fn usub_sat_compare(v: u32) -> String {
    let (w, c) = [("i8", 10u32), ("i16", 100), ("i32", 77)][v as usize % 3];
    format!(
        "define i1 @src({w} %x) {{\n\
         %s = call {w} @llvm.usub.sat.{w}({w} %x, {w} {c})\n\
         %c = icmp eq {w} %s, 0\n\
         ret i1 %c\n}}"
    )
}

fn umin_eq_bound(v: u32) -> String {
    let (w, c) = [("i8", 10u32), ("i32", 255), ("i16", 500)][v as usize % 3];
    format!(
        "define i1 @src({w} %x) {{\n\
         %m = call {w} @llvm.umin.{w}({w} %x, {w} {c})\n\
         %c = icmp eq {w} %m, {c}\n\
         ret i1 %c\n}}"
    )
}

fn shl_lshr_mask(v: u32) -> String {
    let (w, c) = [("i32", 8u32), ("i64", 16), ("i16", 4), ("i8", 3)][v as usize % 4];
    format!(
        "define {w} @src({w} %x) {{\n\
         %a = shl {w} %x, {c}\n\
         %b = lshr {w} %a, {c}\n\
         ret {w} %b\n}}"
    )
}

fn exact_div_mul(v: u32) -> String {
    let (w, c) = [("i32", 6u32), ("i64", 12), ("i16", 10)][v as usize % 3];
    format!(
        "define {w} @src({w} %x) {{\n\
         %d = udiv exact {w} %x, {c}\n\
         %m = mul {w} %d, {c}\n\
         ret {w} %m\n}}"
    )
}

fn or_complementary_masks(v: u32) -> String {
    let (w, lo, hi) = [
        ("i8", 15i64, -16i64),
        ("i32", 255, -256),
        ("i16", 4095, -4096),
        ("i64", 65535, -65536),
    ][v as usize % 4];
    format!(
        "define {w} @src({w} %x) {{\n\
         %a = and {w} %x, {lo}\n\
         %b = and {w} %x, {hi}\n\
         %o = or {w} %a, %b\n\
         ret {w} %o\n}}"
    )
}

fn redundant_zero_select(v: u32) -> String {
    let w = ["i32", "i64", "i8"][v as usize % 3];
    format!(
        "define {w} @src({w} %x) {{\n\
         %c = icmp eq {w} %x, 0\n\
         %s = select i1 %c, {w} 0, {w} %x\n\
         ret {w} %s\n}}"
    )
}

fn narrow_sign_check(v: u32) -> String {
    let (narrow, wide) = [("i16", "i64"), ("i8", "i32"), ("i32", "i64"), ("i16", "i32")][v as usize % 4];
    format!(
        "define i1 @src({narrow} %x) {{\n\
         %s = sext {narrow} %x to {wide}\n\
         %c = icmp slt {wide} %s, 0\n\
         ret i1 %c\n}}"
    )
}

fn neg_via_not(v: u32) -> String {
    let w = ["i32", "i16", "i64", "i8"][v as usize % 4];
    format!(
        "define {w} @src({w} %x) {{\n\
         %n = xor {w} %x, -1\n\
         %a = add {w} %n, 1\n\
         ret {w} %a\n}}"
    )
}

fn abs_of_abs(v: u32) -> String {
    let w = ["i32", "i16"][v as usize % 2];
    format!(
        "define {w} @src({w} %x) {{\n\
         %a = call {w} @llvm.abs.{w}({w} %x, i1 false)\n\
         %b = call {w} @llvm.abs.{w}({w} %a, i1 false)\n\
         ret {w} %b\n}}"
    )
}

fn sat_add_compare(v: u32) -> String {
    let (w, c) = [("i8", 10u32), ("i16", 1000)][v as usize % 2];
    format!(
        "define i1 @src({w} %x) {{\n\
         %s = call {w} @llvm.uadd.sat.{w}({w} %x, {w} {c})\n\
         %c = icmp ult {w} %s, {c}\n\
         ret i1 %c\n}}"
    )
}

fn shuffle_identity(v: u32) -> String {
    let elem = ["i32", "i8"][v as usize % 2];
    format!(
        "define <4 x {elem}> @src(<4 x {elem}> %v, <4 x {elem}> %w) {{\n\
         %s = shufflevector <4 x {elem}> %v, <4 x {elem}> %w, <4 x i32> <i32 0, i32 1, i32 2, i32 3>\n\
         %a = add <4 x {elem}> %s, %w\n\
         ret <4 x {elem}> %a\n}}"
    )
}

fn select_to_abs(v: u32) -> String {
    let w = ["i32", "i16"][v as usize % 2];
    format!(
        "define {w} @src({w} %x) {{\n\
         %c = icmp sgt {w} %x, -1\n\
         %n = sub {w} 0, %x\n\
         %s = select i1 %c, {w} %x, {w} %n\n\
         ret {w} %s\n}}"
    )
}

fn fcmp_uno_or(v: u32) -> String {
    let c = [5.0f64, 1.5][v as usize % 2];
    format!(
        "define i1 @src(double %x) {{\n\
         %nan = fcmp uno double %x, 0.000000e+00\n\
         %lt = fcmp olt double %x, {c:e}\n\
         %r = or i1 %nan, %lt\n\
         ret i1 %r\n}}"
    )
}

/// A pattern no tool in the study can improve: a hand-rolled widening multiply
/// plus mixing. These model the Table 2 rows where every column is empty.
fn unknown_hard(v: u32) -> String {
    let c = [0x9e37u32, 0x85eb, 0xc2b2][v as usize % 3];
    format!(
        "define i32 @src(i32 %x, i32 %y) {{\n\
         %a = mul i32 %x, {c}\n\
         %b = lshr i32 %a, 15\n\
         %c = xor i32 %b, %y\n\
         %d = mul i32 %c, {c}\n\
         %e = lshr i32 %d, 13\n\
         %f = xor i32 %e, %c\n\
         ret i32 %f\n}}"
    )
}

/// Builds the IR text of one case from its family and variation index.
pub fn family_source(family: &str, variation: u32) -> String {
    match family {
        "patch-143636" => clamp_select(variation),
        "vector-clamp" => vector_clamp(variation),
        "patch-128134" => load_merge(variation),
        "patch-142674" => redundant_umax(variation),
        "patch-133367" => fcmp_ord_select(variation),
        "patch-142711" => icmp_of_xor(variation),
        "patch-143211" => icmp_of_neg(variation),
        "patch-154238" => umin_of_zext(variation),
        "patch-157315" => low_bit_test(variation),
        "patch-157370" => not_of_icmp(variation),
        "patch-157371-1" => usub_sat_compare(variation),
        "patch-157371-2" => umin_eq_bound(variation),
        "patch-157524" => shl_lshr_mask(variation),
        "patch-163108-1" => exact_div_mul(variation),
        "patch-163108-2" => or_complementary_masks(variation),
        "patch-166973" => redundant_zero_select(variation),
        "narrow-sign-check" => narrow_sign_check(variation),
        "neg-via-not" => neg_via_not(variation),
        "abs-of-abs" => abs_of_abs(variation),
        "sat-add-compare" => sat_add_compare(variation),
        "shuffle-identity" => shuffle_identity(variation),
        "select-to-abs" => select_to_abs(variation),
        "fcmp-uno-or" => fcmp_uno_or(variation),
        "unknown" => unknown_hard(variation),
        other => panic!("unknown case family '{other}'"),
    }
}

/// The strategy name the simulated LLMs need in order to solve a family
/// (`None` for families outside the strategy library).
pub fn strategy_for_family(family: &str) -> Option<&'static str> {
    match family {
        "vector-clamp" => Some("patch-143636"),
        "unknown" => None,
        other => lpo_llm_strategy_name(other),
    }
}

fn lpo_llm_strategy_name(family: &str) -> Option<&'static str> {
    // Families are named after their strategies except the synonyms above.
    const KNOWN: [&str; 22] = [
        "patch-128134", "patch-133367", "patch-142674", "patch-142711", "patch-143211",
        "patch-143636", "patch-154238", "patch-157315", "patch-157370", "patch-157371-1",
        "patch-157371-2", "patch-157524", "patch-163108-1", "patch-163108-2", "patch-166973",
        "narrow-sign-check", "neg-via-not", "abs-of-abs", "sat-add-compare", "shuffle-identity",
        "fcmp-uno-or", "select-to-abs",
    ];
    KNOWN.iter().find(|k| **k == family).copied()
}

/// The RQ1 suite: 25 previously reported missed optimizations (Table 2).
pub fn rq1_suite() -> Vec<IssueCase> {
    use Status::PreviouslyReported as R;
    let spec: [(u32, &str, u32); 25] = [
        (104875, "patch-143636", 0),
        (107228, "narrow-sign-check", 0),
        (108451, "patch-143211", 0),
        (108559, "neg-via-not", 0),
        (110591, "patch-142711", 0),
        (115466, "patch-166973", 0),
        (118155, "patch-143211", 1),
        (122235, "neg-via-not", 1),
        (122388, "patch-157371-1", 0),
        (126056, "patch-163108-2", 0),
        (128475, "patch-154238", 0),
        (128778, "patch-163108-1", 0),
        (129947, "fcmp-uno-or", 0),
        (131444, "unknown", 0),
        (131824, "shuffle-identity", 0),
        (132508, "narrow-sign-check", 1),
        (134318, "unknown", 1),
        (135411, "patch-143211", 2),
        (137161, "select-to-abs", 0),
        (141479, "neg-via-not", 2),
        (141753, "patch-142674", 0),
        (141930, "patch-166973", 1),
        (142497, "patch-133367", 0),
        (142593, "narrow-sign-check", 2),
        (143259, "unknown", 2),
    ];
    spec.iter()
        .map(|(id, family, v)| IssueCase::new(*id, R, family, family_source(family, *v)))
        .collect()
}

/// The RQ2 suite: the 62 missed optimizations found by LPO (Table 3), with
/// their report status.
pub fn rq2_suite() -> Vec<IssueCase> {
    use Status::*;
    let spec: [(u32, Status, &str, u32); 62] = [
        (128134, Fixed, "patch-128134", 0),
        (128460, Confirmed, "patch-143636", 1),
        (130954, Wontfix, "shl-lshr-wontfix", 3),
        (132628, Wontfix, "sat-add-compare", 0),
        (133367, Fixed, "patch-133367", 1),
        (139641, Confirmed, "patch-142711", 1),
        (139786, Confirmed, "vector-clamp", 0),
        (142674, Fixed, "patch-142674", 1),
        (142711, Fixed, "patch-142711", 2),
        (143030, Unconfirmed, "unknown", 0),
        (143211, Fixed, "patch-143211", 3),
        (143630, Unconfirmed, "neg-via-not", 3),
        (143636, Fixed, "patch-143636", 2),
        (143649, Unconfirmed, "abs-of-abs", 0),
        (143957, Confirmed, "patch-157371-1", 1),
        (144020, Confirmed, "patch-157370", 0),
        (152237, Confirmed, "patch-163108-2", 1),
        (152788, Unconfirmed, "narrow-sign-check", 3),
        (152797, Confirmed, "patch-154238", 1),
        (152804, Confirmed, "patch-163108-2", 2),
        (153991, Confirmed, "patch-143636", 3),
        (153999, Duplicate, "patch-143636", 4),
        (154000, Duplicate, "patch-157370", 1),
        (154025, Unconfirmed, "patch-143211", 1),
        (154035, Unconfirmed, "select-to-abs", 1),
        (154238, Fixed, "patch-154238", 2),
        (154242, Confirmed, "patch-157315", 0),
        (154246, Confirmed, "fcmp-uno-or", 1),
        (154258, Unconfirmed, "patch-157370", 2),
        (157315, Fixed, "patch-157315", 1),
        (157370, Fixed, "patch-157524", 0),
        (157371, Fixed, "patch-157371-2", 1),
        (157372, Duplicate, "patch-157371-2", 2),
        (157486, Confirmed, "vector-clamp", 1),
        (157524, Fixed, "patch-157524", 1),
        (163084, Confirmed, "neg-via-not", 0),
        (163093, Unconfirmed, "unknown", 1),
        (163108, Fixed, "patch-163108-1", 1),
        (163109, Confirmed, "patch-163108-2", 0),
        (163110, Confirmed, "patch-166973", 2),
        (163112, Confirmed, "patch-142674", 2),
        (163115, Confirmed, "redundant-load-wontfix", 2),
        (166878, Confirmed, "vector-clamp", 2),
        (166885, Confirmed, "patch-128134", 1),
        (166887, Unconfirmed, "patch-142711", 0),
        (166890, Unconfirmed, "narrow-sign-check", 0),
        (166973, Fixed, "patch-166973", 0),
        (167003, Confirmed, "patch-143211", 2),
        (167014, Confirmed, "sat-add-compare", 1),
        (167055, Confirmed, "patch-133367", 2),
        (167059, Unconfirmed, "unknown", 2),
        (167079, Unconfirmed, "abs-of-abs", 1),
        (167090, Unconfirmed, "patch-157315", 2),
        (167094, Duplicate, "shuffle-identity", 0),
        (167096, Confirmed, "patch-143636", 5),
        (167173, Confirmed, "shuffle-identity", 1),
        (167178, Unconfirmed, "umax-chain-wontfix", 0),
        (167183, Confirmed, "patch-163108-1", 2),
        (167190, Confirmed, "patch-157371-1", 2),
        (167199, Wontfix, "fcmp-uno-or", 0),
        (170020, Confirmed, "patch-157524", 2),
        (170071, Confirmed, "vector-clamp", 3),
    ];
    spec.iter()
        .map(|(id, status, family, v)| {
            // Families ending in `-wontfix` are real suboptimal patterns that
            // maintainers decided not to handle; they reuse existing templates.
            let template = match *family {
                "shl-lshr-wontfix" => "patch-157524",
                "redundant-load-wontfix" => "patch-128134",
                "umax-chain-wontfix" => "patch-142674",
                other => other,
            };
            IssueCase::new(*id, *status, family, family_source(template, *v))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::hash::hash_function;
    use std::collections::HashSet;

    #[test]
    fn rq1_suite_matches_table_2_inventory() {
        let suite = rq1_suite();
        assert_eq!(suite.len(), 25);
        let ids: HashSet<_> = suite.iter().map(|c| c.issue_id).collect();
        assert_eq!(ids.len(), 25);
        assert!(ids.contains(&104875) && ids.contains(&143259));
        // Three cases are the all-empty rows of Table 2.
        assert_eq!(suite.iter().filter(|c| c.family == "unknown").count(), 3);
        assert!(suite.iter().all(|c| c.status == Status::PreviouslyReported));
        assert!(suite.iter().all(|c| c.function.instruction_count() >= 2));
    }

    #[test]
    fn rq2_suite_matches_table_3_inventory() {
        let suite = rq2_suite();
        assert_eq!(suite.len(), 62);
        let confirmed = suite.iter().filter(|c| c.status == Status::Confirmed).count();
        let fixed = suite.iter().filter(|c| c.status == Status::Fixed).count();
        let duplicates = suite.iter().filter(|c| c.status == Status::Duplicate).count();
        let wontfix = suite.iter().filter(|c| c.status == Status::Wontfix).count();
        assert_eq!(confirmed, 28, "Table 3 reports 28 confirmed");
        assert_eq!(fixed, 13, "Table 3 reports 13 fixed");
        assert_eq!(duplicates, 4);
        assert_eq!(wontfix, 3);
    }

    #[test]
    fn cases_are_structurally_distinct_within_each_suite() {
        let rq1: HashSet<_> = rq1_suite().iter().map(|c| hash_function(&c.function)).collect();
        assert_eq!(rq1.len(), 25);
        let rq2: HashSet<_> = rq2_suite().iter().map(|c| hash_function(&c.function)).collect();
        assert_eq!(rq2.len(), 62);
    }

    #[test]
    fn families_map_to_strategies() {
        assert_eq!(strategy_for_family("patch-143636"), Some("patch-143636"));
        assert_eq!(strategy_for_family("vector-clamp"), Some("patch-143636"));
        assert_eq!(strategy_for_family("unknown"), None);
        assert_eq!(strategy_for_family("narrow-sign-check"), Some("narrow-sign-check"));
    }

    #[test]
    fn status_labels() {
        assert_eq!(Status::Confirmed.label(), "Confirmed");
        assert_eq!(Status::Wontfix.label(), "Wontfix");
        assert_eq!(Status::PreviouslyReported.label(), "Reported");
    }

    #[test]
    #[should_panic(expected = "unknown case family")]
    fn unknown_family_name_panics() {
        let _ = family_source("no-such-family", 0);
    }
}
