//! Synthetic corpus and benchmark-module generation.
//!
//! The paper's RQ2 corpus is the *LLVM Opt Benchmark* (optimized IR from 240
//! real projects); the paper selects 14 popular projects from it. This module
//! generates a stand-in: per-project modules with a realistic mix of
//! straight-line integer/FP/vector/memory code, into which suboptimal patterns
//! from the RQ2 families are seeded at controlled rates. The SPEC-like module
//! set used by Figure 5 is generated the same way with a heavier arithmetic
//! mix.

use crate::cases::family_source;
use lpo_ir::module::Module;
use lpo_ir::parser::parse_function;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fourteen projects the paper selects from the LLVM Opt Benchmark.
pub const PROJECT_NAMES: [&str; 14] = [
    "cpython", "ffmpeg", "linux", "openssl", "redis", "node", "protobuf", "opencv", "z3",
    "pingora", "ripgrep", "typst", "uv", "zed",
];

/// The C/C++ SPEC CPU2017 integer benchmarks evaluated in Figure 5.
pub const SPEC_BENCHMARKS: [&str; 8] = [
    "perlbench", "gcc", "mcf", "omnetpp", "xalancbmk", "x264", "deepsjeng", "leela",
];

/// Families that the generator may embed into project code (the RQ2 families).
const EMBEDDABLE_FAMILIES: [&str; 12] = [
    "patch-143636",
    "patch-142711",
    "patch-143211",
    "patch-157315",
    "patch-157370",
    "patch-157524",
    "patch-163108-2",
    "patch-166973",
    "narrow-sign-check",
    "neg-via-not",
    "vector-clamp",
    "patch-154238",
];

/// Configuration for corpus generation.
#[derive(Clone, Debug)]
pub struct CorpusConfig {
    /// RNG seed.
    pub seed: u64,
    /// Modules ("IR files") generated per project.
    pub modules_per_project: usize,
    /// Filler functions per module.
    pub functions_per_module: usize,
    /// Probability that a module receives one embedded suboptimal pattern.
    pub pattern_rate: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self { seed: 0xC0&0xFF | 0xC0DE, modules_per_project: 6, functions_per_module: 5, pattern_rate: 0.6 }
    }
}

/// One generated project: a name plus its modules.
#[derive(Clone, Debug)]
pub struct Project {
    /// The project name (one of [`PROJECT_NAMES`]).
    pub name: String,
    /// The generated modules ("IR files").
    pub modules: Vec<Module>,
}

/// Generates the full 14-project corpus.
pub fn generate_corpus(config: &CorpusConfig) -> Vec<Project> {
    PROJECT_NAMES
        .iter()
        .enumerate()
        .map(|(i, name)| generate_project(name, config, config.seed.wrapping_add(i as u64 * 7919)))
        .collect()
}

/// Generates one project.
pub fn generate_project(name: &str, config: &CorpusConfig, seed: u64) -> Project {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut modules = Vec::new();
    for m in 0..config.modules_per_project {
        let mut module = Module::new(format!("{name}/file{m}.ll"));
        for f in 0..config.functions_per_module {
            let text = filler_function(&format!("{name}_{m}_{f}"), &mut rng);
            module.add_function(parse_function(&text).expect("generated filler parses"));
        }
        if rng.gen::<f64>() < config.pattern_rate {
            let family = EMBEDDABLE_FAMILIES[rng.gen_range(0..EMBEDDABLE_FAMILIES.len())];
            let variation = rng.gen_range(0..3);
            let text = family_source(family, variation)
                .replacen("@src", &format!("@{name}_seeded_{m}"), 1);
            module.add_function(parse_function(&text).expect("seeded pattern parses"));
        }
        modules.push(module);
    }
    Project { name: name.to_string(), modules }
}

/// Generates the SPEC-like benchmark modules used by the Figure 5 experiment.
pub fn spec_benchmarks(seed: u64) -> Vec<(String, Module)> {
    let mut out = Vec::new();
    for (i, name) in SPEC_BENCHMARKS.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(i as u64 * 104729));
        let mut module = Module::new(format!("{name}.ll"));
        for f in 0..24 {
            let text = filler_function(&format!("{name}_{f}"), &mut rng);
            module.add_function(parse_function(&text).expect("generated filler parses"));
        }
        // A small fraction of hot code contains the suboptimal patterns.
        for (p, family) in EMBEDDABLE_FAMILIES.iter().enumerate().take(4) {
            if rng.gen::<f64>() < 0.5 {
                let text = family_source(family, (p % 3) as u32)
                    .replacen("@src", &format!("@{name}_hot_{p}"), 1);
                module.add_function(parse_function(&text).expect("seeded pattern parses"));
            }
        }
        out.push((name.to_string(), module));
    }
    out
}

/// A random straight-line integer function in already-canonical form (the
/// corpus models *optimized* IR, so the filler avoids trivially-foldable code).
fn filler_function(name: &str, rng: &mut StdRng) -> String {
    let width = [32u32, 64, 16, 8][rng.gen_range(0..4)];
    let ops = ["add", "xor", "and", "or", "mul", "lshr", "shl"];
    let n = rng.gen_range(3..9);
    let mut body = String::new();
    let mut values = vec!["%x".to_string(), "%y".to_string()];
    for i in 0..n {
        let op = ops[rng.gen_range(0..ops.len())];
        let a = values[rng.gen_range(0..values.len())].clone();
        let b = if rng.gen_bool(0.5) {
            values[rng.gen_range(0..values.len())].clone()
        } else {
            let c: u32 = rng.gen_range(2..200);
            // Shift amounts must stay in range; other constants avoid identities.
            if op == "lshr" || op == "shl" { (1 + c % (width - 1)).to_string() } else { c.to_string() }
        };
        let v = format!("%v{i}");
        body.push_str(&format!(" {v} = {op} i{width} {a}, {b}\n"));
        values.push(v);
    }
    let last = values.last().cloned().unwrap_or_else(|| "%x".into());
    format!(
        "define i{width} @{name}(i{width} %x, i{width} %y) {{\n{body} ret i{width} {last}\n}}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::verifier::verify_module;

    #[test]
    fn corpus_has_fourteen_projects_and_verifies() {
        let config = CorpusConfig { modules_per_project: 2, functions_per_module: 3, ..Default::default() };
        let corpus = generate_corpus(&config);
        assert_eq!(corpus.len(), 14);
        for project in &corpus {
            assert_eq!(project.modules.len(), 2);
            for module in &project.modules {
                verify_module(module).expect("generated module verifies");
                assert!(module.functions.len() >= 3);
            }
        }
        // Determinism for a fixed seed.
        let again = generate_corpus(&config);
        assert_eq!(corpus[0].modules[0], again[0].modules[0]);
    }

    #[test]
    fn some_modules_contain_seeded_patterns() {
        let config = CorpusConfig { modules_per_project: 8, functions_per_module: 2, pattern_rate: 0.9, ..Default::default() };
        let corpus = generate_corpus(&config);
        let seeded = corpus
            .iter()
            .flat_map(|p| &p.modules)
            .filter(|m| m.functions.iter().any(|f| f.name.contains("seeded")))
            .count();
        assert!(seeded > 20, "expected many seeded modules, got {seeded}");
    }

    #[test]
    fn spec_benchmarks_generate_and_verify() {
        let benches = spec_benchmarks(7);
        assert_eq!(benches.len(), 8);
        for (name, module) in &benches {
            assert!(SPEC_BENCHMARKS.contains(&name.as_str()));
            verify_module(module).expect("spec module verifies");
            assert!(module.instruction_count() > 50);
        }
    }
}
