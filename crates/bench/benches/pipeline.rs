//! Criterion benches for the performance-sensitive components and the
//! scaled-down experiment drivers. One bench per reproduced artefact:
//!
//! * `extraction`           — Algorithm 2 over the synthetic corpus
//! * `opt_pipeline`         — the InstCombine fixpoint on a hot function
//! * `translation_validate` — the Alive2-substitute refinement check
//! * `rq1_detection`        — one Table 2 cell (one case, one model, one round)
//! * `souper_enum1`         — one Table 4 cell (Souper, Enum=1, one case)
//! * `spec_speedup`         — the Figure 5 cycle-estimation inner loop
//! * `ablation_feedback`    — LPO vs LPO⁻ on the Figure 1 clamp (Table 2 ablation)

use criterion::{criterion_group, criterion_main, Criterion};
use lpo::prelude::*;
use lpo_extract::{ExtractConfig, Extractor};
use lpo_ir::parser::parse_function;
use lpo_llm::prelude::*;
use lpo_mca::{CostModel, Target};
use lpo_opt::pipeline::{OptLevel, Pipeline};
use lpo_souper::{superoptimize, SouperConfig};
use lpo_tv::refine::verify_refinement;

const CLAMP: &str = "define i8 @src(i32 %0) {\n\
    %2 = icmp slt i32 %0, 0\n\
    %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
    %4 = trunc nuw i32 %3 to i8\n\
    %5 = select i1 %2, i8 0, i8 %4\n\
    ret i8 %5\n}";

const CLAMP_OPT: &str = "define i8 @tgt(i32 %0) {\n\
    %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
    %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
    %4 = trunc nuw i32 %3 to i8\n\
    ret i8 %4\n}";

fn bench_extraction(c: &mut Criterion) {
    let corpus = lpo_corpus::generate_corpus(&lpo_corpus::CorpusConfig {
        modules_per_project: 1,
        functions_per_module: 3,
        ..Default::default()
    });
    c.bench_function("extraction", |b| {
        b.iter(|| {
            let mut extractor = Extractor::new(ExtractConfig::default());
            let modules = corpus.iter().flat_map(|p| &p.modules);
            std::hint::black_box(extractor.extract_corpus(modules).len())
        })
    });
}

fn bench_opt_pipeline(c: &mut Criterion) {
    let src = parse_function(
        "define i32 @f(i32 %x) {\n\
         %a = add i32 %x, 0\n %b = mul i32 %a, 4\n %c = sub i32 %b, %b\n\
         %d = or i32 %b, %c\n %e = add i32 %d, 5\n %f = add i32 %e, 7\n ret i32 %f\n}",
    )
    .unwrap();
    let pipeline = Pipeline::new(OptLevel::O2);
    c.bench_function("opt_pipeline", |b| {
        b.iter(|| {
            let mut f = src.clone();
            std::hint::black_box(pipeline.run(&mut f).total_hits())
        })
    });
}

fn bench_translation_validate(c: &mut Criterion) {
    let src = parse_function(CLAMP).unwrap();
    let tgt = parse_function(CLAMP_OPT).unwrap();
    c.bench_function("translation_validate", |b| {
        b.iter(|| std::hint::black_box(verify_refinement(&src, &tgt).is_correct()))
    });
}

fn bench_rq1_detection(c: &mut Criterion) {
    let case = lpo_corpus::rq1_suite().into_iter().next().unwrap();
    let lpo = Lpo::new(LpoConfig::default());
    c.bench_function("rq1_detection", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut model = SimulatedModel::for_case(gemini2_0t(), 42, round, 0);
            std::hint::black_box(lpo.optimize_sequence(&mut model, &case.function).outcome.is_found())
        })
    });
}

fn bench_souper_enum1(c: &mut Criterion) {
    let case = parse_function("define i1 @f(i8 %x) {\n %a = xor i8 %x, 12\n %c = icmp eq i8 %a, 5\n ret i1 %c\n}").unwrap();
    let mut config = SouperConfig::with_enum(1);
    config.candidate_budget = 600;
    c.bench_function("souper_enum1", |b| {
        b.iter(|| std::hint::black_box(superoptimize(&case, &config).found()))
    });
}

fn bench_spec_speedup(c: &mut Criterion) {
    let benches = lpo_corpus::spec_benchmarks(1);
    let cost = CostModel::new(Target::Btver2Like);
    c.bench_function("spec_speedup", |b| {
        b.iter(|| {
            let total: f64 = benches
                .iter()
                .flat_map(|(_, m)| m.functions.iter())
                .map(|f| cost.estimate(f).total_cycles)
                .sum();
            std::hint::black_box(total)
        })
    });
}

fn bench_ablation_feedback(c: &mut Criterion) {
    let src = parse_function(CLAMP).unwrap();
    let with = Lpo::new(LpoConfig::default());
    let without = Lpo::new(LpoConfig::without_feedback());
    c.bench_function("ablation_feedback_lpo", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut model = SimulatedModel::for_case(o4_mini(), 7, round, 0);
            std::hint::black_box(with.optimize_sequence(&mut model, &src).outcome.is_found())
        })
    });
    c.bench_function("ablation_feedback_lpo_minus", |b| {
        let mut round = 0u64;
        b.iter(|| {
            round += 1;
            let mut model = SimulatedModel::for_case(o4_mini(), 7, round, 0);
            std::hint::black_box(without.optimize_sequence(&mut model, &src).outcome.is_found())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_extraction, bench_opt_pipeline, bench_translation_validate, bench_rq1_detection, bench_souper_enum1, bench_spec_speedup, bench_ablation_feedback
}
criterion_main!(benches);
