//! Persistent benchmark results: the `BENCH_results.json` model.
//!
//! The `repro` binary used to overwrite `BENCH_results.json` with only the
//! tables of the current invocation, so running `repro table2` after
//! `repro all` erased everything but table2 and the perf trajectory never
//! accumulated. This module makes the file a *merged* store:
//!
//! * `tables` holds the **latest** entry per table name (merged by name);
//! * `interp` / `opt` / `tv` hold the latest microbenchmark of each hot
//!   path (`repro bench-interp` / `bench-opt` / `bench-tv`);
//! * `runs` is an append-only history — one record per `repro` invocation
//!   with the entries that invocation produced — so the trajectory across
//!   PRs/runs is preserved.
//!
//! The container has no crates.io access (no serde), so this file carries a
//! small hand-rolled JSON reader/writer covering exactly the subset the
//! schema needs: objects, arrays, strings, numbers, booleans and null.

// The hand-rolled JSON reader/writer that used to live here moved to
// `lpo-serve`, where the wire protocol shares it; the results schema
// keeps using it from its old path via this re-export.
pub use lpo_serve::json::Json;

/// One per-table entry (the latest run's numbers for that table).
#[derive(Clone, Debug, PartialEq)]
pub struct TableEntry {
    /// The table/driver name (`table2` … `figure5`).
    pub name: String,
    /// Wall-clock seconds of the whole driver.
    pub wall_seconds: f64,
    /// Work items processed.
    pub cases: usize,
    /// Work items per second.
    pub cases_per_second: f64,
    /// Dedup-cache replays.
    pub cache_hits: usize,
    /// Cases that ended `Failed` (session errors / contained panics). Zero on
    /// every healthy run; nonzero values flag fault-injection or live-model
    /// trouble in the recorded history.
    pub failed: usize,
    /// Unique cases replayed from a checkpoint store (`--resume`).
    pub resumed: usize,
    /// Stage-3 candidates settled by the abstract pre-verification tier as
    /// proved (full concrete sweeps skipped). Zero for engineless drivers.
    pub proved: usize,
    /// Stage-3 candidates refuted abstractly (certified wrong before any
    /// concrete evaluation). Zero for engineless drivers.
    pub absint_refuted: usize,
    /// Worker threads used.
    pub jobs: usize,
}

impl TableEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("name".into(), Json::Str(self.name.clone())),
            ("wall_seconds".into(), Json::Num(self.wall_seconds)),
            ("cases".into(), Json::Num(self.cases as f64)),
            ("cases_per_second".into(), Json::Num(self.cases_per_second)),
            ("cache_hits".into(), Json::Num(self.cache_hits as f64)),
            ("failed".into(), Json::Num(self.failed as f64)),
            ("resumed".into(), Json::Num(self.resumed as f64)),
            ("proved".into(), Json::Num(self.proved as f64)),
            ("absint_refuted".into(), Json::Num(self.absint_refuted as f64)),
            ("jobs".into(), Json::Num(self.jobs as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<TableEntry> {
        Some(TableEntry {
            name: value.get("name")?.as_str()?.to_string(),
            wall_seconds: value.get("wall_seconds")?.as_num()?,
            cases: value.get("cases")?.as_num()? as usize,
            cases_per_second: value.get("cases_per_second")?.as_num()?,
            cache_hits: value.get("cache_hits")?.as_num()? as usize,
            // Absent in files written before failure accounting existed.
            failed: value.get("failed").and_then(Json::as_num).unwrap_or(0.0) as usize,
            resumed: value.get("resumed").and_then(Json::as_num).unwrap_or(0.0) as usize,
            // Absent in files written before the abstract tier existed.
            proved: value.get("proved").and_then(Json::as_num).unwrap_or(0.0) as usize,
            absint_refuted: value.get("absint_refuted").and_then(Json::as_num).unwrap_or(0.0)
                as usize,
            jobs: value.get("jobs")?.as_num()? as usize,
        })
    }
}

/// The interpreter microbenchmark section (`repro bench-interp`).
#[derive(Clone, Debug, PartialEq)]
pub struct InterpEntry {
    /// Concrete evaluations per second on the register-file evaluator.
    pub evals_per_second: f64,
    /// Executed instructions per second on the register-file evaluator.
    pub steps_per_second: f64,
    /// Evaluations per second on the pre-change reference evaluator.
    pub reference_evals_per_second: f64,
    /// `evals_per_second / reference_evals_per_second`.
    pub speedup: f64,
    /// Functions evaluated (the rq1 suite).
    pub cases: usize,
    /// Total evaluations per pass (Σ inputs over cases × repeats).
    pub evals: usize,
    /// Worker threads used.
    pub jobs: usize,
}

impl InterpEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("evals_per_second".into(), Json::Num(self.evals_per_second)),
            ("steps_per_second".into(), Json::Num(self.steps_per_second)),
            ("reference_evals_per_second".into(), Json::Num(self.reference_evals_per_second)),
            ("speedup".into(), Json::Num(self.speedup)),
            ("cases".into(), Json::Num(self.cases as f64)),
            ("evals".into(), Json::Num(self.evals as f64)),
            ("jobs".into(), Json::Num(self.jobs as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<InterpEntry> {
        Some(InterpEntry {
            evals_per_second: value.get("evals_per_second")?.as_num()?,
            steps_per_second: value.get("steps_per_second")?.as_num()?,
            reference_evals_per_second: value.get("reference_evals_per_second")?.as_num()?,
            speedup: value.get("speedup")?.as_num()?,
            cases: value.get("cases")?.as_num()? as usize,
            evals: value.get("evals")?.as_num()? as usize,
            jobs: value.get("jobs")?.as_num()? as usize,
        })
    }
}

/// The canonicalization microbenchmark section (`repro bench-opt`).
#[derive(Clone, Debug, PartialEq)]
pub struct OptEntry {
    /// Module-scale canonicalizations per second on the worklist engine.
    pub canon_per_second: f64,
    /// Module-scale canonicalizations per second on the rescan reference.
    pub reference_canon_per_second: f64,
    /// `canon_per_second / reference_canon_per_second`.
    pub speedup: f64,
    /// Per-candidate-scale (raw rq1 case) canonicalizations per second.
    pub case_canon_per_second: f64,
    /// Per-candidate-scale reference canonicalizations per second.
    pub case_reference_canon_per_second: f64,
    /// `case_canon_per_second / case_reference_canon_per_second`.
    pub case_speedup: f64,
    /// rq1 cases feeding the workload.
    pub cases: usize,
    /// Module-scale functions composed from them.
    pub functions: usize,
    /// Worker threads used.
    pub jobs: usize,
}

impl OptEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("canon_per_second".into(), Json::Num(self.canon_per_second)),
            ("reference_canon_per_second".into(), Json::Num(self.reference_canon_per_second)),
            ("speedup".into(), Json::Num(self.speedup)),
            ("case_canon_per_second".into(), Json::Num(self.case_canon_per_second)),
            (
                "case_reference_canon_per_second".into(),
                Json::Num(self.case_reference_canon_per_second),
            ),
            ("case_speedup".into(), Json::Num(self.case_speedup)),
            ("cases".into(), Json::Num(self.cases as f64)),
            ("functions".into(), Json::Num(self.functions as f64)),
            ("jobs".into(), Json::Num(self.jobs as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<OptEntry> {
        Some(OptEntry {
            canon_per_second: value.get("canon_per_second")?.as_num()?,
            reference_canon_per_second: value.get("reference_canon_per_second")?.as_num()?,
            speedup: value.get("speedup")?.as_num()?,
            case_canon_per_second: value.get("case_canon_per_second")?.as_num()?,
            case_reference_canon_per_second: value
                .get("case_reference_canon_per_second")?
                .as_num()?,
            case_speedup: value.get("case_speedup")?.as_num()?,
            cases: value.get("cases")?.as_num()? as usize,
            functions: value.get("functions")?.as_num()? as usize,
            jobs: value.get("jobs")?.as_num()? as usize,
        })
    }
}

/// The translation-validation microbenchmark section (`repro bench-tv`).
///
/// `refuted_*` measures the dominant real-world shape — a wrong candidate
/// refuted on its earliest concrete input — where the staged checker's probe
/// avoids `CompiledFunction::compile` entirely; `survivor_*` measures the
/// full-input-sweep cost every accepted candidate pays (currently ≈ parity
/// with the reference: the batched sweep's per-input gain roughly offsets
/// the probe's direct evaluations on tiny functions — gated so it cannot
/// silently regress).
#[derive(Clone, Debug, PartialEq)]
pub struct TvEntry {
    /// Refuted-candidate verifications per second on the staged checker.
    pub refuted_per_second: f64,
    /// Refuted-candidate verifications per second on the reference checker.
    pub reference_refuted_per_second: f64,
    /// `refuted_per_second / reference_refuted_per_second`.
    pub refuted_speedup: f64,
    /// Surviving-candidate verifications per second on the staged checker.
    pub survivor_per_second: f64,
    /// Surviving-candidate verifications per second on the reference checker.
    pub reference_survivor_per_second: f64,
    /// `survivor_per_second / reference_survivor_per_second`.
    pub survivor_speedup: f64,
    /// Abstract refutations per second on the Stage 3a₀ tier (bit-pinned
    /// pairs certified with zero concrete evaluations).
    pub absint_refuted_per_second: f64,
    /// The same pairs refuted concretely with the tier disabled — the
    /// in-run reference for the machine-independent fallback.
    pub absint_reference_per_second: f64,
    /// `absint_refuted_per_second / absint_reference_per_second`.
    pub absint_speedup: f64,
    /// Pairs in the abstract-refutation workload.
    pub absint_cases: usize,
    /// Self-verification survivors the abstract tier proved structurally —
    /// i.e. full concrete sweeps skipped.
    pub proved_survivors: usize,
    /// `proved_survivors / cases` (deterministic; gated as a floor).
    pub proved_fraction: f64,
    /// rq1 cases in the workload (scalar-int returns only).
    pub cases: usize,
    /// Workload cases whose compiled form carries a plane plan — i.e. how
    /// many survivor sweeps ran on the type-specialized plane tier.
    pub plane_cases: usize,
    /// Worker threads used.
    pub jobs: usize,
}

impl TvEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("refuted_per_second".into(), Json::Num(self.refuted_per_second)),
            (
                "reference_refuted_per_second".into(),
                Json::Num(self.reference_refuted_per_second),
            ),
            ("refuted_speedup".into(), Json::Num(self.refuted_speedup)),
            ("survivor_per_second".into(), Json::Num(self.survivor_per_second)),
            (
                "reference_survivor_per_second".into(),
                Json::Num(self.reference_survivor_per_second),
            ),
            ("survivor_speedup".into(), Json::Num(self.survivor_speedup)),
            ("absint_refuted_per_second".into(), Json::Num(self.absint_refuted_per_second)),
            ("absint_reference_per_second".into(), Json::Num(self.absint_reference_per_second)),
            ("absint_speedup".into(), Json::Num(self.absint_speedup)),
            ("absint_cases".into(), Json::Num(self.absint_cases as f64)),
            ("proved_survivors".into(), Json::Num(self.proved_survivors as f64)),
            ("proved_fraction".into(), Json::Num(self.proved_fraction)),
            ("cases".into(), Json::Num(self.cases as f64)),
            ("plane_cases".into(), Json::Num(self.plane_cases as f64)),
            ("jobs".into(), Json::Num(self.jobs as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<TvEntry> {
        Some(TvEntry {
            refuted_per_second: value.get("refuted_per_second")?.as_num()?,
            reference_refuted_per_second: value
                .get("reference_refuted_per_second")?
                .as_num()?,
            refuted_speedup: value.get("refuted_speedup")?.as_num()?,
            survivor_per_second: value.get("survivor_per_second")?.as_num()?,
            reference_survivor_per_second: value
                .get("reference_survivor_per_second")?
                .as_num()?,
            survivor_speedup: value.get("survivor_speedup")?.as_num()?,
            // Absent in records written before the abstract tier existed.
            absint_refuted_per_second: value
                .get("absint_refuted_per_second")
                .and_then(Json::as_num)
                .unwrap_or(0.0),
            absint_reference_per_second: value
                .get("absint_reference_per_second")
                .and_then(Json::as_num)
                .unwrap_or(0.0),
            absint_speedup: value.get("absint_speedup").and_then(Json::as_num).unwrap_or(0.0),
            absint_cases: value
                .get("absint_cases")
                .and_then(Json::as_num)
                .map(|n| n as usize)
                .unwrap_or(0),
            proved_survivors: value
                .get("proved_survivors")
                .and_then(Json::as_num)
                .map(|n| n as usize)
                .unwrap_or(0),
            proved_fraction: value.get("proved_fraction").and_then(Json::as_num).unwrap_or(0.0),
            cases: value.get("cases")?.as_num()? as usize,
            // Absent in records written before the plane tier existed.
            plane_cases: value
                .get("plane_cases")
                .and_then(|v| v.as_num())
                .map(|n| n as usize)
                .unwrap_or(0),
            jobs: value.get("jobs")?.as_num()? as usize,
        })
    }
}

/// The sharded-execution microbenchmark section (`repro bench-exec`).
///
/// `sweep_*` measures one survivor case whose input sweep is split into
/// shards (the single-case scaling the shard engine exists for);
/// `enum_*` measures one enumeration case whose candidate frontier is
/// split into shards. For each shape the reference is the case-granular
/// engine at one worker, `serial` is the sharded path at one worker (the
/// overhead the sharding machinery itself costs), and `parallel` is the
/// sharded path at [`ExecEntry::jobs`] workers. The shard counters are
/// scheduling-dependent (especially `shards_stolen`) — report them, never
/// compare them across runs.
#[derive(Clone, Debug, PartialEq)]
pub struct ExecEntry {
    /// Survivor sweeps per second, case-granular engine, one worker.
    pub sweep_reference_per_second: f64,
    /// Survivor sweeps per second, sharded engine, one worker.
    pub sweep_serial_per_second: f64,
    /// `sweep_serial / sweep_reference` — sharding overhead at one worker
    /// (machine-independent; ≈1.0 means the shard machinery is free).
    pub sweep_overhead_ratio: f64,
    /// Survivor sweeps per second, sharded engine, `jobs` workers.
    pub sweep_parallel_per_second: f64,
    /// `sweep_parallel / sweep_serial` — single-case scaling at `jobs`.
    pub sweep_speedup: f64,
    /// Enumeration candidates per second, serial walk, one worker.
    pub enum_reference_per_second: f64,
    /// Enumeration candidates per second, sharded frontier, one worker.
    pub enum_serial_per_second: f64,
    /// `enum_serial / enum_reference` (machine-independent overhead).
    pub enum_overhead_ratio: f64,
    /// Enumeration candidates per second, sharded frontier, `jobs` workers.
    pub enum_parallel_per_second: f64,
    /// `enum_parallel / enum_serial` — single-case scaling at `jobs`.
    pub enum_speedup: f64,
    /// Shards executed across the parallel runs.
    pub shards_executed: usize,
    /// Shards executed by a worker other than the case's owner.
    pub shards_stolen: usize,
    /// Shards skipped because an earlier shard already refuted.
    pub shard_cancellations: usize,
    /// Worker threads of the parallel measurements.
    pub jobs: usize,
    /// Inputs (or candidates) per shard.
    pub shard_size: usize,
}

impl ExecEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("sweep_reference_per_second".into(), Json::Num(self.sweep_reference_per_second)),
            ("sweep_serial_per_second".into(), Json::Num(self.sweep_serial_per_second)),
            ("sweep_overhead_ratio".into(), Json::Num(self.sweep_overhead_ratio)),
            ("sweep_parallel_per_second".into(), Json::Num(self.sweep_parallel_per_second)),
            ("sweep_speedup".into(), Json::Num(self.sweep_speedup)),
            ("enum_reference_per_second".into(), Json::Num(self.enum_reference_per_second)),
            ("enum_serial_per_second".into(), Json::Num(self.enum_serial_per_second)),
            ("enum_overhead_ratio".into(), Json::Num(self.enum_overhead_ratio)),
            ("enum_parallel_per_second".into(), Json::Num(self.enum_parallel_per_second)),
            ("enum_speedup".into(), Json::Num(self.enum_speedup)),
            ("shards_executed".into(), Json::Num(self.shards_executed as f64)),
            ("shards_stolen".into(), Json::Num(self.shards_stolen as f64)),
            ("shard_cancellations".into(), Json::Num(self.shard_cancellations as f64)),
            ("jobs".into(), Json::Num(self.jobs as f64)),
            ("shard_size".into(), Json::Num(self.shard_size as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<ExecEntry> {
        Some(ExecEntry {
            sweep_reference_per_second: value.get("sweep_reference_per_second")?.as_num()?,
            sweep_serial_per_second: value.get("sweep_serial_per_second")?.as_num()?,
            sweep_overhead_ratio: value.get("sweep_overhead_ratio")?.as_num()?,
            sweep_parallel_per_second: value.get("sweep_parallel_per_second")?.as_num()?,
            sweep_speedup: value.get("sweep_speedup")?.as_num()?,
            enum_reference_per_second: value.get("enum_reference_per_second")?.as_num()?,
            enum_serial_per_second: value.get("enum_serial_per_second")?.as_num()?,
            enum_overhead_ratio: value.get("enum_overhead_ratio")?.as_num()?,
            enum_parallel_per_second: value.get("enum_parallel_per_second")?.as_num()?,
            enum_speedup: value.get("enum_speedup")?.as_num()?,
            shards_executed: value.get("shards_executed")?.as_num()? as usize,
            shards_stolen: value.get("shards_stolen")?.as_num()? as usize,
            shard_cancellations: value.get("shard_cancellations")?.as_num()? as usize,
            jobs: value.get("jobs")?.as_num()? as usize,
            shard_size: value.get("shard_size")?.as_num()? as usize,
        })
    }
}

/// The serving-shell benchmark section (`repro bench-serve`).
///
/// A real server on a loopback socket, measured end to end through the wire
/// protocol: one cold submission of the rq1 corpus against an empty store,
/// then warm resubmissions answered from the shared verdict store until the
/// measurement window fills. `warm_speedup` is warm jobs-per-second times
/// cold seconds-per-job — machine-independent, like the other speedup
/// ratios. The cache-hit rates are exact (counter deltas, not timings):
/// cold ≈ 0 by construction, warm = 1.0 when every Stage-3 verdict replays.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeEntry {
    /// Protocol round-trips per second over the whole scripted session.
    pub requests_per_second: f64,
    /// Wall-clock seconds of the cold (empty-store) submission.
    pub cold_seconds: f64,
    /// Warm submissions of the same corpus per second.
    pub warm_jobs_per_second: f64,
    /// `warm_jobs_per_second * cold_seconds` — how many warm jobs fit in
    /// one cold job's time (machine-independent).
    pub warm_speedup: f64,
    /// Verdict-store hit rate of the cold submission.
    pub cold_cache_hit_rate: f64,
    /// Verdict-store hit rate across the warm submissions.
    pub cache_hit_rate: f64,
    /// Cases per submission.
    pub cases: usize,
    /// Warm submissions measured.
    pub warm_jobs: usize,
    /// Protocol requests issued by the session.
    pub requests: usize,
    /// Worker threads of the server.
    pub jobs: usize,
}

impl ServeEntry {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("requests_per_second".into(), Json::Num(self.requests_per_second)),
            ("cold_seconds".into(), Json::Num(self.cold_seconds)),
            ("warm_jobs_per_second".into(), Json::Num(self.warm_jobs_per_second)),
            ("warm_speedup".into(), Json::Num(self.warm_speedup)),
            ("cold_cache_hit_rate".into(), Json::Num(self.cold_cache_hit_rate)),
            ("cache_hit_rate".into(), Json::Num(self.cache_hit_rate)),
            ("cases".into(), Json::Num(self.cases as f64)),
            ("warm_jobs".into(), Json::Num(self.warm_jobs as f64)),
            ("requests".into(), Json::Num(self.requests as f64)),
            ("jobs".into(), Json::Num(self.jobs as f64)),
        ])
    }

    fn from_json(value: &Json) -> Option<ServeEntry> {
        Some(ServeEntry {
            requests_per_second: value.get("requests_per_second")?.as_num()?,
            cold_seconds: value.get("cold_seconds")?.as_num()?,
            warm_jobs_per_second: value.get("warm_jobs_per_second")?.as_num()?,
            warm_speedup: value.get("warm_speedup")?.as_num()?,
            cold_cache_hit_rate: value.get("cold_cache_hit_rate")?.as_num()?,
            cache_hit_rate: value.get("cache_hit_rate")?.as_num()?,
            cases: value.get("cases")?.as_num()? as usize,
            warm_jobs: value.get("warm_jobs")?.as_num()? as usize,
            requests: value.get("requests")?.as_num()? as usize,
            jobs: value.get("jobs")?.as_num()? as usize,
        })
    }
}

/// One `repro` invocation in the append-only history.
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// 1-based run index (monotonic across the file's lifetime).
    pub run: usize,
    /// The subcommand that produced this record (e.g. `table2`, `all`).
    pub command: String,
    /// The `--jobs` value requested.
    pub jobs_requested: usize,
    /// The tables this invocation produced.
    pub tables: Vec<TableEntry>,
    /// The interpreter microbenchmark, when this invocation ran it.
    pub interp: Option<InterpEntry>,
    /// The canonicalization microbenchmark, when this invocation ran it.
    pub opt: Option<OptEntry>,
    /// The translation-validation microbenchmark, when this invocation ran it.
    pub tv: Option<TvEntry>,
    /// The sharded-execution microbenchmark, when this invocation ran it.
    pub exec: Option<ExecEntry>,
    /// The serving-shell benchmark, when this invocation ran it.
    pub serve: Option<ServeEntry>,
}

impl RunRecord {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("run".into(), Json::Num(self.run as f64)),
            ("command".into(), Json::Str(self.command.clone())),
            ("jobs_requested".into(), Json::Num(self.jobs_requested as f64)),
            ("tables".into(), Json::Arr(self.tables.iter().map(TableEntry::to_json).collect())),
        ];
        if let Some(interp) = &self.interp {
            fields.push(("interp".into(), interp.to_json()));
        }
        if let Some(opt) = &self.opt {
            fields.push(("opt".into(), opt.to_json()));
        }
        if let Some(tv) = &self.tv {
            fields.push(("tv".into(), tv.to_json()));
        }
        if let Some(exec) = &self.exec {
            fields.push(("exec".into(), exec.to_json()));
        }
        if let Some(serve) = &self.serve {
            fields.push(("serve".into(), serve.to_json()));
        }
        Json::Obj(fields)
    }

    fn from_json(value: &Json) -> Option<RunRecord> {
        Some(RunRecord {
            run: value.get("run")?.as_num()? as usize,
            command: value.get("command")?.as_str()?.to_string(),
            jobs_requested: value.get("jobs_requested")?.as_num()? as usize,
            tables: value
                .get("tables")?
                .as_arr()?
                .iter()
                .filter_map(TableEntry::from_json)
                .collect(),
            interp: value.get("interp").and_then(InterpEntry::from_json),
            opt: value.get("opt").and_then(OptEntry::from_json),
            tv: value.get("tv").and_then(TvEntry::from_json),
            exec: value.get("exec").and_then(ExecEntry::from_json),
            serve: value.get("serve").and_then(ServeEntry::from_json),
        })
    }
}

/// The measurement sections one `repro` invocation produced — the unit
/// [`BenchResults::record`] merges. A future section is added here (plus its
/// entry type and `RunRecord` field) without touching any call site.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunEntries {
    /// Table drivers this invocation ran.
    pub tables: Vec<TableEntry>,
    /// The interpreter microbenchmark (`bench-interp`), if run.
    pub interp: Option<InterpEntry>,
    /// The canonicalization microbenchmark (`bench-opt`), if run.
    pub opt: Option<OptEntry>,
    /// The translation-validation microbenchmark (`bench-tv`), if run.
    pub tv: Option<TvEntry>,
    /// The sharded-execution microbenchmark (`bench-exec`), if run.
    pub exec: Option<ExecEntry>,
    /// The serving-shell benchmark (`bench-serve`), if run.
    pub serve: Option<ServeEntry>,
}

impl RunEntries {
    /// Whether the invocation produced anything worth persisting.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
            && self.interp.is_none()
            && self.opt.is_none()
            && self.tv.is_none()
            && self.exec.is_none()
            && self.serve.is_none()
    }
}

/// The whole `BENCH_results.json` store.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BenchResults {
    /// Latest entry per table name, in first-recorded order.
    pub tables: Vec<TableEntry>,
    /// Latest interpreter microbenchmark.
    pub interp: Option<InterpEntry>,
    /// Latest canonicalization microbenchmark.
    pub opt: Option<OptEntry>,
    /// Latest translation-validation microbenchmark.
    pub tv: Option<TvEntry>,
    /// Latest sharded-execution microbenchmark.
    pub exec: Option<ExecEntry>,
    /// Latest serving-shell benchmark.
    pub serve: Option<ServeEntry>,
    /// Append-only invocation history.
    pub runs: Vec<RunRecord>,
}

/// The schema version written by this build.
pub const SCHEMA: usize = 2;

impl BenchResults {
    /// Loads the store from `path`. A missing, unparsable or
    /// unknown-schema file yields an empty store (the history restarts
    /// rather than blocking the benchmark run, and a future-schema file is
    /// not silently half-parsed); a legacy schema-1 file contributes its
    /// tables.
    pub fn load(path: &str) -> BenchResults {
        let Ok(text) = std::fs::read_to_string(path) else {
            return BenchResults::default();
        };
        let Ok(value) = Json::parse(&text) else {
            return BenchResults::default();
        };
        match value.get("schema").and_then(Json::as_num) {
            Some(schema) if schema == 1.0 || schema == SCHEMA as f64 => {}
            _ => return BenchResults::default(),
        }
        let mut results = BenchResults::default();
        if let Some(tables) = value.get("tables").and_then(Json::as_arr) {
            results.tables = tables.iter().filter_map(TableEntry::from_json).collect();
        }
        results.interp = value.get("interp").and_then(InterpEntry::from_json);
        results.opt = value.get("opt").and_then(OptEntry::from_json);
        results.tv = value.get("tv").and_then(TvEntry::from_json);
        results.exec = value.get("exec").and_then(ExecEntry::from_json);
        results.serve = value.get("serve").and_then(ServeEntry::from_json);
        if let Some(runs) = value.get("runs").and_then(Json::as_arr) {
            results.runs = runs.iter().filter_map(RunRecord::from_json).collect();
        }
        results
    }

    /// Merges one invocation into the store: per-table entries replace the
    /// previous entry of the same name, the microbenchmark sections (when
    /// present) replace the previous ones, and the invocation is appended to
    /// `runs` with the next run index.
    pub fn record(&mut self, command: &str, jobs_requested: usize, entries: RunEntries) {
        let RunEntries { tables, interp, opt, tv, exec, serve } = entries;
        for entry in &tables {
            match self.tables.iter_mut().find(|t| t.name == entry.name) {
                Some(slot) => *slot = entry.clone(),
                None => self.tables.push(entry.clone()),
            }
        }
        if interp.is_some() {
            self.interp = interp.clone();
        }
        if opt.is_some() {
            self.opt = opt.clone();
        }
        if tv.is_some() {
            self.tv = tv.clone();
        }
        if exec.is_some() {
            self.exec = exec.clone();
        }
        if serve.is_some() {
            self.serve = serve.clone();
        }
        let run = self.runs.last().map(|r| r.run + 1).unwrap_or(1);
        self.runs.push(RunRecord {
            run,
            command: command.to_string(),
            jobs_requested,
            tables,
            interp,
            opt,
            tv,
            exec,
            serve,
        });
    }

    /// Serializes the store.
    pub fn render(&self) -> String {
        let mut fields = vec![
            ("schema".into(), Json::Num(SCHEMA as f64)),
            ("tables".into(), Json::Arr(self.tables.iter().map(TableEntry::to_json).collect())),
        ];
        if let Some(interp) = &self.interp {
            fields.push(("interp".into(), interp.to_json()));
        }
        if let Some(opt) = &self.opt {
            fields.push(("opt".into(), opt.to_json()));
        }
        if let Some(tv) = &self.tv {
            fields.push(("tv".into(), tv.to_json()));
        }
        if let Some(exec) = &self.exec {
            fields.push(("exec".into(), exec.to_json()));
        }
        if let Some(serve) = &self.serve {
            fields.push(("serve".into(), serve.to_json()));
        }
        fields.push(("runs".into(), Json::Arr(self.runs.iter().map(RunRecord::to_json).collect())));
        Json::Obj(fields).render()
    }

    /// Loads, merges and writes back in one step.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message if the file cannot be written.
    pub fn merge_into_file(
        path: &str,
        command: &str,
        jobs_requested: usize,
        entries: RunEntries,
    ) -> Result<BenchResults, String> {
        let mut results = BenchResults::load(path);
        results.record(command, jobs_requested, entries);
        std::fs::write(path, results.render()).map_err(|e| e.to_string())?;
        Ok(results)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(name: &str, cps: f64) -> TableEntry {
        TableEntry {
            name: name.to_string(),
            wall_seconds: 1.0,
            cases: 10,
            cases_per_second: cps,
            cache_hits: 0,
            failed: 0,
            resumed: 0,
            proved: 0,
            absint_refuted: 0,
            jobs: 1,
        }
    }

    #[test]
    fn merge_replaces_by_name_and_keeps_history() {
        let mut results = BenchResults::default();
        results.record("all", 4, RunEntries { tables: vec![table("table2", 5.0), table("table5", 7.0)], ..Default::default() });
        results.record("table2", 1, RunEntries { tables: vec![table("table2", 9.0)], ..Default::default() });

        assert_eq!(results.tables.len(), 2, "table5 must survive a table2-only run");
        assert_eq!(
            results.tables.iter().find(|t| t.name == "table2").unwrap().cases_per_second,
            9.0
        );
        assert_eq!(results.runs.len(), 2);
        assert_eq!(results.runs[0].run, 1);
        assert_eq!(results.runs[1].run, 2);
        assert_eq!(results.runs[1].command, "table2");

        // Round-trips through the serialized form.
        let rendered = results.render();
        let value = Json::parse(&rendered).unwrap();
        assert_eq!(value.get("schema").unwrap().as_num(), Some(SCHEMA as f64));
        let reloaded = BenchResults {
            tables: value
                .get("tables")
                .unwrap()
                .as_arr()
                .unwrap()
                .iter()
                .filter_map(TableEntry::from_json)
                .collect(),
            ..Default::default()
        };
        assert_eq!(reloaded.tables, results.tables);
    }

    #[test]
    fn load_accepts_legacy_schema_1_and_garbage() {
        let dir = std::env::temp_dir().join("lpo_results_test");
        std::fs::create_dir_all(&dir).unwrap();
        let legacy = dir.join("legacy.json");
        std::fs::write(
            &legacy,
            "{\n  \"schema\": 1,\n  \"jobs_requested\": 4,\n  \"tables\": [\n    {\"name\": \"table5\", \"wall_seconds\": 0.1, \"cases\": 15, \"cases_per_second\": 119.1, \"cache_hits\": 0, \"jobs\": 4}\n  ]\n}\n",
        )
        .unwrap();
        let results = BenchResults::load(legacy.to_str().unwrap());
        assert_eq!(results.tables.len(), 1);
        assert_eq!(results.tables[0].name, "table5");
        assert!(results.runs.is_empty());

        let garbage = dir.join("garbage.json");
        std::fs::write(&garbage, "not json").unwrap();
        assert_eq!(BenchResults::load(garbage.to_str().unwrap()), BenchResults::default());
        assert_eq!(BenchResults::load("/nonexistent/path.json"), BenchResults::default());

        // A future schema restarts the store instead of half-parsing it.
        let future = dir.join("future.json");
        std::fs::write(
            &future,
            "{\n  \"schema\": 3,\n  \"tables\": [{\"name\": \"table5\", \"wall_seconds\": 1, \"cases\": 1, \"cases_per_second\": 1, \"cache_hits\": 0, \"jobs\": 1}]\n}\n",
        )
        .unwrap();
        assert_eq!(BenchResults::load(future.to_str().unwrap()), BenchResults::default());
    }

    #[test]
    fn interp_section_round_trips() {
        let interp = InterpEntry {
            evals_per_second: 1e6,
            steps_per_second: 5e6,
            reference_evals_per_second: 2e5,
            speedup: 5.0,
            cases: 25,
            evals: 100_000,
            jobs: 1,
        };
        let mut results = BenchResults::default();
        results.record("bench-interp", 1, RunEntries { interp: Some(interp.clone()), ..Default::default() });
        let rendered = results.render();
        let value = Json::parse(&rendered).unwrap();
        assert_eq!(InterpEntry::from_json(value.get("interp").unwrap()), Some(interp.clone()));
        assert_eq!(
            InterpEntry::from_json(value.get("runs").unwrap().as_arr().unwrap()[0].get("interp").unwrap()),
            Some(interp)
        );
    }

    #[test]
    fn exec_section_round_trips_and_merges() {
        let exec = ExecEntry {
            sweep_reference_per_second: 210.0,
            sweep_serial_per_second: 205.0,
            sweep_overhead_ratio: 0.976,
            sweep_parallel_per_second: 640.0,
            sweep_speedup: 3.12,
            enum_reference_per_second: 9_000.0,
            enum_serial_per_second: 8_800.0,
            enum_overhead_ratio: 0.978,
            enum_parallel_per_second: 26_000.0,
            enum_speedup: 2.95,
            shards_executed: 4_096,
            shards_stolen: 1_201,
            shard_cancellations: 0,
            jobs: 4,
            shard_size: 256,
        };
        let mut results = BenchResults::default();
        results.record("bench-exec", 4, RunEntries { exec: Some(exec.clone()), ..Default::default() });
        // A later tables-only run must not erase the exec section.
        results.record("table2", 1, RunEntries { tables: vec![table("table2", 9.0)], ..Default::default() });
        let rendered = results.render();
        let value = Json::parse(&rendered).unwrap();
        assert_eq!(ExecEntry::from_json(value.get("exec").unwrap()), Some(exec.clone()));
        assert_eq!(
            ExecEntry::from_json(value.get("runs").unwrap().as_arr().unwrap()[0].get("exec").unwrap()),
            Some(exec.clone())
        );
        let dir = std::env::temp_dir().join("lpo_results_exec_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.json");
        std::fs::write(&path, rendered).unwrap();
        let reloaded = BenchResults::load(path.to_str().unwrap());
        assert_eq!(reloaded.exec, Some(exec));
        assert_eq!(reloaded.runs.len(), 2);
    }

    #[test]
    fn tv_section_round_trips_and_merges() {
        let tv = TvEntry {
            refuted_per_second: 5e5,
            reference_refuted_per_second: 1e5,
            refuted_speedup: 5.0,
            survivor_per_second: 900.0,
            reference_survivor_per_second: 720.0,
            survivor_speedup: 1.25,
            absint_refuted_per_second: 4.2e6,
            absint_reference_per_second: 5e5,
            absint_speedup: 8.4,
            absint_cases: 19,
            proved_survivors: 17,
            proved_fraction: 0.85,
            cases: 20,
            plane_cases: 18,
            jobs: 1,
        };
        let mut results = BenchResults::default();
        results.record("bench-tv", 1, RunEntries { tv: Some(tv.clone()), ..Default::default() });
        // A later tables-only run must not erase the tv section.
        results.record("table2", 1, RunEntries { tables: vec![table("table2", 9.0)], ..Default::default() });
        let rendered = results.render();
        let value = Json::parse(&rendered).unwrap();
        assert_eq!(TvEntry::from_json(value.get("tv").unwrap()), Some(tv.clone()));
        assert_eq!(
            TvEntry::from_json(value.get("runs").unwrap().as_arr().unwrap()[0].get("tv").unwrap()),
            Some(tv.clone())
        );
        // And the full loader sees it.
        let dir = std::env::temp_dir().join("lpo_results_tv_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("results.json");
        std::fs::write(&path, rendered).unwrap();
        let reloaded = BenchResults::load(path.to_str().unwrap());
        assert_eq!(reloaded.tv, Some(tv));
        assert_eq!(reloaded.runs.len(), 2);
    }
}
