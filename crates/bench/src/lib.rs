//! # lpo-bench
//!
//! The benchmark harness: every table and figure of the paper's evaluation can
//! be regenerated with the `repro` binary in this crate
//! (`cargo run -p lpo-bench --release --bin repro -- <table1|table2|table3|table4|table5|figure5|all> [--jobs N]`),
//! and the Criterion benches exercise the performance-sensitive components.
//!
//! Every experiment driver runs on the parallel execution engine of
//! `lpo-core` (see `ARCHITECTURE.md` § Execution engine): a `jobs` parameter
//! fans the embarrassingly parallel case/patch/benchmark loops out over a
//! worker pool, with results reassembled in input order so any worker count
//! produces bit-identical results (wall-clock *measurements* — the `[engine]`
//! footers and Table 5's compile-time-delta column — are the only exception). Drivers report their worker/cache/wall
//! accounting as [`DriverStats`], which the `repro` binary also serializes to
//! `BENCH_results.json` for tracking the perf trajectory.
//!
//! The experiment drivers are library functions so that integration tests and
//! benches can call them with scaled-down parameters.
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

pub mod results;

use lpo::prelude::*;
use lpo_corpus::{rq1_suite, rq2_suite, IssueCase, Status};
use lpo_llm::prelude::*;
use lpo_mca::{CostModel, Target};
use lpo_opt::patches::all_patches;
use lpo_opt::pipeline::{OptLevel, Pipeline};
use lpo_souper::{superoptimize_batch as souper_batch, SouperConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A driver's durable-store context: the open [`VerdictStore`] plus whether
/// cases already checkpointed in it should be replayed (`--resume`). Every
/// `*_with_store` driver takes an `Option<&StoreOptions>`; the plain-named
/// variants delegate with `None`.
#[derive(Clone, Debug)]
pub struct StoreOptions {
    /// The open store, shared by every batch of the run.
    pub store: Arc<VerdictStore>,
    /// Replay checkpointed cases instead of recomputing them.
    pub resume: bool,
}

/// Worker/cache/wall-clock accounting for one experiment driver run — the
/// numbers `BENCH_results.json` tracks from PR to PR.
#[derive(Clone, Copy, Debug, Default)]
pub struct DriverStats {
    /// Worker threads used for the driver's outermost parallel loop.
    pub jobs: usize,
    /// Work items the driver processed (cases, patches or benchmarks).
    pub cases: usize,
    /// Sequences replayed from the engine's structural-hash dedup cache.
    pub cache_hits: usize,
    /// Cases that ended `Failed` (typed session errors / contained panics)
    /// instead of completing. Zero on healthy runs.
    pub failed: usize,
    /// Cases replayed from the checkpoint store instead of computed
    /// (`--resume`).
    pub resumed: usize,
    /// Durable verdict/checkpoint store traffic during the driver (all zero
    /// without `--store`).
    pub store: StoreStats,
    /// Real wall-clock time of the whole driver.
    pub wall: Duration,
    /// Stage 3 accounting for drivers that run the LPO engine (zeroed for
    /// drivers that never touch translation validation).
    pub tv: TvSnapshot,
}

impl DriverStats {
    /// Work items per wall-clock second.
    pub fn cases_per_second(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.cases as f64 / secs
        } else {
            0.0
        }
    }

    fn footer(&self) -> String {
        let mut out = format!(
            "[engine] jobs: {}  cases: {}  cache hits: {}  wall: {:.2}s  cases/s: {:.1}\n",
            self.jobs,
            self.cases,
            self.cache_hits,
            self.wall.as_secs_f64(),
            self.cases_per_second()
        );
        if self.tv.candidates > 0 {
            let _ = writeln!(
                out,
                "[stage3] candidates: {}  proved: {}  refuted-abstract: {}  probe rejects: {}  survivors: {}  plane sweeps: {}  compiles: {}  compile-cache hits: {}",
                self.tv.candidates,
                self.tv.proved,
                self.tv.absint_refuted,
                self.tv.probe_rejects,
                self.tv.survivors,
                self.tv.plane_sweeps,
                self.tv.compiles,
                self.tv.compile_cache_hits
            );
        }
        if self.tv.shards_executed > 0 {
            // Scheduling-dependent observability (`stolen` especially):
            // report, never compare across runs.
            let _ = writeln!(
                out,
                "[shards] executed: {}  stolen: {}  cancelled: {}",
                self.tv.shards_executed, self.tv.shards_stolen, self.tv.shard_cancellations
            );
        }
        if self.failed > 0 {
            let _ = writeln!(out, "[failures] failed cases: {}", self.failed);
        }
        if self.resumed > 0 || !self.store.is_empty() {
            let _ = writeln!(
                out,
                "[store] verdict hits: {}  verdict misses: {}  case replays: {}  resumed cases: {}",
                self.store.verdict_hits,
                self.store.verdict_misses,
                self.store.case_replays,
                self.resumed
            );
        }
        out
    }
}

impl DriverStats {
    /// Accounting for a driver that never runs an engine batch (souper /
    /// minotaur baselines, pass-pipeline timings): no dedup cache or Stage 3
    /// state is in play, so those counters are structurally zero — not
    /// unplumbed placeholders.
    fn engineless(jobs: usize, cases: usize, wall: Duration) -> Self {
        Self { jobs, cases, wall, ..Self::default() }
    }
}

impl From<ExecStats> for DriverStats {
    fn from(stats: ExecStats) -> Self {
        Self {
            jobs: stats.jobs,
            cases: stats.cases,
            cache_hits: stats.cache_hits,
            failed: stats.failed_cases,
            resumed: stats.resumed_cases,
            store: stats.store,
            wall: stats.wall_time,
            tv: stats.tv,
        }
    }
}

/// A rendered table plus the execution accounting of the run that made it.
#[derive(Clone, Debug)]
pub struct TableRun {
    /// The rendered table text (with an `[engine]` stats footer).
    pub text: String,
    /// The run's accounting.
    pub stats: DriverStats,
}

fn resolve_jobs(jobs: usize, work: usize) -> usize {
    ExecConfig::with_jobs(jobs).effective_jobs(work)
}

/// Renders Table 1: the selected LLMs.
pub fn table1() -> String {
    let mut out = String::from("Table 1: Selected LLMs\n");
    let _ = writeln!(out, "{:<12} {:<40} {:<10} {:<10}", "Model", "Version", "Reasoning", "Cut-off");
    for m in all_models() {
        let _ = writeln!(
            out,
            "{:<12} {:<40} {:<10} {:<10}",
            m.name,
            m.version,
            if m.reasoning { "Yes" } else { "No" },
            m.cutoff
        );
    }
    out
}

/// One Table 2 row: per-model detection counts for a single issue.
#[derive(Clone, Debug, Default)]
pub struct Rq1Row {
    /// The issue id.
    pub issue: u32,
    /// `(model name, LPO- detections, LPO detections)` out of `rounds`.
    pub per_model: Vec<(String, usize, usize)>,
    /// Whether Souper-Default / Souper-Enum / Minotaur detect it.
    pub souper_default: bool,
    pub souper_enum: bool,
    pub minotaur: bool,
}

/// The RQ1 experiment result (Table 2).
#[derive(Clone, Debug, Default)]
pub struct Rq1Result {
    /// Rows per issue.
    pub rows: Vec<Rq1Row>,
    /// Rounds per model.
    pub rounds: u64,
    /// Model names, in table order.
    pub models: Vec<String>,
    /// Stage 3 accounting aggregated over every LPO run of the experiment.
    pub tv: TvSnapshot,
    /// Dedup-cache replays summed over every engine batch the experiment ran
    /// (single-case batches, so this stays 0 unless batching changes — but it
    /// is measured, not assumed).
    pub cache_hits: usize,
    /// Cases that ended `Failed` across every batch.
    pub failed: usize,
    /// Cases replayed from the checkpoint store (`--resume`).
    pub resumed: usize,
    /// Verdict/checkpoint store traffic over the whole experiment.
    pub store: StoreStats,
}

impl Rq1Result {
    /// Number of issues detected at least once by LPO with the given model.
    pub fn total_detected(&self, model: &str) -> usize {
        self.rows
            .iter()
            .filter(|r| r.per_model.iter().any(|(m, _, lpo)| m == model && *lpo > 0))
            .count()
    }

    /// Average per-round detections for LPO with the given model.
    pub fn average_detected(&self, model: &str) -> f64 {
        let total: usize = self
            .rows
            .iter()
            .flat_map(|r| r.per_model.iter())
            .filter(|(m, _, _)| m == model)
            .map(|(_, _, lpo)| *lpo)
            .sum();
        total as f64 / self.rounds as f64
    }

    /// Number of issues detected at least once by LPO⁻ with the given model.
    pub fn total_detected_minus(&self, model: &str) -> usize {
        self.rows
            .iter()
            .filter(|r| r.per_model.iter().any(|(m, minus, _)| m == model && *minus > 0))
            .count()
    }

    /// Issues found by Souper (either configuration) / Minotaur.
    pub fn souper_total(&self) -> usize {
        self.rows.iter().filter(|r| r.souper_default || r.souper_enum).count()
    }

    /// Issues found by Minotaur.
    pub fn minotaur_total(&self) -> usize {
        self.rows.iter().filter(|r| r.minotaur).count()
    }
}

/// One LPO detection run for a Table 2 cell. The pipeline is shared across
/// cases (its Stage 3 compile cache then serves every case of the
/// experiment); outcomes depend only on the factory seeding, so sharing is
/// invisible to the calibrated numbers.
fn detect_with_lpo(
    case: &IssueCase,
    lpo: &Lpo,
    profile: &ModelProfile,
    rounds: u64,
    seed: u64,
    config: &ExecConfig,
    persist: Option<(&StoreOptions, &str)>,
) -> DetectCell {
    // One factory per (case, model): sessions at case index 0 reproduce the
    // historical per-issue seeding, so the calibrated Table 2 numbers hold.
    let factory = SimulatedModelFactory::new(profile.clone(), seed);
    let sequence = std::slice::from_ref(&case.function);
    let mut cell = DetectCell::default();
    cell.detections = (0..rounds)
        .filter(|&round| {
            let persist = persist.map(|(opts, run_key)| Persist {
                store: opts.store.as_ref(),
                run_key,
                resume: opts.resume,
            });
            let batch =
                lpo.run_sequences_persisted(&factory, round, sequence, config, persist.as_ref());
            cell.cache_hits += batch.stats.cache_hits;
            cell.failed += batch.stats.failed_cases;
            cell.resumed += batch.stats.resumed_cases;
            batch.reports[0].outcome.is_found()
        })
        .count();
    cell
}

/// Accounting of one Table 2 detection cell (one case × model × pipeline).
#[derive(Clone, Copy, Debug, Default)]
struct DetectCell {
    detections: usize,
    cache_hits: usize,
    failed: usize,
    resumed: usize,
}

/// One shared enumerative search per case, replacing the old
/// per-`Enum`-level re-runs (which repeated the depth-0 leaf scan for every
/// level). A single `Enum = 2` run explores exactly the superset of what the
/// shallower configurations would, in the same order under the same budget
/// counter, so [`SouperResult::found_at_depth`] tells us what each level
/// would have concluded: depth 0 → Souper-Default detects, any depth →
/// Souper-Enum detects. Returns `(souper_default, souper_enum)`.
///
/// (The equivalence needs the budget to bind before the per-depth modelled
/// timeout does — true for the 1500-candidate driver budget, where the
/// modelled search time stays far under the 20-minute timeout.)
fn souper_detects_shared(case: &IssueCase) -> (bool, bool) {
    let mut config = SouperConfig::with_enum(2);
    config.candidate_budget = 1500;
    let result = &souper_batch(std::slice::from_ref(&case.function), &config, 1)[0];
    match result.found_at_depth {
        Some(0) => (true, true),
        Some(_) => (false, true),
        None => (false, false),
    }
}

fn minotaur_detects(case: &IssueCase) -> bool {
    lpo_minotaur::superoptimize(&case.function).found()
}

/// Runs the RQ1 detection experiment (Table 2) with the given number of rounds
/// per model (the paper uses 5) over the selected model profiles, fanning the
/// 25 issues out over `jobs` workers (`0` = available parallelism).
pub fn rq1_experiment(
    rounds: u64,
    models: &[ModelProfile],
    jobs: usize,
    shard_size: usize,
) -> Rq1Result {
    rq1_experiment_with_store(rounds, models, jobs, shard_size, None)
}

/// [`rq1_experiment`] with an optional durable store: Stage-3 verdicts are
/// recorded/replayed pipeline-wide, every completed detection cell is
/// checkpointed under a `table2/…` run key, and with
/// [`StoreOptions::resume`] already-checkpointed cells replay instead of
/// recomputing.
pub fn rq1_experiment_with_store(
    rounds: u64,
    models: &[ModelProfile],
    jobs: usize,
    shard_size: usize,
    store: Option<&StoreOptions>,
) -> Rq1Result {
    let suite = rq1_suite();
    let jobs = resolve_jobs(jobs, suite.len());
    let store_before = store.map(|opts| opts.store.stats()).unwrap_or_default();
    // Two shared pipelines (LPO / LPO⁻), so the Stage 3 compile cache spans
    // every (case, model, round) cell and the experiment's probe/survivor
    // accounting can be reported in one snapshot.
    let attach = |lpo: Lpo| match store {
        Some(opts) => lpo.with_verdict_store(opts.store.clone()),
        None => lpo,
    };
    let lpo_plus = attach(Lpo::new(LpoConfig::default()));
    let lpo_minus = attach(Lpo::new(LpoConfig::without_feedback()));
    // The detection cells stay one-case-per-batch (the calibrated seeding),
    // so each inner run is serial — but its Stage 3 sweeps still go through
    // the shard engine at the requested shard size.
    let detect_config = ExecConfig { shard_size, ..ExecConfig::serial() };
    let cells = parallel_map_ordered(&suite, jobs, |_, case| {
        let (souper_default, souper_enum) = souper_detects_shared(case);
        let mut row = Rq1Row {
            issue: case.issue_id,
            souper_default,
            souper_enum,
            minotaur: minotaur_detects(case),
            ..Default::default()
        };
        let mut tally = DetectCell::default();
        for profile in models {
            // Distinct run keys per (pipeline, model, issue): checkpoints of
            // one cell must never be replayed by another.
            let minus_key = format!("table2/lpo-/{}/issue{}", profile.name, case.issue_id);
            let plus_key = format!("table2/lpo/{}/issue{}", profile.name, case.issue_id);
            let minus = detect_with_lpo(
                case, &lpo_minus, profile, rounds, case.issue_id as u64, &detect_config,
                store.map(|opts| (opts, minus_key.as_str())),
            );
            let plus = detect_with_lpo(
                case, &lpo_plus, profile, rounds, case.issue_id as u64, &detect_config,
                store.map(|opts| (opts, plus_key.as_str())),
            );
            tally.cache_hits += minus.cache_hits + plus.cache_hits;
            tally.failed += minus.failed + plus.failed;
            tally.resumed += minus.resumed + plus.resumed;
            row.per_model.push((profile.name.to_string(), minus.detections, plus.detections));
        }
        (row, tally)
    });
    let cache_hits = cells.iter().map(|(_, tally)| tally.cache_hits).sum();
    let failed = cells.iter().map(|(_, tally)| tally.failed).sum();
    let resumed = cells.iter().map(|(_, tally)| tally.resumed).sum();
    let rows = cells.into_iter().map(|(row, _)| row).collect();
    let mut tv = lpo_plus.tv_snapshot();
    tv.absorb(lpo_minus.tv_snapshot());
    Rq1Result {
        rows,
        rounds,
        models: models.iter().map(|m| m.name.to_string()).collect(),
        tv,
        cache_hits,
        failed,
        resumed,
        store: store.map(|opts| opts.store.stats().since(store_before)).unwrap_or_default(),
    }
}

/// Renders Table 2.
pub fn table2(rounds: u64, models: &[ModelProfile], jobs: usize, shard_size: usize) -> TableRun {
    table2_with_store(rounds, models, jobs, shard_size, None)
}

/// [`table2`] with an optional durable store (see
/// [`rq1_experiment_with_store`]).
pub fn table2_with_store(
    rounds: u64,
    models: &[ModelProfile],
    jobs: usize,
    shard_size: usize,
    store: Option<&StoreOptions>,
) -> TableRun {
    let start = Instant::now();
    let result = rq1_experiment_with_store(rounds, models, jobs, shard_size, store);
    let mut out = format!("Table 2: RQ1 detection of 25 previously reported missed optimizations ({rounds} rounds)\n");
    let _ = write!(out, "{:<10}", "Issue");
    for m in &result.models {
        let _ = write!(out, " {:>6}- {:>6}", m.chars().take(6).collect::<String>(), m.chars().take(6).collect::<String>());
    }
    let _ = writeln!(out, " {:>8} {:>8} {:>8}", "SouperD", "SouperE", "Minotaur");
    for row in &result.rows {
        let _ = write!(out, "{:<10}", row.issue);
        for (_, minus, plus) in &row.per_model {
            let _ = write!(out, " {minus:>7} {plus:>6}");
        }
        let _ = writeln!(
            out,
            " {:>8} {:>8} {:>8}",
            if row.souper_default { "x" } else { "" },
            if row.souper_enum { "x" } else { "" },
            if row.minotaur { "x" } else { "" }
        );
    }
    let _ = writeln!(out, "\nTotals (detected at least once):");
    for m in &result.models {
        let _ = writeln!(
            out,
            "  {:<12} LPO-: {:>2}   LPO: {:>2}   avg/round: {:.1}",
            m,
            result.total_detected_minus(m),
            result.total_detected(m),
            result.average_detected(m)
        );
    }
    let _ = writeln!(out, "  Souper (any Enum): {}", result.souper_total());
    let _ = writeln!(out, "  Minotaur:          {}", result.minotaur_total());
    let stats = DriverStats {
        jobs: resolve_jobs(jobs, result.rows.len()),
        cases: result.rows.len(),
        cache_hits: result.cache_hits,
        failed: result.failed,
        resumed: result.resumed,
        store: result.store,
        wall: start.elapsed(),
        tv: result.tv,
    };
    out.push_str(&stats.footer());
    TableRun { text: out, stats }
}

/// The RQ2 result (Table 3).
#[derive(Clone, Debug, Default)]
pub struct Rq2Result {
    /// `(issue, status, souper_default, souper_enum, minotaur)` per case.
    pub rows: Vec<(u32, Status, bool, bool, bool)>,
    /// Rows replayed from the checkpoint store (`--resume`).
    pub resumed: usize,
    /// Checkpoint-store traffic over the experiment.
    pub store: StoreStats,
}

impl Rq2Result {
    /// Status histogram.
    pub fn status_counts(&self) -> BTreeMap<&'static str, usize> {
        let mut map = BTreeMap::new();
        for (_, status, _, _, _) in &self.rows {
            *map.entry(status.label()).or_insert(0) += 1;
        }
        map
    }

    /// How many cases each baseline detects.
    pub fn baseline_counts(&self) -> (usize, usize, usize) {
        let d = self.rows.iter().filter(|r| r.2).count();
        let e = self.rows.iter().filter(|r| r.3).count();
        let m = self.rows.iter().filter(|r| r.4).count();
        (d, e, m)
    }
}

/// Runs the RQ2 baseline-comparison experiment over the 62 found
/// optimizations, one case per work item on `jobs` workers.
pub fn rq2_experiment(jobs: usize) -> Rq2Result {
    rq2_experiment_with_store(jobs, None)
}

/// [`rq2_experiment`] with optional per-case checkpointing: each completed
/// row's baseline bits are recorded under the `table3` run key, and with
/// [`StoreOptions::resume`] recorded rows skip the (expensive) baseline
/// searches entirely.
pub fn rq2_experiment_with_store(jobs: usize, store: Option<&StoreOptions>) -> Rq2Result {
    let suite = rq2_suite();
    let jobs = resolve_jobs(jobs, suite.len());
    let store_before = store.map(|opts| opts.store.stats()).unwrap_or_default();
    let rows = parallel_map_ordered(&suite, jobs, |_, case| {
        let key = format!("issue{}", case.issue_id);
        if let Some(opts) = store.filter(|opts| opts.resume) {
            if let Some((d, e, m)) =
                opts.store.case("table3", &key).and_then(|blob| decode_baseline_bits(&blob))
            {
                return ((case.issue_id, case.status, d, e, m), true);
            }
        }
        let (souper_default, souper_enum) = souper_detects_shared(case);
        let minotaur = minotaur_detects(case);
        if let Some(opts) = store {
            let blob = encode_baseline_bits(souper_default, souper_enum, minotaur);
            opts.store.record_case("table3", &key, &blob);
        }
        ((case.issue_id, case.status, souper_default, souper_enum, minotaur), false)
    });
    let resumed = rows.iter().filter(|(_, resumed)| *resumed).count();
    Rq2Result {
        rows: rows.into_iter().map(|(row, _)| row).collect(),
        resumed,
        store: store.map(|opts| opts.store.stats().since(store_before)).unwrap_or_default(),
    }
}

/// `(souper_default, souper_enum, minotaur)` → a three-bit checkpoint blob.
fn encode_baseline_bits(d: bool, e: bool, m: bool) -> String {
    [d, e, m].iter().map(|&bit| if bit { '1' } else { '0' }).collect()
}

/// Parses [`encode_baseline_bits`]; `None` (= recompute) on anything else.
fn decode_baseline_bits(blob: &str) -> Option<(bool, bool, bool)> {
    let bits: Vec<bool> = blob
        .chars()
        .map(|c| match c {
            '0' => Some(false),
            '1' => Some(true),
            _ => None,
        })
        .collect::<Option<_>>()?;
    match bits[..] {
        [d, e, m] => Some((d, e, m)),
        _ => None,
    }
}

/// Renders Table 3.
pub fn table3(jobs: usize) -> TableRun {
    table3_with_store(jobs, None)
}

/// [`table3`] with optional per-case checkpointing (see
/// [`rq2_experiment_with_store`]).
pub fn table3_with_store(jobs: usize, store: Option<&StoreOptions>) -> TableRun {
    let start = Instant::now();
    let result = rq2_experiment_with_store(jobs, store);
    let mut out = String::from("Table 3: the 62 missed optimizations found by LPO\n");
    let _ = writeln!(out, "{:<10} {:<14} {:>8} {:>8} {:>9}", "Issue", "Status", "SouperD", "SouperE", "Minotaur");
    for (issue, status, d, e, m) in &result.rows {
        let _ = writeln!(
            out,
            "{:<10} {:<14} {:>8} {:>8} {:>9}",
            issue,
            status.label(),
            if *d { "x" } else { "" },
            if *e { "x" } else { "" },
            if *m { "x" } else { "" }
        );
    }
    let _ = writeln!(out, "\nStatus counts: {:?}", result.status_counts());
    let (d, e, m) = result.baseline_counts();
    let _ = writeln!(out, "Detected by Souper-Default: {d}, Souper-Enum: {e}, Minotaur: {m} (out of 62)");
    let stats = DriverStats {
        resumed: result.resumed,
        store: result.store,
        ..DriverStats::engineless(
            resolve_jobs(jobs, result.rows.len()),
            result.rows.len(),
            start.elapsed(),
        )
    };
    out.push_str(&stats.footer());
    TableRun { text: out, stats }
}

/// One Table 4 row.
#[derive(Clone, Debug)]
pub struct ThroughputRow {
    /// Tool / configuration name.
    pub tool: String,
    /// Average modelled seconds per case.
    pub seconds_per_case: f64,
    /// Number of (modelled) timeouts.
    pub timeouts: usize,
    /// Total modelled cost in USD (API models only).
    pub total_cost_usd: f64,
}

/// Runs the RQ3 throughput experiment on `samples` sequences drawn from the
/// synthetic corpus (the paper uses 5,000; the default harness uses fewer to
/// stay laptop-friendly — the per-case averages are what matter).
///
/// Extraction is sharded per module (as a production deployment would shard
/// per translation unit), so cross-module duplicate sequences reach the
/// engine and exercise its structural-hash dedup cache; the LPO rows and the
/// Souper baselines all fan out over `jobs` workers.
pub fn rq3_experiment(samples: usize, jobs: usize, shard_size: usize) -> (Vec<ThroughputRow>, DriverStats) {
    rq3_experiment_with_store(samples, jobs, shard_size, None)
}

/// [`rq3_experiment`] with an optional durable store: each model profile's
/// batch runs under its own `table4/…` run key, so a killed run resumes with
/// the completed cases replayed from their checkpoints.
pub fn rq3_experiment_with_store(
    samples: usize,
    jobs: usize,
    shard_size: usize,
    store: Option<&StoreOptions>,
) -> (Vec<ThroughputRow>, DriverStats) {
    use lpo_extract::{ExtractConfig, Extractor};
    let start = Instant::now();
    let store_before = store.map(|opts| opts.store.stats()).unwrap_or_default();
    let corpus = lpo_corpus::generate_corpus(&lpo_corpus::CorpusConfig {
        modules_per_project: 4,
        functions_per_module: 4,
        ..Default::default()
    });
    let mut sequences = Vec::new();
    'outer: for project in &corpus {
        for module in &project.modules {
            let mut extractor =
                Extractor::new(ExtractConfig { min_instructions: 2, ..Default::default() });
            for seq in extractor.extract_module(module) {
                sequences.push(seq.function);
                if sequences.len() >= samples {
                    break 'outer;
                }
            }
        }
    }

    let mut cache_hits = 0;
    let mut failed = 0;
    let mut resumed = 0;
    let mut tv = TvSnapshot::default();
    let mut rows = Vec::new();
    // One pipeline for both model profiles: they verify candidates over the
    // same sequence list, so the second profile's probe survivors hit the
    // compiled-function cache the first profile populated.
    let lpo = match store {
        Some(opts) => Lpo::new(LpoConfig::default()).with_verdict_store(opts.store.clone()),
        None => Lpo::new(LpoConfig::default()),
    };
    let exec_config = ExecConfig { shard_size, ..ExecConfig::with_jobs(jobs) };
    for profile in [llama3_3(), gemini2_5()] {
        let factory = SimulatedModelFactory::new(profile.clone(), 0xbeef);
        let run_key = format!("table4/{}", profile.name);
        let persist = store.map(|opts| Persist {
            store: opts.store.as_ref(),
            run_key: &run_key,
            resume: opts.resume,
        });
        let batch = lpo.run_sequences_persisted(&factory, 0, &sequences, &exec_config, persist.as_ref());
        // Both model runs share one sequence list, so their hit counts are
        // equal — report the per-list count, not the sum over runs.
        cache_hits = batch.stats.cache_hits;
        failed += batch.stats.failed_cases;
        resumed += batch.stats.resumed_cases;
        tv.absorb(batch.stats.tv);
        rows.push(ThroughputRow {
            tool: format!("LPO ({})", profile.name),
            seconds_per_case: batch.summary.seconds_per_case(),
            timeouts: 0,
            total_cost_usd: batch.summary.total_cost_usd,
        });
    }
    for enum_depth in 0..=3u32 {
        let mut config = SouperConfig::with_enum(enum_depth);
        config.candidate_budget = 1200;
        let mut total = Duration::ZERO;
        let mut timeouts = 0;
        for r in souper_batch(&sequences, &config, jobs) {
            total += r.modeled;
            if matches!(r.outcome, lpo_souper::Outcome::Timeout) {
                timeouts += 1;
            }
        }
        let name = if enum_depth == 0 {
            "Souper (Default)".to_string()
        } else {
            format!("Souper (Enum={enum_depth})")
        };
        rows.push(ThroughputRow {
            tool: name,
            seconds_per_case: total.as_secs_f64() / sequences.len().max(1) as f64,
            timeouts,
            total_cost_usd: 0.0,
        });
    }
    let stats = DriverStats {
        jobs: resolve_jobs(jobs, sequences.len()),
        cases: sequences.len(),
        cache_hits,
        failed,
        resumed,
        store: store.map(|opts| opts.store.stats().since(store_before)).unwrap_or_default(),
        wall: start.elapsed(),
        tv,
    };
    (rows, stats)
}

/// Renders Table 4.
pub fn table4(samples: usize, jobs: usize, shard_size: usize) -> TableRun {
    table4_with_store(samples, jobs, shard_size, None)
}

/// [`table4`] with an optional durable store (see
/// [`rq3_experiment_with_store`]).
pub fn table4_with_store(
    samples: usize,
    jobs: usize,
    shard_size: usize,
    store: Option<&StoreOptions>,
) -> TableRun {
    let (rows, stats) = rq3_experiment_with_store(samples, jobs, shard_size, store);
    let mut out = format!("Table 4: throughput and cost over {} sampled instruction sequences\n", stats.cases);
    let _ = writeln!(out, "{:<20} {:>14} {:>10} {:>12}", "Tool", "Time/case (s)", "Timeouts", "Cost (USD)");
    for row in &rows {
        let _ = writeln!(
            out,
            "{:<20} {:>14.1} {:>10} {:>12.4}",
            row.tool, row.seconds_per_case, row.timeouts, row.total_cost_usd
        );
    }
    out.push_str(&stats.footer());
    TableRun { text: out, stats }
}

/// One Table 5 row: prevalence and compile-time impact of an accepted patch.
#[derive(Clone, Debug)]
pub struct PatchImpactRow {
    /// Patch id (issue number, possibly with a `(n)` suffix).
    pub id: String,
    /// IR files (modules) in which the patch fired.
    pub impacted_files: usize,
    /// Projects in which the patch fired.
    pub impacted_projects: usize,
    /// Relative compile-time (optimizer wall-clock) change, in percent.
    pub compile_time_delta_pct: f64,
}

/// Runs the Table 5 prevalence / compile-time experiment over the synthetic
/// corpus, one patch per work item on `jobs` workers (each patch's base and
/// patched pipelines are timed on the same worker, so the relative
/// compile-time delta stays an apples-to-apples comparison).
pub fn table5_experiment(jobs: usize) -> Vec<PatchImpactRow> {
    table5_experiment_with_store(jobs, None).0
}

/// [`table5_experiment`] with optional per-patch checkpointing under the
/// `table5` run key; returns `(rows, resumed_rows)`. A replayed row carries
/// the *recorded* compile-time delta (a measurement of the checkpointed run,
/// not of this one) — prevalence counts are deterministic either way.
pub fn table5_experiment_with_store(
    jobs: usize,
    store: Option<&StoreOptions>,
) -> (Vec<PatchImpactRow>, usize) {
    let corpus = lpo_corpus::generate_corpus(&lpo_corpus::CorpusConfig {
        modules_per_project: 8,
        functions_per_module: 4,
        pattern_rate: 0.8,
        ..Default::default()
    });
    let patches = all_patches();
    let jobs = resolve_jobs(jobs, patches.len());
    let rows = parallel_map_ordered(&patches, jobs, |_, &patch| {
        if let Some(opts) = store.filter(|opts| opts.resume) {
            if let Some(row) =
                opts.store.case("table5", patch.id).and_then(|blob| decode_patch_row(patch.id, &blob))
            {
                return (row, true);
            }
        }
        let row = patch_impact(&corpus, patch);
        if let Some(opts) = store {
            opts.store.record_case("table5", patch.id, &encode_patch_row(&row));
        }
        (row, false)
    });
    let resumed = rows.iter().filter(|(_, resumed)| *resumed).count();
    (rows.into_iter().map(|(row, _)| row).collect(), resumed)
}

/// Serializes one Table 5 row for checkpointing (delta exact via
/// [`f64::to_bits`]).
fn encode_patch_row(row: &PatchImpactRow) -> String {
    format!(
        "{}\t{}\t{:#018x}",
        row.impacted_files,
        row.impacted_projects,
        row.compile_time_delta_pct.to_bits()
    )
}

/// Parses [`encode_patch_row`]; `None` (= recompute) on anything malformed.
fn decode_patch_row(id: &str, blob: &str) -> Option<PatchImpactRow> {
    let mut fields = blob.split('\t');
    let impacted_files = fields.next()?.parse::<usize>().ok()?;
    let impacted_projects = fields.next()?.parse::<usize>().ok()?;
    let delta_bits = u64::from_str_radix(fields.next()?.strip_prefix("0x")?, 16).ok()?;
    fields.next().is_none().then(|| PatchImpactRow {
        id: id.to_string(),
        impacted_files,
        impacted_projects,
        compile_time_delta_pct: f64::from_bits(delta_bits),
    })
}

/// Measures one patch's prevalence and compile-time impact over the corpus.
fn patch_impact(corpus: &[lpo_corpus::Project], patch: lpo_opt::patches::Patch) -> PatchImpactRow {
    {
        let base = Pipeline::new(OptLevel::O2);
        let patched = Pipeline::new(OptLevel::O2).with_patches(vec![patch]);
        let mut impacted_files = 0;
        let mut impacted_projects = 0;
        let mut base_time = Duration::ZERO;
        let mut patched_time = Duration::ZERO;
        for project in corpus {
            let mut project_hit = false;
            for module in &project.modules {
                let mut m1 = module.clone();
                let t0 = std::time::Instant::now();
                base.run_module(&mut m1);
                base_time += t0.elapsed();

                let mut m2 = module.clone();
                let t1 = std::time::Instant::now();
                let stats = patched.run_module(&mut m2);
                patched_time += t1.elapsed();
                if stats.hits_of(patch.rule.name) > 0 {
                    impacted_files += 1;
                    project_hit = true;
                }
            }
            if project_hit {
                impacted_projects += 1;
            }
        }
        let delta = if base_time.as_secs_f64() > 0.0 {
            (patched_time.as_secs_f64() - base_time.as_secs_f64()) / base_time.as_secs_f64() * 100.0
        } else {
            0.0
        };
        PatchImpactRow {
            id: patch.id.to_string(),
            impacted_files,
            impacted_projects,
            compile_time_delta_pct: delta,
        }
    }
}

/// Renders Table 5.
pub fn table5(jobs: usize) -> TableRun {
    table5_with_store(jobs, None)
}

/// [`table5`] with optional per-patch checkpointing (see
/// [`table5_experiment_with_store`]).
pub fn table5_with_store(jobs: usize, store: Option<&StoreOptions>) -> TableRun {
    let start = Instant::now();
    let store_before = store.map(|opts| opts.store.stats()).unwrap_or_default();
    let (rows, resumed) = table5_experiment_with_store(jobs, store);
    let mut out = String::from("Table 5: prevalence and compile-time impact of the accepted patches\n");
    let _ = writeln!(out, "{:<14} {:>9} {:>10} {:>20}", "Patch", "#IR files", "#Projects", "d Compile time (%)");
    for row in &rows {
        let _ = writeln!(
            out,
            "{:<14} {:>9} {:>10} {:>+19.2}%",
            row.id, row.impacted_files, row.impacted_projects, row.compile_time_delta_pct
        );
    }
    let stats = DriverStats {
        resumed,
        store: store.map(|opts| opts.store.stats().since(store_before)).unwrap_or_default(),
        ..DriverStats::engineless(resolve_jobs(jobs, rows.len()), rows.len(), start.elapsed())
    };
    out.push_str(&stats.footer());
    TableRun { text: out, stats }
}

/// One Figure 5 data point.
#[derive(Clone, Debug)]
pub struct SpeedupPoint {
    /// The patch id (or "Yearly" for the version-to-version comparison).
    pub label: String,
    /// Geometric-mean speedup over the SPEC-like suite (1.0 = no change).
    pub speedup: f64,
}

/// Runs the Figure 5 experiment: estimated-cycle speedups of each accepted
/// patch on the SPEC-like module set, plus a "yearly" comparison that enables
/// every patch at once. Each of the ten pipeline configurations is one work
/// item on `jobs` workers.
pub fn figure5_experiment(jobs: usize) -> Vec<SpeedupPoint> {
    let benches = lpo_corpus::spec_benchmarks(20251201);
    let cost = CostModel::new(Target::Btver2Like);
    let figure_ids = ["128134", "142674", "143211", "143636", "157315", "157370", "157524", "163108 (1)", "163108 (2)"];
    let base = Pipeline::new(OptLevel::O2);
    let baseline_cycles: Vec<f64> = benches
        .iter()
        .map(|(_, m)| {
            let mut m = m.clone();
            base.run_module(&mut m);
            m.functions.iter().map(|f| cost.estimate(f).total_cycles).sum::<f64>()
        })
        .collect();
    let mut configs: Vec<(String, Vec<lpo_opt::patches::Patch>)> = figure_ids
        .iter()
        .map(|&id| (id.to_string(), all_patches().into_iter().filter(|p| p.id == id).collect()))
        .collect();
    configs.push(("Yearly".to_string(), all_patches()));
    let jobs = resolve_jobs(jobs, configs.len());
    parallel_map_ordered(&configs, jobs, |_, (label, patches)| {
        let pipeline = Pipeline::new(OptLevel::O2).with_patches(patches.clone());
        let mut ratios = Vec::new();
        for ((_, module), base_cycles) in benches.iter().zip(&baseline_cycles) {
            let mut m = module.clone();
            pipeline.run_module(&mut m);
            let cycles: f64 = m.functions.iter().map(|f| cost.estimate(f).total_cycles).sum();
            if cycles > 0.0 {
                ratios.push(base_cycles / cycles);
            }
        }
        let geo: f64 = ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len().max(1) as f64;
        SpeedupPoint { label: label.clone(), speedup: geo.exp() }
    })
}

/// One interpreter-throughput measurement: the rendered report plus the
/// entry recorded in `BENCH_results.json`'s `interp` section.
#[derive(Clone, Debug)]
pub struct InterpBenchRun {
    /// Human-readable report.
    pub text: String,
    /// The numbers (evals/sec, steps/sec, reference baseline, speedup).
    pub entry: results::InterpEntry,
}

/// Measures concrete-evaluation throughput over the rq1 suite: every case's
/// full translation-validation input set is evaluated on the register-file
/// evaluator (compiled once per case per pass, the same shape as the TV hot
/// path) and on the pre-change reference evaluator, on `jobs` workers each
/// owning one [`lpo_tv::prelude::EvalArena`].
///
/// This is the workload behind `repro bench-interp` and the CI `bench-smoke`
/// regression gate; measure with `--jobs 1` when comparing across builds.
pub fn bench_interp(jobs: usize) -> InterpBenchRun {
    use lpo_interp::prelude::{evaluate_reference, CompiledFunction, EvalArena};
    use lpo_tv::prelude::{generate_inputs, InputConfig, TestInput};

    const STEP_LIMIT: usize = 1 << 14;
    /// Minimum measurement time per evaluator pass.
    const MIN_TIME: Duration = Duration::from_millis(900);

    let suite = rq1_suite();
    let workloads: Vec<(lpo_ir::function::Function, Vec<TestInput>)> = suite
        .iter()
        .map(|case| {
            let inputs = generate_inputs(&case.function, &InputConfig::default());
            (case.function.clone(), inputs)
        })
        .collect();
    let jobs = resolve_jobs(jobs, workloads.len());

    /// Accumulated (evaluations, steps, wall) of one evaluator's passes.
    #[derive(Default)]
    struct Tally {
        evals: usize,
        steps: u64,
        wall: Duration,
    }

    impl Tally {
        fn add(&mut self, pass: &dyn Fn() -> (usize, u64)) {
            let start = Instant::now();
            let (e, s) = pass();
            self.wall += start.elapsed();
            self.evals += e;
            self.steps += s;
        }
    }

    let compiled_pass = || -> (usize, u64) {
        parallel_map_ordered_with(&workloads, jobs, EvalArena::new, |arena, _, (func, inputs)| {
            // Compile once per case per pass: the same amortization shape as
            // the TV hot path (one compile per candidate, reused across all
            // of its inputs).
            let compiled = CompiledFunction::compile(func);
            let mut steps = 0u64;
            for input in inputs {
                if let Ok(out) =
                    compiled.evaluate_with_limit(arena, &input.args, input.memory.clone(), STEP_LIMIT)
                {
                    steps += out.steps as u64;
                }
            }
            (inputs.len(), steps)
        })
        .into_iter()
        .fold((0, 0), |(e, s), (pe, ps)| (e + pe, s + ps))
    };

    let reference_pass = || -> (usize, u64) {
        parallel_map_ordered(&workloads, jobs, |_, (func, inputs)| {
            let mut steps = 0u64;
            for input in inputs {
                if let Ok(out) =
                    evaluate_reference(func, &input.args, input.memory.clone(), STEP_LIMIT)
                {
                    steps += out.steps as u64;
                }
            }
            (inputs.len(), steps)
        })
        .into_iter()
        .fold((0, 0), |(e, s), (pe, ps)| (e + pe, s + ps))
    };

    // Interleave the two evaluators' passes so slow drift in host load hits
    // both sides equally — the reported speedup is then stable even on noisy
    // shared machines.
    let mut fast = Tally::default();
    let mut slow = Tally::default();
    let mut passes = 0usize;
    while passes < 2 || fast.wall + slow.wall < MIN_TIME * 2 {
        fast.add(&compiled_pass);
        slow.add(&reference_pass);
        passes += 1;
    }

    let (fast_evals, fast_steps, fast_wall) = (fast.evals, fast.steps, fast.wall);
    let (ref_evals, ref_wall) = (slow.evals, slow.wall);

    let evals_per_second = fast_evals as f64 / fast_wall.as_secs_f64();
    let steps_per_second = fast_steps as f64 / fast_wall.as_secs_f64();
    let reference_evals_per_second = ref_evals as f64 / ref_wall.as_secs_f64();
    let speedup = if reference_evals_per_second > 0.0 {
        evals_per_second / reference_evals_per_second
    } else {
        0.0
    };
    let total_inputs: usize = workloads.iter().map(|(_, inputs)| inputs.len()).sum();

    let entry = results::InterpEntry {
        evals_per_second,
        steps_per_second,
        reference_evals_per_second,
        speedup,
        cases: workloads.len(),
        evals: total_inputs,
        jobs,
    };
    let mut text = format!(
        "Interpreter throughput: rq1 suite ({} cases, {} inputs per pass, jobs: {jobs})\n",
        entry.cases, entry.evals
    );
    let _ = writeln!(
        text,
        "  register-file evaluator: {:>12.0} evals/s  {:>14.0} steps/s",
        evals_per_second, steps_per_second
    );
    let _ = writeln!(text, "  reference evaluator:     {reference_evals_per_second:>12.0} evals/s");
    let _ = writeln!(text, "  speedup:                 {speedup:>11.2}x");
    InterpBenchRun { text, entry }
}

/// One canonicalization-throughput measurement: the rendered report plus the
/// entry recorded in `BENCH_results.json`'s `opt` section.
#[derive(Clone, Debug)]
pub struct OptBenchRun {
    /// Human-readable report.
    pub text: String,
    /// The numbers (canonicalizations/sec at both scales, speedups).
    pub entry: results::OptEntry,
}

/// Composes `copies` renamed copies of a case body into one straight-line
/// function (results combined by an xor chain so every copy stays live) and
/// injects one foldable redundancy per copy — the translation-unit-scale
/// canonicalization workload. Returns `None` for non-scalar-int returns.
fn compose_module_scale(func: &lpo_ir::function::Function, copies: usize) -> Option<lpo_ir::function::Function> {
    use lpo_ir::function::Function;
    use lpo_ir::instruction::{BinOp, InstId, InstKind, Instruction, Value};
    use lpo_ir::types::Type;
    let width = match func.ret_ty {
        Type::Int(w) => w,
        _ => return None,
    };
    let ret_val = func.return_value()?.clone();
    let mut out = Function::new(format!("{}.x{copies}", func.name), func.ret_ty.clone());
    out.params = func.params.clone();
    let entry = out.entry();
    let mut results: Vec<Value> = Vec::new();
    for copy in 0..copies {
        let mut map: std::collections::HashMap<InstId, Value> = std::collections::HashMap::new();
        for (id, inst) in func.iter_insts() {
            if inst.is_terminator() {
                continue;
            }
            let mut kind = inst.kind.clone();
            for op in kind.operands_mut() {
                if let Value::Inst(dep) = op {
                    *op = map.get(dep).cloned()?;
                }
            }
            let new_id = out.append_inst(
                entry,
                Instruction::new(kind, inst.ty.clone(), format!("c{copy}.{}", inst.name)),
            );
            map.insert(id, Value::Inst(new_id));
        }
        let result = match &ret_val {
            Value::Inst(id) => map.get(id).cloned()?,
            other => other.clone(),
        };
        // One foldable redundancy per copy: the sparse-rewrite shape the
        // worklist engine is built for.
        let redundant = out.append_inst(
            entry,
            Instruction::new(
                InstKind::Binary {
                    op: BinOp::Add,
                    lhs: result,
                    rhs: Value::int(width, 0),
                    flags: Default::default(),
                },
                func.ret_ty.clone(),
                format!("r{copy}"),
            ),
        );
        results.push(Value::Inst(redundant));
    }
    let mut acc = results.first()?.clone();
    for r in results.iter().skip(1) {
        let id = out.append_inst(
            entry,
            Instruction::new(
                InstKind::Binary { op: BinOp::Xor, lhs: acc, rhs: r.clone(), flags: Default::default() },
                func.ret_ty.clone(),
                format!("acc{}", out.inst_arena_len()),
            ),
        );
        acc = Value::Inst(id);
    }
    out.append_inst(entry, Instruction::new(InstKind::Ret { value: Some(acc) }, Type::Void, ""));
    lpo_ir::verifier::verify_function(&out).ok()?;
    Some(out)
}

/// Copies of each case body composed into one module-scale function.
const COMPOSE_COPIES: usize = 8;

/// Measures Stage 1 canonicalization throughput over the rq1 suite at two
/// scales, on the worklist engine and on [`Pipeline::optimize_reference`]
/// (the retained rescan engine with the seed's rescan-based DCE):
///
/// * **per-candidate scale** — each raw rq1 case, the shape of verifying one
///   LLM candidate (already canonical, so this is the confirmation pass);
/// * **module scale** — eight renamed copies of each case body composed into
///   one straight-line function with one foldable redundancy per copy, the
///   translation-unit shape the ROADMAP's production-scale north star cares
///   about, where clean-position skipping pays off.
///
/// This is the workload behind `repro bench-opt` and the CI `bench-smoke`
/// regression gate; measure with `--jobs 1` when comparing across builds.
pub fn bench_opt(jobs: usize) -> OptBenchRun {
    use lpo_ir::function::Function;
    use lpo_opt::pipeline::{OptLevel, Pipeline};

    /// Minimum measurement time per engine per scale.
    const MIN_TIME: Duration = Duration::from_millis(500);

    let suite = rq1_suite();
    let cases: Vec<Function> = suite.iter().map(|case| case.function.clone()).collect();
    let composed: Vec<Function> =
        cases.iter().filter_map(|f| compose_module_scale(f, COMPOSE_COPIES)).collect();
    let jobs = resolve_jobs(jobs, cases.len());
    let pipeline = Pipeline::new(OptLevel::O2);

    /// Accumulated (canonicalizations, wall) of one engine's passes.
    #[derive(Default)]
    struct Tally {
        canon: usize,
        wall: Duration,
    }

    impl Tally {
        fn add(&mut self, pass: &dyn Fn() -> usize) {
            let start = Instant::now();
            self.canon += pass();
            self.wall += start.elapsed();
        }
    }

    let run_pass = |functions: &[Function], reference: bool| -> usize {
        parallel_map_ordered(functions, jobs, |_, func| {
            let mut scratch = func.clone();
            if reference {
                pipeline.optimize_reference(&mut scratch);
            } else {
                pipeline.run(&mut scratch);
            }
        })
        .len()
    };

    let measure = |functions: &[Function]| -> (Tally, Tally) {
        let mut fast = Tally::default();
        let mut slow = Tally::default();
        let mut passes = 0usize;
        // Interleave the two engines' passes so slow drift in host load hits
        // both sides equally.
        while passes < 2 || fast.wall + slow.wall < MIN_TIME * 2 {
            fast.add(&|| run_pass(functions, false));
            slow.add(&|| run_pass(functions, true));
            passes += 1;
        }
        (fast, slow)
    };

    let (case_fast, case_slow) = measure(&cases);
    let (module_fast, module_slow) = measure(&composed);

    let per_second = |tally: &Tally| tally.canon as f64 / tally.wall.as_secs_f64();
    let canon_per_second = per_second(&module_fast);
    let reference_canon_per_second = per_second(&module_slow);
    let case_canon_per_second = per_second(&case_fast);
    let case_reference_canon_per_second = per_second(&case_slow);
    let ratio = |fast: f64, slow: f64| if slow > 0.0 { fast / slow } else { 0.0 };

    let entry = results::OptEntry {
        canon_per_second,
        reference_canon_per_second,
        speedup: ratio(canon_per_second, reference_canon_per_second),
        case_canon_per_second,
        case_reference_canon_per_second,
        case_speedup: ratio(case_canon_per_second, case_reference_canon_per_second),
        cases: cases.len(),
        functions: composed.len(),
        jobs,
    };
    let mut text = format!(
        "Canonicalization throughput: rq1 suite ({} cases; {} module-scale compositions of {} copies, jobs: {jobs})\n",
        entry.cases, entry.functions, COMPOSE_COPIES
    );
    let _ = writeln!(
        text,
        "  module scale   worklist: {:>9.0} canon/s   reference: {:>9.0} canon/s   speedup: {:.2}x",
        canon_per_second, reference_canon_per_second, entry.speedup
    );
    let _ = writeln!(
        text,
        "  per-candidate  worklist: {:>9.0} canon/s   reference: {:>9.0} canon/s   speedup: {:.2}x",
        case_canon_per_second, case_reference_canon_per_second, entry.case_speedup
    );
    OptBenchRun { text, entry }
}

/// One translation-validation throughput measurement: the rendered report
/// plus the entry recorded in `BENCH_results.json`'s `tv` section.
#[derive(Clone, Debug)]
pub struct TvBenchRun {
    /// Human-readable report.
    pub text: String,
    /// The numbers (refuted/survivor verification throughput + speedups).
    pub entry: results::TvEntry,
}

/// Builds the canonical *wrong* candidate for a scalar-int-returning case:
/// the source with its return value xor'ed with 1, which differs from the
/// source on every input where the source returns a concrete value — so the
/// verifier refutes it on the earliest non-poisoned input, the dominant
/// shape of real candidate traffic.
///
/// Shared by the `bench-tv` workload and `tests/tv_differential.rs`, so the
/// gated benchmark and the differential proof always exercise the same
/// refuted-candidate shape.
pub fn twist_return(func: &lpo_ir::function::Function) -> Option<lpo_ir::function::Function> {
    use lpo_ir::flags::IntFlags;
    use lpo_ir::instruction::{BinOp, InstId, InstKind, Instruction, Value};
    let width = func.ret_ty.int_width()?;
    let mut twisted = func.clone();
    let (ret_id, ret_val): (InstId, Value) = twisted.iter_insts().find_map(|(id, inst)| {
        match &inst.kind {
            InstKind::Ret { value: Some(v) } => Some((id, v.clone())),
            _ => None,
        }
    })?;
    let twist = twisted.insert_before(
        ret_id,
        Instruction::new(
            InstKind::Binary {
                op: BinOp::Xor,
                lhs: ret_val,
                rhs: Value::int(width, 1),
                flags: IntFlags::none(),
            },
            func.ret_ty.clone(),
            "twist",
        ),
    );
    twisted.set_operand(ret_id, 0, Value::Inst(twist));
    Some(twisted)
}

/// Builds the abstract-refutation workload pair for a scalar-int-returning
/// case: a source whose return value has its low bit cleared
/// (`and ret, -2`) and a candidate that then forces the bit set
/// (`or …, 1`). Bit 0 of the two return values is disjoint in the
/// known-bits domain, so whenever the source body itself analyzes as
/// provably concrete the abstract tier refutes the pair without a single
/// concrete evaluation — the workload behind the `bench-tv` absint
/// sub-section.
pub fn pin_return_bit(
    func: &lpo_ir::function::Function,
) -> Option<(lpo_ir::function::Function, lpo_ir::function::Function)> {
    use lpo_ir::flags::IntFlags;
    use lpo_ir::instruction::{BinOp, InstId, InstKind, Instruction, Value};
    let width = func.ret_ty.int_width()?;
    let find_ret = |f: &lpo_ir::function::Function| -> Option<(InstId, Value)> {
        f.iter_insts().find_map(|(id, inst)| match &inst.kind {
            InstKind::Ret { value: Some(v) } => Some((id, v.clone())),
            _ => None,
        })
    };
    let mut low_clear = func.clone();
    let (ret_id, ret_val) = find_ret(&low_clear)?;
    let masked = low_clear.insert_before(
        ret_id,
        Instruction::new(
            InstKind::Binary {
                op: BinOp::And,
                lhs: ret_val,
                rhs: Value::int_signed(width, -2),
                flags: IntFlags::none(),
            },
            func.ret_ty.clone(),
            "low0",
        ),
    );
    low_clear.set_operand(ret_id, 0, Value::Inst(masked));
    let mut low_set = low_clear.clone();
    let (ret_id, ret_val) = find_ret(&low_set)?;
    let pinned = low_set.insert_before(
        ret_id,
        Instruction::new(
            InstKind::Binary {
                op: BinOp::Or,
                lhs: ret_val,
                rhs: Value::int(width, 1),
                flags: IntFlags::none(),
            },
            func.ret_ty.clone(),
            "low1",
        ),
    );
    low_set.set_operand(ret_id, 0, Value::Inst(pinned));
    Some((low_clear, low_set))
}

/// Measures Stage 3 (translation validation) throughput over the rq1 suite on
/// the staged checker (probe → lazy compile → batched sweep) and on the
/// retained reference checker (unconditional compile + serial sweep):
///
/// * **refuted candidates** — each case's source with its return value
///   twisted, refuted on the earliest concrete input. This is the dominant
///   real-world shape (most LLM/enumerated candidates are wrong), and where
///   the probe pays off: the staged path never compiles these.
/// * **surviving candidates** — the source verified against itself: the full
///   input sweep every accepted candidate must pay. Today this measures
///   ≈0.94–1.0x the reference (the batched sweep's ~5% per-input gain
///   roughly offsets the probe's slower direct evaluations); it is gated so
///   it cannot silently regress further. A fresh per-case
///   [`lpo_tv::prelude::SourceCache`] is built per pass and the survivor is
///   verified several times against it, so the source side amortizes the
///   way it does in a real case.
///
/// A third sub-section measures the Stage 3a₀ **abstract pre-verification
/// tier** on its own workloads:
///
/// * **abstract refutation** — each case's [`pin_return_bit`] pair, whose
///   return values are bit-disjoint in the known-bits domain: the tier
///   refutes these with zero concrete evaluations. The same pairs are also
///   run with the tier disabled (probe-refuted concretely), giving the
///   machine-independent `absint_speedup` the baseline gate falls back to.
/// * **proved survivors** — each case verified against itself with the tier
///   on: the fraction the tier proves structurally (skipping the full
///   concrete sweep entirely) is reported as `proved_fraction` and the
///   count as `proved_survivors` (= sweeps skipped).
///
/// The refuted/survivor shapes above run with the abstract tier *disabled*
/// so they keep measuring the concrete staged machinery (with the tier on,
/// the self-verification survivors would be proved abstractly and never
/// reach the sweep being measured).
///
/// All checkers' passes are interleaved so host noise cancels. This is the
/// workload behind `repro bench-tv` and the CI `bench-smoke` regression
/// gate; measure with `--jobs 1` when comparing across builds.
pub fn bench_tv(jobs: usize) -> TvBenchRun {
    use lpo_ir::function::Function;
    use lpo_tv::prelude::{EvalArena, SourceCache, TvConfig, VerdictTier};

    /// Minimum measurement time per checker per shape.
    const MIN_TIME: Duration = Duration::from_millis(600);
    /// Refuted verifications per case per pass.
    const REFUTED_REPEATS: usize = 32;
    /// Survivor verifications per case per pass (first pays the source-side
    /// sweep, the rest amortize it — the real per-case shape).
    const SURVIVOR_REPEATS: usize = 4;
    /// Abstract refutations per case per pass (each is a few hundred
    /// nanoseconds of transfer functions, so repeats are cheap).
    const ABSINT_REPEATS: usize = 256;

    let suite = rq1_suite();
    let workloads: Vec<(Function, Function)> = suite
        .iter()
        .filter_map(|case| {
            let wrong = twist_return(&case.function)?;
            // Only keep pairs the checker actually refutes (a source that is
            // UB/poison everywhere would accept any target).
            lpo_tv::refine::verify_refinement(&case.function, &wrong)
                .counterexample()
                .map(|_| (case.function.clone(), wrong))
        })
        .collect();
    // An empty workload would make the MIN_TIME measurement loop below spin
    // forever (passes of zero work accumulate zero wall time) and record
    // NaN throughputs — fail loudly instead; the rq1 suite always has
    // twistable scalar-int cases.
    assert!(
        !workloads.is_empty(),
        "bench-tv workload is empty: no rq1 case has a twistable, refutable return"
    );
    // The concrete shapes run with the abstract tier off: with it on, the
    // self-verification survivors below would be proved structurally and
    // the sweep being measured would never run.
    let concrete_tv = TvConfig { absint: false, ..TvConfig::default() };
    // The abstract-refutation workload: bit-pinned pairs the tier actually
    // certifies (kept only when a zero-eval abstract refutation engages, so
    // the measured loop is purely the abstract path).
    let absint_workloads: Vec<(Function, Function)> = suite
        .iter()
        .filter_map(|case| {
            let (src, tgt) = pin_return_bit(&case.function)?;
            let probe = SourceCache::new(&src, TvConfig::default());
            let mut arena = EvalArena::new();
            let correct = probe.verify_outcome_only(&tgt, &mut arena);
            (!correct && probe.last_tier() == Some(VerdictTier::RefutedAbstract))
                .then_some((src, tgt))
        })
        .collect();
    assert!(
        !absint_workloads.is_empty(),
        "bench-tv absint workload is empty: no rq1 case yields an abstractly refutable pair"
    );
    // How many cases the type-specialized plane tier covers: the survivor
    // pass verifies the source against itself, so eligibility is the
    // source's own compiled form carrying a plane plan.
    let plane_cases = workloads
        .iter()
        .filter(|(src, _)| lpo_interp::compiled::CompiledFunction::compile(src).plane().is_some())
        .count();
    let jobs = resolve_jobs(jobs, workloads.len());

    /// Accumulated (verifications, wall) of one checker's passes. Only the
    /// verification loops are timed — per-case setup (input generation,
    /// source-outcome fills) is identical case state shared by both checkers
    /// and amortized over a case's whole candidate stream in production, so
    /// it is warmed untimed.
    #[derive(Default)]
    struct Tally {
        checks: usize,
        wall: Duration,
    }

    impl Tally {
        fn add(&mut self, pass: &dyn Fn() -> (usize, Duration)) {
            let (checks, wall) = pass();
            self.checks += checks;
            self.wall += wall;
        }
    }

    // The staged side runs `verify_outcome_only` — the accept/reject-only
    // entry the enumerative baselines (Souper's per-case candidate stream,
    // Minotaur's template scan) actually call, where the counterexample is
    // discarded. The reference side runs the retained pre-staging checker,
    // which is exactly what those callers paid per refuted candidate before:
    // an unconditional compile, a serial sweep, and a rendered
    // counterexample.
    let refuted_pass = |staged: bool| -> (usize, Duration) {
        parallel_map_ordered_with(&workloads, jobs, EvalArena::new, |arena, _, (src, wrong)| {
            let case = SourceCache::new(src, concrete_tv.clone());
            // Warm the per-case state (inputs + the source outcomes the
            // refutation reaches) untimed.
            std::hint::black_box(case.verify_with(wrong, arena).is_correct());
            let start = Instant::now();
            for _ in 0..REFUTED_REPEATS {
                let correct = if staged {
                    case.verify_outcome_only(wrong, arena)
                } else {
                    case.verify_reference(wrong, arena).is_correct()
                };
                std::hint::black_box(correct);
            }
            (REFUTED_REPEATS, start.elapsed())
        })
        .into_iter()
        .fold((0, Duration::ZERO), |(c, w), (pc, pw)| (c + pc, w + pw))
    };

    let survivor_pass = |staged: bool| -> (usize, Duration) {
        parallel_map_ordered_with(&workloads, jobs, EvalArena::new, |arena, _, (src, _)| {
            let case = SourceCache::new(src, concrete_tv.clone());
            // Warm inputs and the full source-outcome sweep untimed: the
            // timed loop then measures the candidate-side cost, which is
            // what every additional candidate of a case pays.
            std::hint::black_box(case.verify_with(src, arena).is_correct());
            let start = Instant::now();
            for _ in 0..SURVIVOR_REPEATS {
                let verdict = if staged {
                    case.verify_with(src, arena)
                } else {
                    case.verify_reference(src, arena)
                };
                std::hint::black_box(verdict.is_correct());
            }
            (SURVIVOR_REPEATS, start.elapsed())
        })
        .into_iter()
        .fold((0, Duration::ZERO), |(c, w), (pc, pw)| (c + pc, w + pw))
    };

    // The abstract-refutation shape: with the tier on (`abstract_on`) every
    // verification is certified by the interpreter's transfer functions
    // alone — zero concrete evaluations; with it off the same pairs are
    // refuted concretely by the probe, giving the in-run reference for the
    // machine-independent speedup.
    let absint_pass = |abstract_on: bool| -> (usize, Duration) {
        let config = if abstract_on { TvConfig::default() } else { concrete_tv.clone() };
        parallel_map_ordered_with(&absint_workloads, jobs, EvalArena::new, |arena, _, (src, tgt)| {
            let case = SourceCache::new(src, config.clone());
            // Warm the per-case state (the memoized source analysis on the
            // abstract side; inputs + source outcomes on the concrete side)
            // untimed.
            std::hint::black_box(case.verify_outcome_only(tgt, arena));
            let start = Instant::now();
            for _ in 0..ABSINT_REPEATS {
                std::hint::black_box(case.verify_outcome_only(tgt, arena));
            }
            (ABSINT_REPEATS, start.elapsed())
        })
        .into_iter()
        .fold((0, Duration::ZERO), |(c, w), (pc, pw)| (c + pc, w + pw))
    };

    let measure = |pass: &dyn Fn(bool) -> (usize, Duration)| -> (Tally, Tally) {
        let mut fast = Tally::default();
        let mut slow = Tally::default();
        let mut passes = 0usize;
        // Interleave the two checkers' passes so slow drift in host load
        // hits both sides equally.
        while passes < 2 || fast.wall + slow.wall < MIN_TIME * 2 {
            fast.add(&|| pass(true));
            slow.add(&|| pass(false));
            passes += 1;
        }
        (fast, slow)
    };

    let (refuted_fast, refuted_slow) = measure(&refuted_pass);
    let (survivor_fast, survivor_slow) = measure(&survivor_pass);
    let (absint_fast, absint_slow) = measure(&absint_pass);

    // Proved survivors: how many self-verifications the abstract tier
    // settles structurally, skipping the full concrete sweep. Deterministic
    // (a property of the tier and the suite, not of the host), so it is
    // counted once rather than timed.
    let proved_survivors = {
        let mut arena = EvalArena::new();
        workloads
            .iter()
            .filter(|(src, _)| {
                let case = SourceCache::new(src, TvConfig::default());
                let verdict = case.verify_with(src, &mut arena);
                verdict.is_correct() && case.last_tier() == Some(VerdictTier::Proved)
            })
            .count()
    };
    let proved_fraction = proved_survivors as f64 / workloads.len() as f64;

    let per_second = |tally: &Tally| tally.checks as f64 / tally.wall.as_secs_f64();
    let ratio = |fast: f64, slow: f64| if slow > 0.0 { fast / slow } else { 0.0 };
    let refuted_per_second = per_second(&refuted_fast);
    let reference_refuted_per_second = per_second(&refuted_slow);
    let survivor_per_second = per_second(&survivor_fast);
    let reference_survivor_per_second = per_second(&survivor_slow);
    let absint_refuted_per_second = per_second(&absint_fast);
    let absint_reference_per_second = per_second(&absint_slow);

    let entry = results::TvEntry {
        refuted_per_second,
        reference_refuted_per_second,
        refuted_speedup: ratio(refuted_per_second, reference_refuted_per_second),
        survivor_per_second,
        reference_survivor_per_second,
        survivor_speedup: ratio(survivor_per_second, reference_survivor_per_second),
        absint_refuted_per_second,
        absint_reference_per_second,
        absint_speedup: ratio(absint_refuted_per_second, absint_reference_per_second),
        absint_cases: absint_workloads.len(),
        proved_survivors,
        proved_fraction,
        cases: workloads.len(),
        plane_cases,
        jobs,
    };
    let mut text = format!(
        "Translation-validation throughput: rq1 suite ({} twistable cases, {} plane-eligible, jobs: {jobs})\n",
        entry.cases, entry.plane_cases
    );
    let _ = writeln!(
        text,
        "  refuted candidate   staged: {:>9.0} checks/s   reference: {:>9.0} checks/s   speedup: {:.2}x",
        refuted_per_second, reference_refuted_per_second, entry.refuted_speedup
    );
    let _ = writeln!(
        text,
        "  surviving candidate staged: {:>9.0} checks/s   reference: {:>9.0} checks/s   speedup: {:.2}x",
        survivor_per_second, reference_survivor_per_second, entry.survivor_speedup
    );
    let _ = writeln!(
        text,
        "  abstract refutation tier:   {:>9.0} checks/s   concrete:  {:>9.0} checks/s   speedup: {:.2}x  ({} pairs, zero evals)",
        absint_refuted_per_second,
        absint_reference_per_second,
        entry.absint_speedup,
        entry.absint_cases
    );
    let _ = writeln!(
        text,
        "  proved survivors:  {proved_survivors}/{} ({:.0}% of sweeps skipped by the abstract tier)",
        entry.cases,
        proved_fraction * 100.0
    );
    TvBenchRun { text, entry }
}

/// One sharded-execution measurement: the rendered report plus the entry
/// recorded in `BENCH_results.json`'s `exec` section.
#[derive(Clone, Debug)]
pub struct ExecBenchRun {
    /// Human-readable report.
    pub text: String,
    /// The numbers (single-case scaling + sharding overhead + counters).
    pub entry: results::ExecEntry,
}

/// Measures the shard engine's reason to exist: **single-case** scaling.
/// Case-granular scheduling cannot use more workers than cases, so both
/// workloads here are one case whose internal work is the whole batch:
///
/// * **input sweep** — one survivor verification over a 65,536-input
///   exhaustive sweep (`i16` argument), split into [`SweepShard`]s of
///   `shard_size` inputs. Measured on the case-granular checker (the
///   `shard_inputs = false` path), on the sharded path at one worker (the
///   machine-independent overhead ratio — the shard machinery must stay
///   within a few percent of free), and on the sharded path at `jobs`
///   workers (the speedup an idle machine gets on one huge case).
/// * **enumeration** — one Souper `Enum=2` search over a 1,500-candidate
///   budget, its frontier split into `shard_size`-candidate chunks
///   ([`lpo_souper::superoptimize_batch_sharded`]), against the serial walk.
///
/// Parallel speedups are wall-clock and only meaningful on multi-core hosts;
/// the `repro bench-exec --check-baseline` gate applies the scaling check
/// only when the host has ≥ 4 cores, and gates the (machine-independent)
/// overhead ratios everywhere. This is the workload behind the CI
/// `shard-smoke` job; measure with `--jobs 1` when comparing across builds.
///
/// [`SweepShard`]: lpo_tv::frozen::SweepShard
pub fn bench_exec(jobs: usize, shard_size: usize) -> ExecBenchRun {
    use lpo_ir::parser::parse_function;
    use lpo_tv::prelude::{EvalArena, SourceCache, TvConfig};
    use std::sync::Arc;

    /// Minimum measurement time per variant per shape.
    const MIN_TIME: Duration = Duration::from_millis(300);
    /// Survivor sweeps per pass.
    const SWEEP_REPEATS: usize = 4;

    let shard_size = shard_size.max(1);
    let parallel_jobs = if jobs == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        jobs
    };

    // One survivor case with a 65,536-input exhaustive sweep: wide enough
    // that shard-granular stealing matters, cheap enough per input that the
    // scheduler overhead would show if it were there.
    let sweep_src = parse_function(
        "define i16 @sweep(i16 %x) {\n %a = mul i16 %x, 3\n %b = xor i16 %a, 85\n %r = add i16 %b, 1\n ret i16 %r\n}",
    )
    .expect("bench-exec sweep function parses");
    let sweep_tv = {
        let mut config = TvConfig::default();
        config.inputs.exhaustive_bits = 16;
        config
    };

    // (verifications, wall) on the case-granular checker — the
    // `shard_inputs = false` reference.
    let sweep_reference_pass = || -> (usize, Duration) {
        let mut arena = EvalArena::new();
        let case = SourceCache::new(&sweep_src, sweep_tv.clone());
        // Warm the source-side sweep untimed (amortized per case in
        // production); the timed loop is the candidate-side cost.
        std::hint::black_box(case.verify_with(&sweep_src, &mut arena).is_correct());
        let start = Instant::now();
        for _ in 0..SWEEP_REPEATS {
            std::hint::black_box(case.verify_with(&sweep_src, &mut arena).is_correct());
        }
        (SWEEP_REPEATS, start.elapsed())
    };

    // (verifications, wall, shard accounting) on the sharded checker. A
    // fresh runtime per pass: `run_cases` shuts its helpers down when the
    // case list drains, so runtimes are per-batch, as in the engine.
    let sweep_sharded_pass = |pass_jobs: usize| -> (usize, Duration, ShardStats) {
        let runtime = ShardRuntime::new(pass_jobs, Arc::new(ShardCounters::new()));
        let driver = RuntimeSweepDriver::new(runtime.clone());
        let timed = runtime.run_cases(1, |_, arena| {
            let case = SourceCache::new(&sweep_src, sweep_tv.clone());
            std::hint::black_box(
                case.verify_with_driver(&sweep_src, arena, &driver, shard_size).is_correct(),
            );
            let start = Instant::now();
            for _ in 0..SWEEP_REPEATS {
                std::hint::black_box(
                    case.verify_with_driver(&sweep_src, arena, &driver, shard_size).is_correct(),
                );
            }
            start.elapsed()
        });
        (SWEEP_REPEATS, timed[0], runtime.stats())
    };

    // One enumeration case that exhausts its 1,500-candidate budget without
    // finding a replacement, so every run verifies the same frontier.
    let enum_func = parse_function(
        "define i32 @walk(i32 %x, i32 %y) {\n %a = mul i32 %x, %y\n %b = xor i32 %a, %x\n %r = add i32 %b, %y\n ret i32 %r\n}",
    )
    .expect("bench-exec enumeration function parses");
    let enum_config = {
        let mut config = SouperConfig::with_enum(2);
        config.candidate_budget = 1_500;
        config
    };

    let enum_reference_pass = || -> (usize, Duration) {
        let start = Instant::now();
        let results = souper_batch(std::slice::from_ref(&enum_func), &enum_config, 1);
        (results[0].candidates_tried, start.elapsed())
    };

    let enum_sharded_pass = |pass_jobs: usize| -> (usize, Duration, ShardStats) {
        let start = Instant::now();
        let (results, stats) = lpo_souper::superoptimize_batch_sharded(
            std::slice::from_ref(&enum_func),
            &enum_config,
            pass_jobs,
            shard_size,
        );
        (results[0].candidates_tried, start.elapsed(), stats)
    };

    /// Accumulated (work items, wall, shard accounting) of one variant.
    #[derive(Default)]
    struct Tally {
        items: usize,
        wall: Duration,
        shards: ShardStats,
    }

    impl Tally {
        fn add(&mut self, (items, wall, shards): (usize, Duration, ShardStats)) {
            self.items += items;
            self.wall += wall;
            self.shards.absorb(shards);
        }

        fn per_second(&self) -> f64 {
            let secs = self.wall.as_secs_f64();
            if secs > 0.0 {
                self.items as f64 / secs
            } else {
                0.0
            }
        }
    }

    let flat = |(items, wall): (usize, Duration)| (items, wall, ShardStats::default());

    // Interleave the three variants' passes so slow drift in host load hits
    // all of them equally.
    let measure = |reference_pass: &dyn Fn() -> (usize, Duration),
                   sharded_pass: &dyn Fn(usize) -> (usize, Duration, ShardStats)|
     -> (Tally, Tally, Tally) {
        let mut reference = Tally::default();
        let mut serial = Tally::default();
        let mut parallel = Tally::default();
        let mut passes = 0usize;
        while passes < 2 || reference.wall + serial.wall + parallel.wall < MIN_TIME * 3 {
            reference.add(flat(reference_pass()));
            serial.add(sharded_pass(1));
            parallel.add(sharded_pass(parallel_jobs));
            passes += 1;
        }
        (reference, serial, parallel)
    };

    let (sweep_reference, sweep_serial, sweep_parallel) =
        measure(&sweep_reference_pass, &sweep_sharded_pass);
    let (enum_reference, enum_serial, enum_parallel) =
        measure(&enum_reference_pass, &enum_sharded_pass);

    let ratio = |fast: f64, slow: f64| if slow > 0.0 { fast / slow } else { 0.0 };
    // The counters come from the parallel runs only — the serial runs would
    // double-count `executed` without ever being able to steal.
    let mut shards = sweep_parallel.shards;
    shards.absorb(enum_parallel.shards);

    let entry = results::ExecEntry {
        sweep_reference_per_second: sweep_reference.per_second(),
        sweep_serial_per_second: sweep_serial.per_second(),
        sweep_overhead_ratio: ratio(sweep_serial.per_second(), sweep_reference.per_second()),
        sweep_parallel_per_second: sweep_parallel.per_second(),
        sweep_speedup: ratio(sweep_parallel.per_second(), sweep_serial.per_second()),
        enum_reference_per_second: enum_reference.per_second(),
        enum_serial_per_second: enum_serial.per_second(),
        enum_overhead_ratio: ratio(enum_serial.per_second(), enum_reference.per_second()),
        enum_parallel_per_second: enum_parallel.per_second(),
        enum_speedup: ratio(enum_parallel.per_second(), enum_serial.per_second()),
        shards_executed: shards.executed,
        shards_stolen: shards.stolen,
        shard_cancellations: shards.cancellations,
        jobs: parallel_jobs,
        shard_size,
    };
    let mut text = format!(
        "Sharded-execution throughput: one 65,536-input survivor sweep + one {}-candidate enumeration (shard size {shard_size}, jobs {parallel_jobs})\n",
        enum_config.candidate_budget
    );
    let _ = writeln!(
        text,
        "  input sweep   case-granular: {:>7.1} sweeps/s   sharded @1: {:>7.1} (overhead {:.2}x)   sharded @{parallel_jobs}: {:>7.1} (speedup {:.2}x)",
        entry.sweep_reference_per_second,
        entry.sweep_serial_per_second,
        entry.sweep_overhead_ratio,
        entry.sweep_parallel_per_second,
        entry.sweep_speedup
    );
    let _ = writeln!(
        text,
        "  enumeration   serial walk:   {:>7.0} cand/s    sharded @1: {:>7.0} (overhead {:.2}x)   sharded @{parallel_jobs}: {:>7.0} (speedup {:.2}x)",
        entry.enum_reference_per_second,
        entry.enum_serial_per_second,
        entry.enum_overhead_ratio,
        entry.enum_parallel_per_second,
        entry.enum_speedup
    );
    let _ = writeln!(
        text,
        "  [shards] executed: {}  stolen: {}  cancelled: {}  (parallel runs; scheduling-dependent)",
        entry.shards_executed, entry.shards_stolen, entry.shard_cancellations
    );
    ExecBenchRun { text, entry }
}

/// Renders Figure 5 as text.
pub fn figure5(jobs: usize) -> TableRun {
    let start = Instant::now();
    let points = figure5_experiment(jobs);
    let mut out = String::from("Figure 5: geometric-mean speedup on the SPEC-like suite (1.00x = baseline)\n");
    for p in &points {
        let bar = "#".repeat(((p.speedup - 0.90).max(0.0) * 200.0) as usize);
        let _ = writeln!(out, "{:<14} {:>6.3}x {}", p.label, p.speedup, bar);
    }
    let stats = DriverStats::engineless(resolve_jobs(jobs, points.len()), points.len(), start.elapsed());
    out.push_str(&stats.footer());
    TableRun { text: out, stats }
}

/// One `repro bench-serve` outcome.
pub struct ServeBenchRun {
    /// Human-readable report.
    pub text: String,
    /// The numbers (protocol throughput, warm-vs-cold, cache-hit rates).
    pub entry: results::ServeEntry,
}

/// Measures the serving shell end to end: a real [`lpo_serve`] server on a
/// loopback socket with an in-memory store, driven through the wire protocol
/// by [`lpo_serve::client::ServeClient`]. One cold rq1 submission against
/// the empty store is timed, then warm resubmissions of the same corpus run
/// until the measurement window fills — each answered almost entirely from
/// the shared verdict store, which is what the serving mode exists for.
///
/// This is the workload behind `repro bench-serve` and the CI `serve-smoke`
/// gate. The cache-hit rates come from store counter deltas, not timings, so
/// they are exact: the `serve_cache_hit_rate` baseline key is a hard floor.
pub fn bench_serve(jobs: usize) -> ServeBenchRun {
    use lpo_serve::prelude::{ServeClient, ServeConfig, Server, SubmitOptions};

    /// Minimum time spent on warm submissions.
    const MIN_TIME: Duration = Duration::from_millis(900);

    let store = Arc::new(VerdictStore::in_memory());
    let config = ServeConfig { jobs, ..ServeConfig::default() };
    let server = Server::bind("127.0.0.1:0", config, store).expect("bind loopback server");
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    let session_start = Instant::now();
    let mut client = ServeClient::connect(&addr).expect("connect to loopback server");
    let mut requests = 0usize;

    let hit_rate = |outcome: &lpo_serve::client::JobOutcome| {
        outcome
            .done()
            .get("cache_hit_rate")
            .and_then(lpo_serve::json::Json::as_num)
            .unwrap_or(0.0)
    };
    let submit = SubmitOptions::corpus("rq1");

    let cold_start = Instant::now();
    let cold = client.submit(&submit).expect("cold submission");
    let cold_seconds = cold_start.elapsed().as_secs_f64();
    requests += 1;
    let cases = cold.cases().len();
    let cold_cache_hit_rate = hit_rate(&cold);

    let mut warm_jobs = 0usize;
    let mut warm_wall = Duration::ZERO;
    let mut warm_hit_rate_sum = 0.0;
    while warm_jobs < 2 || warm_wall < MIN_TIME {
        let pass_start = Instant::now();
        let warm = client.submit(&submit).expect("warm submission");
        warm_wall += pass_start.elapsed();
        requests += 1;
        warm_jobs += 1;
        warm_hit_rate_sum += hit_rate(&warm);
    }
    let cache_hit_rate = warm_hit_rate_sum / warm_jobs as f64;
    let warm_jobs_per_second =
        if warm_wall.as_secs_f64() > 0.0 { warm_jobs as f64 / warm_wall.as_secs_f64() } else { 0.0 };

    let stats = client.stats().expect("stats round-trip");
    requests += 1;
    let reported_jobs =
        stats.get("jobs").and_then(lpo_serve::json::Json::as_num).unwrap_or(0.0) as usize;
    client.shutdown().expect("shutdown round-trip");
    requests += 1;
    let session_seconds = session_start.elapsed().as_secs_f64();
    server_thread.join().expect("server thread").expect("server run");

    let entry = results::ServeEntry {
        requests_per_second: if session_seconds > 0.0 { requests as f64 / session_seconds } else { 0.0 },
        cold_seconds,
        warm_jobs_per_second,
        warm_speedup: warm_jobs_per_second * cold_seconds,
        cold_cache_hit_rate,
        cache_hit_rate,
        cases,
        warm_jobs,
        requests,
        jobs: reported_jobs,
    };
    let mut text = format!(
        "Serving-shell throughput: rq1 over the wire protocol on a loopback socket (jobs {jobs})\n"
    );
    let _ = writeln!(
        text,
        "  cold submission: {:>6.2}s for {} cases (store hit rate {:.2})",
        entry.cold_seconds, entry.cases, entry.cold_cache_hit_rate
    );
    let _ = writeln!(
        text,
        "  warm submissions: {:>6.2} jobs/s over {} jobs (store hit rate {:.2}, {:.1}x one cold job)",
        entry.warm_jobs_per_second, entry.warm_jobs, entry.cache_hit_rate, entry.warm_speedup
    );
    let _ = writeln!(
        text,
        "  session: {} requests at {:.2} req/s end to end",
        entry.requests, entry.requests_per_second
    );
    ServeBenchRun { text, entry }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_seven_models() {
        let t = table1();
        for name in ["Gemma3", "Llama3.3", "Gemini2.0", "Gemini2.0T", "GPT-4.1", "o4-mini", "Gemini2.5"] {
            assert!(t.contains(name), "missing {name}:\n{t}");
        }
    }

    #[test]
    fn rq1_shape_matches_the_paper() {
        // A scaled-down RQ1: 2 rounds, strongest vs weakest model. The *shape*
        // must hold: the reasoning model detects far more than Gemma3, Souper
        // lands in between, Minotaur detects only a few.
        let result = rq1_experiment(2, &[gemma3(), gemini2_0t()], 4, DEFAULT_SHARD_SIZE);
        assert_eq!(result.rows.len(), 25);
        let weak = result.total_detected("Gemma3");
        let strong = result.total_detected("Gemini2.0T");
        let souper = result.souper_total();
        let minotaur = result.minotaur_total();
        assert!(strong > souper, "LPO with a reasoning model ({strong}) must beat Souper ({souper})");
        assert!(souper > minotaur, "Souper ({souper}) must beat Minotaur ({minotaur})");
        assert!(weak < strong, "Gemma3 ({weak}) must find fewer than Gemini2.0T ({strong})");
        assert!(strong >= 14, "the strong model should find most cases, found {strong}");
        assert!(weak <= 8, "Gemma3 should find only a handful, found {weak}");
        assert!((2..=6).contains(&minotaur), "Minotaur found {minotaur}");
        assert!((10..=20).contains(&souper), "Souper found {souper}");
        // LPO- is never better than LPO for the same model.
        assert!(result.total_detected_minus("Gemini2.0T") <= strong);
    }

    #[test]
    fn shared_souper_search_matches_per_level_runs() {
        // The single `Enum = 2` search with `found_at_depth` must reach
        // exactly the conclusions the old per-level re-runs did, for every
        // corpus case. (Sample rq1 fully and every fourth rq2 case to keep
        // debug-mode time in check; the drivers' own shape tests cover the
        // aggregate counts.)
        let per_level = |case: &IssueCase, depth: u32| -> bool {
            let mut config = SouperConfig::with_enum(depth);
            config.candidate_budget = 1500;
            souper_batch(std::slice::from_ref(&case.function), &config, 1)[0].found()
        };
        for case in rq1_suite().iter().chain(rq2_suite().iter().step_by(4)) {
            let (shared_default, shared_enum) = souper_detects_shared(case);
            assert_eq!(shared_default, per_level(case, 0), "issue {} depth 0", case.issue_id);
            assert_eq!(
                shared_enum,
                (1..=2).any(|d| per_level(case, d)),
                "issue {} enum",
                case.issue_id
            );
        }
    }

    #[test]
    fn rq2_baselines_miss_most_found_optimizations() {
        let result = rq2_experiment(4);
        assert_eq!(result.rows.len(), 62);
        let (d, e, m) = result.baseline_counts();
        assert!(d < e, "Souper-Default ({d}) must find fewer than Souper-Enum ({e})");
        assert!(e < 31, "Souper-Enum must miss at least half of the 62 ({e})");
        assert!(m < 20, "Minotaur must miss most of the 62 ({m})");
        assert!(d <= 10);
        let counts = result.status_counts();
        assert_eq!(counts["Confirmed"], 28);
        assert_eq!(counts["Fixed"], 13);
    }

    #[test]
    fn figure5_speedups_are_within_noise() {
        let points = figure5_experiment(2);
        assert_eq!(points.len(), 10);
        for p in &points {
            assert!(
                p.speedup > 0.97 && p.speedup < 1.10,
                "{} speedup {:.3} outside the paper's ±few-percent band",
                p.label,
                p.speedup
            );
            assert!(p.speedup >= 0.999, "patches must never slow the estimate down: {} {:.3}", p.label, p.speedup);
        }
    }
}
