//! Regenerates the paper's tables and figures on the parallel execution
//! engine, and records the run's performance in `BENCH_results.json`.
//!
//! ```text
//! cargo run -p lpo-bench --release --bin repro -- all
//! cargo run -p lpo-bench --release --bin repro -- table2 --rounds 5 --jobs 8
//! cargo run -p lpo-bench --release --bin repro -- table4 --samples 500 --jobs 0
//! ```
//!
//! `--jobs N` sets the worker count for every driver (`0`, the default, uses
//! all available cores). Any value produces bit-identical results; only
//! wall-clock measurements change (the `[engine]` footers and Table 5's
//! measured compile-time-delta column). Each invocation writes `BENCH_results.json` (per-table
//! wall time, cases/sec, cache hits, jobs used) to the current directory so
//! the perf trajectory is tracked from run to run.

use lpo_bench::{self as harness, DriverStats, TableRun};
use lpo_llm::prelude::rq1_models;
use std::fmt::Write as _;

fn arg_value(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Serializes the collected per-table stats as JSON (hand-rolled — the
/// container has no crates.io access, so no serde).
fn render_json(jobs: usize, runs: &[(String, DriverStats)]) -> String {
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"schema\": 1,");
    let _ = writeln!(out, "  \"jobs_requested\": {jobs},");
    let _ = writeln!(out, "  \"tables\": [");
    for (i, (name, stats)) in runs.iter().enumerate() {
        let comma = if i + 1 < runs.len() { "," } else { "" };
        let _ = writeln!(
            out,
            "    {{\"name\": \"{name}\", \"wall_seconds\": {:.6}, \"cases\": {}, \
             \"cases_per_second\": {:.3}, \"cache_hits\": {}, \"jobs\": {}}}{comma}",
            stats.wall.as_secs_f64(),
            stats.cases,
            stats.cases_per_second(),
            stats.cache_hits,
            stats.jobs,
        );
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let rounds = arg_value(&args, "--rounds", 2);
    let samples = arg_value(&args, "--samples", 60) as usize;
    let jobs = arg_value(&args, "--jobs", 0) as usize;
    let quick_models = || {
        if args.iter().any(|a| a == "--all-models") {
            rq1_models()
        } else {
            vec![
                lpo_llm::prelude::gemma3(),
                lpo_llm::prelude::llama3_3(),
                lpo_llm::prelude::gemini2_0t(),
                lpo_llm::prelude::o4_mini(),
            ]
        }
    };

    let mut runs: Vec<(String, DriverStats)> = Vec::new();
    let mut show = |name: &str, run: TableRun| {
        println!("{}", run.text);
        runs.push((name.to_string(), run.stats));
    };

    match what {
        "table1" => println!("{}", harness::table1()),
        "table2" => show("table2", harness::table2(rounds, &quick_models(), jobs)),
        "table3" => show("table3", harness::table3(jobs)),
        "table4" => show("table4", harness::table4(samples, jobs)),
        "table5" => show("table5", harness::table5(jobs)),
        "figure5" => show("figure5", harness::figure5(jobs)),
        "all" => {
            println!("{}", harness::table1());
            show("table2", harness::table2(rounds, &quick_models(), jobs));
            show("table3", harness::table3(jobs));
            show("table4", harness::table4(samples, jobs));
            show("table5", harness::table5(jobs));
            show("figure5", harness::figure5(jobs));
        }
        other => {
            eprintln!("unknown experiment '{other}'; expected table1..table5, figure5 or all");
            std::process::exit(2);
        }
    }

    if !runs.is_empty() {
        let path = "BENCH_results.json";
        match std::fs::write(path, render_json(jobs, &runs)) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }
}
