//! Regenerates the paper's tables and figures on the parallel execution
//! engine, and records the run's performance in `BENCH_results.json`.
//!
//! ```text
//! cargo run -p lpo-bench --release --bin repro -- all
//! cargo run -p lpo-bench --release --bin repro -- table2 --rounds 5 --jobs 8
//! cargo run -p lpo-bench --release --bin repro -- table4 --samples 500 --jobs 0
//! cargo run -p lpo-bench --release --bin repro -- bench-interp --jobs 1
//! cargo run -p lpo-bench --release --bin repro -- bench-opt --jobs 1
//! cargo run -p lpo-bench --release --bin repro -- bench-tv --jobs 1
//! cargo run -p lpo-bench --release --bin repro -- bench-exec --jobs 4 --shard-size 256
//! cargo run -p lpo-bench --release --bin repro -- bench-serve --jobs 4
//! cargo run -p lpo-bench --release --bin repro -- serve --addr 127.0.0.1:7345 --store run.lpostore
//! cargo run -p lpo-bench --release --bin repro -- serve-client --addr 127.0.0.1:7345 --corpus rq1 --warm 2 --stats --shutdown
//! ```
//!
//! `--jobs N` sets the worker count for every driver (`0`, the default, uses
//! all available cores) and `--shard-size M` the Stage-3 input-sweep /
//! enumeration-frontier shard width (`inf` = one shard per survivor sweep;
//! default 256). Any combination produces bit-identical results; only
//! wall-clock measurements change (the `[engine]` footers and Table 5's
//! measured compile-time-delta column).
//!
//! Each invocation **merges** its numbers into `BENCH_results.json` in the
//! current directory: per-table entries are replaced by name, everything else
//! is kept, and the invocation is appended to the `runs` history — so the
//! perf trajectory accumulates across runs and PRs instead of being
//! overwritten.
//!
//! `bench-interp` measures the concrete-evaluation hot path (register-file
//! evaluator vs the reference evaluator) and fills the `interp` section;
//! `bench-opt` measures Stage 1 canonicalization (worklist engine vs the
//! rescan reference) and fills the `opt` section; `bench-tv` measures Stage 3
//! translation validation (staged checker vs the pre-staging reference) and
//! fills the `tv` section; `bench-exec` measures the shard engine's
//! single-case scaling and overhead and fills the `exec` section;
//! `bench-serve` measures the serving shell's protocol round-trips and warm
//! cache-hit rate and fills the `serve` section. With
//! `--check-baseline <file>` each exits non-zero when its throughput falls
//! more than 30% below the checked-in baseline — the CI `bench-smoke`,
//! `shard-smoke` and `serve-smoke` gates (`bench-exec`'s parallel-scaling
//! check applies only on hosts with ≥ 4 cores; its overhead ratios are gated
//! everywhere; `bench-serve`'s cache-hit rate is an exact floor).
//!
//! `serve` runs the engine as a long-lived server on `--addr` (job queue,
//! streaming line-delimited JSON protocol — see `lpo-serve`); `serve-client`
//! scripts a session against one: a `--corpus`/`--module FILE` submission,
//! optional `--warm N` resubmissions, `--stats`, `--shutdown`.

use lpo::prelude::{VerdictStore, DEFAULT_SHARD_SIZE};
use lpo_bench::results::{
    BenchResults, ExecEntry, InterpEntry, Json, OptEntry, RunEntries, ServeEntry, TableEntry,
    TvEntry,
};
use lpo_bench::{self as harness, StoreOptions, TableRun};
use lpo_llm::prelude::rq1_models;
use lpo_serve::prelude::{ServeClient, ServeConfig, Server, SubmitOptions};
use std::sync::Arc;
use std::time::Duration;

/// `<name> N`, strict: a present flag with a missing, negative or otherwise
/// unparsable value is a hard usage error, never a silent fall-back to the
/// default (that silence once hid `--jobs abc` running on every core).
fn arg_value(args: &[String], name: &str, default: u64) -> u64 {
    let Some(position) = args.iter().position(|a| a == name) else {
        return default;
    };
    let value = args.get(position + 1).map(String::as_str).unwrap_or("");
    match value.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("{name} expects a non-negative integer, got '{value}'");
            std::process::exit(2);
        }
    }
}

fn arg_text<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// `--shard-size N` (`inf` = one shard per survivor sweep / frontier).
fn arg_shard_size(args: &[String]) -> usize {
    match arg_text(args, "--shard-size") {
        None => DEFAULT_SHARD_SIZE,
        Some("inf") => usize::MAX,
        Some(text) => match text.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("--shard-size expects a positive integer or 'inf', got '{text}'");
                std::process::exit(2);
            }
        },
    }
}

/// Allowed relative regression vs the baseline.
const REGRESSION_TOLERANCE: f64 = 0.30;

/// One throughput gate's wiring: which baseline keys to read and how to
/// describe the measurement in messages.
struct Gate {
    /// Baseline key for the absolute-throughput floor.
    throughput_key: &'static str,
    /// Baseline key for the machine-independent speedup fallback.
    speedup_key: &'static str,
    /// Unit shown in messages, e.g. `evals/s`.
    unit: &'static str,
    /// Subject shown in the failure message, e.g. `interpreter throughput`.
    subject: &'static str,
}

/// Compares a fresh measurement against a checked-in baseline file.
///
/// The primary gate is absolute throughput (within 30% of the baseline). CI
/// runners span hardware generations, so a slower host is exonerated by the
/// machine-independent fallback: the speedup over the in-process reference
/// implementation — measured on the same hardware in the same run — must
/// then be within 30% of the baseline speedup. A regression fails both.
///
/// Known limitation: a regression in code *shared* by the measured and
/// reference implementations slows them proportionally and is
/// indistinguishable from a slower host by any in-process measurement, so
/// only the absolute gate can catch it — and only when CI hardware is
/// comparable to the recorded baseline host. Treat a "slower host" pass that
/// coincides with a hot-path change as a prompt to re-baseline and compare
/// absolute numbers by hand.
fn check_gate(gate: &Gate, throughput: f64, speedup: f64, path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline '{path}': {e}"))?;
    let value = Json::parse(&text).map_err(|e| format!("cannot parse baseline '{path}': {e}"))?;
    let baseline = value
        .get(gate.throughput_key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("baseline '{path}' has no '{}' number", gate.throughput_key))?;
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if throughput >= floor {
        return Ok(format!(
            "baseline check ok: {throughput:.0} {unit} vs baseline {baseline:.0} (floor {floor:.0})",
            unit = gate.unit
        ));
    }
    let shortfall = (1.0 - throughput / baseline) * 100.0;
    if let Some(speedup_baseline) = value.get(gate.speedup_key).and_then(Json::as_num) {
        let speedup_floor = speedup_baseline * (1.0 - REGRESSION_TOLERANCE);
        if speedup >= speedup_floor {
            return Ok(format!(
                "baseline check ok (slower host): {throughput:.0} {unit} is {shortfall:.0}% under \
                 baseline {baseline:.0}, but the speedup {speedup:.2}x holds vs baseline \
                 {speedup_baseline:.2}x (floor {speedup_floor:.2}x)",
                unit = gate.unit
            ));
        }
    }
    Err(format!(
        "{subject} regressed: {throughput:.0} {unit} is below the floor {floor:.0} \
         ({shortfall:.0}% under baseline {baseline:.0}), and the speedup {speedup:.2}x does not \
         clear the machine-independent fallback",
        subject = gate.subject,
        unit = gate.unit
    ))
}

/// The interpreter gate (`repro bench-interp --check-baseline`).
fn check_baseline(entry: &InterpEntry, path: &str) -> Result<String, String> {
    let gate = Gate {
        throughput_key: "interp_evals_per_second",
        speedup_key: "interp_speedup",
        unit: "evals/s",
        subject: "interpreter throughput",
    };
    check_gate(&gate, entry.evals_per_second, entry.speedup, path)
}

/// The canonicalization gate (`repro bench-opt --check-baseline`).
fn check_opt_baseline(entry: &OptEntry, path: &str) -> Result<String, String> {
    let gate = Gate {
        throughput_key: "opt_canon_per_second",
        speedup_key: "opt_speedup",
        unit: "canon/s",
        subject: "canonicalization throughput",
    };
    check_gate(&gate, entry.canon_per_second, entry.speedup, path)
}

/// The translation-validation gates (`repro bench-tv --check-baseline`):
/// the refuted-candidate shape (the cost the staged checker exists to
/// reduce), the survivor shape (the plane-compiled sweep — gated so it
/// cannot silently regress toward the pre-plane parity numbers), the
/// abstract-refutation tier's throughput, and the proved-survivor floor.
fn check_tv_baseline(entry: &TvEntry, path: &str) -> Result<String, String> {
    let refuted_gate = Gate {
        throughput_key: "tv_refuted_per_second",
        speedup_key: "tv_refuted_speedup",
        unit: "checks/s",
        subject: "refuted-candidate translation-validation throughput",
    };
    let survivor_gate = Gate {
        throughput_key: "tv_survivor_per_second",
        speedup_key: "tv_survivor_speedup",
        unit: "checks/s",
        subject: "survivor translation-validation throughput",
    };
    let absint_gate = Gate {
        throughput_key: "tv_absint_refuted_per_second",
        speedup_key: "tv_absint_speedup",
        unit: "checks/s",
        subject: "abstract-refutation throughput",
    };
    let checks = [
        check_gate(&refuted_gate, entry.refuted_per_second, entry.refuted_speedup, path),
        check_gate(&survivor_gate, entry.survivor_per_second, entry.survivor_speedup, path),
        check_gate(&absint_gate, entry.absint_refuted_per_second, entry.absint_speedup, path),
        check_tv_proved_fraction(entry, path),
    ];
    let failed = checks.iter().any(Result::is_err);
    let combined = checks
        .into_iter()
        .map(|check| check.unwrap_or_else(|message| message))
        .collect::<Vec<_>>()
        .join("\n");
    if failed {
        Err(combined)
    } else {
        Ok(combined)
    }
}

/// The proved-survivor floor: the fraction of self-verification survivors
/// the abstract tier proves is deterministic (a property of the tier and the
/// rq1 suite, not of the host), so the baseline value is itself the floor —
/// no regression tolerance applies. A baseline without the key (written
/// before the tier existed) skips the check.
fn check_tv_proved_fraction(entry: &TvEntry, path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline '{path}': {e}"))?;
    let value = Json::parse(&text).map_err(|e| format!("cannot parse baseline '{path}': {e}"))?;
    let Some(floor) = value.get("tv_proved_fraction").and_then(Json::as_num) else {
        return Ok(format!(
            "baseline '{path}' has no 'tv_proved_fraction' — proved-survivor check skipped"
        ));
    };
    if entry.proved_fraction >= floor {
        Ok(format!(
            "proved-survivor check ok: {:.2} of survivor sweeps skipped (floor {floor:.2})",
            entry.proved_fraction
        ))
    } else {
        Err(format!(
            "proved-survivor fraction regressed: {:.2} is below the deterministic floor {floor:.2} \
             ({}/{} survivors proved abstractly)",
            entry.proved_fraction, entry.proved_survivors, entry.cases
        ))
    }
}

/// The sharded-execution gates (`repro bench-exec --check-baseline`): the
/// machine-independent overhead ratios everywhere (sharding at one worker
/// must stay within tolerance of the case-granular engine), plus the
/// parallel-scaling floor on hosts where parallelism is actually available.
fn check_exec_baseline(entry: &ExecEntry, path: &str) -> Result<String, String> {
    let sweep_gate = Gate {
        throughput_key: "exec_sweep_per_second",
        speedup_key: "exec_sweep_overhead_ratio",
        unit: "sweeps/s",
        subject: "sharded input-sweep throughput",
    };
    let enum_gate = Gate {
        throughput_key: "exec_enum_per_second",
        speedup_key: "exec_enum_overhead_ratio",
        unit: "candidates/s",
        subject: "sharded enumeration throughput",
    };
    let checks = [
        check_gate(&sweep_gate, entry.sweep_serial_per_second, entry.sweep_overhead_ratio, path),
        check_gate(&enum_gate, entry.enum_serial_per_second, entry.enum_overhead_ratio, path),
        check_exec_scaling(entry, path),
    ];
    let failed = checks.iter().any(Result::is_err);
    let combined = checks
        .into_iter()
        .map(|check| check.unwrap_or_else(|message| message))
        .collect::<Vec<_>>()
        .join("\n");
    if failed {
        Err(combined)
    } else {
        Ok(combined)
    }
}

/// The single-case parallel-scaling floor: on a host with ≥ 4 cores, a
/// `--jobs ≥ 4` sweep must speed up within 30% of the baseline speedup.
/// Single-core hosts (and `--jobs 1` runs) cannot measure scaling, so the
/// check is skipped — the overhead gates still apply there.
fn check_exec_scaling(entry: &ExecEntry, path: &str) -> Result<String, String> {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if entry.jobs < 4 || cores < 4 {
        return Ok(format!(
            "parallel-scaling check skipped: jobs {} on a {cores}-core host (needs >= 4 of each)",
            entry.jobs
        ));
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline '{path}': {e}"))?;
    let value = Json::parse(&text).map_err(|e| format!("cannot parse baseline '{path}': {e}"))?;
    let Some(baseline) = value.get("exec_sweep_speedup").and_then(Json::as_num) else {
        return Ok(format!("baseline '{path}' has no 'exec_sweep_speedup' — scaling check skipped"));
    };
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if entry.sweep_speedup >= floor {
        Ok(format!(
            "parallel-scaling check ok: {:.2}x at jobs {} vs baseline {baseline:.2}x (floor {floor:.2}x)",
            entry.sweep_speedup, entry.jobs
        ))
    } else {
        Err(format!(
            "single-case scaling regressed: {:.2}x at jobs {} on a {cores}-core host is below \
             the floor {floor:.2}x (baseline {baseline:.2}x)",
            entry.sweep_speedup, entry.jobs
        ))
    }
}

/// The serving-shell gates (`repro bench-serve --check-baseline`): protocol
/// throughput (with the machine-independent warm-speedup fallback) plus the
/// warm cache-hit floor. The hit rate is a counter delta, not a timing, so
/// the baseline value is itself the floor — no regression tolerance.
fn check_serve_baseline(entry: &ServeEntry, path: &str) -> Result<String, String> {
    let gate = Gate {
        throughput_key: "serve_requests_per_second",
        speedup_key: "serve_warm_speedup",
        unit: "req/s",
        subject: "serving-shell protocol throughput",
    };
    let checks = [
        check_gate(&gate, entry.requests_per_second, entry.warm_speedup, path),
        check_serve_cache_hit_rate(entry, path),
    ];
    let failed = checks.iter().any(Result::is_err);
    let combined = checks
        .into_iter()
        .map(|check| check.unwrap_or_else(|message| message))
        .collect::<Vec<_>>()
        .join("\n");
    if failed {
        Err(combined)
    } else {
        Ok(combined)
    }
}

/// The warm cache-hit floor: warm resubmissions must answer from the shared
/// verdict store. A baseline without the key (written before the serving
/// shell existed) skips the check.
fn check_serve_cache_hit_rate(entry: &ServeEntry, path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline '{path}': {e}"))?;
    let value = Json::parse(&text).map_err(|e| format!("cannot parse baseline '{path}': {e}"))?;
    let Some(floor) = value.get("serve_cache_hit_rate").and_then(Json::as_num) else {
        return Ok(format!(
            "baseline '{path}' has no 'serve_cache_hit_rate' — warm cache-hit check skipped"
        ));
    };
    if entry.cache_hit_rate >= floor {
        Ok(format!(
            "warm cache-hit check ok: {:.2} of warm verdict lookups hit the store (floor {floor:.2})",
            entry.cache_hit_rate
        ))
    } else {
        Err(format!(
            "warm cache-hit rate regressed: {:.2} is below the floor {floor:.2} \
             (warm submissions are recomputing Stage-3 verdicts instead of replaying them)",
            entry.cache_hit_rate
        ))
    }
}

/// `--store PATH` / `--resume`: opens (or creates) the durable verdict and
/// checkpoint store. `--resume` without `--store` is a usage error — there is
/// nothing to resume from.
fn arg_store(args: &[String]) -> Option<StoreOptions> {
    let resume = args.iter().any(|a| a == "--resume");
    let Some(path) = arg_text(args, "--store") else {
        if resume {
            eprintln!("--resume requires --store PATH (the store the previous run wrote)");
            std::process::exit(2);
        }
        return None;
    };
    match VerdictStore::open(path) {
        Ok(store) => Some(StoreOptions { store: Arc::new(store), resume }),
        Err(error) => {
            eprintln!("cannot open store '{path}': {error}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "serve" => return run_serve(&args),
        "serve-client" => return run_serve_client(&args),
        _ => {}
    }
    let rounds = arg_value(&args, "--rounds", 2);
    let samples = arg_value(&args, "--samples", 60) as usize;
    let jobs = arg_value(&args, "--jobs", 0) as usize;
    let shard_size = arg_shard_size(&args);
    let store = arg_store(&args);
    let store = store.as_ref();
    let quick_models = || {
        if args.iter().any(|a| a == "--all-models") {
            rq1_models()
        } else {
            vec![
                lpo_llm::prelude::gemma3(),
                lpo_llm::prelude::llama3_3(),
                lpo_llm::prelude::gemini2_0t(),
                lpo_llm::prelude::o4_mini(),
            ]
        }
    };

    let mut tables: Vec<TableEntry> = Vec::new();
    let mut interp: Option<InterpEntry> = None;
    let mut opt: Option<OptEntry> = None;
    let mut tv: Option<TvEntry> = None;
    let mut exec: Option<ExecEntry> = None;
    let mut serve: Option<ServeEntry> = None;
    let mut show = |name: &str, run: TableRun| {
        println!("{}", run.text);
        tables.push(TableEntry {
            name: name.to_string(),
            wall_seconds: run.stats.wall.as_secs_f64(),
            cases: run.stats.cases,
            cases_per_second: run.stats.cases_per_second(),
            cache_hits: run.stats.cache_hits,
            failed: run.stats.failed,
            resumed: run.stats.resumed,
            proved: run.stats.tv.proved,
            absint_refuted: run.stats.tv.absint_refuted,
            jobs: run.stats.jobs,
        });
    };

    match what {
        "table1" => println!("{}", harness::table1()),
        "table2" => {
            show("table2", harness::table2_with_store(rounds, &quick_models(), jobs, shard_size, store))
        }
        "table3" => show("table3", harness::table3_with_store(jobs, store)),
        "table4" => show("table4", harness::table4_with_store(samples, jobs, shard_size, store)),
        "table5" => show("table5", harness::table5_with_store(jobs, store)),
        "figure5" => show("figure5", harness::figure5(jobs)),
        "bench-interp" => {
            let run = harness::bench_interp(jobs);
            println!("{}", run.text);
            interp = Some(run.entry);
        }
        "bench-opt" => {
            let run = harness::bench_opt(jobs);
            println!("{}", run.text);
            opt = Some(run.entry);
        }
        "bench-tv" => {
            let run = harness::bench_tv(jobs);
            println!("{}", run.text);
            tv = Some(run.entry);
        }
        "bench-exec" => {
            let run = harness::bench_exec(jobs, shard_size);
            println!("{}", run.text);
            exec = Some(run.entry);
        }
        "bench-serve" => {
            let run = harness::bench_serve(jobs);
            println!("{}", run.text);
            serve = Some(run.entry);
        }
        "all" => {
            println!("{}", harness::table1());
            show("table2", harness::table2_with_store(rounds, &quick_models(), jobs, shard_size, store));
            show("table3", harness::table3_with_store(jobs, store));
            show("table4", harness::table4_with_store(samples, jobs, shard_size, store));
            show("table5", harness::table5_with_store(jobs, store));
            show("figure5", harness::figure5(jobs));
            let run = harness::bench_interp(jobs);
            println!("{}", run.text);
            interp = Some(run.entry);
            let run = harness::bench_opt(jobs);
            println!("{}", run.text);
            opt = Some(run.entry);
            let run = harness::bench_tv(jobs);
            println!("{}", run.text);
            tv = Some(run.entry);
            let run = harness::bench_exec(jobs, shard_size);
            println!("{}", run.text);
            exec = Some(run.entry);
            let run = harness::bench_serve(jobs);
            println!("{}", run.text);
            serve = Some(run.entry);
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected table1..table5, figure5, bench-interp, bench-opt, bench-tv, bench-exec, bench-serve, serve, serve-client or all"
            );
            std::process::exit(2);
        }
    }

    let entries = RunEntries {
        tables,
        interp: interp.clone(),
        opt: opt.clone(),
        tv: tv.clone(),
        exec: exec.clone(),
        serve: serve.clone(),
    };
    if !entries.is_empty() {
        let path = "BENCH_results.json";
        match BenchResults::merge_into_file(path, what, jobs, entries) {
            Ok(merged) => eprintln!(
                "merged into {path} ({} tables, {} runs recorded)",
                merged.tables.len(),
                merged.runs.len()
            ),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    if let Some(baseline_path) = arg_text(&args, "--check-baseline") {
        if interp.is_none() && opt.is_none() && tv.is_none() && exec.is_none() && serve.is_none() {
            eprintln!(
                "--check-baseline requires the bench-interp, bench-opt, bench-tv, bench-exec, bench-serve (or all) subcommand"
            );
            std::process::exit(2);
        }
        let mut failed = false;
        if let Some(entry) = &interp {
            match check_baseline(entry, baseline_path) {
                Ok(message) => eprintln!("{message}"),
                Err(message) => {
                    eprintln!("{message}");
                    failed = true;
                }
            }
        }
        if let Some(entry) = &opt {
            match check_opt_baseline(entry, baseline_path) {
                Ok(message) => eprintln!("{message}"),
                Err(message) => {
                    eprintln!("{message}");
                    failed = true;
                }
            }
        }
        if let Some(entry) = &tv {
            match check_tv_baseline(entry, baseline_path) {
                Ok(message) => eprintln!("{message}"),
                Err(message) => {
                    eprintln!("{message}");
                    failed = true;
                }
            }
        }
        if let Some(entry) = &exec {
            match check_exec_baseline(entry, baseline_path) {
                Ok(message) => eprintln!("{message}"),
                Err(message) => {
                    eprintln!("{message}");
                    failed = true;
                }
            }
        }
        if let Some(entry) = &serve {
            match check_serve_baseline(entry, baseline_path) {
                Ok(message) => eprintln!("{message}"),
                Err(message) => {
                    eprintln!("{message}");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}

/// `repro serve --addr HOST:PORT [--store PATH] [--jobs N] [--shard-size M]
/// [--queue K]`: runs the discovery server in the foreground until a client
/// sends a `shutdown` request. Without `--store` the verdict store is
/// in-memory — warm resubmissions still hit it, but nothing survives the
/// process.
fn run_serve(args: &[String]) {
    let addr = arg_text(args, "--addr").unwrap_or("127.0.0.1:7345");
    let jobs = arg_value(args, "--jobs", 0) as usize;
    let shard_size = arg_shard_size(args);
    let queue_capacity = arg_value(args, "--queue", 16) as usize;
    let store = match arg_text(args, "--store") {
        None => Arc::new(VerdictStore::in_memory()),
        Some(path) => match VerdictStore::open(path) {
            Ok(store) => Arc::new(store),
            Err(error) => {
                eprintln!("cannot open store '{path}': {error}");
                std::process::exit(2);
            }
        },
    };
    let config = ServeConfig { jobs, shard_size, queue_capacity, ..ServeConfig::default() };
    let server = match Server::bind(addr, config, store) {
        Ok(server) => server,
        Err(error) => {
            eprintln!("cannot bind '{addr}': {error}");
            std::process::exit(2);
        }
    };
    eprintln!("serving on {} (jobs {jobs}, queue {queue_capacity})", server.local_addr());
    if let Err(error) = server.run() {
        eprintln!("server failed: {error}");
        std::process::exit(1);
    }
    eprintln!("server shut down cleanly");
}

/// `repro serve-client --addr HOST:PORT [--corpus NAME | --module FILE]
/// [--warm N] [--seed S] [--resume] [--stats] [--shutdown]`: scripts one
/// client session against a running server — the CI `serve-smoke` driver.
/// Exits non-zero on any rejected submission or protocol failure.
fn run_serve_client(args: &[String]) {
    let addr = arg_text(args, "--addr").unwrap_or("127.0.0.1:7345");
    let mut client = match ServeClient::connect_retry(addr, 40, Duration::from_millis(250)) {
        Ok(client) => client,
        Err(error) => {
            eprintln!("cannot connect to '{addr}': {error}");
            std::process::exit(1);
        }
    };

    let mut options = match (arg_text(args, "--corpus"), arg_text(args, "--module")) {
        (Some(_), Some(_)) => {
            eprintln!("--corpus and --module are mutually exclusive");
            std::process::exit(2);
        }
        (None, None) => None,
        (Some(name), None) => Some(SubmitOptions::corpus(name)),
        (None, Some(path)) => match std::fs::read_to_string(path) {
            Ok(text) => Some(SubmitOptions::module(&text)),
            Err(error) => {
                eprintln!("cannot read module '{path}': {error}");
                std::process::exit(2);
            }
        },
    };
    if let Some(options) = options.as_mut() {
        if let Some(model) = arg_text(args, "--model") {
            options.model = Some(model.to_string());
        }
        if args.iter().any(|a| a == "--seed") {
            options.seed = Some(arg_value(args, "--seed", 42));
        }
        options.resume = args.iter().any(|a| a == "--resume");
    }

    let describe = |label: &str, outcome: &lpo_serve::client::JobOutcome| match outcome {
        lpo_serve::client::JobOutcome::Rejected(message) => {
            eprintln!("{label}: rejected: {message}");
            std::process::exit(1);
        }
        lpo_serve::client::JobOutcome::Finished { cases, done, .. } => {
            eprintln!(
                "{label}: {} case frames, summary {}, cache hit rate {:.2}",
                cases.len(),
                done.get("summary").and_then(Json::as_str).unwrap_or("?"),
                done.get("cache_hit_rate").and_then(Json::as_num).unwrap_or(0.0)
            );
        }
    };

    let exchange = |label: &str, result: std::io::Result<lpo_serve::client::JobOutcome>| match result
    {
        Ok(outcome) => outcome,
        Err(error) => {
            eprintln!("{label} failed: {error}");
            std::process::exit(1);
        }
    };

    if let Some(options) = &options {
        let cold = exchange("submit", client.submit(options));
        describe("submit", &cold);
        let warm_passes = arg_value(args, "--warm", 0);
        for pass in 0..warm_passes {
            let warm = exchange("warm submit", client.submit(options));
            describe(&format!("warm submit {}", pass + 1), &warm);
        }
    }
    if args.iter().any(|a| a == "--stats") {
        match client.stats() {
            Ok(stats) => eprintln!(
                "stats: {} requests, queue depth {}, cache hit rate {:.2}",
                stats.get("requests").and_then(Json::as_num).unwrap_or(0.0),
                stats.get("queue_depth").and_then(Json::as_num).unwrap_or(0.0),
                stats.get("cache_hit_rate").and_then(Json::as_num).unwrap_or(0.0)
            ),
            Err(error) => {
                eprintln!("stats failed: {error}");
                std::process::exit(1);
            }
        }
    }
    if args.iter().any(|a| a == "--shutdown") {
        match client.shutdown() {
            Ok(_) => eprintln!("server acknowledged shutdown"),
            Err(error) => {
                eprintln!("shutdown failed: {error}");
                std::process::exit(1);
            }
        }
    }
}
