//! Regenerates the paper's tables and figures on the parallel execution
//! engine, and records the run's performance in `BENCH_results.json`.
//!
//! ```text
//! cargo run -p lpo-bench --release --bin repro -- all
//! cargo run -p lpo-bench --release --bin repro -- table2 --rounds 5 --jobs 8
//! cargo run -p lpo-bench --release --bin repro -- table4 --samples 500 --jobs 0
//! cargo run -p lpo-bench --release --bin repro -- bench-interp --jobs 1
//! cargo run -p lpo-bench --release --bin repro -- bench-opt --jobs 1
//! cargo run -p lpo-bench --release --bin repro -- bench-tv --jobs 1
//! ```
//!
//! `--jobs N` sets the worker count for every driver (`0`, the default, uses
//! all available cores). Any value produces bit-identical results; only
//! wall-clock measurements change (the `[engine]` footers and Table 5's
//! measured compile-time-delta column).
//!
//! Each invocation **merges** its numbers into `BENCH_results.json` in the
//! current directory: per-table entries are replaced by name, everything else
//! is kept, and the invocation is appended to the `runs` history — so the
//! perf trajectory accumulates across runs and PRs instead of being
//! overwritten.
//!
//! `bench-interp` measures the concrete-evaluation hot path (register-file
//! evaluator vs the reference evaluator) and fills the `interp` section;
//! `bench-opt` measures Stage 1 canonicalization (worklist engine vs the
//! rescan reference) and fills the `opt` section; `bench-tv` measures Stage 3
//! translation validation (staged checker vs the pre-staging reference) and
//! fills the `tv` section. With
//! `--check-baseline <file>` each exits non-zero when its throughput falls
//! more than 30% below the checked-in baseline — the CI `bench-smoke` gate.

use lpo_bench::results::{BenchResults, InterpEntry, Json, OptEntry, RunEntries, TableEntry, TvEntry};
use lpo_bench::{self as harness, TableRun};
use lpo_llm::prelude::rq1_models;

fn arg_value(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_text<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).map(String::as_str)
}

/// Allowed relative regression vs the baseline.
const REGRESSION_TOLERANCE: f64 = 0.30;

/// One throughput gate's wiring: which baseline keys to read and how to
/// describe the measurement in messages.
struct Gate {
    /// Baseline key for the absolute-throughput floor.
    throughput_key: &'static str,
    /// Baseline key for the machine-independent speedup fallback.
    speedup_key: &'static str,
    /// Unit shown in messages, e.g. `evals/s`.
    unit: &'static str,
    /// Subject shown in the failure message, e.g. `interpreter throughput`.
    subject: &'static str,
}

/// Compares a fresh measurement against a checked-in baseline file.
///
/// The primary gate is absolute throughput (within 30% of the baseline). CI
/// runners span hardware generations, so a slower host is exonerated by the
/// machine-independent fallback: the speedup over the in-process reference
/// implementation — measured on the same hardware in the same run — must
/// then be within 30% of the baseline speedup. A regression fails both.
///
/// Known limitation: a regression in code *shared* by the measured and
/// reference implementations slows them proportionally and is
/// indistinguishable from a slower host by any in-process measurement, so
/// only the absolute gate can catch it — and only when CI hardware is
/// comparable to the recorded baseline host. Treat a "slower host" pass that
/// coincides with a hot-path change as a prompt to re-baseline and compare
/// absolute numbers by hand.
fn check_gate(gate: &Gate, throughput: f64, speedup: f64, path: &str) -> Result<String, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read baseline '{path}': {e}"))?;
    let value = Json::parse(&text).map_err(|e| format!("cannot parse baseline '{path}': {e}"))?;
    let baseline = value
        .get(gate.throughput_key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("baseline '{path}' has no '{}' number", gate.throughput_key))?;
    let floor = baseline * (1.0 - REGRESSION_TOLERANCE);
    if throughput >= floor {
        return Ok(format!(
            "baseline check ok: {throughput:.0} {unit} vs baseline {baseline:.0} (floor {floor:.0})",
            unit = gate.unit
        ));
    }
    let shortfall = (1.0 - throughput / baseline) * 100.0;
    if let Some(speedup_baseline) = value.get(gate.speedup_key).and_then(Json::as_num) {
        let speedup_floor = speedup_baseline * (1.0 - REGRESSION_TOLERANCE);
        if speedup >= speedup_floor {
            return Ok(format!(
                "baseline check ok (slower host): {throughput:.0} {unit} is {shortfall:.0}% under \
                 baseline {baseline:.0}, but the speedup {speedup:.2}x holds vs baseline \
                 {speedup_baseline:.2}x (floor {speedup_floor:.2}x)",
                unit = gate.unit
            ));
        }
    }
    Err(format!(
        "{subject} regressed: {throughput:.0} {unit} is below the floor {floor:.0} \
         ({shortfall:.0}% under baseline {baseline:.0}), and the speedup {speedup:.2}x does not \
         clear the machine-independent fallback",
        subject = gate.subject,
        unit = gate.unit
    ))
}

/// The interpreter gate (`repro bench-interp --check-baseline`).
fn check_baseline(entry: &InterpEntry, path: &str) -> Result<String, String> {
    let gate = Gate {
        throughput_key: "interp_evals_per_second",
        speedup_key: "interp_speedup",
        unit: "evals/s",
        subject: "interpreter throughput",
    };
    check_gate(&gate, entry.evals_per_second, entry.speedup, path)
}

/// The canonicalization gate (`repro bench-opt --check-baseline`).
fn check_opt_baseline(entry: &OptEntry, path: &str) -> Result<String, String> {
    let gate = Gate {
        throughput_key: "opt_canon_per_second",
        speedup_key: "opt_speedup",
        unit: "canon/s",
        subject: "canonicalization throughput",
    };
    check_gate(&gate, entry.canon_per_second, entry.speedup, path)
}

/// The translation-validation gates (`repro bench-tv --check-baseline`):
/// the refuted-candidate shape (the cost the staged checker exists to
/// reduce) and the survivor shape (the plane-compiled sweep — gated so it
/// cannot silently regress toward the pre-plane parity numbers).
fn check_tv_baseline(entry: &TvEntry, path: &str) -> Result<String, String> {
    let refuted_gate = Gate {
        throughput_key: "tv_refuted_per_second",
        speedup_key: "tv_refuted_speedup",
        unit: "checks/s",
        subject: "refuted-candidate translation-validation throughput",
    };
    let survivor_gate = Gate {
        throughput_key: "tv_survivor_per_second",
        speedup_key: "tv_survivor_speedup",
        unit: "checks/s",
        subject: "survivor translation-validation throughput",
    };
    let refuted = check_gate(&refuted_gate, entry.refuted_per_second, entry.refuted_speedup, path);
    let survivor =
        check_gate(&survivor_gate, entry.survivor_per_second, entry.survivor_speedup, path);
    match (refuted, survivor) {
        (Ok(a), Ok(b)) => Ok(format!("{a}\n{b}")),
        (Err(a), Ok(b)) | (Ok(b), Err(a)) => Err(format!("{a}\n{b}")),
        (Err(a), Err(b)) => Err(format!("{a}\n{b}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let rounds = arg_value(&args, "--rounds", 2);
    let samples = arg_value(&args, "--samples", 60) as usize;
    let jobs = arg_value(&args, "--jobs", 0) as usize;
    let quick_models = || {
        if args.iter().any(|a| a == "--all-models") {
            rq1_models()
        } else {
            vec![
                lpo_llm::prelude::gemma3(),
                lpo_llm::prelude::llama3_3(),
                lpo_llm::prelude::gemini2_0t(),
                lpo_llm::prelude::o4_mini(),
            ]
        }
    };

    let mut tables: Vec<TableEntry> = Vec::new();
    let mut interp: Option<InterpEntry> = None;
    let mut opt: Option<OptEntry> = None;
    let mut tv: Option<TvEntry> = None;
    let mut show = |name: &str, run: TableRun| {
        println!("{}", run.text);
        tables.push(TableEntry {
            name: name.to_string(),
            wall_seconds: run.stats.wall.as_secs_f64(),
            cases: run.stats.cases,
            cases_per_second: run.stats.cases_per_second(),
            cache_hits: run.stats.cache_hits,
            jobs: run.stats.jobs,
        });
    };

    match what {
        "table1" => println!("{}", harness::table1()),
        "table2" => show("table2", harness::table2(rounds, &quick_models(), jobs)),
        "table3" => show("table3", harness::table3(jobs)),
        "table4" => show("table4", harness::table4(samples, jobs)),
        "table5" => show("table5", harness::table5(jobs)),
        "figure5" => show("figure5", harness::figure5(jobs)),
        "bench-interp" => {
            let run = harness::bench_interp(jobs);
            println!("{}", run.text);
            interp = Some(run.entry);
        }
        "bench-opt" => {
            let run = harness::bench_opt(jobs);
            println!("{}", run.text);
            opt = Some(run.entry);
        }
        "bench-tv" => {
            let run = harness::bench_tv(jobs);
            println!("{}", run.text);
            tv = Some(run.entry);
        }
        "all" => {
            println!("{}", harness::table1());
            show("table2", harness::table2(rounds, &quick_models(), jobs));
            show("table3", harness::table3(jobs));
            show("table4", harness::table4(samples, jobs));
            show("table5", harness::table5(jobs));
            show("figure5", harness::figure5(jobs));
            let run = harness::bench_interp(jobs);
            println!("{}", run.text);
            interp = Some(run.entry);
            let run = harness::bench_opt(jobs);
            println!("{}", run.text);
            opt = Some(run.entry);
            let run = harness::bench_tv(jobs);
            println!("{}", run.text);
            tv = Some(run.entry);
        }
        other => {
            eprintln!(
                "unknown experiment '{other}'; expected table1..table5, figure5, bench-interp, bench-opt, bench-tv or all"
            );
            std::process::exit(2);
        }
    }

    let entries = RunEntries {
        tables,
        interp: interp.clone(),
        opt: opt.clone(),
        tv: tv.clone(),
    };
    if !entries.is_empty() {
        let path = "BENCH_results.json";
        match BenchResults::merge_into_file(path, what, jobs, entries) {
            Ok(merged) => eprintln!(
                "merged into {path} ({} tables, {} runs recorded)",
                merged.tables.len(),
                merged.runs.len()
            ),
            Err(e) => eprintln!("could not write {path}: {e}"),
        }
    }

    if let Some(baseline_path) = arg_text(&args, "--check-baseline") {
        if interp.is_none() && opt.is_none() && tv.is_none() {
            eprintln!("--check-baseline requires the bench-interp, bench-opt, bench-tv (or all) subcommand");
            std::process::exit(2);
        }
        let mut failed = false;
        if let Some(entry) = &interp {
            match check_baseline(entry, baseline_path) {
                Ok(message) => eprintln!("{message}"),
                Err(message) => {
                    eprintln!("{message}");
                    failed = true;
                }
            }
        }
        if let Some(entry) = &opt {
            match check_opt_baseline(entry, baseline_path) {
                Ok(message) => eprintln!("{message}"),
                Err(message) => {
                    eprintln!("{message}");
                    failed = true;
                }
            }
        }
        if let Some(entry) = &tv {
            match check_tv_baseline(entry, baseline_path) {
                Ok(message) => eprintln!("{message}"),
                Err(message) => {
                    eprintln!("{message}");
                    failed = true;
                }
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
