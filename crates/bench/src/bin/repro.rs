//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p lpo-bench --release --bin repro -- all
//! cargo run -p lpo-bench --release --bin repro -- table2 --rounds 5
//! cargo run -p lpo-bench --release --bin repro -- table4 --samples 500
//! ```

use lpo_bench as harness;
use lpo_llm::prelude::rq1_models;

fn arg_value(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    let rounds = arg_value(&args, "--rounds", 2);
    let samples = arg_value(&args, "--samples", 60) as usize;
    let quick_models = || {
        if args.iter().any(|a| a == "--all-models") {
            rq1_models()
        } else {
            vec![
                lpo_llm::prelude::gemma3(),
                lpo_llm::prelude::llama3_3(),
                lpo_llm::prelude::gemini2_0t(),
                lpo_llm::prelude::o4_mini(),
            ]
        }
    };

    match what {
        "table1" => println!("{}", harness::table1()),
        "table2" => println!("{}", harness::table2(rounds, &quick_models())),
        "table3" => println!("{}", harness::table3()),
        "table4" => println!("{}", harness::table4(samples)),
        "table5" => println!("{}", harness::table5()),
        "figure5" => println!("{}", harness::figure5()),
        "all" => {
            println!("{}", harness::table1());
            println!("{}", harness::table2(rounds, &quick_models()));
            println!("{}", harness::table3());
            println!("{}", harness::table4(samples));
            println!("{}", harness::table5());
            println!("{}", harness::figure5());
        }
        other => {
            eprintln!("unknown experiment '{other}'; expected table1..table5, figure5 or all");
            std::process::exit(2);
        }
    }
}
