//! The worklist behind the canonicalization engine.
//!
//! LLVM's InstCombine is worklist-driven because rescanning the whole
//! function to a fixpoint does not scale: most rule applications only affect
//! a small neighbourhood of the rewritten instruction. [`Worklist`] tracks
//! which instructions still need a visit as a dense dirty set over the
//! instruction arena, deduplicated by construction (an instruction is dirty
//! or not — queueing it twice is one visit).
//!
//! The driver in [`crate::pipeline::Pipeline::run`] seeds every placed
//! instruction, then sweeps block positions in layout order, visiting only
//! dirty instructions: a clean position costs one bit check instead of a
//! full rule scan, and the sweep repeats only while rewrites re-dirty
//! instructions behind the cursor. Because the sweep follows the same
//! positional order as the retained rescan engine — the same block order,
//! including re-examining the current position after a hit — the two print
//! byte-identical results;
//! the worklist engine just skips the (vast majority of) clean positions and
//! replaces the whole-function DCE pass with a trivially-dead check on
//! visit, driven by the use counts `lpo-ir` maintains.

use lpo_ir::function::Function;
use lpo_ir::instruction::{BlockId, InstId, InstKind};

/// A dense dirty set of instruction ids awaiting a visit.
#[derive(Debug, Default)]
pub struct Worklist {
    dirty: Vec<bool>,
    pending: usize,
}

impl Worklist {
    /// An empty worklist sized for a function's arena.
    pub fn with_capacity(arena_len: usize) -> Self {
        Self { dirty: vec![false; arena_len], pending: 0 }
    }

    /// A worklist with every placed non-terminator instruction of `func`
    /// marked. Terminators are never seeded: no rewrite rule matches one and
    /// they are never trivially dead, so visiting them is pure overhead (the
    /// rescan engine pays a full rule scan per terminator per iteration).
    pub fn seeded(func: &Function) -> Self {
        let mut list = Self::with_capacity(func.inst_arena_len());
        for (id, inst) in func.iter_insts() {
            if !inst.is_terminator() {
                list.mark(id);
            }
        }
        list
    }

    /// Marks an instruction as needing a visit. Returns `true` if it was not
    /// already marked.
    pub fn mark(&mut self, id: InstId) -> bool {
        let slot = id.0 as usize;
        if slot >= self.dirty.len() {
            self.dirty.resize(slot + 1, false);
        }
        if self.dirty[slot] {
            return false;
        }
        self.dirty[slot] = true;
        self.pending += 1;
        true
    }

    /// Claims a visit: clears the mark and returns whether it was set.
    pub fn take(&mut self, id: InstId) -> bool {
        match self.dirty.get_mut(id.0 as usize) {
            Some(flag) if *flag => {
                *flag = false;
                self.pending -= 1;
                true
            }
            _ => false,
        }
    }

    /// Returns `true` if the instruction is currently marked.
    pub fn is_marked(&self, id: InstId) -> bool {
        self.dirty.get(id.0 as usize).copied().unwrap_or(false)
    }

    /// Number of marked instructions.
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Returns `true` when nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.pending == 0
    }
}

/// The blocks of `func` in reverse post-order of the control-flow graph,
/// starting from the entry block; unreachable blocks are appended in layout
/// order so every block appears exactly once. A CFG utility for analyses —
/// the pipeline driver deliberately sweeps in *layout* order instead, to
/// stay byte-identical with the rescan reference (helper names from
/// expanding rules depend on visit order).
pub fn block_rpo(func: &Function) -> Vec<BlockId> {
    let block_count = func.blocks().len();
    if block_count == 0 {
        return Vec::new();
    }
    if block_count == 1 {
        // Single-block fast path: the overwhelmingly common shape for
        // extracted peephole sequences.
        return vec![func.entry()];
    }
    let mut visited = vec![false; block_count];
    let mut postorder: Vec<BlockId> = Vec::with_capacity(block_count);
    // Iterative DFS with an explicit (block, next-successor) stack.
    let mut stack: Vec<(BlockId, usize)> = vec![(func.entry(), 0)];
    visited[func.entry().0 as usize] = true;
    while let Some(top) = stack.last_mut() {
        let block = top.0;
        let succs = block_successors(func, block);
        if top.1 < succs.len() {
            let succ = succs[top.1];
            top.1 += 1;
            if !visited[succ.0 as usize] {
                visited[succ.0 as usize] = true;
                stack.push((succ, 0));
            }
        } else {
            postorder.push(block);
            stack.pop();
        }
    }
    let mut rpo: Vec<BlockId> = postorder.into_iter().rev().collect();
    for (idx, seen) in visited.iter().enumerate() {
        if !seen {
            rpo.push(BlockId(idx as u32));
        }
    }
    rpo
}

/// The successor blocks of `block`, from its terminator.
fn block_successors(func: &Function, block: BlockId) -> Vec<BlockId> {
    match func.block(block).insts.last() {
        Some(&last) => match &func.inst(last).kind {
            InstKind::Br { then_block, else_block, .. } => {
                let mut out = vec![*then_block];
                if let Some(else_block) = else_block {
                    if else_block != then_block {
                        out.push(*else_block);
                    }
                }
                out
            }
            _ => Vec::new(),
        },
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    #[test]
    fn mark_take_dedup() {
        let mut list = Worklist::with_capacity(4);
        assert!(list.mark(InstId(0)));
        assert!(!list.mark(InstId(0)), "double mark is one visit");
        assert!(list.mark(InstId(1)));
        assert_eq!(list.pending(), 2);
        assert!(list.is_marked(InstId(0)));
        assert!(list.take(InstId(0)));
        assert!(!list.take(InstId(0)), "a visit can only be claimed once");
        assert!(!list.is_marked(InstId(0)));
        assert!(list.take(InstId(1)));
        assert!(list.is_empty());
        // Re-marking after a take works (the revisit case).
        assert!(list.mark(InstId(1)));
        assert_eq!(list.pending(), 1);
    }

    #[test]
    fn grows_past_initial_capacity() {
        let mut list = Worklist::with_capacity(1);
        assert!(list.mark(InstId(40)));
        assert!(!list.mark(InstId(40)));
        assert_eq!(list.pending(), 1);
        assert!(list.take(InstId(40)));
        assert!(!list.take(InstId(77)), "unknown ids are never marked");
    }

    #[test]
    fn seeding_covers_every_placed_instruction() {
        let func = parse_function(
            "define i32 @sum(i32 %n) {\n\
             entry:\n  br label %header\n\
             header:\n\
               %i = phi i32 [ 0, %entry ], [ %j, %header ]\n\
               %j = add i32 %i, 1\n\
               %c = icmp ult i32 %j, %n\n\
               br i1 %c, label %header, label %exit\n\
             exit:\n  ret i32 %j\n}",
        )
        .unwrap();
        let mut list = Worklist::seeded(&func);
        // Every placed instruction except the terminators (no rule can
        // match one, so seeding them would be pure overhead).
        assert_eq!(list.pending(), func.instruction_count());
        let mut seen = 0;
        for id in func.iter_inst_ids() {
            if list.take(id) {
                seen += 1;
            }
        }
        assert_eq!(seen, func.instruction_count());
        assert!(list.is_empty());
    }

    #[test]
    fn rpo_of_a_diamond() {
        let func = parse_function(
            "define i32 @f(i32 %x) {\n\
             entry:\n  %c = icmp eq i32 %x, 0\n  br i1 %c, label %a, label %b\n\
             a:\n  br label %exit\n\
             b:\n  br label %exit\n\
             exit:\n  ret i32 %x\n}",
        )
        .unwrap();
        let rpo = block_rpo(&func);
        assert_eq!(rpo.len(), 4);
        assert_eq!(rpo[0], func.entry());
        // `exit` must come after both of its predecessors.
        let pos = |name: &str| {
            let id = func.block_by_name(name).unwrap();
            rpo.iter().position(|b| *b == id).unwrap()
        };
        assert!(pos("exit") > pos("a"));
        assert!(pos("exit") > pos("b"));
    }
}
