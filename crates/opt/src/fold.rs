//! Constant folding: instructions whose operands are all constants are
//! replaced by their result.

use crate::rewrite::replace_with;
use lpo_interp::eval::{fold_instruction, to_constant};
use lpo_interp::value::EvalValue;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BlockId, InstId, InstKind, Value};

/// Attempts to fold the instruction at `id` into a constant.
///
/// Memory instructions, control flow, and instructions whose evaluation would
/// be undefined behaviour (e.g. `udiv %x, 0`) are never folded.
pub fn constant_fold(func: &mut Function, id: InstId, _block: BlockId, _pos: usize) -> bool {
    let inst = func.inst(id);
    if inst.kind.touches_memory() || inst.kind.is_terminator() || matches!(inst.kind, InstKind::Phi { .. }) {
        return false;
    }
    let operands = inst.kind.operands();
    if operands.is_empty() || !operands.iter().all(|op| op.is_const()) {
        return false;
    }
    let values: Vec<EvalValue> = operands
        .iter()
        .map(|op| EvalValue::from_constant(op.as_const().expect("checked const")))
        .collect();
    let Some(result) = fold_instruction(&inst.kind, &values, &inst.ty) else {
        return false;
    };
    let Some(constant) = to_constant(&result, &inst.ty) else {
        return false;
    };
    replace_with(func, id, Value::Const(constant))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;
    use lpo_ir::printer::print_function;

    fn fold_all(text: &str) -> String {
        let mut f = parse_function(text).unwrap();
        let worklist: Vec<_> = f.iter_inst_ids().collect();
        for id in worklist {
            if f.iter_inst_ids().any(|i| i == id) {
                let entry = f.entry();
                constant_fold(&mut f, id, entry, 0);
            }
        }
        print_function(&f)
    }

    #[test]
    fn folds_arithmetic_chains() {
        let out = fold_all(
            "define i32 @f() {\n %a = add i32 2, 3\n %b = mul i32 %a, 4\n ret i32 %b\n}",
        );
        assert!(out.contains("ret i32 20"));
        assert!(!out.contains("add"));
        assert!(!out.contains("mul"));
    }

    #[test]
    fn folds_comparisons_selects_and_casts() {
        let out = fold_all(
            "define i8 @f() {\n\
             %c = icmp slt i32 -5, 0\n\
             %s = select i1 %c, i32 10, i32 20\n\
             %t = trunc i32 %s to i8\n\
             ret i8 %t\n}",
        );
        assert!(out.contains("ret i8 10"));
    }

    #[test]
    fn folds_intrinsics_and_vectors() {
        let out = fold_all(
            "define i32 @f() {\n %m = call i32 @llvm.umin.i32(i32 300, i32 255)\n ret i32 %m\n}",
        );
        assert!(out.contains("ret i32 255"));
        let out = fold_all(
            "define <2 x i8> @v() {\n %r = add <2 x i8> <i8 1, i8 2>, <i8 10, i8 20>\n ret <2 x i8> %r\n}",
        );
        assert!(out.contains("ret <2 x i8> <i8 11, i8 22>"));
    }

    #[test]
    fn does_not_fold_ub_or_memory() {
        let out = fold_all("define i32 @f() {\n %d = udiv i32 1, 0\n ret i32 %d\n}");
        assert!(out.contains("udiv"));
        let out = fold_all(
            "define i32 @g(ptr %p) {\n %v = load i32, ptr %p, align 4\n ret i32 %v\n}",
        );
        assert!(out.contains("load"));
    }

    #[test]
    fn folds_flag_violations_to_poison() {
        let out = fold_all("define i8 @f() {\n %a = add nuw i8 200, 100\n ret i8 %a\n}");
        assert!(out.contains("ret i8 poison"));
    }

    #[test]
    fn leaves_non_constant_operands_alone() {
        let out = fold_all("define i32 @f(i32 %x) {\n %a = add i32 %x, 3\n ret i32 %a\n}");
        assert!(out.contains("add i32 %x, 3"));
    }
}
