//! A small known-bits analysis used by InstCombine rules.
//!
//! For every integer-typed value the analysis computes which bits are known to
//! be zero and which are known to be one, walking the use-def chain. It is a
//! conservative forward analysis: bits it cannot prove are reported unknown.

use lpo_ir::apint::ApInt;
use lpo_ir::constant::Constant;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, CastOp, InstKind, Intrinsic, Value};

/// Known-zero / known-one bit masks for one integer value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnownBits {
    /// Bits known to be zero.
    pub zeros: u128,
    /// Bits known to be one.
    pub ones: u128,
    /// The value's bit width.
    pub width: u32,
}

impl KnownBits {
    /// Nothing known for a value of the given width.
    pub fn unknown(width: u32) -> Self {
        Self { zeros: 0, ones: 0, width }
    }

    /// Everything known: the value is exactly `v`.
    pub fn constant(v: &ApInt) -> Self {
        let mask = mask_of(v.width());
        Self { zeros: !v.zext_value() & mask, ones: v.zext_value(), width: v.width() }
    }

    /// Returns the exact value if every bit is known.
    pub fn as_constant(&self) -> Option<ApInt> {
        if self.zeros | self.ones == mask_of(self.width) {
            Some(ApInt::new(self.width, self.ones))
        } else {
            None
        }
    }

    /// Returns `true` if the sign bit is known to be zero (value is non-negative).
    pub fn is_non_negative(&self) -> bool {
        self.zeros >> (self.width - 1) & 1 == 1
    }

    /// Returns `true` if the sign bit is known to be one (value is negative).
    pub fn is_negative(&self) -> bool {
        self.ones >> (self.width - 1) & 1 == 1
    }

    /// The maximum value the bits allow, interpreted unsigned.
    pub fn umax(&self) -> u128 {
        (!self.zeros) & mask_of(self.width)
    }

    /// The minimum value the bits allow, interpreted unsigned.
    pub fn umin(&self) -> u128 {
        self.ones
    }

    /// Number of consecutive known-zero bits counted from the top.
    pub fn leading_zeros(&self) -> u32 {
        let mut count = 0;
        for i in (0..self.width).rev() {
            if self.zeros >> i & 1 == 1 {
                count += 1;
            } else {
                break;
            }
        }
        count
    }
}

fn mask_of(width: u32) -> u128 {
    if width >= 128 { u128::MAX } else { (1u128 << width) - 1 }
}

/// Computes known bits for `value` inside `func`, recursing up to `depth`
/// levels through instruction operands.
pub fn known_bits(func: &Function, value: &Value, depth: u32) -> KnownBits {
    let ty = func.value_type(value);
    let width = match ty.int_width() {
        Some(w) if !ty.is_vector() => w,
        _ => return KnownBits::unknown(ty.int_width().unwrap_or(1)),
    };
    if depth == 0 {
        return KnownBits::unknown(width);
    }
    match value {
        Value::Const(Constant::Int(v)) => KnownBits::constant(v),
        Value::Const(_) | Value::Arg(_) => KnownBits::unknown(width),
        Value::Inst(id) => {
            let inst = func.inst(*id);
            let mask = mask_of(width);
            match &inst.kind {
                InstKind::Binary { op, lhs, rhs, .. } => {
                    let l = known_bits(func, lhs, depth - 1);
                    let r = known_bits(func, rhs, depth - 1);
                    match op {
                        BinOp::And => KnownBits {
                            zeros: (l.zeros | r.zeros) & mask,
                            ones: l.ones & r.ones,
                            width,
                        },
                        BinOp::Or => KnownBits {
                            zeros: l.zeros & r.zeros,
                            ones: (l.ones | r.ones) & mask,
                            width,
                        },
                        BinOp::Xor => {
                            let known = (l.zeros | l.ones) & (r.zeros | r.ones);
                            let value = (l.ones ^ r.ones) & known;
                            KnownBits { zeros: known & !value & mask, ones: value, width }
                        }
                        BinOp::Shl => {
                            if let Some(amt) = const_shift_amount(rhs, width) {
                                KnownBits {
                                    zeros: ((l.zeros << amt) | (mask_of(amt.min(width))) ) & mask,
                                    ones: (l.ones << amt) & mask,
                                    width,
                                }
                            } else {
                                KnownBits::unknown(width)
                            }
                        }
                        BinOp::LShr => {
                            if let Some(amt) = const_shift_amount(rhs, width) {
                                let high_zeros = if amt == 0 {
                                    0
                                } else {
                                    (mask_of(amt) << (width - amt)) & mask
                                };
                                KnownBits {
                                    zeros: ((l.zeros >> amt) | high_zeros) & mask,
                                    ones: l.ones >> amt,
                                    width,
                                }
                            } else {
                                KnownBits::unknown(width)
                            }
                        }
                        BinOp::URem => {
                            if let Some(c) = constant_of(rhs) {
                                if c.is_power_of_two() {
                                    let bits = c.zext_value() - 1;
                                    return KnownBits { zeros: !bits & mask, ones: 0, width };
                                }
                            }
                            KnownBits::unknown(width)
                        }
                        _ => KnownBits::unknown(width),
                    }
                }
                InstKind::Cast { op: CastOp::ZExt, value, .. } => {
                    let inner = known_bits(func, value, depth - 1);
                    let inner_mask = mask_of(inner.width);
                    KnownBits {
                        zeros: (inner.zeros & inner_mask) | (mask & !inner_mask),
                        ones: inner.ones,
                        width,
                    }
                }
                InstKind::Cast { op: CastOp::Trunc, value, .. } => {
                    let inner = known_bits(func, value, depth - 1);
                    KnownBits { zeros: inner.zeros & mask, ones: inner.ones & mask, width }
                }
                InstKind::Call { intrinsic, args, .. } => match intrinsic {
                    Intrinsic::Umin => {
                        let l = known_bits(func, &args[0], depth - 1);
                        let r = known_bits(func, &args[1], depth - 1);
                        // The result is no larger than either bound, so every
                        // bit above the bound's highest possible set bit is zero.
                        let bound = l.umax().min(r.umax());
                        let significant = 128 - bound.leading_zeros();
                        let zeros = if significant >= width {
                            0
                        } else {
                            (mask << significant) & mask
                        };
                        KnownBits { zeros, ones: 0, width }
                    }
                    Intrinsic::Smax => {
                        let l = known_bits(func, &args[0], depth - 1);
                        let r = known_bits(func, &args[1], depth - 1);
                        if l.is_non_negative() || r.is_non_negative() {
                            KnownBits { zeros: 1 << (width - 1), ones: 0, width }
                        } else {
                            KnownBits::unknown(width)
                        }
                    }
                    _ => KnownBits::unknown(width),
                },
                InstKind::ICmp { .. } => KnownBits::unknown(width),
                InstKind::Select { on_true, on_false, .. } => {
                    let t = known_bits(func, on_true, depth - 1);
                    let f = known_bits(func, on_false, depth - 1);
                    KnownBits { zeros: t.zeros & f.zeros, ones: t.ones & f.ones, width }
                }
                _ => KnownBits::unknown(width),
            }
        }
    }
}

fn constant_of(value: &Value) -> Option<ApInt> {
    match value {
        Value::Const(Constant::Int(v)) => Some(*v),
        Value::Const(c) => c.splat_int().copied(),
        _ => None,
    }
}

fn const_shift_amount(value: &Value, width: u32) -> Option<u32> {
    let c = constant_of(value)?;
    let amt = c.zext_value();
    if amt < width as u128 {
        Some(amt as u32)
    } else {
        None
    }
}

/// Default recursion depth used by the InstCombine rules.
pub const DEFAULT_DEPTH: u32 = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    fn bits_of(text: &str, name: &str) -> KnownBits {
        let f = parse_function(text).unwrap();
        let id = f.inst_by_name(name).unwrap();
        known_bits(&f, &Value::Inst(id), DEFAULT_DEPTH)
    }

    #[test]
    fn constants_are_fully_known() {
        let k = KnownBits::constant(&ApInt::new(8, 0b1010_0001));
        assert_eq!(k.ones, 0b1010_0001);
        assert_eq!(k.zeros, 0b0101_1110);
        assert_eq!(k.as_constant().unwrap().zext_value(), 0b1010_0001);
        assert!(k.is_negative());
    }

    #[test]
    fn and_with_mask_clears_bits() {
        let k = bits_of(
            "define i8 @f(i8 %x) {\n %r = and i8 %x, 15\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0xf0, 0xf0);
        assert!(k.is_non_negative());
        assert_eq!(k.umax(), 15);
        assert_eq!(k.leading_zeros(), 4);
    }

    #[test]
    fn or_sets_bits() {
        let k = bits_of(
            "define i8 @f(i8 %x) {\n %r = or i8 %x, 128\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.ones & 0x80, 0x80);
        assert!(k.is_negative());
    }

    #[test]
    fn zext_makes_high_bits_zero() {
        let k = bits_of(
            "define i32 @f(i16 %x) {\n %r = zext i16 %x to i32\n ret i32 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0xffff_0000, 0xffff_0000);
        assert!(k.is_non_negative());
    }

    #[test]
    fn shifts_track_zero_bits() {
        let k = bits_of(
            "define i8 @f(i8 %x) {\n %r = shl i8 %x, 4\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0x0f, 0x0f);
        let k = bits_of(
            "define i8 @f(i8 %x) {\n %r = lshr i8 %x, 4\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0xf0, 0xf0);
    }

    #[test]
    fn urem_by_power_of_two() {
        let k = bits_of(
            "define i32 @f(i32 %x) {\n %r = urem i32 %x, 8\n ret i32 %r\n}",
            "r",
        );
        assert_eq!(k.umax(), 7);
    }

    #[test]
    fn select_joins_both_arms() {
        let k = bits_of(
            "define i8 @f(i1 %c, i8 %x) {\n\
             %a = and i8 %x, 3\n\
             %b = and i8 %x, 12\n\
             %r = select i1 %c, i8 %a, i8 %b\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0xf0, 0xf0);
        assert_eq!(k.umax(), 15);
    }

    #[test]
    fn depth_zero_and_arguments_are_unknown() {
        let f = parse_function("define i8 @f(i8 %x) {\n ret i8 %x\n}").unwrap();
        let k = known_bits(&f, &Value::Arg(0), DEFAULT_DEPTH);
        assert_eq!(k, KnownBits::unknown(8));
        let g = parse_function("define i8 @g(i8 %x) {\n %r = and i8 %x, 1\n ret i8 %r\n}").unwrap();
        let id = g.inst_by_name("r").unwrap();
        assert_eq!(known_bits(&g, &Value::Inst(id), 0), KnownBits::unknown(8));
    }

    #[test]
    fn xor_combines_known_bits() {
        let k = bits_of(
            "define i8 @f(i8 %x) {\n\
             %a = and i8 %x, 15\n\
             %r = xor i8 %a, 5\n ret i8 %r\n}",
            "r",
        );
        // High nibble known zero from the and, low nibble unknown except where
        // both sides were known.
        assert_eq!(k.zeros & 0xf0, 0xf0);
    }
}
