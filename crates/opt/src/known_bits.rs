//! A small known-bits analysis used by InstCombine rules.
//!
//! The [`KnownBits`] domain and the memoized per-function analysis now live
//! in `lpo-absint` (re-exported here); rules query a [`KnownBitsCtx`] so
//! shared def chains are walked once per function instead of once per use.
//! The recursive depth-capped query below is kept as a **reference oracle**:
//! its tests pin the transfer rules, and `memoized_context_is_at_least_as_precise`
//! checks the context subsumes it on fuzzed functions.

use lpo_ir::apint::ApInt;
use lpo_ir::constant::Constant;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, CastOp, InstKind, Intrinsic, Value};

pub use lpo_absint::{mask_of, KnownBits, KnownBitsCtx};

/// Computes known bits for `value` inside `func`, recursing up to `depth`
/// levels through instruction operands.
///
/// Reference oracle only: production call sites use the memoized
/// [`KnownBitsCtx`], which is at least as precise (it shares this function's
/// transfer rules but walks each instruction once with no depth cap).
pub fn known_bits(func: &Function, value: &Value, depth: u32) -> KnownBits {
    let ty = func.value_type(value);
    let width = match ty.int_width() {
        Some(w) if !ty.is_vector() => w,
        _ => return KnownBits::unknown(ty.int_width().unwrap_or(1)),
    };
    if depth == 0 {
        return KnownBits::unknown(width);
    }
    match value {
        Value::Const(Constant::Int(v)) => KnownBits::constant(v),
        Value::Const(_) | Value::Arg(_) => KnownBits::unknown(width),
        Value::Inst(id) => {
            let inst = func.inst(*id);
            let mask = mask_of(width);
            match &inst.kind {
                InstKind::Binary { op, lhs, rhs, .. } => {
                    let l = known_bits(func, lhs, depth - 1);
                    let r = known_bits(func, rhs, depth - 1);
                    match op {
                        BinOp::And => KnownBits {
                            zeros: (l.zeros | r.zeros) & mask,
                            ones: l.ones & r.ones,
                            width,
                        },
                        BinOp::Or => KnownBits {
                            zeros: l.zeros & r.zeros,
                            ones: (l.ones | r.ones) & mask,
                            width,
                        },
                        BinOp::Xor => {
                            let known = (l.zeros | l.ones) & (r.zeros | r.ones);
                            let value = (l.ones ^ r.ones) & known;
                            KnownBits { zeros: known & !value & mask, ones: value, width }
                        }
                        BinOp::Shl => {
                            if let Some(amt) = const_shift_amount(rhs, width) {
                                KnownBits {
                                    zeros: ((l.zeros << amt) | (mask_of(amt.min(width))) ) & mask,
                                    ones: (l.ones << amt) & mask,
                                    width,
                                }
                            } else {
                                KnownBits::unknown(width)
                            }
                        }
                        BinOp::LShr => {
                            if let Some(amt) = const_shift_amount(rhs, width) {
                                let high_zeros = if amt == 0 {
                                    0
                                } else {
                                    (mask_of(amt) << (width - amt)) & mask
                                };
                                KnownBits {
                                    zeros: ((l.zeros >> amt) | high_zeros) & mask,
                                    ones: l.ones >> amt,
                                    width,
                                }
                            } else {
                                KnownBits::unknown(width)
                            }
                        }
                        BinOp::URem => {
                            if let Some(c) = constant_of(rhs) {
                                if c.is_power_of_two() {
                                    let bits = c.zext_value() - 1;
                                    return KnownBits { zeros: !bits & mask, ones: 0, width };
                                }
                            }
                            KnownBits::unknown(width)
                        }
                        _ => KnownBits::unknown(width),
                    }
                }
                InstKind::Cast { op: CastOp::ZExt, value, .. } => {
                    let inner = known_bits(func, value, depth - 1);
                    let inner_mask = mask_of(inner.width);
                    KnownBits {
                        zeros: (inner.zeros & inner_mask) | (mask & !inner_mask),
                        ones: inner.ones,
                        width,
                    }
                }
                InstKind::Cast { op: CastOp::Trunc, value, .. } => {
                    let inner = known_bits(func, value, depth - 1);
                    KnownBits { zeros: inner.zeros & mask, ones: inner.ones & mask, width }
                }
                InstKind::Call { intrinsic, args, .. } => match intrinsic {
                    Intrinsic::Umin => {
                        let l = known_bits(func, &args[0], depth - 1);
                        let r = known_bits(func, &args[1], depth - 1);
                        // The result is no larger than either bound, so every
                        // bit above the bound's highest possible set bit is zero.
                        let bound = l.umax().min(r.umax());
                        let significant = 128 - bound.leading_zeros();
                        let zeros = if significant >= width {
                            0
                        } else {
                            (mask << significant) & mask
                        };
                        KnownBits { zeros, ones: 0, width }
                    }
                    Intrinsic::Smax => {
                        let l = known_bits(func, &args[0], depth - 1);
                        let r = known_bits(func, &args[1], depth - 1);
                        if l.is_non_negative() || r.is_non_negative() {
                            KnownBits { zeros: 1 << (width - 1), ones: 0, width }
                        } else {
                            KnownBits::unknown(width)
                        }
                    }
                    _ => KnownBits::unknown(width),
                },
                InstKind::ICmp { .. } => KnownBits::unknown(width),
                InstKind::Select { on_true, on_false, .. } => {
                    let t = known_bits(func, on_true, depth - 1);
                    let f = known_bits(func, on_false, depth - 1);
                    KnownBits { zeros: t.zeros & f.zeros, ones: t.ones & f.ones, width }
                }
                _ => KnownBits::unknown(width),
            }
        }
    }
}

fn constant_of(value: &Value) -> Option<ApInt> {
    match value {
        Value::Const(Constant::Int(v)) => Some(*v),
        Value::Const(c) => c.splat_int().copied(),
        _ => None,
    }
}

fn const_shift_amount(value: &Value, width: u32) -> Option<u32> {
    let c = constant_of(value)?;
    let amt = c.zext_value();
    if amt < width as u128 {
        Some(amt as u32)
    } else {
        None
    }
}

/// Default recursion depth used by the InstCombine rules.
pub const DEFAULT_DEPTH: u32 = 6;

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    fn bits_of(text: &str, name: &str) -> KnownBits {
        let f = parse_function(text).unwrap();
        let id = f.inst_by_name(name).unwrap();
        known_bits(&f, &Value::Inst(id), DEFAULT_DEPTH)
    }

    #[test]
    fn constants_are_fully_known() {
        let k = KnownBits::constant(&ApInt::new(8, 0b1010_0001));
        assert_eq!(k.ones, 0b1010_0001);
        assert_eq!(k.zeros, 0b0101_1110);
        assert_eq!(k.as_constant().unwrap().zext_value(), 0b1010_0001);
        assert!(k.is_negative());
    }

    #[test]
    fn and_with_mask_clears_bits() {
        let k = bits_of(
            "define i8 @f(i8 %x) {\n %r = and i8 %x, 15\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0xf0, 0xf0);
        assert!(k.is_non_negative());
        assert_eq!(k.umax(), 15);
        assert_eq!(k.leading_zeros(), 4);
    }

    #[test]
    fn or_sets_bits() {
        let k = bits_of(
            "define i8 @f(i8 %x) {\n %r = or i8 %x, 128\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.ones & 0x80, 0x80);
        assert!(k.is_negative());
    }

    #[test]
    fn zext_makes_high_bits_zero() {
        let k = bits_of(
            "define i32 @f(i16 %x) {\n %r = zext i16 %x to i32\n ret i32 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0xffff_0000, 0xffff_0000);
        assert!(k.is_non_negative());
    }

    #[test]
    fn shifts_track_zero_bits() {
        let k = bits_of(
            "define i8 @f(i8 %x) {\n %r = shl i8 %x, 4\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0x0f, 0x0f);
        let k = bits_of(
            "define i8 @f(i8 %x) {\n %r = lshr i8 %x, 4\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0xf0, 0xf0);
    }

    #[test]
    fn urem_by_power_of_two() {
        let k = bits_of(
            "define i32 @f(i32 %x) {\n %r = urem i32 %x, 8\n ret i32 %r\n}",
            "r",
        );
        assert_eq!(k.umax(), 7);
    }

    #[test]
    fn select_joins_both_arms() {
        let k = bits_of(
            "define i8 @f(i1 %c, i8 %x) {\n\
             %a = and i8 %x, 3\n\
             %b = and i8 %x, 12\n\
             %r = select i1 %c, i8 %a, i8 %b\n ret i8 %r\n}",
            "r",
        );
        assert_eq!(k.zeros & 0xf0, 0xf0);
        assert_eq!(k.umax(), 15);
    }

    #[test]
    fn depth_zero_and_arguments_are_unknown() {
        let f = parse_function("define i8 @f(i8 %x) {\n ret i8 %x\n}").unwrap();
        let k = known_bits(&f, &Value::Arg(0), DEFAULT_DEPTH);
        assert_eq!(k, KnownBits::unknown(8));
        let g = parse_function("define i8 @g(i8 %x) {\n %r = and i8 %x, 1\n ret i8 %r\n}").unwrap();
        let id = g.inst_by_name("r").unwrap();
        assert_eq!(known_bits(&g, &Value::Inst(id), 0), KnownBits::unknown(8));
    }

    #[test]
    fn xor_combines_known_bits() {
        let k = bits_of(
            "define i8 @f(i8 %x) {\n\
             %a = and i8 %x, 15\n\
             %r = xor i8 %a, 5\n ret i8 %r\n}",
            "r",
        );
        // High nibble known zero from the and, low nibble unknown except where
        // both sides were known.
        assert_eq!(k.zeros & 0xf0, 0xf0);
    }

    /// The memoized context must claim every bit the recursive oracle claims
    /// (it shares the transfer rules, walks without a depth cap, and memoizes
    /// shared chains), over a spread of fuzzed functions.
    #[test]
    fn memoized_context_is_at_least_as_precise_as_the_oracle() {
        for seed in 0..200u64 {
            let func = lpo_interp::fuzz::random_function(seed);
            let ctx = KnownBitsCtx::new(&func);
            for id in func.iter_inst_ids() {
                let value = Value::Inst(id);
                let oracle = known_bits(&func, &value, DEFAULT_DEPTH);
                let memoized = ctx.known_bits(&value);
                assert_eq!(memoized.width, oracle.width, "seed {seed}");
                assert_eq!(
                    memoized.zeros & oracle.zeros,
                    oracle.zeros,
                    "seed {seed}: oracle zeros lost on {value:?}"
                );
                assert_eq!(
                    memoized.ones & oracle.ones,
                    oracle.ones,
                    "seed {seed}: oracle ones lost on {value:?}"
                );
            }
        }
    }

    /// Both analyses must be *sound*: every claimed bit matches the concrete
    /// value on every evaluated input. Checked exhaustively on an i8 chain
    /// with heavy sharing (the memoized context walks it once).
    #[test]
    fn claimed_bits_are_sound_on_a_shared_chain() {
        let func = parse_function(
            "define i8 @f(i8 %x) {\n\
             %a = and i8 %x, 60\n\
             %b = lshr i8 %a, 2\n\
             %c = or i8 %b, %b\n\
             %d = xor i8 %c, %b\n\
             ret i8 %d\n}",
        )
        .unwrap();
        let ctx = KnownBitsCtx::new(&func);
        for x in 0..=255u128 {
            let a = x & 60;
            let b = a >> 2;
            let concrete = [("a", a), ("b", b), ("c", b | b), ("d", (b | b) ^ b)];
            for (name, v) in concrete {
                let id = func.inst_by_name(name).unwrap();
                for bits in [ctx.known_bits(&Value::Inst(id)), known_bits(&func, &Value::Inst(id), DEFAULT_DEPTH)] {
                    assert_eq!(bits.zeros & v, 0, "%{name} claims a zero bit set in {v:#x}");
                    assert_eq!(bits.ones & !v & 0xff, 0, "%{name} claims a one bit clear in {v:#x}");
                }
            }
        }
    }
}
