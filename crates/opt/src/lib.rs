//! # lpo-opt
//!
//! The reproduction's `opt`: an InstCombine/InstSimplify-style peephole
//! optimizer over `lpo-ir`, with constant folding, a known-bits analysis,
//! dead-code elimination and a pass pipeline.
//!
//! The `-O2` pipeline is **worklist-driven** (see [`worklist`] and
//! `ARCHITECTURE.md` § Canonicalization hot path): instructions are seeded
//! once and a rule hit re-enqueues only the affected
//! neighbourhood, with dead code swept incrementally by the use counts the
//! IR maintains — the same architecture as LLVM's InstCombine, and ~2–4x the
//! throughput of the retained rescan-to-fixpoint reference engine
//! ([`pipeline::Pipeline::optimize_reference`]), which
//! `tests/opt_differential.rs` proves prints byte-identical results.
//! Stage 1 is **text-free** in process: callers holding a parsed
//! [`lpo_ir::function::Function`] use [`pipeline::optimize_function`];
//! [`pipeline::optimize_text`] is the thin textual front end for the LLM
//! boundary only.
//!
//! The rule set is intentionally a **subset** of LLVM's: the missed
//! optimizations the paper's pipeline discovers are exactly the patterns this
//! optimizer does not know. The [`patches`] module contains the rules that
//! "landed upstream" after being reported, used by the Table 5 / Figure 5
//! experiments.
//!
//! ```
//! use lpo_opt::prelude::*;
//! use lpo_ir::parser::parse_function;
//!
//! let mut f = parse_function("define i32 @f(i32 %x) {\n %a = add i32 %x, 0\n %b = mul i32 %a, 8\n ret i32 %b\n}")?;
//! let stats = Pipeline::new(OptLevel::O2).run(&mut f);
//! assert!(stats.changed);
//! assert_eq!(f.instruction_count(), 1); // shl %x, 3
//! # Ok::<(), lpo_ir::parser::ParseError>(())
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

pub mod combine;
pub mod dce;
pub mod fold;
pub mod known_bits;
pub mod patches;
pub mod pipeline;
pub mod rewrite;
pub mod simplify;
pub mod worklist;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::dce::{eliminate_dead_code, is_trivially_dead};
    pub use crate::known_bits::{known_bits, KnownBits, KnownBitsCtx};
    pub use crate::patches::{all_patches, patches_for_issue, Patch};
    pub use crate::pipeline::{
        optimize_function, optimize_text, OptLevel, OptStats, Pipeline, TextOptResult,
    };
    pub use crate::rewrite::NamedRule;
    pub use crate::worklist::Worklist;
}
