//! InstCombine-style rules: canonicalizations and multi-instruction combines
//! that rewrite an instruction in place (possibly referencing operands of its
//! operands), leaving dead inner instructions for DCE to clean up.
//!
//! The rule set is intentionally a *subset* of LLVM's InstCombine: the
//! patterns it does **not** know (combining a `select` with a `umin` into
//! `smax`+`umin`, merging adjacent loads, removing a clamp made redundant by a
//! later clamp, dropping an `fcmp ord` guard, …) are exactly the missed
//! optimizations the LPO pipeline is built to discover. See
//! `lpo-opt::patches` for the versions of those rules that "landed upstream"
//! after being reported.

use crate::rewrite::{as_const_int, const_apint_of, defining_inst, is_all_ones, mutate, replace_with, NamedRule};
use lpo_ir::apint::ApInt;
use lpo_ir::flags::IntFlags;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, BlockId, CastOp, ICmpPred, InstId, InstKind, Intrinsic};

/// Moves constants to the right-hand side of commutative operations and
/// canonicalizes `icmp <const>, %x` by swapping the predicate.
pub fn canonicalize_commutative(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    match inst.kind.clone() {
        InstKind::Binary { op, lhs, rhs, flags } if op.is_commutative() => {
            if lhs.is_const() && !rhs.is_const() {
                return mutate(func, id, InstKind::Binary { op, lhs: rhs, rhs: lhs, flags }, ty);
            }
            false
        }
        InstKind::ICmp { pred, lhs, rhs } => {
            if lhs.is_const() && !rhs.is_const() {
                return mutate(
                    func,
                    id,
                    InstKind::ICmp { pred: pred.swapped(), lhs: rhs, rhs: lhs },
                    ty,
                );
            }
            false
        }
        InstKind::Call { intrinsic, args, fmf } if intrinsic.is_commutative() && args.len() == 2 => {
            if args[0].is_const() && !args[1].is_const() {
                return mutate(
                    func,
                    id,
                    InstKind::Call { intrinsic, args: vec![args[1].clone(), args[0].clone()], fmf },
                    ty,
                );
            }
            false
        }
        _ => false,
    }
}

/// `sub %x, C` → `add %x, -C` (the LLVM canonical form). Flags are dropped.
pub fn sub_to_add(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Binary { op: BinOp::Sub, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    let Some(c) = as_const_int(&rhs) else {
        return false;
    };
    if c.is_zero() {
        return false; // handled by simplify
    }
    mutate(
        func,
        id,
        InstKind::Binary {
            op: BinOp::Add,
            lhs,
            rhs: const_apint_of(&ty, c.neg()),
            flags: IntFlags::none(),
        },
        ty,
    )
}

/// `add %x, %x` → `shl %x, 1` and `mul %x, 2^k` → `shl %x, k`.
pub fn strength_reduce_to_shift(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Binary { op, lhs, rhs, flags } = inst.kind.clone() else {
        return false;
    };
    match op {
        BinOp::Add if lhs == rhs && !lhs.is_const() => mutate(
            func,
            id,
            InstKind::Binary { op: BinOp::Shl, lhs, rhs: crate::rewrite::const_int_of(&ty, 1), flags },
            ty,
        ),
        BinOp::Mul => {
            let Some(c) = as_const_int(&rhs) else {
                return false;
            };
            if !c.is_power_of_two() || c.is_one() {
                return false;
            }
            let shift = c.trailing_zeros();
            mutate(
                func,
                id,
                InstKind::Binary {
                    op: BinOp::Shl,
                    lhs,
                    rhs: crate::rewrite::const_int_of(&ty, shift as i128),
                    flags,
                },
                ty,
            )
        }
        _ => false,
    }
}

/// Reassociates `(x op C1) op C2` → `x op (C1 op C2)` for associative
/// bitwise/additive operators (flags dropped; the inner instruction dies via DCE).
pub fn reassociate_constants(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Binary { op, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    if !matches!(op, BinOp::Add | BinOp::Mul | BinOp::And | BinOp::Or | BinOp::Xor) {
        return false;
    }
    let Some(c2) = as_const_int(&rhs) else {
        return false;
    };
    let Some((_, inner_kind)) = defining_inst(func, &lhs) else {
        return false;
    };
    let InstKind::Binary { op: inner_op, lhs: x, rhs: inner_rhs, .. } = inner_kind.clone() else {
        return false;
    };
    if inner_op != op {
        return false;
    }
    let Some(c1) = as_const_int(&inner_rhs) else {
        return false;
    };
    let folded = match op {
        BinOp::Add => c1.add(&c2),
        BinOp::Mul => c1.mul(&c2),
        BinOp::And => c1.and(&c2),
        BinOp::Or => c1.or(&c2),
        BinOp::Xor => c1.xor(&c2),
        _ => unreachable!(),
    };
    mutate(
        func,
        id,
        InstKind::Binary { op, lhs: x, rhs: const_apint_of(&ty, folded), flags: IntFlags::none() },
        ty,
    )
}

/// Composes chained casts: `zext(zext x)`, `sext(sext x)`, `trunc(trunc x)`,
/// and cancels `trunc(zext/sext x)` back to the original width.
pub fn compose_casts(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Cast { op, value, .. } = inst.kind.clone() else {
        return false;
    };
    let Some((_, inner_kind)) = defining_inst(func, &value) else {
        return false;
    };
    let InstKind::Cast { op: inner_op, value: original, .. } = inner_kind.clone() else {
        return false;
    };
    let original_ty = func.value_type(&original);
    match (inner_op, op) {
        (CastOp::ZExt, CastOp::ZExt) | (CastOp::SExt, CastOp::SExt) | (CastOp::Trunc, CastOp::Trunc) => {
            mutate(func, id, InstKind::Cast { op, value: original, flags: IntFlags::none() }, ty)
        }
        (CastOp::ZExt, CastOp::Trunc) | (CastOp::SExt, CastOp::Trunc) => {
            let orig_w = original_ty.scalar_type().int_width().unwrap_or(0);
            let to_w = ty.scalar_type().int_width().unwrap_or(0);
            if to_w == orig_w {
                replace_with(func, id, original)
            } else if to_w < orig_w {
                mutate(
                    func,
                    id,
                    InstKind::Cast { op: CastOp::Trunc, value: original, flags: IntFlags::none() },
                    ty,
                )
            } else {
                mutate(func, id, InstKind::Cast { op: inner_op, value: original, flags: IntFlags::none() }, ty)
            }
        }
        _ => false,
    }
}

/// `xor(xor x, -1), -1` → x  and  `select %c, false, true` → `xor %c, true`.
pub fn not_and_boolean_combines(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    match inst.kind.clone() {
        InstKind::Binary { op: BinOp::Xor, lhs, rhs, .. } if is_all_ones(&rhs) => {
            if let Some((_, InstKind::Binary { op: BinOp::Xor, lhs: x, rhs: inner_rhs, .. })) =
                defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
            {
                if is_all_ones(&inner_rhs) {
                    return replace_with(func, id, x);
                }
            }
            false
        }
        InstKind::Select { cond, on_true, on_false }
            if ty.is_bool_or_bool_vector()
                && crate::rewrite::is_zero(&on_true)
                && crate::rewrite::is_one(&on_false)
                && func.value_type(&cond) == ty =>
        {
            mutate(
                func,
                id,
                InstKind::Binary {
                    op: BinOp::Xor,
                    lhs: cond,
                    rhs: crate::rewrite::const_bool_of(&ty, true),
                    flags: IntFlags::none(),
                },
                ty,
            )
        }
        _ => false,
    }
}

/// Canonicalizes `select (icmp pred %x, %y), %x, %y` (and the swapped-arm
/// form) into the matching min/max intrinsic. This is LLVM's canonical form;
/// note it only fires when both select arms are exactly the compared values,
/// so it does *not* subsume the clamp patterns the paper reports as missed.
pub fn select_to_min_max(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    if !ty.is_int_or_int_vector() {
        return false;
    }
    let InstKind::Select { cond, on_true, on_false } = inst.kind.clone() else {
        return false;
    };
    let Some((cmp_id, InstKind::ICmp { pred, lhs, rhs })) =
        defining_inst(func, &cond).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    let _ = cmp_id;
    // select (x pred y), x, y
    let direct = on_true == lhs && on_false == rhs;
    // select (x pred y), y, x
    let swapped = on_true == rhs && on_false == lhs;
    if !direct && !swapped {
        return false;
    }
    // Effective predicate for "the value returned when the comparison is true".
    let effective = if direct { pred } else { pred.inverted() };
    let intrinsic = match effective {
        ICmpPred::Ult | ICmpPred::Ule => Intrinsic::Umin,
        ICmpPred::Ugt | ICmpPred::Uge => Intrinsic::Umax,
        ICmpPred::Slt | ICmpPred::Sle => Intrinsic::Smin,
        ICmpPred::Sgt | ICmpPred::Sge => Intrinsic::Smax,
        _ => return false,
    };
    let (a, b) = if direct { (lhs, rhs) } else { (rhs, lhs) };
    mutate(
        func,
        id,
        InstKind::Call { intrinsic, args: vec![a, b], fmf: Default::default() },
        ty,
    )
}

/// Folds a min/max whose operand is the same min/max with a constant:
/// `umin(umin(x, C1), C2)` → `umin(x, min(C1, C2))`.
pub fn nested_min_max(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Call { intrinsic, args, fmf } = inst.kind.clone() else {
        return false;
    };
    if !intrinsic.is_min_max() || args.len() != 2 {
        return false;
    }
    let Some(c2) = as_const_int(&args[1]) else {
        return false;
    };
    let Some((_, InstKind::Call { intrinsic: inner, args: inner_args, .. })) =
        defining_inst(func, &args[0]).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if inner != intrinsic || inner_args.len() != 2 {
        return false;
    }
    let Some(c1) = as_const_int(&inner_args[1]) else {
        return false;
    };
    let folded = match intrinsic {
        Intrinsic::Umin => c1.umin(&c2),
        Intrinsic::Umax => c1.umax(&c2),
        Intrinsic::Smin => c1.smin(&c2),
        Intrinsic::Smax => c1.smax(&c2),
        _ => return false,
    };
    mutate(
        func,
        id,
        InstKind::Call {
            intrinsic,
            args: vec![inner_args[0].clone(), const_apint_of(&ty, folded)],
            fmf,
        },
        ty,
    )
}

/// Combines `shl(shl x, C1), C2` → `shl x, C1+C2` (and the same for `lshr`),
/// when the combined amount stays in range.
pub fn combine_shifts(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Binary { op, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    if !matches!(op, BinOp::Shl | BinOp::LShr) {
        return false;
    }
    let Some(c2) = as_const_int(&rhs) else {
        return false;
    };
    let Some((_, InstKind::Binary { op: inner_op, lhs: x, rhs: inner_rhs, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if inner_op != op {
        return false;
    }
    let Some(c1) = as_const_int(&inner_rhs) else {
        return false;
    };
    let width = ty.scalar_type().int_width().unwrap_or(0) as u128;
    let total = c1.zext_value() + c2.zext_value();
    if total >= width {
        return false;
    }
    mutate(
        func,
        id,
        InstKind::Binary {
            op,
            lhs: x,
            rhs: const_apint_of(&ty, ApInt::new(width as u32, total)),
            flags: IntFlags::none(),
        },
        ty,
    )
}

/// All InstCombine rules in application order.
pub fn all_rules() -> Vec<NamedRule> {
    vec![
        NamedRule { name: "canonicalize-commutative", rule: canonicalize_commutative },
        NamedRule { name: "sub-to-add", rule: sub_to_add },
        NamedRule { name: "strength-reduce-shift", rule: strength_reduce_to_shift },
        NamedRule { name: "reassociate-constants", rule: reassociate_constants },
        NamedRule { name: "compose-casts", rule: compose_casts },
        NamedRule { name: "not-and-boolean", rule: not_and_boolean_combines },
        NamedRule { name: "select-to-min-max", rule: select_to_min_max },
        NamedRule { name: "nested-min-max", rule: nested_min_max },
        NamedRule { name: "combine-shifts", rule: combine_shifts },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dce::eliminate_dead_code;
    use lpo_ir::parser::parse_function;
    use lpo_ir::printer::print_function;

    fn apply_all(text: &str) -> String {
        let mut f = parse_function(text).unwrap();
        for _ in 0..4 {
            let ids: Vec<_> = f.iter_inst_ids().collect();
            for id in ids {
                if !f.iter_inst_ids().any(|i| i == id) {
                    continue;
                }
                for rule in all_rules() {
                    if !f.iter_inst_ids().any(|i| i == id) {
                        break;
                    }
                    let entry = f.entry();
                    (rule.rule)(&mut f, id, entry, 0);
                }
            }
            eliminate_dead_code(&mut f);
        }
        print_function(&f)
    }

    #[test]
    fn constants_move_to_the_right() {
        let out = apply_all("define i32 @f(i32 %x) {\n %a = add i32 7, %x\n ret i32 %a\n}");
        assert!(out.contains("add i32 %x, 7"));
        let out = apply_all("define i1 @f(i32 %x) {\n %c = icmp sgt i32 10, %x\n ret i1 %c\n}");
        assert!(out.contains("icmp slt i32 %x, 10"));
        let out = apply_all("define i32 @f(i32 %x) {\n %m = call i32 @llvm.umin.i32(i32 3, i32 %x)\n ret i32 %m\n}");
        assert!(out.contains("@llvm.umin.i32(i32 %x, i32 3)"));
    }

    #[test]
    fn sub_becomes_add_of_negative() {
        let out = apply_all("define i32 @f(i32 %x) {\n %a = sub i32 %x, 5\n ret i32 %a\n}");
        assert!(out.contains("add i32 %x, -5"));
    }

    #[test]
    fn strength_reduction() {
        let out = apply_all("define i32 @f(i32 %x) {\n %a = mul i32 %x, 8\n ret i32 %a\n}");
        assert!(out.contains("shl i32 %x, 3"));
        let out = apply_all("define i32 @f(i32 %x) {\n %a = add i32 %x, %x\n ret i32 %a\n}");
        assert!(out.contains("shl i32 %x, 1"));
        // mul by a non-power-of-two is left alone.
        let out = apply_all("define i32 @f(i32 %x) {\n %a = mul i32 %x, 6\n ret i32 %a\n}");
        assert!(out.contains("mul i32 %x, 6"));
    }

    #[test]
    fn constant_reassociation() {
        let out = apply_all(
            "define i32 @f(i32 %x) {\n %a = add i32 %x, 3\n %b = add i32 %a, 4\n ret i32 %b\n}",
        );
        assert!(out.contains("add i32 %x, 7"));
        assert_eq!(out.matches("add").count(), 1);
        let out = apply_all(
            "define i8 @f(i8 %x) {\n %a = xor i8 %x, 15\n %b = xor i8 %a, 240\n ret i8 %b\n}",
        );
        assert!(out.contains("xor i8 %x, -1"));
    }

    #[test]
    fn cast_composition() {
        let out = apply_all(
            "define i64 @f(i8 %x) {\n %a = zext i8 %x to i16\n %b = zext i16 %a to i64\n ret i64 %b\n}",
        );
        assert!(out.contains("zext i8 %x to i64"));
        assert_eq!(out.matches("zext").count(), 1);
        let out = apply_all(
            "define i16 @f(i16 %x) {\n %a = zext i16 %x to i32\n %b = trunc i32 %a to i16\n ret i16 %b\n}",
        );
        assert!(out.contains("ret i16 %x"));
        let out = apply_all(
            "define i8 @f(i16 %x) {\n %a = sext i16 %x to i64\n %b = trunc i64 %a to i8\n ret i8 %b\n}",
        );
        assert!(out.contains("trunc i16 %x to i8"));
    }

    #[test]
    fn double_negation_and_boolean_select() {
        let out = apply_all(
            "define i32 @f(i32 %x) {\n %a = xor i32 %x, -1\n %b = xor i32 %a, -1\n ret i32 %b\n}",
        );
        // Constant reassociation wins the race over the double-negation rule;
        // either way the two xors collapse (the full pipeline then folds the
        // remaining `xor %x, 0` to `%x` via InstSimplify).
        assert!(out.contains("ret i32 %x") || out.contains("xor i32 %x, 0"));
        let out = apply_all(
            "define i1 @f(i1 %c) {\n %s = select i1 %c, i1 false, i1 true\n ret i1 %s\n}",
        );
        assert!(out.contains("xor i1 %c, true"));
    }

    #[test]
    fn select_canonicalizes_to_min_max() {
        let out = apply_all(
            "define i32 @f(i32 %x, i32 %y) {\n %c = icmp slt i32 %x, %y\n %s = select i1 %c, i32 %x, i32 %y\n ret i32 %s\n}",
        );
        assert!(out.contains("@llvm.smin.i32(i32 %x, i32 %y)"));
        let out = apply_all(
            "define i32 @f(i32 %x, i32 %y) {\n %c = icmp ult i32 %x, %y\n %s = select i1 %c, i32 %y, i32 %x\n ret i32 %s\n}",
        );
        assert!(out.contains("@llvm.umax.i32"));
        // The Figure 1 clamp pattern is NOT caught: the false arm is a umin,
        // not the compared value.
        let out = apply_all(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
        );
        assert!(out.contains("select"));
    }

    #[test]
    fn nested_min_max_with_constants() {
        let out = apply_all(
            "define i32 @f(i32 %x) {\n\
             %a = call i32 @llvm.umin.i32(i32 %x, i32 100)\n\
             %b = call i32 @llvm.umin.i32(i32 %a, i32 255)\n\
             ret i32 %b\n}",
        );
        assert!(out.contains("@llvm.umin.i32(i32 %x, i32 100)"));
        assert_eq!(out.matches("umin").count(), 1);
    }

    #[test]
    fn shift_combination() {
        let out = apply_all(
            "define i32 @f(i32 %x) {\n %a = shl i32 %x, 3\n %b = shl i32 %a, 4\n ret i32 %b\n}",
        );
        assert!(out.contains("shl i32 %x, 7"));
        // Out-of-range totals are left alone.
        let out = apply_all(
            "define i8 @f(i8 %x) {\n %a = shl i8 %x, 5\n %b = shl i8 %a, 5\n ret i8 %b\n}",
        );
        assert!(out.contains("shl i8 %a, 5") || out.contains("shl i8 %x, 5"));
    }
}
