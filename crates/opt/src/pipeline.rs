//! The pass pipeline: this reproduction's `opt`.
//!
//! A [`Pipeline`] runs constant folding, InstSimplify, InstCombine and DCE.
//! At `-O2` the engine is **worklist-driven**, like LLVM's InstCombine: every
//! placed instruction is seeded once, and a rule hit
//! re-enqueues only the affected neighbourhood (prior users, operand
//! definitions, inserted helpers, the rewritten instruction itself), with
//! trivially-dead instructions swept incrementally by use count. The
//! pre-worklist rescan-to-fixpoint engine is kept verbatim as
//! [`Pipeline::optimize_reference`]; `tests/opt_differential.rs` proves the
//! two print byte-identical results over the rq1/rq2 corpora.
//!
//! [`optimize_function`] is the Stage 1 entry point for callers that already
//! hold a [`Function`] — it verifies and canonicalizes without any text
//! round-trip. [`optimize_text`] stays as the thin textual front end for the
//! LLM boundary: it parses, delegates to [`optimize_function`] and re-prints,
//! returning `opt`-style error text on failure, exactly the role `opt -O3`
//! plays in step ③ of the paper's Figure 2.

use crate::dce::{eliminate_dead_code, eliminate_dead_code_reference, is_trivially_dead};
use crate::fold::constant_fold;
use crate::patches::Patch;
use crate::rewrite::NamedRule;
use crate::worklist::Worklist;
use crate::{combine, simplify};
use lpo_ir::function::Function;
use lpo_ir::instruction::InstId;
use lpo_ir::module::Module;
use lpo_ir::parser::parse_function;
use lpo_ir::printer::print_function;
use lpo_ir::verifier::verify_function;

/// Optimization level presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No transformations (parse/verify/print only).
    O0,
    /// Constant folding, simplification and DCE, single iteration.
    O1,
    /// The full rule set to a fixpoint (the default, comparable to `-O3` for
    /// the peephole-only scope this reproduction covers).
    #[default]
    O2,
}

/// Statistics from one pipeline run.
///
/// Rule hits are aggregated into a dense counter table indexed by the
/// pipeline's interned rule order — recording a hit is one array increment,
/// not a linear scan over `(String, count)` pairs, and a run allocates two
/// flat vectors instead of one `String` per fired rule. The public API still
/// reports names ([`rule_hits`](OptStats::rule_hits),
/// [`hits_of`](OptStats::hits_of)).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Whether anything changed at all.
    pub changed: bool,
    /// Number of passes executed: full rescan iterations for the reference
    /// engine; sweeps for the worklist engine (1 plus one per round of
    /// behind-cursor re-dirtying, which erasures of already-visited dead
    /// code can trigger).
    pub iterations: usize,
    /// Interned rule-name table, in pipeline rule order.
    names: Vec<&'static str>,
    /// Dense hit counters, parallel to `names`.
    hits: Vec<usize>,
}

impl OptStats {
    /// A zeroed counter table for a pipeline's rule set.
    fn for_rules(rules: &[NamedRule]) -> Self {
        Self {
            changed: false,
            iterations: 0,
            names: rules.iter().map(|r| r.name).collect(),
            hits: vec![0; rules.len()],
        }
    }

    #[inline]
    fn record(&mut self, rule_index: usize) {
        self.hits[rule_index] += 1;
    }

    /// How many times each rule fired, as `(name, count)` pairs in pipeline
    /// rule order; rules that never fired are omitted.
    pub fn rule_hits(&self) -> Vec<(&'static str, usize)> {
        self.names
            .iter()
            .zip(&self.hits)
            .filter(|(_, &count)| count > 0)
            .map(|(&name, &count)| (name, count))
            .collect()
    }

    /// How many times the named rule fired (0 for unknown names).
    pub fn hits_of(&self, name: &str) -> usize {
        self.names.iter().position(|n| *n == name).map(|i| self.hits[i]).unwrap_or(0)
    }

    /// Total number of rule applications.
    pub fn total_hits(&self) -> usize {
        self.hits.iter().sum()
    }

    /// Folds another run's counters into this one. Runs of the same pipeline
    /// share one interned table and merge element-wise; foreign tables merge
    /// by name.
    fn absorb(&mut self, other: &OptStats) {
        self.changed |= other.changed;
        self.iterations = self.iterations.max(other.iterations);
        if self.names == other.names {
            for (mine, theirs) in self.hits.iter_mut().zip(&other.hits) {
                *mine += theirs;
            }
        } else {
            for (&name, &count) in other.names.iter().zip(&other.hits) {
                match self.names.iter().position(|n| *n == name) {
                    Some(index) => self.hits[index] += count,
                    None => {
                        self.names.push(name);
                        self.hits.push(count);
                    }
                }
            }
        }
    }
}

/// The optimizer pipeline.
#[derive(Clone, Debug)]
pub struct Pipeline {
    level: OptLevel,
    rules: Vec<NamedRule>,
    max_iterations: usize,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new(OptLevel::O2)
    }
}

impl Pipeline {
    /// Creates a pipeline for the given optimization level with the standard
    /// rule set (and no patches).
    pub fn new(level: OptLevel) -> Self {
        let mut rules = Vec::new();
        if level != OptLevel::O0 {
            rules.push(NamedRule { name: "constant-fold", rule: constant_fold });
            rules.extend(simplify::all_rules());
            rules.extend(combine::all_rules());
        }
        let max_iterations = match level {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 16,
        };
        Self { level, rules, max_iterations }
    }

    /// The configured optimization level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Adds the rules of the given accepted patches (Table 5 experiments).
    pub fn with_patches(mut self, patches: Vec<Patch>) -> Self {
        for p in patches {
            self.rules.push(p.rule);
        }
        self
    }

    /// Adds a single extra rule.
    pub fn with_rule(mut self, rule: NamedRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Number of rules installed (useful for ablation reporting).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Optimizes a function in place and reports what happened.
    ///
    /// `-O2` runs the worklist engine; `-O0`/`-O1` keep the historical
    /// rescan semantics (no work, and exactly one bounded pass respectively),
    /// which a fixpoint-by-construction worklist cannot express.
    pub fn run(&self, func: &mut Function) -> OptStats {
        match self.level {
            OptLevel::O0 | OptLevel::O1 => self.run_rescan(func),
            OptLevel::O2 => self.run_worklist(func),
        }
    }

    /// The pre-worklist engine, kept verbatim as the differential-testing
    /// and benchmarking reference: bounded rescan-to-fixpoint over every
    /// instruction, with a whole-function DCE pass at the end of each
    /// iteration whose use queries rescan the arena (the seed cost model,
    /// like PR 3's `evaluate_reference` keeping its HashMap environments).
    pub fn optimize_reference(&self, func: &mut Function) -> OptStats {
        self.run_rescan_with(func, eliminate_dead_code_reference)
    }

    fn run_rescan(&self, func: &mut Function) -> OptStats {
        self.run_rescan_with(func, eliminate_dead_code)
    }

    fn run_rescan_with(&self, func: &mut Function, dce: fn(&mut Function) -> bool) -> OptStats {
        let mut stats = OptStats::for_rules(&self.rules);
        for iteration in 0..self.max_iterations {
            let mut changed_this_round = false;
            // Scan blocks positionally so rules always see a fresh (block, pos).
            let block_count = func.blocks().len();
            for block_idx in 0..block_count {
                let block = lpo_ir::instruction::BlockId(block_idx as u32);
                let mut pos = 0;
                while pos < func.block(block).insts.len() {
                    let inst_id = func.block(block).insts[pos];
                    let mut fired = false;
                    for (rule_index, rule) in self.rules.iter().enumerate() {
                        if (rule.rule)(func, inst_id, block, pos) {
                            stats.record(rule_index);
                            changed_this_round = true;
                            fired = true;
                            break;
                        }
                    }
                    if !fired {
                        pos += 1;
                    } else {
                        // The instruction may have been erased or replaced;
                        // re-examine the same position.
                        pos = pos.min(func.block(block).insts.len());
                    }
                }
            }
            if self.level != OptLevel::O0 && dce(func) {
                changed_this_round = true;
            }
            stats.iterations = iteration + 1;
            if !changed_this_round {
                break;
            }
            stats.changed = true;
        }
        if stats.changed {
            func.compact();
        }
        stats
    }

    /// The worklist engine: pop, try the rules against just that instruction,
    /// and on a hit re-enqueue exactly the affected neighbourhood. DCE is an
    /// incremental trivially-dead check on pop, driven by the use counts the
    /// IR maintains, instead of a separate whole-function pass.
    ///
    /// Rules only ever inspect an instruction and its operands' *defining*
    /// instructions (none look at users or use counts), so a hit at `id`
    /// can newly enable a rule at its users — whose operand just changed —
    /// but not at its operands' defs; those only need a revisit when the
    /// lost use made them trivially dead.
    fn run_worklist(&self, func: &mut Function) -> OptStats {
        let mut stats = OptStats::for_rules(&self.rules);
        let mut worklist = Worklist::seeded(func);
        // Sweep blocks in layout order, exactly like the rescan engine: the
        // dirty set carries no order of its own, and visiting blocks in any
        // other order (e.g. RPO) would assign expanding rules' helper names
        // in a different sequence on functions whose layout is not an RPO,
        // breaking the byte-identical-output contract with the reference.
        let block_count = func.blocks().len();
        // Per-visit scratch, reused so the steady-state loop does not allocate.
        let mut operand_defs: Vec<InstId> = Vec::new();
        let mut users_before: Vec<InstId> = Vec::new();
        // Safety nets against rule ping-pong, scaled like the reference
        // engine's 16-iteration cap; never reached by a confluent rule set.
        let max_sweeps = self.max_iterations.max(1) * 4;
        let mut budget = (func.inst_arena_len() + 16) * self.max_iterations.max(1) * 8;
        while !worklist.is_empty() && stats.iterations < max_sweeps && budget > 0 {
            stats.iterations += 1;
            for block_idx in 0..block_count {
                let block = lpo_ir::instruction::BlockId(block_idx as u32);
                let mut pos = 0;
                while pos < func.block(block).insts.len() {
                    let id = func.block(block).insts[pos];
                    // Clean instructions cost one bit check — this is where
                    // the engine beats the rescan: after the first sweep only
                    // rewritten neighbourhoods are dirty.
                    if !worklist.take(id) {
                        pos += 1;
                        continue;
                    }
                    if budget == 0 {
                        break;
                    }
                    budget -= 1;
                    let arena_before = func.inst_arena_len();
                    operand_defs.clear();
                    func.inst(id).kind.for_each_operand(|op| {
                        if let lpo_ir::instruction::Value::Inst(def) = op {
                            operand_defs.push(*def);
                        }
                    });
                    users_before.clear();
                    users_before.extend_from_slice(func.uses_of(id));
                    let mut fired = false;
                    for (rule_index, rule) in self.rules.iter().enumerate() {
                        if (rule.rule)(func, id, block, pos) {
                            stats.record(rule_index);
                            stats.changed = true;
                            fired = true;
                            break;
                        }
                    }
                    if fired {
                        // The value's previous users now see the replacement
                        // (or the rewritten instruction) and may simplify
                        // further. Rules only ever inspect an instruction and
                        // its operands' *defining* instructions — none look
                        // at users or use counts — so a hit can newly enable
                        // a rule at the users, but at the operands' defs only
                        // by making them trivially dead.
                        for &user in &users_before {
                            if !func.inst(user).is_terminator() {
                                worklist.mark(user);
                            }
                        }
                        for &def in &operand_defs {
                            if is_trivially_dead(func, def) && func.is_placed(def) {
                                worklist.mark(def);
                            }
                        }
                        // Re-examine the current position (the rescan
                        // engine's behaviour): the surviving instruction, or
                        // whatever the rule inserted or shifted here.
                        if func.is_placed(id) {
                            worklist.mark(id);
                        }
                        for slot in arena_before..func.inst_arena_len() {
                            let new_id = InstId(slot as u32);
                            if func.is_placed(new_id) && !func.inst(new_id).is_terminator() {
                                worklist.mark(new_id);
                            }
                        }
                        pos = pos.min(func.block(block).insts.len());
                        continue;
                    }
                    // No rule wanted it: sweep it now if it is trivially
                    // dead, and revisit the operands whose use counts just
                    // dropped to zero. Re-examine the shifted position.
                    if is_trivially_dead(func, id) {
                        func.erase_inst(id);
                        stats.changed = true;
                        for &def in &operand_defs {
                            if is_trivially_dead(func, def) && func.is_placed(def) {
                                worklist.mark(def);
                            }
                        }
                        continue;
                    }
                    pos += 1;
                }
            }
        }
        if stats.changed {
            func.compact();
        }
        stats
    }

    /// Optimizes every function of a module in place.
    pub fn run_module(&self, module: &mut Module) -> OptStats {
        let mut total = OptStats::for_rules(&self.rules);
        for func in &mut module.functions {
            let stats = self.run(func);
            total.absorb(&stats);
        }
        total
    }
}

/// The result of running [`optimize_text`] on a candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct TextOptResult {
    /// The optimized function, re-printed.
    pub text: String,
    /// The optimized function itself.
    pub function: Function,
    /// Whether the optimizer changed anything.
    pub changed: bool,
}

/// Verifies and canonicalizes an already-parsed function in place — the
/// **text-free Stage 1**. This is what the in-process LPO loop and the
/// superoptimizer baselines call: no printing, no re-parsing, just the
/// verifier followed by the worklist engine.
///
/// # Errors
///
/// Returns the verifier's diagnostic text (formatted like an `opt` message)
/// to be used as feedback for the LLM.
pub fn optimize_function(func: &mut Function, pipeline: &Pipeline) -> Result<OptStats, String> {
    verify_function(func).map_err(|e| e.to_string())?;
    Ok(pipeline.run(func))
}

/// Parses, verifies, optimizes and re-prints a textual function — the role
/// `opt -O3` plays on LLM candidates in the LPO workflow. Thin textual front
/// end over [`optimize_function`] for callers at the LLM (text) boundary;
/// in-process callers should parse once and use [`optimize_function`]
/// directly.
///
/// # Errors
///
/// Returns the diagnostic text (parser or verifier error, formatted like an
/// `opt` message) to be used as feedback for the LLM.
pub fn optimize_text(source: &str, pipeline: &Pipeline) -> Result<TextOptResult, String> {
    let mut func = parse_function(source).map_err(|e| e.to_string())?;
    let stats = optimize_function(&mut func, pipeline)?;
    Ok(TextOptResult { text: print_function(&func), function: func, changed: stats.changed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;
    use lpo_tv::refine::verify_refinement;

    fn optimize(text: &str) -> (Function, OptStats) {
        let mut f = parse_function(text).unwrap();
        let stats = Pipeline::new(OptLevel::O2).run(&mut f);
        (f, stats)
    }

    #[test]
    fn folds_a_whole_constant_function() {
        let (f, stats) = optimize(
            "define i32 @f() {\n\
             %a = add i32 2, 3\n\
             %b = mul i32 %a, %a\n\
             %c = call i32 @llvm.umin.i32(i32 %b, i32 20)\n\
             ret i32 %c\n}",
        );
        assert_eq!(f.instruction_count(), 0);
        assert!(stats.changed);
        assert!(stats.total_hits() >= 3);
        assert!(print_function(&f).contains("ret i32 20"));
    }

    #[test]
    fn cleans_up_redundant_code_and_is_a_refinement() {
        let src = "define i32 @f(i32 %x) {\n\
             %a = add i32 %x, 0\n\
             %b = mul i32 %a, 4\n\
             %c = sub i32 %b, %b\n\
             %d = or i32 %b, %c\n\
             %e = add i32 %d, 5\n\
             %f = add i32 %e, 7\n\
             ret i32 %f\n}";
        let original = parse_function(src).unwrap();
        let (f, _) = optimize(src);
        assert!(f.instruction_count() <= 3);
        assert!(verify_refinement(&original, &f).is_correct());
        let text = print_function(&f);
        assert!(text.contains("shl i32 %x, 2"));
        assert!(text.contains(", 12"));
    }

    #[test]
    fn optimization_levels_differ() {
        let src = "define i32 @f(i32 %x) {\n\
             %a = add i32 %x, 3\n\
             %b = add i32 %a, 4\n\
             %c = add i32 %b, 0\n\
             ret i32 %c\n}";
        let mut f0 = parse_function(src).unwrap();
        assert!(!Pipeline::new(OptLevel::O0).run(&mut f0).changed);
        assert_eq!(f0.instruction_count(), 3);

        let mut f2 = parse_function(src).unwrap();
        Pipeline::new(OptLevel::O2).run(&mut f2);
        assert_eq!(f2.instruction_count(), 1);
    }

    #[test]
    fn leaves_already_optimal_candidates_unchanged() {
        // The optimal clamp form from Figure 1c is a fixpoint of the pipeline.
        let src = "define i8 @tgt(i32 %0) {\n\
             %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
             %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             ret i8 %4\n}";
        let (f, stats) = optimize(src);
        assert!(!stats.changed);
        assert_eq!(f.instruction_count(), 3);
    }

    #[test]
    fn optimize_text_round_trips_and_reports_errors() {
        let pipeline = Pipeline::default();
        let ok = optimize_text(
            "define i32 @f(i32 %x) {\n %a = add i32 %x, 0\n ret i32 %a\n}",
            &pipeline,
        )
        .unwrap();
        assert!(ok.changed);
        assert!(ok.text.contains("ret i32 %x"));

        let err = optimize_text(
            "define i32 @f(i32 %x) {\n %a = smax i32 %x, 0\n ret i32 %a\n}",
            &pipeline,
        )
        .unwrap_err();
        assert!(err.contains("expected instruction opcode"));

        let err = optimize_text(
            "define i32 @f(i32 %x) {\n %a = add i32 %x, 0\n ret i8 0\n}",
            &pipeline,
        )
        .unwrap_err();
        assert!(err.contains("does not match function return type"));
    }

    #[test]
    fn run_module_aggregates_stats() {
        let mut module = lpo_ir::module::Module::new("m");
        module.add_function(parse_function("define i32 @a(i32 %x) {\n %r = add i32 %x, 0\n ret i32 %r\n}").unwrap());
        module.add_function(parse_function("define i32 @b(i32 %x) {\n %r = mul i32 %x, 1\n ret i32 %r\n}").unwrap());
        let stats = Pipeline::default().run_module(&mut module);
        assert!(stats.changed);
        assert_eq!(module.instruction_count(), 0);
        assert!(stats.total_hits() >= 2);
    }

    #[test]
    fn pipeline_terminates_on_pathological_input() {
        // A chain of 60 alternating operations must still settle quickly.
        let mut text = String::from("define i32 @f(i32 %x) {\n %v0 = add i32 %x, 1\n");
        for i in 1..60 {
            let op = if i % 2 == 0 { "add" } else { "xor" };
            text.push_str(&format!(" %v{i} = {op} i32 %v{}, {i}\n", i - 1));
        }
        text.push_str(" ret i32 %v59\n}");
        let (_, stats) = optimize(&text);
        assert!(stats.iterations <= 16);
    }

    #[test]
    fn rule_hit_reporting() {
        let (_, stats) = optimize("define i32 @f(i32 %x) {\n %a = add i32 %x, 0\n ret i32 %a\n}");
        assert!(stats.rule_hits().iter().any(|(n, _)| *n == "binary-identities"));
        assert!(stats.hits_of("binary-identities") >= 1);
        assert_eq!(stats.hits_of("no-such-rule"), 0);
        let pipeline = Pipeline::new(OptLevel::O2);
        assert!(pipeline.rule_count() >= 15);
        assert_eq!(pipeline.level(), OptLevel::O2);
    }

    #[test]
    fn worklist_and_reference_agree_on_text() {
        let texts = [
            "define i32 @f() {\n %a = add i32 2, 3\n %b = mul i32 %a, %a\n ret i32 %b\n}",
            "define i32 @g(i32 %x) {\n\
             %a = add i32 %x, 0\n\
             %b = mul i32 %a, 4\n\
             %c = sub i32 %b, %b\n\
             %d = or i32 %b, %c\n\
             %e = add i32 %d, 5\n\
             %f = add i32 %e, 7\n\
             ret i32 %f\n}",
            "define i8 @clamp(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
            "define i32 @dead(i32 %x) {\n\
             %d1 = add i32 %x, 1\n\
             %d2 = mul i32 %d1, 2\n\
             %live = sub i32 %x, 3\n\
             ret i32 %live\n}",
        ];
        let pipeline = Pipeline::new(OptLevel::O2);
        for text in texts {
            let mut fast = parse_function(text).unwrap();
            let mut slow = parse_function(text).unwrap();
            let fast_stats = pipeline.run(&mut fast);
            let slow_stats = pipeline.optimize_reference(&mut slow);
            assert_eq!(print_function(&fast), print_function(&slow), "on {text}");
            assert_eq!(fast_stats.changed, slow_stats.changed, "on {text}");
        }
    }
}
