//! The pass pipeline: this reproduction's `opt`.
//!
//! A [`Pipeline`] runs constant folding, InstSimplify, InstCombine and DCE to
//! a (bounded) fixpoint. [`optimize_text`] is the textual front end the LPO
//! pipeline calls on LLM candidates — it parses, verifies, optimizes and
//! re-prints, returning `opt`-style error text on failure, exactly the role
//! `opt -O3` plays in step ③ of the paper's Figure 2.

use crate::dce::eliminate_dead_code;
use crate::fold::constant_fold;
use crate::patches::Patch;
use crate::rewrite::NamedRule;
use crate::{combine, simplify};
use lpo_ir::function::Function;
use lpo_ir::module::Module;
use lpo_ir::parser::parse_function;
use lpo_ir::printer::print_function;
use lpo_ir::verifier::verify_function;

/// Optimization level presets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No transformations (parse/verify/print only).
    O0,
    /// Constant folding, simplification and DCE, single iteration.
    O1,
    /// The full rule set to a fixpoint (the default, comparable to `-O3` for
    /// the peephole-only scope this reproduction covers).
    #[default]
    O2,
}

/// Statistics from one pipeline run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Whether anything changed at all.
    pub changed: bool,
    /// Number of fixpoint iterations executed.
    pub iterations: usize,
    /// How many times each named rule fired.
    pub rule_hits: Vec<(String, usize)>,
}

impl OptStats {
    fn record(&mut self, name: &str) {
        if let Some(entry) = self.rule_hits.iter_mut().find(|(n, _)| n == name) {
            entry.1 += 1;
        } else {
            self.rule_hits.push((name.to_string(), 1));
        }
    }

    /// Total number of rule applications.
    pub fn total_hits(&self) -> usize {
        self.rule_hits.iter().map(|(_, c)| c).sum()
    }
}

/// The optimizer pipeline.
#[derive(Clone, Debug)]
pub struct Pipeline {
    level: OptLevel,
    rules: Vec<NamedRule>,
    max_iterations: usize,
}

impl Default for Pipeline {
    fn default() -> Self {
        Self::new(OptLevel::O2)
    }
}

impl Pipeline {
    /// Creates a pipeline for the given optimization level with the standard
    /// rule set (and no patches).
    pub fn new(level: OptLevel) -> Self {
        let mut rules = Vec::new();
        if level != OptLevel::O0 {
            rules.push(NamedRule { name: "constant-fold", rule: constant_fold });
            rules.extend(simplify::all_rules());
            rules.extend(combine::all_rules());
        }
        let max_iterations = match level {
            OptLevel::O0 => 0,
            OptLevel::O1 => 1,
            OptLevel::O2 => 16,
        };
        Self { level, rules, max_iterations }
    }

    /// The configured optimization level.
    pub fn level(&self) -> OptLevel {
        self.level
    }

    /// Adds the rules of the given accepted patches (Table 5 experiments).
    pub fn with_patches(mut self, patches: Vec<Patch>) -> Self {
        for p in patches {
            self.rules.push(p.rule);
        }
        self
    }

    /// Adds a single extra rule.
    pub fn with_rule(mut self, rule: NamedRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Number of rules installed (useful for ablation reporting).
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Optimizes a function in place and reports what happened.
    pub fn run(&self, func: &mut Function) -> OptStats {
        let mut stats = OptStats::default();
        for iteration in 0..self.max_iterations {
            let mut changed_this_round = false;
            // Scan blocks positionally so rules always see a fresh (block, pos).
            let block_count = func.blocks().len();
            for block_idx in 0..block_count {
                let block = lpo_ir::instruction::BlockId(block_idx as u32);
                let mut pos = 0;
                while pos < func.block(block).insts.len() {
                    let inst_id = func.block(block).insts[pos];
                    let mut fired = false;
                    for rule in &self.rules {
                        if (rule.rule)(func, inst_id, block, pos) {
                            stats.record(rule.name);
                            changed_this_round = true;
                            fired = true;
                            break;
                        }
                    }
                    if !fired {
                        pos += 1;
                    } else {
                        // The instruction may have been erased or replaced;
                        // re-examine the same position.
                        pos = pos.min(func.block(block).insts.len());
                    }
                }
            }
            if self.level != OptLevel::O0 && eliminate_dead_code(func) {
                changed_this_round = true;
            }
            stats.iterations = iteration + 1;
            if !changed_this_round {
                break;
            }
            stats.changed = true;
        }
        if stats.changed {
            func.compact();
        }
        stats
    }

    /// Optimizes every function of a module in place.
    pub fn run_module(&self, module: &mut Module) -> OptStats {
        let mut total = OptStats::default();
        for func in &mut module.functions {
            let stats = self.run(func);
            total.changed |= stats.changed;
            total.iterations = total.iterations.max(stats.iterations);
            for (name, count) in stats.rule_hits {
                for _ in 0..count {
                    total.record(&name);
                }
            }
        }
        total
    }
}

/// The result of running [`optimize_text`] on a candidate.
#[derive(Clone, Debug, PartialEq)]
pub struct TextOptResult {
    /// The optimized function, re-printed.
    pub text: String,
    /// The optimized function itself.
    pub function: Function,
    /// Whether the optimizer changed anything.
    pub changed: bool,
}

/// Parses, verifies, optimizes and re-prints a textual function — the role
/// `opt -O3` plays on LLM candidates in the LPO workflow.
///
/// # Errors
///
/// Returns the diagnostic text (parser or verifier error, formatted like an
/// `opt` message) to be used as feedback for the LLM.
pub fn optimize_text(source: &str, pipeline: &Pipeline) -> Result<TextOptResult, String> {
    let mut func = parse_function(source).map_err(|e| e.to_string())?;
    verify_function(&func).map_err(|e| e.to_string())?;
    let stats = pipeline.run(&mut func);
    Ok(TextOptResult { text: print_function(&func), function: func, changed: stats.changed })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;
    use lpo_tv::refine::verify_refinement;

    fn optimize(text: &str) -> (Function, OptStats) {
        let mut f = parse_function(text).unwrap();
        let stats = Pipeline::new(OptLevel::O2).run(&mut f);
        (f, stats)
    }

    #[test]
    fn folds_a_whole_constant_function() {
        let (f, stats) = optimize(
            "define i32 @f() {\n\
             %a = add i32 2, 3\n\
             %b = mul i32 %a, %a\n\
             %c = call i32 @llvm.umin.i32(i32 %b, i32 20)\n\
             ret i32 %c\n}",
        );
        assert_eq!(f.instruction_count(), 0);
        assert!(stats.changed);
        assert!(stats.total_hits() >= 3);
        assert!(print_function(&f).contains("ret i32 20"));
    }

    #[test]
    fn cleans_up_redundant_code_and_is_a_refinement() {
        let src = "define i32 @f(i32 %x) {\n\
             %a = add i32 %x, 0\n\
             %b = mul i32 %a, 4\n\
             %c = sub i32 %b, %b\n\
             %d = or i32 %b, %c\n\
             %e = add i32 %d, 5\n\
             %f = add i32 %e, 7\n\
             ret i32 %f\n}";
        let original = parse_function(src).unwrap();
        let (f, _) = optimize(src);
        assert!(f.instruction_count() <= 3);
        assert!(verify_refinement(&original, &f).is_correct());
        let text = print_function(&f);
        assert!(text.contains("shl i32 %x, 2"));
        assert!(text.contains(", 12"));
    }

    #[test]
    fn optimization_levels_differ() {
        let src = "define i32 @f(i32 %x) {\n\
             %a = add i32 %x, 3\n\
             %b = add i32 %a, 4\n\
             %c = add i32 %b, 0\n\
             ret i32 %c\n}";
        let mut f0 = parse_function(src).unwrap();
        assert!(!Pipeline::new(OptLevel::O0).run(&mut f0).changed);
        assert_eq!(f0.instruction_count(), 3);

        let mut f2 = parse_function(src).unwrap();
        Pipeline::new(OptLevel::O2).run(&mut f2);
        assert_eq!(f2.instruction_count(), 1);
    }

    #[test]
    fn leaves_already_optimal_candidates_unchanged() {
        // The optimal clamp form from Figure 1c is a fixpoint of the pipeline.
        let src = "define i8 @tgt(i32 %0) {\n\
             %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
             %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             ret i8 %4\n}";
        let (f, stats) = optimize(src);
        assert!(!stats.changed);
        assert_eq!(f.instruction_count(), 3);
    }

    #[test]
    fn optimize_text_round_trips_and_reports_errors() {
        let pipeline = Pipeline::default();
        let ok = optimize_text(
            "define i32 @f(i32 %x) {\n %a = add i32 %x, 0\n ret i32 %a\n}",
            &pipeline,
        )
        .unwrap();
        assert!(ok.changed);
        assert!(ok.text.contains("ret i32 %x"));

        let err = optimize_text(
            "define i32 @f(i32 %x) {\n %a = smax i32 %x, 0\n ret i32 %a\n}",
            &pipeline,
        )
        .unwrap_err();
        assert!(err.contains("expected instruction opcode"));

        let err = optimize_text(
            "define i32 @f(i32 %x) {\n %a = add i32 %x, 0\n ret i8 0\n}",
            &pipeline,
        )
        .unwrap_err();
        assert!(err.contains("does not match function return type"));
    }

    #[test]
    fn run_module_aggregates_stats() {
        let mut module = lpo_ir::module::Module::new("m");
        module.add_function(parse_function("define i32 @a(i32 %x) {\n %r = add i32 %x, 0\n ret i32 %r\n}").unwrap());
        module.add_function(parse_function("define i32 @b(i32 %x) {\n %r = mul i32 %x, 1\n ret i32 %r\n}").unwrap());
        let stats = Pipeline::default().run_module(&mut module);
        assert!(stats.changed);
        assert_eq!(module.instruction_count(), 0);
        assert!(stats.total_hits() >= 2);
    }

    #[test]
    fn pipeline_terminates_on_pathological_input() {
        // A chain of 60 alternating operations must still settle quickly.
        let mut text = String::from("define i32 @f(i32 %x) {\n %v0 = add i32 %x, 1\n");
        for i in 1..60 {
            let op = if i % 2 == 0 { "add" } else { "xor" };
            text.push_str(&format!(" %v{i} = {op} i32 %v{}, {i}\n", i - 1));
        }
        text.push_str(" ret i32 %v59\n}");
        let (_, stats) = optimize(&text);
        assert!(stats.iterations <= 16);
    }

    #[test]
    fn rule_hit_reporting() {
        let (_, stats) = optimize("define i32 @f(i32 %x) {\n %a = add i32 %x, 0\n ret i32 %a\n}");
        assert!(stats.rule_hits.iter().any(|(n, _)| n == "binary-identities"));
        let pipeline = Pipeline::new(OptLevel::O2);
        assert!(pipeline.rule_count() >= 15);
        assert_eq!(pipeline.level(), OptLevel::O2);
    }
}
