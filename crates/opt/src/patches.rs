//! "Upstreamed" peephole rules corresponding to the missed optimizations the
//! paper reports as **fixed** in LLVM (Table 3 / Table 5 / Figure 5).
//!
//! The base optimizer (`lpo-opt`'s simplify/combine rule sets) deliberately
//! does not know these patterns — that is what makes them *missed*
//! optimizations for the pipeline to discover. Each entry here is the rule a
//! maintainer would have written after the corresponding LPO report, keyed by
//! the LLVM issue number from the paper. The Table 5 / Figure 5 experiments
//! re-run the optimizer with individual patches enabled and measure their
//! prevalence, compile-time and estimated-runtime impact.

use crate::rewrite::{
    as_const_int, const_apint_of, const_bool_of, const_int_of, defining_inst, insert_before,
    is_zero, mutate, replace_with, NamedRule,
};
use lpo_ir::apint::ApInt;
use lpo_ir::flags::IntFlags;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, BlockId, CastOp, ICmpPred, InstId, InstKind, Intrinsic, Value};
use lpo_ir::types::Type;

/// One accepted patch: the LLVM issue it fixes and the rewrite rule.
#[derive(Clone, Copy, Debug)]
pub struct Patch {
    /// Identifier as used in the paper's tables, e.g. `"163108 (1)"`.
    pub id: &'static str,
    /// The LLVM issue number.
    pub issue: u32,
    /// One-line description of the added peephole.
    pub description: &'static str,
    /// The InstCombine rule the patch adds.
    pub rule: NamedRule,
}

/// All accepted patches, in the order Table 5 lists them.
pub fn all_patches() -> Vec<Patch> {
    vec![
        Patch {
            id: "128134",
            issue: 128134,
            description: "merge two adjacent i16 loads combined with zext/shl/or into one i32 load",
            rule: NamedRule { name: "patch-128134", rule: patch_merge_adjacent_loads },
        },
        Patch {
            id: "133367",
            issue: 133367,
            description: "drop an fcmp ord guard whose select feeds an ordered compare against a non-zero constant",
            rule: NamedRule { name: "patch-133367", rule: patch_fcmp_ord_select },
        },
        Patch {
            id: "142674",
            issue: 142674,
            description: "remove a umax clamp subsumed by a later, larger umax after shl nuw",
            rule: NamedRule { name: "patch-142674", rule: patch_redundant_umax_before_shift },
        },
        Patch {
            id: "142711",
            issue: 142711,
            description: "fold icmp eq/ne (xor X, C1), C2 into icmp eq/ne X, C1^C2",
            rule: NamedRule { name: "patch-142711", rule: patch_icmp_of_xor },
        },
        Patch {
            id: "143211",
            issue: 143211,
            description: "fold icmp eq/ne (sub 0, X), 0 into icmp eq/ne X, 0",
            rule: NamedRule { name: "patch-143211", rule: patch_icmp_of_neg },
        },
        Patch {
            id: "143636",
            issue: 143636,
            description: "rewrite select(x < 0, 0, umin(x, C)) into umin(smax(x, 0), C)",
            rule: NamedRule { name: "patch-143636", rule: patch_clamp_select_to_minmax },
        },
        Patch {
            id: "154238",
            issue: 154238,
            description: "remove umin(zext X, C) when C covers the whole range of X",
            rule: NamedRule { name: "patch-154238", rule: patch_umin_of_zext },
        },
        Patch {
            id: "157315",
            issue: 157315,
            description: "fold icmp ne (and X, 1), 0 into trunc X to i1",
            rule: NamedRule { name: "patch-157315", rule: patch_low_bit_test },
        },
        Patch {
            id: "157370",
            issue: 157370,
            description: "fold xor(icmp, true) into the inverted predicate",
            rule: NamedRule { name: "patch-157370", rule: patch_not_of_icmp },
        },
        Patch {
            id: "157371 (1)",
            issue: 157371,
            description: "fold icmp eq (usub.sat X, C), 0 into icmp ule X, C",
            rule: NamedRule { name: "patch-157371-1", rule: patch_usub_sat_eq_zero },
        },
        Patch {
            id: "157371 (2)",
            issue: 157371,
            description: "fold icmp eq (umin X, C), C into icmp uge X, C",
            rule: NamedRule { name: "patch-157371-2", rule: patch_umin_eq_bound },
        },
        Patch {
            id: "157524",
            issue: 157524,
            description: "fold lshr(shl X, C), C into and X, mask",
            rule: NamedRule { name: "patch-157524", rule: patch_shl_lshr_to_mask },
        },
        Patch {
            id: "163108 (1)",
            issue: 163108,
            description: "fold mul(udiv exact X, C), C back into X",
            rule: NamedRule { name: "patch-163108-1", rule: patch_exact_div_mul },
        },
        Patch {
            id: "163108 (2)",
            issue: 163108,
            description: "fold or(and X, C), (and X, ~C) into X",
            rule: NamedRule { name: "patch-163108-2", rule: patch_or_of_complementary_masks },
        },
        Patch {
            id: "166973",
            issue: 166973,
            description: "remove select(x == 0, 0, x) which is always x",
            rule: NamedRule { name: "patch-166973", rule: patch_redundant_zero_select },
        },
    ]
}

/// Looks up the patches belonging to one LLVM issue (some issues landed as two
/// commits, matching Table 5's `(1)`/`(2)` rows).
pub fn patches_for_issue(issue: u32) -> Vec<Patch> {
    all_patches().into_iter().filter(|p| p.issue == issue).collect()
}

// ---------------------------------------------------------------------------
// Individual patch rules
// ---------------------------------------------------------------------------

/// Issue 128134 / case study 1: `or disjoint (shl nuw (zext (load i16 p+2)), 16), (zext (load i16 p))`
/// becomes a single `load i32 p` (little-endian layout).
fn patch_merge_adjacent_loads(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    if inst.ty != Type::i32() {
        return false;
    }
    let InstKind::Binary { op: BinOp::Or, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    // One side: shl (zext (load i16 HI)), 16; other side: zext (load i16 LO).
    let match_high = |func: &Function, v: &Value| -> Option<Value> {
        let (_, shl) = defining_inst(func, v)?;
        let InstKind::Binary { op: BinOp::Shl, lhs, rhs, .. } = shl.clone() else {
            return None;
        };
        if as_const_int(&rhs)?.zext_value() != 16 {
            return None;
        }
        let (_, zext) = defining_inst(func, &lhs)?;
        let InstKind::Cast { op: CastOp::ZExt, value, .. } = zext.clone() else {
            return None;
        };
        let (_, load) = defining_inst(func, &value)?;
        let InstKind::Load { ptr, .. } = load.clone() else {
            return None;
        };
        if func.value_type(&value) != Type::i16() {
            return None;
        }
        Some(ptr)
    };
    let match_low = |func: &Function, v: &Value| -> Option<(Value, u32)> {
        let (_, zext) = defining_inst(func, v)?;
        let InstKind::Cast { op: CastOp::ZExt, value, .. } = zext.clone() else {
            return None;
        };
        let (_, load) = defining_inst(func, &value)?;
        let InstKind::Load { ptr, align } = load.clone() else {
            return None;
        };
        if func.value_type(&value) != Type::i16() {
            return None;
        }
        Some((ptr, align))
    };
    for (hi, lo) in [(&lhs, &rhs), (&rhs, &lhs)] {
        let Some(hi_ptr) = match_high(func, hi) else { continue };
        let Some((lo_ptr, align)) = match_low(func, lo) else { continue };
        // The high pointer must be `getelementptr i8, lo_ptr, 2` (or i16 index 1).
        let Some((_, gep)) = defining_inst(func, &hi_ptr) else { continue };
        let InstKind::Gep { elem_ty, base, index, .. } = gep.clone() else { continue };
        if base != lo_ptr {
            continue;
        }
        let Some(idx) = as_const_int(&index) else { continue };
        let byte_offset = idx.zext_value() * elem_ty.size_in_bytes() as u128;
        if byte_offset != 2 {
            continue;
        }
        return mutate(func, id, InstKind::Load { ptr: lo_ptr, align }, Type::i32());
    }
    false
}

/// Issue 133367 / case study 3: `fcmp oeq (select (fcmp ord x, 0.0), x, 0.0), C`
/// with `C != 0.0` is just `fcmp oeq x, C`.
fn patch_fcmp_ord_select(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::FCmp { pred, lhs, rhs } = inst.kind.clone() else {
        return false;
    };
    // Only `oeq` is safe here: for a NaN input the source compares 0.0 against
    // the constant, which an inequality predicate could answer differently.
    if pred != lpo_ir::instruction::FCmpPred::Oeq {
        return false;
    }
    let Some(c) = rhs.as_const().and_then(|c| c.as_float()) else {
        return false;
    };
    if c == 0.0 {
        return false;
    }
    let Some((_, InstKind::Select { cond, on_true, on_false })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    // on_false must be +0.0 and the condition `fcmp ord on_true, 0.0`.
    if on_false.as_const().and_then(|c| c.as_float()) != Some(0.0) {
        return false;
    }
    let Some((_, InstKind::FCmp { pred: lpo_ir::instruction::FCmpPred::Ord, lhs: ord_lhs, .. })) =
        defining_inst(func, &cond).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if ord_lhs != on_true {
        return false;
    }
    mutate(func, id, InstKind::FCmp { pred, lhs: on_true, rhs }, ty)
}

/// Issue 142674 / case study 2: `umax(shl nuw (umax(x, C1)), S), C3` with
/// `C1 << S <= C3` does not need the inner clamp.
fn patch_redundant_umax_before_shift(func: &mut Function, id: InstId, block: BlockId, pos: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Call { intrinsic: Intrinsic::Umax, args, fmf } = inst.kind.clone() else {
        return false;
    };
    let Some(c3) = as_const_int(&args[1]) else {
        return false;
    };
    let Some((_, InstKind::Binary { op: BinOp::Shl, lhs, rhs, flags })) =
        defining_inst(func, &args[0]).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if !flags.nuw {
        return false;
    }
    let Some(shift) = as_const_int(&rhs) else {
        return false;
    };
    let Some((_, InstKind::Call { intrinsic: Intrinsic::Umax, args: inner_args, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    let Some(c1) = as_const_int(&inner_args[1]) else {
        return false;
    };
    let Some(shifted) = c1.shl(&shift) else {
        return false;
    };
    if c3.ult(&shifted) {
        return false;
    }
    // Build `shl nuw x, S` on the unclamped value and feed it to this umax.
    let new_shl = insert_before(
        func,
        block,
        pos,
        InstKind::Binary { op: BinOp::Shl, lhs: inner_args[0].clone(), rhs, flags },
        ty.clone(),
        "shl",
    );
    mutate(
        func,
        id,
        InstKind::Call { intrinsic: Intrinsic::Umax, args: vec![new_shl, args[1].clone()], fmf },
        ty,
    )
}

/// Issue 142711: `icmp eq/ne (xor X, C1), C2` → `icmp eq/ne X, C1 ^ C2`.
fn patch_icmp_of_xor(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::ICmp { pred, lhs, rhs } = inst.kind.clone() else {
        return false;
    };
    if !pred.is_equality() {
        return false;
    }
    let Some(c2) = as_const_int(&rhs) else {
        return false;
    };
    let Some((_, InstKind::Binary { op: BinOp::Xor, lhs: x, rhs: c1_val, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    let Some(c1) = as_const_int(&c1_val) else {
        return false;
    };
    let operand_ty = func.value_type(&x);
    mutate(
        func,
        id,
        InstKind::ICmp { pred, lhs: x, rhs: const_apint_of(&operand_ty, c1.xor(&c2)) },
        ty,
    )
}

/// Issue 143211: `icmp eq/ne (sub 0, X), 0` → `icmp eq/ne X, 0`.
fn patch_icmp_of_neg(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::ICmp { pred, lhs, rhs } = inst.kind.clone() else {
        return false;
    };
    if !pred.is_equality() || !is_zero(&rhs) {
        return false;
    }
    let Some((_, InstKind::Binary { op: BinOp::Sub, lhs: zero, rhs: x, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if !is_zero(&zero) {
        return false;
    }
    mutate(func, id, InstKind::ICmp { pred, lhs: x, rhs }, ty)
}

/// Issue 143636 / Figure 1: `select (icmp slt x, 0), 0, umin(x, C)` — possibly
/// with a `trunc` between the `umin` and the select — becomes
/// `umin(smax(x, 0), C)` (plus the trunc). Works on scalars and vectors.
fn patch_clamp_select_to_minmax(func: &mut Function, id: InstId, block: BlockId, pos: usize) -> bool {
    let inst = func.inst(id);
    let sel_ty = inst.ty.clone();
    let InstKind::Select { cond, on_true, on_false } = inst.kind.clone() else {
        return false;
    };
    if !is_zero(&on_true) {
        return false;
    }
    // Condition: icmp slt x, 0.
    let Some((_, InstKind::ICmp { pred: ICmpPred::Slt, lhs: x, rhs: cmp_zero })) =
        defining_inst(func, &cond).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if !is_zero(&cmp_zero) {
        return false;
    }
    // False arm: umin(x, C), optionally behind a trunc.
    let mut trunc_flags: Option<IntFlags> = None;
    let mut umin_value = on_false.clone();
    if let Some((_, InstKind::Cast { op: CastOp::Trunc, value, flags })) =
        defining_inst(func, &on_false).map(|(i, k)| (i, k.clone()))
    {
        trunc_flags = Some(flags);
        umin_value = value;
    }
    let Some((_, InstKind::Call { intrinsic: Intrinsic::Umin, args, fmf })) =
        defining_inst(func, &umin_value).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if args[0] != x {
        return false;
    }
    let bound = args[1].clone();
    let wide_ty = func.value_type(&x);

    let smax = insert_before(
        func,
        block,
        pos,
        InstKind::Call {
            intrinsic: Intrinsic::Smax,
            args: vec![x, const_int_of(&wide_ty, 0)],
            fmf,
        },
        wide_ty.clone(),
        "smax",
    );
    let umin = insert_before(
        func,
        block,
        pos + 1,
        InstKind::Call { intrinsic: Intrinsic::Umin, args: vec![smax, bound], fmf },
        wide_ty.clone(),
        "umin",
    );
    match trunc_flags {
        Some(flags) => mutate(func, id, InstKind::Cast { op: CastOp::Trunc, value: umin, flags }, sel_ty),
        None => {
            replace_with(func, id, umin);
            true
        }
    }
}

/// Issue 154238: `umin(zext X to iN, C)` is just `zext X` when `C` is at least
/// the maximum value of `X`'s source type.
fn patch_umin_of_zext(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let InstKind::Call { intrinsic: Intrinsic::Umin, args, .. } = inst.kind.clone() else {
        return false;
    };
    let Some(c) = as_const_int(&args[1]) else {
        return false;
    };
    let Some((_, InstKind::Cast { op: CastOp::ZExt, value, .. })) =
        defining_inst(func, &args[0]).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    let Some(src_width) = func.value_type(&value).scalar_type().int_width() else {
        return false;
    };
    let src_max = ApInt::all_ones(src_width).zext(c.width());
    if c.ult(&src_max) {
        return false;
    }
    replace_with(func, id, args[0].clone())
}

/// Issue 157315: `icmp ne (and X, 1), 0` → `trunc X to i1`.
fn patch_low_bit_test(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    if ty != Type::i1() {
        return false;
    }
    let InstKind::ICmp { pred: ICmpPred::Ne, lhs, rhs } = inst.kind.clone() else {
        return false;
    };
    if !is_zero(&rhs) {
        return false;
    }
    let Some((_, InstKind::Binary { op: BinOp::And, lhs: x, rhs: one, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if as_const_int(&one).map(|c| c.is_one()) != Some(true) {
        return false;
    }
    mutate(func, id, InstKind::Cast { op: CastOp::Trunc, value: x, flags: IntFlags::none() }, ty)
}

/// Issue 157370: `xor (icmp pred a, b), true` → `icmp pred' a, b` with the
/// inverted predicate (when the compare has no other users it then dies).
fn patch_not_of_icmp(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    if ty != Type::i1() {
        return false;
    }
    let InstKind::Binary { op: BinOp::Xor, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    if as_const_int(&rhs).map(|c| c.is_one()) != Some(true) {
        return false;
    }
    let Some((_, InstKind::ICmp { pred, lhs: a, rhs: b })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    mutate(func, id, InstKind::ICmp { pred: pred.inverted(), lhs: a, rhs: b }, ty)
}

/// Issue 157371 (1): `icmp eq (usub.sat X, C), 0` → `icmp ule X, C`.
fn patch_usub_sat_eq_zero(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::ICmp { pred, lhs, rhs } = inst.kind.clone() else {
        return false;
    };
    if !pred.is_equality() || !is_zero(&rhs) {
        return false;
    }
    let Some((_, InstKind::Call { intrinsic: Intrinsic::UsubSat, args, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    let new_pred = if pred == ICmpPred::Eq { ICmpPred::Ule } else { ICmpPred::Ugt };
    mutate(func, id, InstKind::ICmp { pred: new_pred, lhs: args[0].clone(), rhs: args[1].clone() }, ty)
}

/// Issue 157371 (2): `icmp eq (umin X, C), C` → `icmp uge X, C`.
fn patch_umin_eq_bound(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::ICmp { pred, lhs, rhs } = inst.kind.clone() else {
        return false;
    };
    if !pred.is_equality() {
        return false;
    }
    let Some(c) = as_const_int(&rhs) else {
        return false;
    };
    let Some((_, InstKind::Call { intrinsic: Intrinsic::Umin, args, .. })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if as_const_int(&args[1]) != Some(c) {
        return false;
    }
    let new_pred = if pred == ICmpPred::Eq { ICmpPred::Uge } else { ICmpPred::Ult };
    mutate(func, id, InstKind::ICmp { pred: new_pred, lhs: args[0].clone(), rhs }, ty)
}

/// Issue 157524: `lshr (shl X, C), C` → `and X, (2^(w-C) - 1)`.
fn patch_shl_lshr_to_mask(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Binary { op: BinOp::LShr, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    let Some(c) = as_const_int(&rhs) else {
        return false;
    };
    let Some((_, InstKind::Binary { op: BinOp::Shl, lhs: x, rhs: inner_c, flags })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if flags.nuw || flags.nsw {
        return false; // flagged shifts have extra poison the mask form would drop uses of
    }
    if as_const_int(&inner_c) != Some(c) {
        return false;
    }
    let Some(width) = ty.scalar_type().int_width() else {
        return false;
    };
    let amount = c.zext_value() as u32;
    if amount == 0 || amount >= width {
        return false;
    }
    let mask = ApInt::all_ones(width - amount).zext(width);
    mutate(
        func,
        id,
        InstKind::Binary { op: BinOp::And, lhs: x, rhs: const_apint_of(&ty, mask), flags: IntFlags::none() },
        ty,
    )
}

/// Issue 163108 (1): `mul (udiv exact X, C), C` → `X`.
fn patch_exact_div_mul(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let InstKind::Binary { op: BinOp::Mul, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    let Some(c) = as_const_int(&rhs) else {
        return false;
    };
    let Some((_, InstKind::Binary { op: BinOp::UDiv, lhs: x, rhs: divisor, flags })) =
        defining_inst(func, &lhs).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if !flags.exact || as_const_int(&divisor) != Some(c) || c.is_zero() {
        return false;
    }
    replace_with(func, id, x)
}

/// Issue 163108 (2): `or (and X, C), (and X, ~C)` → `X`.
fn patch_or_of_complementary_masks(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let InstKind::Binary { op: BinOp::Or, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    let get_and = |func: &Function, v: &Value| -> Option<(Value, ApInt)> {
        let (_, k) = defining_inst(func, v)?;
        let InstKind::Binary { op: BinOp::And, lhs, rhs, .. } = k.clone() else {
            return None;
        };
        Some((lhs, as_const_int(&rhs)?))
    };
    let Some((x1, c1)) = get_and(func, &lhs) else {
        return false;
    };
    let Some((x2, c2)) = get_and(func, &rhs) else {
        return false;
    };
    if x1 != x2 || !c1.xor(&c2).is_all_ones() {
        return false;
    }
    replace_with(func, id, x1)
}

/// Issue 166973: `select (icmp eq X, 0), 0, X` → `X`.
fn patch_redundant_zero_select(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let InstKind::Select { cond, on_true, on_false } = inst.kind.clone() else {
        return false;
    };
    if !is_zero(&on_true) {
        return false;
    }
    let Some((_, InstKind::ICmp { pred: ICmpPred::Eq, lhs, rhs })) =
        defining_inst(func, &cond).map(|(i, k)| (i, k.clone()))
    else {
        return false;
    };
    if !is_zero(&rhs) || lhs != on_false {
        return false;
    }
    replace_with(func, id, on_false)
}

/// A no-op helper keeping `const_bool_of` linked for rules that need it later.
#[allow(dead_code)]
fn _keep(ty: &Type) -> Value {
    const_bool_of(ty, true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{OptLevel, Pipeline};
    use lpo_ir::parser::parse_function;
    use lpo_ir::printer::print_function;
    use lpo_tv::refine::verify_refinement;

    /// Runs the full O2 pipeline with every patch enabled and checks the
    /// result is (a) what we expect and (b) a verified refinement.
    fn optimize_with_patches(text: &str) -> String {
        let original = parse_function(text).unwrap();
        let mut f = original.clone();
        let pipeline = Pipeline::new(OptLevel::O2).with_patches(all_patches());
        pipeline.run(&mut f);
        let verdict = verify_refinement(&original, &f);
        assert!(verdict.is_correct(), "patched optimization is not a refinement: {verdict:?}\n{}", print_function(&f));
        print_function(&f)
    }

    #[test]
    fn patch_inventory_matches_table_5() {
        let patches = all_patches();
        assert_eq!(patches.len(), 15);
        assert_eq!(patches_for_issue(157371).len(), 2);
        assert_eq!(patches_for_issue(163108).len(), 2);
        assert_eq!(patches_for_issue(128134).len(), 1);
        assert!(patches_for_issue(999999).is_empty());
    }

    #[test]
    fn merges_adjacent_loads_case_study_1() {
        let out = optimize_with_patches(
            "define i32 @src(ptr %0) {\n\
             %2 = load i16, ptr %0, align 2\n\
             %3 = getelementptr i8, ptr %0, i64 2\n\
             %4 = load i16, ptr %3, align 1\n\
             %5 = zext i16 %4 to i32\n\
             %6 = shl nuw i32 %5, 16\n\
             %7 = zext i16 %2 to i32\n\
             %8 = or disjoint i32 %6, %7\n\
             ret i32 %8\n}",
        );
        assert!(out.contains("load i32, ptr %0"));
        assert!(!out.contains("shl"));
    }

    #[test]
    fn clamp_select_becomes_minmax_figure_1() {
        let out = optimize_with_patches(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
        );
        assert!(out.contains("llvm.smax.i32"));
        assert!(out.contains("llvm.umin.i32"));
        assert!(!out.contains("select"));
    }

    #[test]
    fn redundant_umax_removed_case_study_2() {
        let out = optimize_with_patches(
            "define i8 @src(i8 %0) {\n\
             %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)\n\
             %3 = shl nuw i8 %2, 1\n\
             %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)\n\
             ret i8 %4\n}",
        );
        assert_eq!(out.matches("umax").count(), 1);
    }

    #[test]
    fn fcmp_ord_select_dropped_case_study_3() {
        let out = optimize_with_patches(
            "define i1 @src(double %0) {\n\
             %2 = fcmp ord double %0, 0.000000e+00\n\
             %3 = select i1 %2, double %0, double 0.000000e+00\n\
             %4 = fcmp oeq double %3, 1.000000e+00\n\
             ret i1 %4\n}",
        );
        assert!(!out.contains("select"));
        assert!(!out.contains("ord"));
        assert!(out.contains("fcmp oeq double %0, 1"));
    }

    #[test]
    fn icmp_of_xor_and_neg() {
        let out = optimize_with_patches(
            "define i1 @f(i32 %x) {\n %a = xor i32 %x, 12\n %c = icmp eq i32 %a, 5\n ret i1 %c\n}",
        );
        assert!(out.contains("icmp eq i32 %x, 9"));
        let out = optimize_with_patches(
            "define i1 @f(i32 %x) {\n %n = sub i32 0, %x\n %c = icmp ne i32 %n, 0\n ret i1 %c\n}",
        );
        assert!(out.contains("icmp ne i32 %x, 0"));
    }

    #[test]
    fn umin_of_zext_and_low_bit_test() {
        let out = optimize_with_patches(
            "define i32 @f(i16 %x) {\n %z = zext i16 %x to i32\n %m = call i32 @llvm.umin.i32(i32 %z, i32 70000)\n ret i32 %m\n}",
        );
        assert!(!out.contains("umin"));
        let out = optimize_with_patches(
            "define i1 @f(i32 %x) {\n %a = and i32 %x, 1\n %c = icmp ne i32 %a, 0\n ret i1 %c\n}",
        );
        assert!(out.contains("trunc i32 %x to i1"));
    }

    #[test]
    fn not_of_icmp_and_sat_compare() {
        let out = optimize_with_patches(
            "define i1 @f(i32 %x, i32 %y) {\n %c = icmp ult i32 %x, %y\n %n = xor i1 %c, true\n ret i1 %n\n}",
        );
        assert!(out.contains("icmp uge i32 %x, %y"));
        let out = optimize_with_patches(
            "define i1 @f(i8 %x) {\n %s = call i8 @llvm.usub.sat.i8(i8 %x, i8 10)\n %c = icmp eq i8 %s, 0\n ret i1 %c\n}",
        );
        assert!(out.contains("icmp ule i8 %x, 10"));
        let out = optimize_with_patches(
            "define i1 @f(i8 %x) {\n %m = call i8 @llvm.umin.i8(i8 %x, i8 10)\n %c = icmp eq i8 %m, 10\n ret i1 %c\n}",
        );
        assert!(out.contains("icmp uge i8 %x, 10"));
    }

    #[test]
    fn mask_division_and_complementary_or() {
        let out = optimize_with_patches(
            "define i32 @f(i32 %x) {\n %a = shl i32 %x, 8\n %b = lshr i32 %a, 8\n ret i32 %b\n}",
        );
        assert!(out.contains("and i32 %x, 16777215"));
        let out = optimize_with_patches(
            "define i32 @f(i32 %x) {\n %d = udiv exact i32 %x, 6\n %m = mul i32 %d, 6\n ret i32 %m\n}",
        );
        assert!(out.contains("ret i32 %x"));
        let out = optimize_with_patches(
            "define i8 @f(i8 %x) {\n %a = and i8 %x, 15\n %b = and i8 %x, -16\n %o = or i8 %a, %b\n ret i8 %o\n}",
        );
        assert!(out.contains("ret i8 %x"));
    }

    #[test]
    fn redundant_zero_select() {
        let out = optimize_with_patches(
            "define i32 @f(i32 %x) {\n %c = icmp eq i32 %x, 0\n %s = select i1 %c, i32 0, i32 %x\n ret i32 %s\n}",
        );
        assert!(out.contains("ret i32 %x"));
    }

    #[test]
    fn base_pipeline_misses_all_of_these() {
        // Without the patches, the pipeline must leave the key shape intact —
        // these are the *missed* optimizations of the paper.
        let base = Pipeline::new(OptLevel::O2);
        let keep_select = "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}";
        let mut f = parse_function(keep_select).unwrap();
        base.run(&mut f);
        assert!(print_function(&f).contains("select"));

        let keep_loads = "define i32 @src(ptr %0) {\n\
             %2 = load i16, ptr %0, align 2\n\
             %3 = getelementptr i8, ptr %0, i64 2\n\
             %4 = load i16, ptr %3, align 1\n\
             %5 = zext i16 %4 to i32\n\
             %6 = shl nuw i32 %5, 16\n\
             %7 = zext i16 %2 to i32\n\
             %8 = or disjoint i32 %6, %7\n\
             ret i32 %8\n}";
        let mut f = parse_function(keep_loads).unwrap();
        base.run(&mut f);
        assert_eq!(print_function(&f).matches("load").count(), 2);
    }
}
