//! Shared helpers for writing rewrite rules.
//!
//! A rule is a plain function over the function being optimized, with the
//! [`RewriteRule`] signature; it returns `true` when it changed the IR. The
//! helpers here cover the two common rewrite shapes (replace-with-value,
//! mutate-in-place), splat-aware constant matching, and inserting helper
//! instructions for expanding rules.
//!
//! ```
//! use lpo_ir::function::Function;
//! use lpo_ir::instruction::{BinOp, BlockId, InstId, InstKind};
//! use lpo_ir::parser::parse_function;
//! use lpo_opt::rewrite::{is_zero, replace_with};
//!
//! /// `add %x, 0` → `%x`, written against the rule signature.
//! fn add_identity(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
//!     match &func.inst(id).kind {
//!         InstKind::Binary { op: BinOp::Add, lhs, rhs, .. } if is_zero(rhs) => {
//!             let lhs = lhs.clone();
//!             replace_with(func, id, lhs)
//!         }
//!         _ => false,
//!     }
//! }
//!
//! let mut f = parse_function(
//!     "define i32 @f(i32 %x) {\n %a = add i32 %x, 0\n ret i32 %a\n}",
//! )?;
//! let block = f.entry();
//! let target = f.block(block).insts[0];
//! assert!(add_identity(&mut f, target, block, 0));
//! // The add is gone and `ret` now returns the parameter directly.
//! assert_eq!(f.instruction_count(), 0);
//! assert_eq!(f.describe_value(f.return_value().unwrap()), "%x");
//! # Ok::<(), lpo_ir::parser::ParseError>(())
//! ```

use lpo_ir::apint::ApInt;
use lpo_ir::constant::Constant;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BlockId, InstId, InstKind, Instruction, Value};
use lpo_ir::types::Type;

/// The signature every rewrite rule implements.
pub type RewriteRule = fn(&mut Function, InstId, BlockId, usize) -> bool;

/// A named rewrite rule, so pipelines and ablations can report which rules fired.
#[derive(Clone, Copy)]
pub struct NamedRule {
    /// A short identifier, e.g. `add-identity` or `patch-143636`.
    pub name: &'static str,
    /// The rule function.
    pub rule: RewriteRule,
}

impl std::fmt::Debug for NamedRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NamedRule({})", self.name)
    }
}

/// Replaces every use of `id` with `value` and erases `id` when it has no side
/// effects. Returns `true` (for use as a rule tail call).
pub fn replace_with(func: &mut Function, id: InstId, value: Value) -> bool {
    func.replace_all_uses_with(id, &value);
    if !func.inst(id).kind.has_side_effects() {
        func.erase_inst(id);
    }
    true
}

/// Rewrites the instruction in place, keeping its name and position. Routed
/// through [`Function::set_inst_kind`] so the maintained use lists stay
/// coherent with the new operands.
pub fn mutate(func: &mut Function, id: InstId, kind: InstKind, ty: Type) -> bool {
    func.set_inst_kind(id, kind, ty);
    true
}

/// Inserts a new instruction immediately before position `pos` of `block` and
/// returns a [`Value`] referring to it. Used by expanding rules that need a
/// helper instruction (e.g. building `smax` + `umin` out of a `select`).
///
/// The generated name is derived from the arena length, which only grows
/// during a pipeline run — so identical rule-application histories produce
/// identical names regardless of *when* dead instructions are swept (the
/// rescan pipeline defers DCE to the end of an iteration, the worklist engine
/// erases eagerly; both must print byte-identical results).
pub fn insert_before(
    func: &mut Function,
    block: BlockId,
    pos: usize,
    kind: InstKind,
    ty: Type,
    name_hint: &str,
) -> Value {
    let name = format!("{name_hint}.{}", func.inst_arena_len());
    let id = func.insert_inst(block, pos, Instruction::new(kind, ty, name));
    Value::Inst(id)
}

/// Returns the scalar integer constant this operand denotes, looking through
/// splat vectors (`splat (i32 255)` and `zeroinitializer` included).
pub fn as_const_int(value: &Value) -> Option<ApInt> {
    match value {
        Value::Const(Constant::Int(v)) => Some(*v),
        Value::Const(c @ Constant::Vector(_)) => c.splat_int().copied(),
        _ => None,
    }
}

/// Returns the constant this operand denotes, if any.
pub fn as_const(value: &Value) -> Option<&Constant> {
    value.as_const()
}

/// Returns `true` if the operand is the integer constant zero (or a zero splat).
pub fn is_zero(value: &Value) -> bool {
    value.as_const().map(Constant::is_zero).unwrap_or(false)
}

/// Returns `true` if the operand is the all-ones integer constant (or splat).
pub fn is_all_ones(value: &Value) -> bool {
    value.as_const().map(Constant::is_all_ones).unwrap_or(false)
}

/// Returns `true` if the operand is the integer constant one (or splat of ones).
pub fn is_one(value: &Value) -> bool {
    value.as_const().map(Constant::is_one).unwrap_or(false)
}

/// Builds an integer constant operand of the given (possibly vector) type.
pub fn const_int_of(ty: &Type, value: i128) -> Value {
    let width = ty.scalar_type().int_width().expect("integer type");
    let scalar = Constant::int_signed(width, value);
    match ty.lanes() {
        Some(n) => Value::Const(Constant::splat(n, scalar)),
        None => Value::Const(scalar),
    }
}

/// Builds an integer constant operand of the given type from an [`ApInt`].
pub fn const_apint_of(ty: &Type, value: ApInt) -> Value {
    match ty.lanes() {
        Some(n) => Value::Const(Constant::splat(n, Constant::Int(value))),
        None => Value::Const(Constant::Int(value)),
    }
}

/// Builds the boolean constant of the given (possibly `<N x i1>`) type.
pub fn const_bool_of(ty: &Type, value: bool) -> Value {
    match ty.lanes() {
        Some(n) => Value::Const(Constant::splat(n, Constant::bool(value))),
        None => Value::Const(Constant::bool(value)),
    }
}

/// Returns `true` if two operand values are structurally identical.
pub fn same_value(a: &Value, b: &Value) -> bool {
    a == b
}

/// Returns the defining instruction of an operand, if it is an instruction result.
pub fn defining_inst<'f>(func: &'f Function, value: &Value) -> Option<(InstId, &'f InstKind)> {
    match value {
        Value::Inst(id) => Some((*id, &func.inst(*id).kind)),
        _ => None,
    }
}

/// Returns how many placed instructions use `id` (convenience wrapper).
pub fn use_count(func: &Function, id: InstId) -> usize {
    func.num_users(id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::builder::FunctionBuilder;
    use lpo_ir::instruction::BinOp;

    #[test]
    fn constant_matchers_see_through_splats() {
        let splat_255 = Value::Const(Constant::splat(4, Constant::int(32, 255)));
        assert_eq!(as_const_int(&splat_255).unwrap().zext_value(), 255);
        let zero_vec = Value::Const(Constant::zero(&Type::vector(4, Type::i32())));
        assert!(is_zero(&zero_vec));
        assert_eq!(as_const_int(&zero_vec).unwrap().zext_value(), 0);
        assert!(is_all_ones(&Value::int_signed(8, -1)));
        assert!(is_one(&Value::int(8, 1)));
        assert!(as_const_int(&Value::Arg(0)).is_none());
    }

    #[test]
    fn typed_constant_builders() {
        let v = const_int_of(&Type::vector(4, Type::i8()), -1);
        assert!(is_all_ones(&v));
        let s = const_int_of(&Type::i16(), 300);
        assert_eq!(as_const_int(&s).unwrap().zext_value(), 300);
        let b = const_bool_of(&Type::vector(2, Type::i1()), true);
        assert!(b.as_const().unwrap().is_splat());
        let a = const_apint_of(&Type::i8(), ApInt::new(8, 7));
        assert_eq!(as_const_int(&a).unwrap().zext_value(), 7);
    }

    #[test]
    fn replace_and_mutate_helpers() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let a = b.add(x.clone(), Value::int(32, 0));
        let c = b.mul(a.clone(), Value::int(32, 2));
        b.ret(Some(c.clone()));
        let mut f = b.build();
        let add_id = a.as_inst().unwrap();
        let mul_id = c.as_inst().unwrap();

        assert!(replace_with(&mut f, add_id, x.clone()));
        assert_eq!(f.instruction_count(), 1);

        assert!(mutate(
            &mut f,
            mul_id,
            InstKind::Binary { op: BinOp::Shl, lhs: x, rhs: Value::int(32, 1), flags: Default::default() },
            Type::i32()
        ));
        assert_eq!(f.inst(mul_id).kind.opcode_name(), "shl");
    }

    #[test]
    fn insert_before_places_instruction() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let a = b.add(x.clone(), Value::int(32, 1));
        b.ret(Some(a));
        let mut f = b.build();
        let entry = f.entry();
        let v = insert_before(
            &mut f,
            entry,
            0,
            InstKind::Binary { op: BinOp::Mul, lhs: x, rhs: Value::int(32, 3), flags: Default::default() },
            Type::i32(),
            "m",
        );
        assert!(v.as_inst().is_some());
        assert_eq!(f.block(entry).insts.len(), 3);
        assert_eq!(f.inst(f.block(entry).insts[0]).kind.opcode_name(), "mul");
    }

    #[test]
    fn misc_queries() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let x = b.add_param("x", Type::i32());
        let a = b.add(x.clone(), Value::int(32, 1));
        let c = b.mul(a.clone(), a.clone());
        b.ret(Some(c));
        let f = b.build();
        let add_id = a.as_inst().unwrap();
        assert_eq!(use_count(&f, add_id), 1);
        assert!(defining_inst(&f, &a).is_some());
        assert!(defining_inst(&f, &x).is_none());
        assert!(same_value(&a, &a.clone()));
        assert!(!same_value(&a, &x));
    }
}
