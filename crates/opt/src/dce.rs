//! Dead code elimination: removes side-effect-free instructions whose results
//! are never used.
//!
//! The worklist engine sweeps dead instructions incrementally — it calls
//! [`is_trivially_dead`] on pop, driven by the use counts `lpo-ir` maintains.
//! [`eliminate_dead_code`] remains the whole-function pass the reference
//! rescan pipeline runs at the end of each iteration.

use lpo_ir::function::Function;
use lpo_ir::instruction::InstId;

/// Returns `true` when removing the instruction cannot change behaviour:
/// it produces a value, has no side effects, and no placed instruction uses
/// it. O(1) thanks to the function's maintained use lists.
pub fn is_trivially_dead(func: &Function, id: InstId) -> bool {
    let inst = func.inst(id);
    inst.produces_value() && !inst.kind.has_side_effects() && func.is_unused(id)
}

/// Removes dead instructions, iterating until no more can be removed.
/// Returns `true` if anything was removed.
pub fn eliminate_dead_code(func: &mut Function) -> bool {
    let mut changed = false;
    loop {
        let dead: Vec<_> = func
            .iter_insts()
            .filter(|(id, _)| is_trivially_dead(func, *id))
            .map(|(id, _)| id)
            .collect();
        if dead.is_empty() {
            return changed;
        }
        for id in dead {
            func.erase_inst(id);
        }
        changed = true;
    }
}

/// The pre-use-list DCE, kept verbatim for
/// [`Pipeline::optimize_reference`](crate::pipeline::Pipeline::optimize_reference):
/// every "is this value unused" query rescans the whole arena, the way the
/// seed architecture answered it before `lpo-ir` maintained use lists. The
/// results are identical to [`eliminate_dead_code`]; only the cost model
/// differs (O(n²) per sweep vs O(n)), which is exactly what
/// `repro bench-opt` measures the worklist engine against.
pub fn eliminate_dead_code_reference(func: &mut Function) -> bool {
    fn is_unused_scan(func: &Function, id: InstId) -> bool {
        !func.iter_insts().any(|(_, inst)| {
            inst.kind
                .operands()
                .iter()
                .any(|op| matches!(op, lpo_ir::instruction::Value::Inst(i) if *i == id))
        })
    }
    let mut changed = false;
    loop {
        let dead: Vec<_> = func
            .iter_insts()
            .filter(|(id, inst)| {
                inst.produces_value() && !inst.kind.has_side_effects() && is_unused_scan(func, *id)
            })
            .map(|(id, _)| id)
            .collect();
        if dead.is_empty() {
            return changed;
        }
        for id in dead {
            func.erase_inst(id);
        }
        changed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    #[test]
    fn removes_unused_chains() {
        let mut f = parse_function(
            "define i32 @f(i32 %x) {\n\
             %dead1 = add i32 %x, 1\n\
             %dead2 = mul i32 %dead1, 2\n\
             %live = sub i32 %x, 3\n\
             ret i32 %live\n}",
        )
        .unwrap();
        assert!(eliminate_dead_code(&mut f));
        assert_eq!(f.instruction_count(), 1);
        assert!(f.inst_by_name("live").is_some());
        assert!(!eliminate_dead_code(&mut f));
    }

    #[test]
    fn keeps_side_effects() {
        let mut f = parse_function(
            "define void @f(ptr %p, i32 %x, i32 %y) {\n\
             store i32 %x, ptr %p, align 4\n\
             %div = udiv i32 %x, %y\n\
             ret void\n}",
        )
        .unwrap();
        // The store stays; the division may trap so it stays too.
        eliminate_dead_code(&mut f);
        assert_eq!(f.total_instruction_count(), 3);
    }

    #[test]
    fn removes_unused_loads_but_not_stores() {
        let mut f = parse_function(
            "define void @f(ptr %p) {\n\
             %v = load i32, ptr %p, align 4\n\
             store i32 7, ptr %p, align 4\n\
             ret void\n}",
        )
        .unwrap();
        assert!(eliminate_dead_code(&mut f));
        assert_eq!(f.total_instruction_count(), 2);
    }
}
