//! InstSimplify-style rules: rewrites that replace an instruction with an
//! existing value or a constant, without creating new instructions.

use crate::known_bits::KnownBitsCtx;
use crate::rewrite::{
    as_const_int, const_apint_of, const_bool_of, const_int_of, is_all_ones, is_one, is_zero,
    replace_with, same_value,
};
use lpo_ir::apint::ApInt;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, BlockId, ICmpPred, InstId, InstKind, Intrinsic};

/// `x + 0`, `x * 1`, `x & x`, `x ^ x`, shifts by zero, … — the classic
/// algebraic identities over integer binary operators.
pub fn binary_identities(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Binary { op, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    let zero = || const_int_of(&ty, 0);
    match op {
        BinOp::Add => {
            if is_zero(&rhs) {
                return replace_with(func, id, lhs);
            }
            if is_zero(&lhs) {
                return replace_with(func, id, rhs);
            }
        }
        BinOp::Sub => {
            if is_zero(&rhs) {
                return replace_with(func, id, lhs);
            }
            if same_value(&lhs, &rhs) {
                return replace_with(func, id, zero());
            }
        }
        BinOp::Mul => {
            if is_one(&rhs) {
                return replace_with(func, id, lhs);
            }
            if is_one(&lhs) {
                return replace_with(func, id, rhs);
            }
            if is_zero(&rhs) || is_zero(&lhs) {
                return replace_with(func, id, zero());
            }
        }
        BinOp::And => {
            if is_all_ones(&rhs) {
                return replace_with(func, id, lhs);
            }
            if is_all_ones(&lhs) {
                return replace_with(func, id, rhs);
            }
            if is_zero(&rhs) || is_zero(&lhs) {
                return replace_with(func, id, zero());
            }
            if same_value(&lhs, &rhs) {
                return replace_with(func, id, lhs);
            }
        }
        BinOp::Or => {
            if is_zero(&rhs) {
                return replace_with(func, id, lhs);
            }
            if is_zero(&lhs) {
                return replace_with(func, id, rhs);
            }
            if is_all_ones(&rhs) || is_all_ones(&lhs) {
                return replace_with(func, id, const_int_of(&ty, -1));
            }
            if same_value(&lhs, &rhs) {
                return replace_with(func, id, lhs);
            }
        }
        BinOp::Xor => {
            if is_zero(&rhs) {
                return replace_with(func, id, lhs);
            }
            if is_zero(&lhs) {
                return replace_with(func, id, rhs);
            }
            if same_value(&lhs, &rhs) {
                return replace_with(func, id, zero());
            }
        }
        BinOp::UDiv | BinOp::SDiv => {
            if is_one(&rhs) {
                return replace_with(func, id, lhs);
            }
        }
        BinOp::URem | BinOp::SRem => {
            if is_one(&rhs) {
                return replace_with(func, id, zero());
            }
        }
        BinOp::Shl | BinOp::LShr | BinOp::AShr => {
            if is_zero(&rhs) {
                return replace_with(func, id, lhs);
            }
            if is_zero(&lhs) {
                return replace_with(func, id, zero());
            }
        }
    }
    false
}

/// `select` simplifications that do not create instructions.
pub fn select_simplify(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let InstKind::Select { cond, on_true, on_false } = inst.kind.clone() else {
        return false;
    };
    if same_value(&on_true, &on_false) {
        return replace_with(func, id, on_true);
    }
    if let Some(c) = as_const_int(&cond) {
        if c.width() == 1 {
            let chosen = if c.is_one() { on_true } else { on_false };
            return replace_with(func, id, chosen);
        }
    }
    // select %c, true, false → %c (only for scalar i1 results).
    if inst.ty == lpo_ir::types::Type::i1() && is_one(&on_true) && is_zero(&on_false) {
        return replace_with(func, id, cond);
    }
    false
}

/// Comparison simplifications: `x == x`, comparisons against type bounds, and
/// range facts derived from known bits.
pub fn icmp_simplify(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let result_ty = inst.ty.clone();
    let InstKind::ICmp { pred, lhs, rhs } = inst.kind.clone() else {
        return false;
    };
    let answer = |func: &mut Function, v: bool| replace_with(func, id, const_bool_of(&result_ty, v));

    if same_value(&lhs, &rhs) {
        let v = matches!(
            pred,
            ICmpPred::Eq | ICmpPred::Uge | ICmpPred::Ule | ICmpPred::Sge | ICmpPred::Sle
        );
        return answer(func, v);
    }
    let operand_ty = func.value_type(&lhs);
    let Some(width) = operand_ty.scalar_type().int_width() else {
        return false;
    };
    if let Some(c) = as_const_int(&rhs) {
        // Comparisons that are tautologically true/false at the type bounds.
        match pred {
            ICmpPred::Ult if c.is_zero() => return answer(func, false),
            ICmpPred::Uge if c.is_zero() => return answer(func, true),
            ICmpPred::Ugt if c.is_all_ones() => return answer(func, false),
            ICmpPred::Ule if c.is_all_ones() => return answer(func, true),
            ICmpPred::Sgt if c == ApInt::signed_max(width) => return answer(func, false),
            ICmpPred::Sle if c == ApInt::signed_max(width) => return answer(func, true),
            ICmpPred::Slt if c == ApInt::signed_min(width) => return answer(func, false),
            ICmpPred::Sge if c == ApInt::signed_min(width) => return answer(func, true),
            _ => {}
        }
        // Known-bits ranges (scalar only).
        if !operand_ty.is_vector() {
            let kb = KnownBitsCtx::new(func).known_bits(&lhs);
            let umax = kb.umax();
            let umin = kb.umin();
            match pred {
                ICmpPred::Ult if umax < c.zext_value() => return answer(func, true),
                ICmpPred::Ult if umin >= c.zext_value() => return answer(func, false),
                ICmpPred::Ule if umax <= c.zext_value() => return answer(func, true),
                ICmpPred::Ugt if umin > c.zext_value() => return answer(func, true),
                ICmpPred::Ugt if umax <= c.zext_value() => return answer(func, false),
                ICmpPred::Uge if umin >= c.zext_value() => return answer(func, true),
                ICmpPred::Eq if umax < c.zext_value() || umin > c.zext_value() => {
                    return answer(func, false)
                }
                ICmpPred::Ne if umax < c.zext_value() || umin > c.zext_value() => {
                    return answer(func, true)
                }
                // A value with its sign bit known zero is never negative.
                ICmpPred::Slt if c.is_zero() && kb.is_non_negative() => return answer(func, false),
                ICmpPred::Sge if c.is_zero() && kb.is_non_negative() => return answer(func, true),
                _ => {}
            }
        }
    }
    false
}

/// Min/max intrinsic simplifications (`umin(x, x)`, clamps at type bounds, …).
pub fn minmax_simplify(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    let InstKind::Call { intrinsic, args, .. } = inst.kind.clone() else {
        return false;
    };
    if !intrinsic.is_min_max() || args.len() != 2 {
        return false;
    }
    let (a, b) = (args[0].clone(), args[1].clone());
    if same_value(&a, &b) {
        return replace_with(func, id, a);
    }
    let Some(width) = ty.scalar_type().int_width() else {
        return false;
    };
    let umax_const = ApInt::all_ones(width);
    let smin_const = ApInt::signed_min(width);
    let smax_const = ApInt::signed_max(width);
    for (x, c_operand) in [(&a, &b), (&b, &a)] {
        let Some(c) = as_const_int(c_operand) else { continue };
        match intrinsic {
            Intrinsic::Umin => {
                if c.is_zero() {
                    return replace_with(func, id, const_int_of(&ty, 0));
                }
                if c == umax_const {
                    return replace_with(func, id, x.clone());
                }
            }
            Intrinsic::Umax => {
                if c.is_zero() {
                    return replace_with(func, id, x.clone());
                }
                if c == umax_const {
                    return replace_with(func, id, const_apint_of(&ty, umax_const));
                }
            }
            Intrinsic::Smin => {
                if c == smin_const {
                    return replace_with(func, id, const_apint_of(&ty, smin_const));
                }
                if c == smax_const {
                    return replace_with(func, id, x.clone());
                }
            }
            Intrinsic::Smax => {
                if c == smax_const {
                    return replace_with(func, id, const_apint_of(&ty, smax_const));
                }
                if c == smin_const {
                    return replace_with(func, id, x.clone());
                }
            }
            _ => {}
        }
    }
    false
}

/// Known-bits driven simplifications for `and`/`or`.
pub fn known_bits_simplify(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let ty = inst.ty.clone();
    if ty.is_vector() {
        return false;
    }
    let InstKind::Binary { op, lhs, rhs, .. } = inst.kind.clone() else {
        return false;
    };
    let Some(c) = as_const_int(&rhs) else {
        return false;
    };
    let kb = KnownBitsCtx::new(func).known_bits(&lhs);
    match op {
        BinOp::And => {
            // Every bit that can possibly be set in lhs is kept by the mask.
            if kb.umax() & !c.zext_value() == 0 {
                return replace_with(func, id, lhs);
            }
            // The mask and the value share no bits.
            if kb.umax() & c.zext_value() == 0 {
                return replace_with(func, id, const_int_of(&ty, 0));
            }
        }
        BinOp::Or
            // Or-ing in bits that are already known set changes nothing.
            if c.zext_value() & !kb.ones == 0 => {
                return replace_with(func, id, lhs);
            }
        _ => {}
    }
    false
}

/// GEP with a zero index is the base pointer.
pub fn gep_simplify(func: &mut Function, id: InstId, _b: BlockId, _p: usize) -> bool {
    let inst = func.inst(id);
    let InstKind::Gep { base, index, .. } = inst.kind.clone() else {
        return false;
    };
    if is_zero(&index) {
        return replace_with(func, id, base);
    }
    false
}

/// All InstSimplify rules in the order the pipeline applies them.
pub fn all_rules() -> Vec<crate::rewrite::NamedRule> {
    vec![
        crate::rewrite::NamedRule { name: "binary-identities", rule: binary_identities },
        crate::rewrite::NamedRule { name: "select-simplify", rule: select_simplify },
        crate::rewrite::NamedRule { name: "icmp-simplify", rule: icmp_simplify },
        crate::rewrite::NamedRule { name: "minmax-simplify", rule: minmax_simplify },
        crate::rewrite::NamedRule { name: "known-bits-simplify", rule: known_bits_simplify },
        crate::rewrite::NamedRule { name: "gep-simplify", rule: gep_simplify },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;
    use lpo_ir::printer::print_function;

    fn apply_all(text: &str) -> String {
        let mut f = parse_function(text).unwrap();
        for _ in 0..4 {
            let ids: Vec<_> = f.iter_inst_ids().collect();
            for id in ids {
                if !f.iter_inst_ids().any(|i| i == id) {
                    continue;
                }
                for rule in all_rules() {
                    if !f.iter_inst_ids().any(|i| i == id) {
                        break;
                    }
                    let entry = f.entry();
                    (rule.rule)(&mut f, id, entry, 0);
                }
            }
        }
        print_function(&f)
    }

    #[test]
    fn add_and_mul_identities() {
        let out = apply_all("define i32 @f(i32 %x) {\n %a = add i32 %x, 0\n %b = mul i32 %a, 1\n ret i32 %b\n}");
        assert!(out.contains("ret i32 %x"));
        let out = apply_all("define i32 @f(i32 %x) {\n %a = sub i32 %x, %x\n ret i32 %a\n}");
        assert!(out.contains("ret i32 0"));
        let out = apply_all("define i32 @f(i32 %x) {\n %a = mul i32 %x, 0\n ret i32 %a\n}");
        assert!(out.contains("ret i32 0"));
    }

    #[test]
    fn bitwise_identities() {
        assert!(apply_all("define i8 @f(i8 %x) {\n %a = and i8 %x, -1\n ret i8 %a\n}").contains("ret i8 %x"));
        assert!(apply_all("define i8 @f(i8 %x) {\n %a = and i8 %x, 0\n ret i8 %a\n}").contains("ret i8 0"));
        assert!(apply_all("define i8 @f(i8 %x) {\n %a = or i8 %x, 0\n ret i8 %a\n}").contains("ret i8 %x"));
        assert!(apply_all("define i8 @f(i8 %x) {\n %a = or i8 %x, -1\n ret i8 %a\n}").contains("ret i8 -1"));
        assert!(apply_all("define i8 @f(i8 %x) {\n %a = xor i8 %x, %x\n ret i8 %a\n}").contains("ret i8 0"));
        assert!(apply_all("define i8 @f(i8 %x) {\n %a = xor i8 %x, 0\n ret i8 %a\n}").contains("ret i8 %x"));
    }

    #[test]
    fn division_and_shift_identities() {
        assert!(apply_all("define i32 @f(i32 %x) {\n %a = udiv i32 %x, 1\n ret i32 %a\n}").contains("ret i32 %x"));
        assert!(apply_all("define i32 @f(i32 %x) {\n %a = urem i32 %x, 1\n ret i32 %a\n}").contains("ret i32 0"));
        assert!(apply_all("define i32 @f(i32 %x) {\n %a = shl i32 %x, 0\n ret i32 %a\n}").contains("ret i32 %x"));
        assert!(apply_all("define i32 @f(i32 %x) {\n %a = lshr i32 0, %x\n ret i32 %a\n}").contains("ret i32 0"));
    }

    #[test]
    fn vector_identities_via_splats() {
        let out = apply_all(
            "define <4 x i32> @f(<4 x i32> %x) {\n %a = add <4 x i32> %x, zeroinitializer\n ret <4 x i32> %a\n}",
        );
        assert!(out.contains("ret <4 x i32> %x"));
        let out = apply_all(
            "define <4 x i32> @f(<4 x i32> %x) {\n %a = mul <4 x i32> %x, splat (i32 1)\n ret <4 x i32> %a\n}",
        );
        assert!(out.contains("ret <4 x i32> %x"));
    }

    #[test]
    fn select_rules() {
        assert!(apply_all("define i32 @f(i1 %c, i32 %x) {\n %s = select i1 %c, i32 %x, i32 %x\n ret i32 %s\n}")
            .contains("ret i32 %x"));
        assert!(apply_all("define i32 @f(i32 %x, i32 %y) {\n %s = select i1 true, i32 %x, i32 %y\n ret i32 %s\n}")
            .contains("ret i32 %x"));
        assert!(apply_all("define i1 @f(i1 %c) {\n %s = select i1 %c, i1 true, i1 false\n ret i1 %s\n}")
            .contains("ret i1 %c"));
    }

    #[test]
    fn icmp_rules() {
        assert!(apply_all("define i1 @f(i32 %x) {\n %c = icmp eq i32 %x, %x\n ret i1 %c\n}").contains("ret i1 true"));
        assert!(apply_all("define i1 @f(i32 %x) {\n %c = icmp ult i32 %x, 0\n ret i1 %c\n}").contains("ret i1 false"));
        assert!(apply_all("define i1 @f(i32 %x) {\n %c = icmp uge i32 %x, 0\n ret i1 %c\n}").contains("ret i1 true"));
        assert!(apply_all("define i1 @f(i8 %x) {\n %c = icmp sgt i8 %x, 127\n ret i1 %c\n}").contains("ret i1 false"));
        // Known-bits range: (x & 15) is always < 100.
        let out = apply_all(
            "define i1 @f(i32 %x) {\n %m = and i32 %x, 15\n %c = icmp ult i32 %m, 100\n ret i1 %c\n}",
        );
        assert!(out.contains("ret i1 true"));
        // zext result is never negative.
        let out = apply_all(
            "define i1 @f(i16 %x) {\n %z = zext i16 %x to i32\n %c = icmp slt i32 %z, 0\n ret i1 %c\n}",
        );
        assert!(out.contains("ret i1 false"));
    }

    #[test]
    fn minmax_rules() {
        assert!(apply_all("define i32 @f(i32 %x) {\n %m = call i32 @llvm.umin.i32(i32 %x, i32 %x)\n ret i32 %m\n}")
            .contains("ret i32 %x"));
        assert!(apply_all("define i32 @f(i32 %x) {\n %m = call i32 @llvm.umin.i32(i32 %x, i32 0)\n ret i32 %m\n}")
            .contains("ret i32 0"));
        assert!(apply_all("define i32 @f(i32 %x) {\n %m = call i32 @llvm.umax.i32(i32 %x, i32 0)\n ret i32 %m\n}")
            .contains("ret i32 %x"));
        assert!(apply_all("define i32 @f(i32 %x) {\n %m = call i32 @llvm.umin.i32(i32 %x, i32 -1)\n ret i32 %m\n}")
            .contains("ret i32 %x"));
        assert!(apply_all("define i8 @f(i8 %x) {\n %m = call i8 @llvm.smax.i8(i8 %x, i8 -128)\n ret i8 %m\n}")
            .contains("ret i8 %x"));
        assert!(apply_all("define i8 @f(i8 %x) {\n %m = call i8 @llvm.smin.i8(i8 %x, i8 127)\n ret i8 %m\n}")
            .contains("ret i8 %x"));
    }

    #[test]
    fn known_bits_and_or() {
        let out = apply_all(
            "define i32 @f(i32 %x) {\n %m = and i32 %x, 15\n %a = and i32 %m, 255\n ret i32 %a\n}",
        );
        assert!(out.contains("ret i32 %m"));
        let out = apply_all(
            "define i32 @f(i32 %x) {\n %m = and i32 %x, 240\n %a = and i32 %m, 15\n ret i32 %a\n}",
        );
        assert!(out.contains("ret i32 0"));
        let out = apply_all(
            "define i32 @f(i32 %x) {\n %m = or i32 %x, 8\n %a = or i32 %m, 8\n ret i32 %a\n}",
        );
        assert!(out.contains("ret i32 %m"));
    }

    #[test]
    fn gep_zero_index() {
        let out = apply_all(
            "define ptr @f(ptr %p) {\n %g = getelementptr i32, ptr %p, i64 0\n ret ptr %g\n}",
        );
        assert!(out.contains("ret ptr %p"));
    }

    #[test]
    fn does_not_touch_the_missed_optimizations() {
        // The Figure 1 pattern must stay untouched: none of the simplify rules
        // may fold the select with the umin — that is exactly the optimization
        // LLVM misses and the LLM is supposed to find.
        let src = "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}";
        let out = apply_all(src);
        assert!(out.contains("select"));
        assert!(out.contains("icmp slt"));
        assert!(out.contains("llvm.umin"));
    }
}
