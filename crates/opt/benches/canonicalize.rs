//! Microbenchmarks for the canonicalization hot path: the worklist-driven
//! `-O2` engine against the retained rescan-to-fixpoint reference, on the
//! workload shapes Stage 1 sees (following `crates/interp/benches/eval.rs`).
//!
//! * `worklist_straight` / `reference_straight` — a straight-line integer
//!   chain with sparse foldable redundancies, the extracted-sequence shape;
//! * `worklist_branchy` / `reference_branchy` — a multi-block diamond with
//!   per-arm redundancies, exercising the RPO sweep;
//! * `worklist_phi` / `reference_phi` — a phi-heavy counted loop, the shape
//!   where use lists must track phi and terminator operands;
//! * `worklist_fixpoint` / `reference_fixpoint` — the Figure 1 clamp, an
//!   already-canonical input (the per-candidate confirmation pass).

use criterion::{criterion_group, criterion_main, Criterion};
use lpo_ir::function::Function;
use lpo_ir::parser::parse_function;
use lpo_opt::pipeline::{OptLevel, Pipeline};

fn straight_line() -> Function {
    // 4 live multiply-accumulate steps, each followed by a foldable identity.
    let mut text = String::from("define i32 @straight(i32 %x, i32 %y) {\n");
    let mut prev = "%x".to_string();
    for i in 0..4 {
        text.push_str(&format!(" %m{i} = mul i32 {prev}, 3\n"));
        text.push_str(&format!(" %r{i} = add i32 %m{i}, 0\n"));
        text.push_str(&format!(" %a{i} = add i32 %r{i}, %y\n"));
        prev = format!("%a{i}");
    }
    text.push_str(&format!(" ret i32 {prev}\n}}"));
    parse_function(&text).unwrap()
}

fn branchy() -> Function {
    parse_function(
        "define i32 @branchy(i32 %x, i32 %y) {\n\
         entry:\n\
           %c = icmp slt i32 %x, 0\n\
           br i1 %c, label %neg, label %pos\n\
         neg:\n\
           %n1 = sub i32 0, %x\n\
           %n2 = add i32 %n1, 0\n\
           %n3 = mul i32 %n2, 4\n\
           br label %join\n\
         pos:\n\
           %p1 = mul i32 %x, 1\n\
           %p2 = shl i32 %p1, 2\n\
           br label %join\n\
         join:\n\
           %v = phi i32 [ %n3, %neg ], [ %p2, %pos ]\n\
           %w = xor i32 %v, 0\n\
           %out = add i32 %w, %y\n\
           ret i32 %out\n}",
    )
    .unwrap()
}

fn phi_heavy() -> Function {
    parse_function(
        "define i32 @phis(i32 %n) {\n\
         entry:\n  br label %header\n\
         header:\n\
           %i = phi i32 [ 0, %entry ], [ %i.next, %body ]\n\
           %acc = phi i32 [ 0, %entry ], [ %acc.next, %body ]\n\
           %aux = phi i32 [ 1, %entry ], [ %aux.next, %body ]\n\
           %cmp = icmp slt i32 %i, %n\n\
           br i1 %cmp, label %body, label %exit\n\
         body:\n\
           %t = add i32 %acc, 0\n\
           %acc.next = add i32 %t, %i\n\
           %aux.next = mul i32 %aux, 1\n\
           %i.next = add i32 %i, 1\n\
           br label %header\n\
         exit:\n  ret i32 %acc\n}",
    )
    .unwrap()
}

fn fixpoint() -> Function {
    parse_function(
        "define i8 @clamp(i32 %0) {\n\
         %2 = icmp slt i32 %0, 0\n\
         %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
         %4 = trunc nuw i32 %3 to i8\n\
         %5 = select i1 %2, i8 0, i8 %4\n\
         ret i8 %5\n}",
    )
    .unwrap()
}

fn bench_shape(c: &mut Criterion, name: &str, func: &Function) {
    let pipeline = Pipeline::new(OptLevel::O2);
    // The two engines must agree before we time them.
    let mut a = func.clone();
    let mut b = func.clone();
    pipeline.run(&mut a);
    pipeline.optimize_reference(&mut b);
    assert_eq!(
        lpo_ir::printer::print_function(&a),
        lpo_ir::printer::print_function(&b),
        "engines diverged on {name}"
    );
    c.bench_function(&format!("worklist_{name}"), |bench| {
        bench.iter(|| {
            let mut scratch = func.clone();
            pipeline.run(&mut scratch).total_hits()
        })
    });
    c.bench_function(&format!("reference_{name}"), |bench| {
        bench.iter(|| {
            let mut scratch = func.clone();
            pipeline.optimize_reference(&mut scratch).total_hits()
        })
    });
}

fn bench_straight(c: &mut Criterion) {
    bench_shape(c, "straight", &straight_line());
}

fn bench_branchy(c: &mut Criterion) {
    bench_shape(c, "branchy", &branchy());
}

fn bench_phi(c: &mut Criterion) {
    bench_shape(c, "phi", &phi_heavy());
}

fn bench_fixpoint(c: &mut Criterion) {
    bench_shape(c, "fixpoint", &fixpoint());
}

criterion_group!(benches, bench_straight, bench_branchy, bench_phi, bench_fixpoint);
criterion_main!(benches);
