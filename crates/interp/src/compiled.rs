//! The zero-allocation evaluation hot path: pre-decoded functions executed
//! over a dense, reusable register file.
//!
//! The reference evaluator ([`evaluate_reference`](crate::eval::evaluate_reference))
//! pays three per-step costs that dominate fuzz-style verification workloads:
//! it clones every executed [`Instruction`](lpo_ir::instruction::Instruction)
//! (heap traffic for call argument lists), it resolves every operand through a
//! `HashMap<InstId, EvalValue>` (SipHash per read/write), and it re-derives
//! constants, result types and GEP element sizes on every step.
//!
//! [`CompiledFunction`] does that work **once per function**:
//!
//! * operands are decoded to slots (the private `COperand`) — an argument
//!   index, a dense register number, or a constant already converted to an
//!   [`EvalValue`];
//! * per-instruction metadata (cast target scalar type, store value type,
//!   GEP element size, alloca size, vector lane counts) is resolved at
//!   compile time;
//! * block bodies become flat step lists with decoded terminators, so the
//!   inner loop is a match over plain data with no arena lookups.
//!
//! [`EvalArena`] owns the register file (a `Vec<Option<EvalValue>>` indexed
//! by `InstId`) and the phi staging buffer. It is reused across evaluations —
//! one arena per worker thread — so steady-state evaluation of scalar
//! functions performs no allocation at all.
//!
//! The compiled evaluator is **outcome-identical** to the reference
//! evaluator, including UB messages, poison/undef classification, step
//! counting and final memory state; `tests/interp_differential.rs` checks
//! this over the whole corpus plus randomly synthesized functions.

use crate::eval::{
    elementwise1_static, elementwise2_static, eval_binop, eval_cast, eval_extractelement,
    eval_fbinop, eval_fcmp, eval_gep, eval_icmp, eval_insertelement, eval_intrinsic, eval_load,
    eval_select, eval_shufflevector, eval_store, freeze, EvalOutcome, Ub, DEFAULT_STEP_LIMIT,
};
use crate::memory::Memory;
use crate::value::{EvalValue, PtrValue};
use lpo_ir::flags::{FastMathFlags, IntFlags};
use lpo_ir::function::Function;
use lpo_ir::instruction::{
    BinOp, CastOp, FBinOp, FCmpPred, ICmpPred, InstKind, Intrinsic, Value,
};
use lpo_ir::types::Type;

/// A pre-decoded operand: where the value comes from at execution time.
#[derive(Clone, Debug)]
enum COperand {
    /// The n-th function argument.
    Arg(u32),
    /// The register (instruction arena slot) holding another result.
    Reg(u32),
    /// An inline constant, already converted to its runtime value.
    Const(EvalValue),
}

/// A phi node, decoded: destination register plus `(predecessor, operand)`.
#[derive(Clone, Debug)]
struct CPhi {
    dst: u32,
    incoming: Vec<(u32, COperand)>,
}

/// One step of a block body. Phi placeholders stay in the list so the step
/// counting (and therefore step-limit UB) matches the reference evaluator
/// exactly.
#[derive(Clone, Debug)]
enum CStep {
    /// A phi occupying its step slot (the value was assigned on block entry).
    Phi,
    /// A value-producing (or store) instruction.
    Inst { dst: u32, op: COp },
    /// Return.
    Ret(Option<COperand>),
    /// Conditional or unconditional branch.
    Br { cond: Option<COperand>, then_block: u32, else_block: Option<u32> },
    /// Unreachable terminator.
    Unreachable,
}

/// A pre-decoded non-terminator operation with all per-step metadata
/// resolved at compile time.
#[derive(Clone, Debug)]
enum COp {
    Binary { op: BinOp, flags: IntFlags, lhs: COperand, rhs: COperand },
    FBinary { op: FBinOp, fmf: FastMathFlags, lhs: COperand, rhs: COperand },
    ICmp { pred: ICmpPred, lhs: COperand, rhs: COperand },
    FCmp { pred: FCmpPred, lhs: COperand, rhs: COperand },
    Select { cond: COperand, on_true: COperand, on_false: COperand },
    Cast { op: CastOp, flags: IntFlags, value: COperand, to_scalar: Type },
    Call { intrinsic: Intrinsic, args: Vec<COperand> },
    Load { ptr: COperand, ty: Type },
    Store { value: COperand, ptr: COperand, vty: Type },
    Gep { base: COperand, index: COperand, elem_size: i64, inbounds: bool, nuw: bool },
    Alloca { size: usize },
    ExtractElement { vector: COperand, index: COperand },
    InsertElement { vector: COperand, element: COperand, index: COperand, lanes: usize },
    ShuffleVector { a: COperand, b: COperand, mask: Vec<i32> },
    Freeze { value: COperand, ty: Type },
}

/// A compiled basic block: staged phis plus the flat step list.
#[derive(Clone, Debug)]
struct CBlock {
    phis: Vec<CPhi>,
    steps: Vec<CStep>,
}

/// Reusable evaluation state: the dense register file, the phi staging
/// buffer, and the register matrix used by batched sweeps. Create one per
/// worker thread and pass it to every [`CompiledFunction::evaluate`] call;
/// steady-state evaluation then allocates nothing.
#[derive(Debug, Default)]
pub struct EvalArena {
    regs: Vec<Option<EvalValue>>,
    phi_buf: Vec<(u32, EvalValue)>,
    /// Flat `num_regs × lanes` register matrix for
    /// [`CompiledFunction::evaluate_batch_with_limit`]; lane `m`'s register
    /// file is the contiguous slice `[m * num_regs .. (m + 1) * num_regs]`.
    batch_regs: Vec<Option<EvalValue>>,
    /// Flat `num_planes × lanes` value planes for the plane evaluator
    /// (see [`crate::plane`]); plane `p` occupies `[p * lanes .. (p + 1) * lanes]`.
    pub(crate) plane_vals: Vec<u64>,
    /// Per-lane state bytes parallel to `plane_vals` (bit 0 poison, bit 1 undef).
    pub(crate) plane_states: Vec<u8>,
    /// Per-lane UB codes for the plane evaluator (`0` = live).
    pub(crate) plane_ub: Vec<u8>,
}

impl EvalArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears the register file and sizes it for `num_regs` registers.
    fn reset(&mut self, num_regs: usize) {
        if self.regs.len() == num_regs {
            // Steady state: same function (or same register count) as the
            // previous evaluation — overwrite in place, no capacity checks.
            for slot in &mut self.regs {
                *slot = None;
            }
        } else {
            self.regs.clear();
            self.regs.resize(num_regs, None);
        }
        self.phi_buf.clear();
    }
}

/// A function pre-decoded for repeated evaluation.
///
/// Compile once per function, then call [`evaluate`](Self::evaluate) for each
/// input, reusing one [`EvalArena`]:
///
/// ```
/// use lpo_interp::prelude::*;
/// use lpo_ir::parser::parse_function;
///
/// let f = parse_function("define i8 @f(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}")?;
/// let compiled = CompiledFunction::compile(&f);
/// let mut arena = EvalArena::new();
/// for x in 0..=255u128 {
///     let out = compiled.evaluate(&mut arena, &[EvalValue::int(8, x)], Memory::new()).unwrap();
///     assert_eq!(out.result, Some(EvalValue::int(8, (x + 1) & 0xff)));
/// }
/// # Ok::<(), lpo_ir::parser::ParseError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CompiledFunction {
    blocks: Vec<CBlock>,
    num_regs: usize,
    num_params: usize,
    /// One block, no phis, no branches: the shape
    /// [`evaluate_batch_with_limit`](Self::evaluate_batch_with_limit) can
    /// drive lane-by-lane through a single walk of the step list.
    straightline: bool,
    /// The plane-form lowering, present iff the function is straight-line
    /// scalar-integer and memory-free (see [`crate::plane::PlanePlan`]).
    plane: Option<crate::plane::PlanePlan>,
}

impl CompiledFunction {
    /// Pre-decodes `func`: resolves constants, operand slots, types and block
    /// successor tables once, instead of on every executed step.
    pub fn compile(func: &Function) -> Self {
        let mut num_regs = func.inst_arena_len();
        // Defensive: out-of-arena InstIds (impossible via the builder/parser,
        // but InstId is a public tuple struct) still get a register slot so
        // reads report "use before defined" instead of panicking.
        for (_, inst) in func.iter_insts() {
            for op in inst.kind.operands() {
                if let Value::Inst(id) = op {
                    num_regs = num_regs.max(id.0 as usize + 1);
                }
            }
        }
        let blocks: Vec<CBlock> =
            func.blocks().iter().map(|b| compile_block(func, &b.insts)).collect();
        let straightline = blocks.len() == 1
            && blocks[0].phis.is_empty()
            && blocks[0].steps.iter().all(|s| !matches!(s, CStep::Br { .. } | CStep::Phi));
        let plane = crate::plane::PlanePlan::compile(func);
        Self { blocks, num_regs, num_params: func.params.len(), straightline, plane }
    }

    /// The plane-form lowering of this function, if it is eligible (see
    /// [`PlanePlan::compile`](crate::plane::PlanePlan::compile) for the
    /// eligibility rules). Callers sweeping many scalar-integer inputs
    /// should prefer [`PlanePlan::evaluate_lanes`](crate::plane::PlanePlan::evaluate_lanes)
    /// and fall back to [`evaluate_batch_with_limit`](Self::evaluate_batch_with_limit)
    /// when this returns `None`.
    pub fn plane(&self) -> Option<&crate::plane::PlanePlan> {
        self.plane.as_ref()
    }

    /// Evaluates on `args` with the given initial memory and
    /// [`DEFAULT_STEP_LIMIT`].
    ///
    /// # Errors
    ///
    /// Returns [`Ub`] exactly when the reference evaluator would.
    pub fn evaluate(
        &self,
        arena: &mut EvalArena,
        args: &[EvalValue],
        memory: Memory,
    ) -> Result<EvalOutcome, Ub> {
        self.evaluate_with_limit(arena, args, memory, DEFAULT_STEP_LIMIT)
    }

    /// Evaluates with an explicit step limit.
    ///
    /// # Errors
    ///
    /// Returns [`Ub`] on immediate undefined behaviour or when more than
    /// `step_limit` instructions execute.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks (same as the reference
    /// evaluator's `Function::entry`).
    pub fn evaluate_with_limit(
        &self,
        arena: &mut EvalArena,
        args: &[EvalValue],
        mut memory: Memory,
        step_limit: usize,
    ) -> Result<EvalOutcome, Ub> {
        if args.len() != self.num_params {
            return Err(Ub::new(format!(
                "called with {} arguments but the function has {} parameters",
                args.len(),
                self.num_params
            )));
        }
        assert!(!self.blocks.is_empty(), "function has no blocks");
        arena.reset(self.num_regs);
        let EvalArena { regs, phi_buf, .. } = arena;

        let mut current = 0u32;
        let mut previous: Option<u32> = None;
        let mut steps = 0usize;
        'blocks: loop {
            let block = &self.blocks[current as usize];

            // Phi nodes read their incoming values "in parallel" on block
            // entry, staged through the arena's reusable buffer.
            if !block.phis.is_empty() {
                let prev =
                    previous.ok_or_else(|| Ub::new("phi executed in the entry block"))?;
                phi_buf.clear();
                for phi in &block.phis {
                    let entry = phi
                        .incoming
                        .iter()
                        .find(|(bb, _)| *bb == prev)
                        .ok_or_else(|| Ub::new("phi has no entry for the executed predecessor"))?;
                    phi_buf.push((phi.dst, read(&entry.1, args, regs)?));
                }
                for (dst, v) in phi_buf.drain(..) {
                    regs[dst as usize] = Some(v);
                }
            }

            for step in &block.steps {
                steps += 1;
                if steps > step_limit {
                    return Err(Ub::new("execution step limit exceeded"));
                }
                match step {
                    CStep::Phi => {}
                    CStep::Ret(value) => {
                        let v = match value {
                            Some(v) => Some(read(v, args, regs)?),
                            None => None,
                        };
                        return Ok(EvalOutcome { result: v, memory, steps });
                    }
                    CStep::Br { cond, then_block, else_block } => {
                        let next = match cond {
                            None => *then_block,
                            Some(c) => {
                                let cv = read_ref(c, args, regs)?;
                                match cv.as_bool() {
                                    Some(true) => *then_block,
                                    Some(false) => else_block.expect("verified"),
                                    None => {
                                        return Err(Ub::new(
                                            "branch on a poison or undef condition",
                                        ))
                                    }
                                }
                            }
                        };
                        previous = Some(current);
                        current = next;
                        continue 'blocks;
                    }
                    CStep::Unreachable => {
                        return Err(Ub::new("executed an unreachable instruction"));
                    }
                    CStep::Inst { dst, op } => {
                        let v = eval_op(op, args, regs, &mut memory)?;
                        regs[*dst as usize] = Some(v);
                    }
                }
            }
            return Err(Ub::new("basic block fell through without a terminator"));
        }
    }

    /// How many registers one evaluation of this function uses.
    pub fn register_count(&self) -> usize {
        self.num_regs
    }

    /// Evaluates `lanes` independent inputs through **one walk of the decoded
    /// step list** — the survivor-sweep shape of staged translation
    /// validation, where one compiled candidate is checked against thousands
    /// of inputs.
    ///
    /// Each lane is `(argument values, initial memory)`; the result vector is
    /// in lane order and every entry is exactly what
    /// [`evaluate_with_limit`](Self::evaluate_with_limit) returns for that
    /// lane — same values, same UB messages, same step counts, same final
    /// memory.
    ///
    /// For straight-line functions (one block, no phis or branches — the
    /// overwhelmingly common shape of extracted peephole sequences) the lanes
    /// advance *together*, step by step: the arena holds a flat
    /// `num_regs × lanes` register matrix and the inner loop runs each decoded
    /// step across all live lanes before moving to the next step, so the step
    /// decode, the match dispatch and the per-step metadata are touched once
    /// per step instead of once per `(step, input)`. Functions with control
    /// flow fall back to a per-lane loop over the same decoded step lists
    /// (still compiled once).
    pub fn evaluate_batch_with_limit(
        &self,
        arena: &mut EvalArena,
        lanes: Vec<(&[EvalValue], Memory)>,
        step_limit: usize,
    ) -> Vec<Result<EvalOutcome, Ub>> {
        if !self.straightline {
            return lanes
                .into_iter()
                .map(|(args, memory)| self.evaluate_with_limit(arena, args, memory, step_limit))
                .collect();
        }

        let lane_count = lanes.len();
        let mut outcomes: Vec<Option<Result<EvalOutcome, Ub>>> = Vec::with_capacity(lane_count);
        let mut memories: Vec<Memory> = Vec::with_capacity(lane_count);
        let mut args_of: Vec<&[EvalValue]> = Vec::with_capacity(lane_count);
        for (args, memory) in lanes {
            outcomes.push(if args.len() == self.num_params {
                None
            } else {
                Some(Err(Ub::new(format!(
                    "called with {} arguments but the function has {} parameters",
                    args.len(),
                    self.num_params
                ))))
            });
            memories.push(memory);
            args_of.push(args);
        }

        arena.batch_regs.clear();
        arena.batch_regs.resize(self.num_regs * lane_count, None);
        let regs_matrix = &mut arena.batch_regs;

        // The step list is walked ONCE: each step is decoded and dispatched
        // a single time, and its arm loops over the live lanes — so the
        // dispatch cost and the step metadata amortize over the batch, and
        // the op match inside `eval_op` hits the same arm for every lane.
        let mut remaining = outcomes.iter().filter(|slot| slot.is_none()).count();
        let mut steps = 0usize;
        for step in &self.blocks[0].steps {
            if remaining == 0 {
                break;
            }
            steps += 1;
            if steps > step_limit {
                for slot in outcomes.iter_mut().filter(|slot| slot.is_none()) {
                    *slot = Some(Err(Ub::new("execution step limit exceeded")));
                }
                break;
            }
            match step {
                // `straightline` excludes Phi and Br steps.
                CStep::Phi | CStep::Br { .. } => unreachable!("excluded by straightline"),
                CStep::Ret(value) => {
                    // A Ret (like Unreachable) finishes every live lane: the
                    // lanes advance in lockstep, so they all reach it here.
                    for m in 0..lane_count {
                        if outcomes[m].is_some() {
                            continue;
                        }
                        let regs = &regs_matrix[m * self.num_regs..(m + 1) * self.num_regs];
                        let result = match value {
                            Some(v) => match read(v, args_of[m], regs) {
                                Ok(v) => Some(v),
                                Err(ub) => {
                                    outcomes[m] = Some(Err(ub));
                                    continue;
                                }
                            },
                            None => None,
                        };
                        let memory = std::mem::replace(&mut memories[m], Memory::new());
                        outcomes[m] = Some(Ok(EvalOutcome { result, memory, steps }));
                    }
                    break;
                }
                CStep::Unreachable => {
                    for slot in outcomes.iter_mut().filter(|slot| slot.is_none()) {
                        *slot = Some(Err(Ub::new("executed an unreachable instruction")));
                    }
                    break;
                }
                CStep::Inst { dst, op } => {
                    for m in 0..lane_count {
                        if outcomes[m].is_some() {
                            continue;
                        }
                        let regs = &regs_matrix[m * self.num_regs..(m + 1) * self.num_regs];
                        match eval_op(op, args_of[m], regs, &mut memories[m]) {
                            Ok(v) => {
                                regs_matrix[m * self.num_regs + *dst as usize] = Some(v);
                            }
                            Err(ub) => {
                                outcomes[m] = Some(Err(ub));
                                remaining -= 1;
                            }
                        }
                    }
                }
            }
        }

        outcomes
            .into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(Ub::new("basic block fell through without a terminator"))
                })
            })
            .collect()
    }
}

/// Evaluates `func` **directly**, with no [`CompiledFunction::compile`] step:
/// the register-file execution model of the compiled evaluator (dense
/// registers indexed by `InstId`, parallel phi staging, identical step
/// counting) applied to the raw [`Function`], resolving operands and
/// per-instruction metadata as it walks.
///
/// This is the *probe* evaluator of staged translation validation: a
/// candidate refuted by one of its first few inputs should cost a handful of
/// interpreter steps, not a full pre-decode of a function that is about to be
/// thrown away. Per-step operand resolution makes each evaluation somewhat
/// slower than a compiled one, so callers that sweep many inputs over the
/// same function should compile instead — the break-even point is a few
/// dozen evaluations.
///
/// # Errors
///
/// Returns [`Ub`] exactly when [`CompiledFunction::evaluate_with_limit`] (and
/// therefore the reference evaluator) would, with identical messages and
/// step counts.
///
/// # Panics
///
/// Panics if the function has no blocks, like the other evaluators.
pub fn evaluate_direct(
    func: &Function,
    arena: &mut EvalArena,
    args: &[EvalValue],
    mut memory: Memory,
    step_limit: usize,
) -> Result<EvalOutcome, Ub> {
    if args.len() != func.params.len() {
        return Err(Ub::new(format!(
            "called with {} arguments but the function has {} parameters",
            args.len(),
            func.params.len()
        )));
    }
    assert!(!func.blocks().is_empty(), "function has no blocks");
    // No defensive register-sizing scan here: out-of-arena InstIds (which
    // `CompiledFunction::compile` gives extra slots) are handled by the
    // bounds-checked register read in `read_raw`, which reports the same
    // "use before defined" UB an unwritten extra slot would.
    arena.reset(func.inst_arena_len());
    let EvalArena { regs, phi_buf, .. } = arena;

    let mut current = 0u32;
    let mut previous: Option<u32> = None;
    let mut steps = 0usize;
    'blocks: loop {
        let block = &func.blocks()[current as usize];

        // Parallel phi staging on block entry, exactly as the compiled
        // evaluator does with its pre-split phi list.
        let mut staged_phis = false;
        for &inst_id in &block.insts {
            if let InstKind::Phi { incoming } = &func.inst(inst_id).kind {
                let prev = previous.ok_or_else(|| Ub::new("phi executed in the entry block"))?;
                let entry = incoming
                    .iter()
                    .find(|(_, bb)| bb.0 == prev)
                    .ok_or_else(|| Ub::new("phi has no entry for the executed predecessor"))?;
                phi_buf.push((inst_id.0, read_raw(&entry.0, args, regs)?));
                staged_phis = true;
            }
        }
        if staged_phis {
            for (dst, v) in phi_buf.drain(..) {
                regs[dst as usize] = Some(v);
            }
        }

        for &inst_id in &block.insts {
            steps += 1;
            if steps > step_limit {
                return Err(Ub::new("execution step limit exceeded"));
            }
            let inst = func.inst(inst_id);
            match &inst.kind {
                InstKind::Phi { .. } => {}
                InstKind::Ret { value } => {
                    let v = match value {
                        Some(v) => Some(read_raw(v, args, regs)?),
                        None => None,
                    };
                    return Ok(EvalOutcome { result: v, memory, steps });
                }
                InstKind::Br { cond, then_block, else_block } => {
                    let next = match cond {
                        None => then_block.0,
                        Some(c) => {
                            let cv = read_raw(c, args, regs)?;
                            match cv.as_bool() {
                                Some(true) => then_block.0,
                                Some(false) => else_block.expect("verified").0,
                                None => {
                                    return Err(Ub::new(
                                        "branch on a poison or undef condition",
                                    ))
                                }
                            }
                        }
                    };
                    previous = Some(current);
                    current = next;
                    continue 'blocks;
                }
                InstKind::Unreachable => {
                    return Err(Ub::new("executed an unreachable instruction"));
                }
                kind => {
                    let v = eval_raw_op(func, inst, kind, args, regs, &mut memory)?;
                    regs[inst_id.0 as usize] = Some(v);
                }
            }
        }
        return Err(Ub::new("basic block fell through without a terminator"));
    }
}

/// A resolved raw operand: borrowed straight from the register file or the
/// argument list, or owned when a constant had to be converted. Keeps the
/// direct evaluator's hot arms clone-free for the common register/argument
/// operands.
enum RawVal<'v> {
    Borrowed(&'v EvalValue),
    Owned(EvalValue),
}

impl RawVal<'_> {
    #[inline(always)]
    fn get(&self) -> &EvalValue {
        match self {
            RawVal::Borrowed(v) => v,
            RawVal::Owned(v) => v,
        }
    }

    #[inline(always)]
    fn into_owned(self) -> EvalValue {
        match self {
            RawVal::Borrowed(v) => v.clone(),
            RawVal::Owned(v) => v,
        }
    }
}

/// Resolves a raw [`Value`] operand against the register file. Constants are
/// converted per read — the cost [`evaluate_direct`] pays for skipping the
/// compile step. Register reads are bounds-checked, so out-of-arena InstIds
/// report the same "use before defined" UB the compiled evaluator's extra
/// defensive slots produce.
#[inline(always)]
fn read_raw_ref<'v>(
    v: &'v Value,
    args: &'v [EvalValue],
    regs: &'v [Option<EvalValue>],
) -> Result<RawVal<'v>, Ub> {
    match v {
        Value::Arg(i) => match args.get(*i) {
            Some(v) => Ok(RawVal::Borrowed(v)),
            None => Err(Ub::new(format!("argument #{i} out of range"))),
        },
        Value::Inst(id) => match regs.get(id.0 as usize) {
            Some(Some(v)) => Ok(RawVal::Borrowed(v)),
            _ => Err(Ub::new("use of a value before it is defined")),
        },
        Value::Const(c) => Ok(RawVal::Owned(EvalValue::from_constant(c))),
    }
}

/// [`read_raw_ref`] for the places that need ownership (phi staging,
/// returns, intrinsic argument buffers, inserted elements).
#[inline(always)]
fn read_raw(
    v: &Value,
    args: &[EvalValue],
    regs: &[Option<EvalValue>],
) -> Result<EvalValue, Ub> {
    Ok(read_raw_ref(v, args, regs)?.into_owned())
}

/// Executes one non-terminator instruction straight from its [`InstKind`],
/// resolving the metadata [`compile_op`] would have pre-computed.
fn eval_raw_op(
    func: &Function,
    inst: &lpo_ir::instruction::Instruction,
    kind: &InstKind,
    args: &[EvalValue],
    regs: &[Option<EvalValue>],
    memory: &mut Memory,
) -> Result<EvalValue, Ub> {
    match kind {
        InstKind::Binary { op, lhs, rhs, flags } => {
            let a = read_raw_ref(lhs, args, regs)?;
            let b = read_raw_ref(rhs, args, regs)?;
            elementwise2_static(a.get(), b.get(), |x, y| eval_binop(*op, x, y, flags))
        }
        InstKind::FBinary { op, lhs, rhs, fmf } => {
            let a = read_raw_ref(lhs, args, regs)?;
            let b = read_raw_ref(rhs, args, regs)?;
            elementwise2_static(a.get(), b.get(), |x, y| eval_fbinop(*op, fmf, x, y))
        }
        InstKind::ICmp { pred, lhs, rhs } => {
            let a = read_raw_ref(lhs, args, regs)?;
            let b = read_raw_ref(rhs, args, regs)?;
            elementwise2_static(a.get(), b.get(), |x, y| eval_icmp(*pred, x, y))
        }
        InstKind::FCmp { pred, lhs, rhs } => {
            let a = read_raw_ref(lhs, args, regs)?;
            let b = read_raw_ref(rhs, args, regs)?;
            elementwise2_static(a.get(), b.get(), |x, y| match (x.as_float(), y.as_float()) {
                (Some(xa), Some(ya)) => Ok(EvalValue::bool(eval_fcmp(*pred, xa, ya))),
                _ => Ok(EvalValue::Poison),
            })
        }
        InstKind::Select { cond, on_true, on_false } => {
            let c = read_raw_ref(cond, args, regs)?;
            let t = read_raw_ref(on_true, args, regs)?;
            let f = read_raw_ref(on_false, args, regs)?;
            eval_select(c.get(), t.get(), f.get())
        }
        InstKind::Cast { op, value, flags } => {
            let v = read_raw_ref(value, args, regs)?;
            let to_scalar = inst.ty.scalar_type();
            elementwise1_static(v.get(), |x| eval_cast(*op, x, to_scalar, flags))
        }
        InstKind::Call { intrinsic, args: call_args, .. } => {
            if call_args.len() <= 3 {
                let mut vals: [EvalValue; 3] =
                    [EvalValue::Undef, EvalValue::Undef, EvalValue::Undef];
                for (slot, a) in vals.iter_mut().zip(call_args) {
                    *slot = read_raw(a, args, regs)?;
                }
                eval_intrinsic(*intrinsic, &vals[..call_args.len()])
            } else {
                let vals: Vec<EvalValue> = call_args
                    .iter()
                    .map(|a| read_raw(a, args, regs))
                    .collect::<Result<_, _>>()?;
                eval_intrinsic(*intrinsic, &vals)
            }
        }
        InstKind::Load { ptr, .. } => {
            let p = read_raw_ref(ptr, args, regs)?;
            eval_load(p.get(), &inst.ty, memory)
        }
        InstKind::Store { value, ptr, .. } => {
            let v = read_raw_ref(value, args, regs)?;
            let p = read_raw_ref(ptr, args, regs)?;
            eval_store(v.get(), p.get(), &operand_type(func, value), memory)
        }
        InstKind::Gep { elem_ty, base, index, inbounds, nuw } => {
            let b = read_raw_ref(base, args, regs)?;
            let i = read_raw_ref(index, args, regs)?;
            eval_gep(b.get(), i.get(), elem_ty.size_in_bytes() as i64, *inbounds, *nuw, memory)
        }
        InstKind::Alloca { ty } => {
            let id = memory.allocate_zeroed(ty.size_in_bytes() as usize);
            Ok(EvalValue::Ptr(PtrValue { alloc: id, offset: 0 }))
        }
        InstKind::ExtractElement { vector, index } => {
            let v = read_raw_ref(vector, args, regs)?;
            let i = read_raw_ref(index, args, regs)?;
            eval_extractelement(v.get(), i.get())
        }
        InstKind::InsertElement { vector, element, index } => {
            let v = read_raw_ref(vector, args, regs)?;
            let e = read_raw(element, args, regs)?;
            let i = read_raw_ref(index, args, regs)?;
            eval_insertelement(v.get(), e, i.get(), inst.ty.lanes().unwrap_or(1) as usize)
        }
        InstKind::ShuffleVector { a, b, mask } => {
            let av = read_raw_ref(a, args, regs)?;
            let bv = read_raw_ref(b, args, regs)?;
            eval_shufflevector(av.get(), bv.get(), mask)
        }
        InstKind::Freeze { value } => {
            let v = read_raw_ref(value, args, regs)?;
            Ok(freeze(v.get(), &inst.ty))
        }
        InstKind::Phi { .. } | InstKind::Ret { .. } | InstKind::Br { .. } | InstKind::Unreachable => {
            unreachable!("terminators and phis handled by evaluate_direct")
        }
    }
}

/// Reads an operand value by reference — the hot path hands borrowed values
/// straight to the scalar kernels, so no 48-byte `EvalValue` is copied per
/// operand.
#[inline(always)]
fn read_ref<'v>(
    op: &'v COperand,
    args: &'v [EvalValue],
    regs: &'v [Option<EvalValue>],
) -> Result<&'v EvalValue, Ub> {
    match op {
        COperand::Arg(i) => match args.get(*i as usize) {
            Some(v) => Ok(v),
            None => Err(Ub::new(format!("argument #{i} out of range"))),
        },
        COperand::Reg(r) => match &regs[*r as usize] {
            Some(v) => Ok(v),
            None => Err(Ub::new("use of a value before it is defined")),
        },
        COperand::Const(v) => Ok(v),
    }
}

/// Reads an operand value by clone, for the few places that need ownership
/// (phi staging, returns, intrinsic argument buffers).
#[inline(always)]
fn read(
    op: &COperand,
    args: &[EvalValue],
    regs: &[Option<EvalValue>],
) -> Result<EvalValue, Ub> {
    read_ref(op, args, regs).cloned()
}

#[inline(always)]
fn eval_op(
    op: &COp,
    args: &[EvalValue],
    regs: &[Option<EvalValue>],
    memory: &mut Memory,
) -> Result<EvalValue, Ub> {
    match op {
        COp::Binary { op, flags, lhs, rhs } => {
            let a = read_ref(lhs, args, regs)?;
            let b = read_ref(rhs, args, regs)?;
            elementwise2_static(a, b, |x, y| eval_binop(*op, x, y, flags))
        }
        COp::FBinary { op, fmf, lhs, rhs } => {
            let a = read_ref(lhs, args, regs)?;
            let b = read_ref(rhs, args, regs)?;
            elementwise2_static(a, b, |x, y| eval_fbinop(*op, fmf, x, y))
        }
        COp::ICmp { pred, lhs, rhs } => {
            let a = read_ref(lhs, args, regs)?;
            let b = read_ref(rhs, args, regs)?;
            elementwise2_static(a, b, |x, y| eval_icmp(*pred, x, y))
        }
        COp::FCmp { pred, lhs, rhs } => {
            let a = read_ref(lhs, args, regs)?;
            let b = read_ref(rhs, args, regs)?;
            elementwise2_static(a, b, |x, y| match (x.as_float(), y.as_float()) {
                (Some(xa), Some(ya)) => Ok(EvalValue::bool(eval_fcmp(*pred, xa, ya))),
                _ => Ok(EvalValue::Poison),
            })
        }
        COp::Select { cond, on_true, on_false } => {
            let c = read_ref(cond, args, regs)?;
            let t = read_ref(on_true, args, regs)?;
            let f = read_ref(on_false, args, regs)?;
            eval_select(c, t, f)
        }
        COp::Cast { op, flags, value, to_scalar } => {
            let v = read_ref(value, args, regs)?;
            elementwise1_static(v, |x| eval_cast(*op, x, to_scalar, flags))
        }
        COp::Call { intrinsic, args: call_args } => {
            // Intrinsic arity is at most 3; a fixed buffer keeps the hot path
            // allocation-free.
            if call_args.len() <= 3 {
                let mut vals: [EvalValue; 3] =
                    [EvalValue::Undef, EvalValue::Undef, EvalValue::Undef];
                for (slot, a) in vals.iter_mut().zip(call_args) {
                    *slot = read(a, args, regs)?;
                }
                eval_intrinsic(*intrinsic, &vals[..call_args.len()])
            } else {
                let vals: Vec<EvalValue> =
                    call_args.iter().map(|a| read(a, args, regs)).collect::<Result<_, _>>()?;
                eval_intrinsic(*intrinsic, &vals)
            }
        }
        COp::Load { ptr, ty } => {
            let p = read_ref(ptr, args, regs)?;
            eval_load(p, ty, memory)
        }
        COp::Store { value, ptr, vty } => {
            let v = read_ref(value, args, regs)?;
            let p = read_ref(ptr, args, regs)?;
            eval_store(v, p, vty, memory)
        }
        COp::Gep { base, index, elem_size, inbounds, nuw } => {
            let b = read_ref(base, args, regs)?;
            let i = read_ref(index, args, regs)?;
            eval_gep(b, i, *elem_size, *inbounds, *nuw, memory)
        }
        COp::Alloca { size } => {
            let id = memory.allocate_zeroed(*size);
            Ok(EvalValue::Ptr(PtrValue { alloc: id, offset: 0 }))
        }
        COp::ExtractElement { vector, index } => {
            let v = read_ref(vector, args, regs)?;
            let i = read_ref(index, args, regs)?;
            eval_extractelement(v, i)
        }
        COp::InsertElement { vector, element, index, lanes: lanes_count } => {
            let v = read_ref(vector, args, regs)?;
            let e = read(element, args, regs)?;
            let i = read_ref(index, args, regs)?;
            eval_insertelement(v, e, i, *lanes_count)
        }
        COp::ShuffleVector { a, b, mask } => {
            let av = read_ref(a, args, regs)?;
            let bv = read_ref(b, args, regs)?;
            eval_shufflevector(av, bv, mask)
        }
        COp::Freeze { value, ty } => {
            let v = read_ref(value, args, regs)?;
            Ok(freeze(v, ty))
        }
    }
}

fn compile_operand(v: &Value) -> COperand {
    match v {
        Value::Arg(i) => COperand::Arg(*i as u32),
        Value::Inst(id) => COperand::Reg(id.0),
        Value::Const(c) => COperand::Const(EvalValue::from_constant(c)),
    }
}

/// The result type of an operand, without panicking on malformed references
/// (a runtime operand read reports those as UB before the type is used).
fn operand_type(func: &Function, v: &Value) -> Type {
    match v {
        Value::Arg(i) => func.params.get(*i).map(|p| p.ty.clone()).unwrap_or(Type::Void),
        Value::Inst(id) => {
            if (id.0 as usize) < func.inst_arena_len() {
                func.inst(*id).ty.clone()
            } else {
                Type::Void
            }
        }
        Value::Const(c) => c.ty(),
    }
}

fn compile_block(func: &Function, insts: &[lpo_ir::instruction::InstId]) -> CBlock {
    let mut phis = Vec::new();
    let mut steps = Vec::with_capacity(insts.len());
    for &inst_id in insts {
        let inst = func.inst(inst_id);
        let step = match &inst.kind {
            InstKind::Phi { incoming } => {
                phis.push(CPhi {
                    dst: inst_id.0,
                    incoming: incoming
                        .iter()
                        .map(|(v, bb)| (bb.0, compile_operand(v)))
                        .collect(),
                });
                CStep::Phi
            }
            InstKind::Ret { value } => CStep::Ret(value.as_ref().map(compile_operand)),
            InstKind::Br { cond, then_block, else_block } => CStep::Br {
                cond: cond.as_ref().map(compile_operand),
                then_block: then_block.0,
                else_block: else_block.map(|b| b.0),
            },
            InstKind::Unreachable => CStep::Unreachable,
            other => CStep::Inst { dst: inst_id.0, op: compile_op(func, inst, other) },
        };
        steps.push(step);
    }
    CBlock { phis, steps }
}

fn compile_op(func: &Function, inst: &lpo_ir::instruction::Instruction, kind: &InstKind) -> COp {
    match kind {
        InstKind::Binary { op, lhs, rhs, flags } => COp::Binary {
            op: *op,
            flags: *flags,
            lhs: compile_operand(lhs),
            rhs: compile_operand(rhs),
        },
        InstKind::FBinary { op, lhs, rhs, fmf } => COp::FBinary {
            op: *op,
            fmf: *fmf,
            lhs: compile_operand(lhs),
            rhs: compile_operand(rhs),
        },
        InstKind::ICmp { pred, lhs, rhs } => {
            COp::ICmp { pred: *pred, lhs: compile_operand(lhs), rhs: compile_operand(rhs) }
        }
        InstKind::FCmp { pred, lhs, rhs } => {
            COp::FCmp { pred: *pred, lhs: compile_operand(lhs), rhs: compile_operand(rhs) }
        }
        InstKind::Select { cond, on_true, on_false } => COp::Select {
            cond: compile_operand(cond),
            on_true: compile_operand(on_true),
            on_false: compile_operand(on_false),
        },
        InstKind::Cast { op, value, flags } => COp::Cast {
            op: *op,
            flags: *flags,
            value: compile_operand(value),
            to_scalar: inst.ty.scalar_type().clone(),
        },
        InstKind::Call { intrinsic, args, .. } => COp::Call {
            intrinsic: *intrinsic,
            args: args.iter().map(compile_operand).collect(),
        },
        InstKind::Load { ptr, .. } => {
            COp::Load { ptr: compile_operand(ptr), ty: inst.ty.clone() }
        }
        InstKind::Store { value, ptr, .. } => COp::Store {
            value: compile_operand(value),
            ptr: compile_operand(ptr),
            vty: operand_type(func, value),
        },
        InstKind::Gep { elem_ty, base, index, inbounds, nuw } => COp::Gep {
            base: compile_operand(base),
            index: compile_operand(index),
            elem_size: elem_ty.size_in_bytes() as i64,
            inbounds: *inbounds,
            nuw: *nuw,
        },
        InstKind::Alloca { ty } => COp::Alloca { size: ty.size_in_bytes() as usize },
        InstKind::ExtractElement { vector, index } => COp::ExtractElement {
            vector: compile_operand(vector),
            index: compile_operand(index),
        },
        InstKind::InsertElement { vector, element, index } => COp::InsertElement {
            vector: compile_operand(vector),
            element: compile_operand(element),
            index: compile_operand(index),
            lanes: inst.ty.lanes().unwrap_or(1) as usize,
        },
        InstKind::ShuffleVector { a, b, mask } => COp::ShuffleVector {
            a: compile_operand(a),
            b: compile_operand(b),
            mask: mask.clone(),
        },
        InstKind::Freeze { value } => {
            COp::Freeze { value: compile_operand(value), ty: inst.ty.clone() }
        }
        InstKind::Phi { .. } | InstKind::Ret { .. } | InstKind::Br { .. } | InstKind::Unreachable => {
            unreachable!("terminators and phis handled by compile_block")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{evaluate_reference, DEFAULT_STEP_LIMIT};
    use lpo_ir::parser::parse_function;

    fn both(
        text: &str,
        args: &[EvalValue],
        memory: Memory,
    ) -> (Result<EvalOutcome, Ub>, Result<EvalOutcome, Ub>) {
        let f = parse_function(text).unwrap();
        let compiled = CompiledFunction::compile(&f);
        let mut arena = EvalArena::new();
        let fast = compiled.evaluate_with_limit(&mut arena, args, memory.clone(), DEFAULT_STEP_LIMIT);
        let slow = evaluate_reference(&f, args, memory, DEFAULT_STEP_LIMIT);
        (fast, slow)
    }

    #[test]
    fn matches_reference_on_straightline_code() {
        let src = "define i8 @src(i32 %0) {\n\
            %2 = icmp slt i32 %0, 0\n\
            %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
            %4 = trunc nuw i32 %3 to i8\n\
            %5 = select i1 %2, i8 0, i8 %4\n\
            ret i8 %5\n}";
        for x in [-5i128, 0, 42, 255, 300, i32::MAX as i128, i32::MIN as i128] {
            let (fast, slow) = both(src, &[EvalValue::int_signed(32, x)], Memory::new());
            assert_eq!(fast, slow, "diverged at {x}");
        }
    }

    #[test]
    fn matches_reference_on_loops_and_step_limits() {
        let f = "define i32 @sum(i32 %n) {\n\
            entry:\n  br label %header\n\
            header:\n\
              %i = phi i32 [ 0, %entry ], [ %i.next, %body ]\n\
              %acc = phi i32 [ 0, %entry ], [ %acc.next, %body ]\n\
              %cmp = icmp slt i32 %i, %n\n\
              br i1 %cmp, label %body, label %exit\n\
            body:\n\
              %acc.next = add i32 %acc, %i\n\
              %i.next = add i32 %i, 1\n\
              br label %header\n\
            exit:\n  ret i32 %acc\n}";
        let parsed = parse_function(f).unwrap();
        let compiled = CompiledFunction::compile(&parsed);
        let mut arena = EvalArena::new();
        for limit in [10, 100, DEFAULT_STEP_LIMIT] {
            for n in [0u128, 5, 50] {
                let args = [EvalValue::int(32, n)];
                let fast = compiled.evaluate_with_limit(&mut arena, &args, Memory::new(), limit);
                let slow = evaluate_reference(&parsed, &args, Memory::new(), limit);
                assert_eq!(fast, slow, "diverged at n={n} limit={limit}");
            }
        }
    }

    #[test]
    fn matches_reference_on_memory_and_ub() {
        let g = "define void @g(ptr %p) {\n\
            %q = getelementptr i32, ptr %p, i64 100\n\
            store i32 1, ptr %q, align 4\n\
            ret void\n}";
        let mut mem = Memory::new();
        let alloc = mem.allocate_zeroed(64);
        let args = [EvalValue::Ptr(PtrValue { alloc, offset: 0 })];
        let (fast, slow) = both(g, &args, mem);
        assert_eq!(fast, slow);
        assert!(fast.is_err());

        let store = "define i32 @f(ptr %p) {\n\
            store i32 77, ptr %p, align 4\n\
            %v = load i32, ptr %p, align 4\n\
            ret i32 %v\n}";
        let mut mem = Memory::new();
        let alloc = mem.allocate_zeroed(64);
        let args = [EvalValue::Ptr(PtrValue { alloc, offset: 0 })];
        let (fast, slow) = both(store, &args, mem);
        assert_eq!(fast, slow);
        let out = fast.unwrap();
        assert_eq!(out.result, Some(EvalValue::int(32, 77)));
        // Memory (and the steps count) must match byte-for-byte.
        assert_eq!(out.steps, 3);
    }

    #[test]
    fn arena_reuse_is_clean_across_evaluations() {
        let a = parse_function("define i32 @a(i32 %x) {\n %r = add i32 %x, 1\n ret i32 %r\n}").unwrap();
        let b = parse_function(
            "define i32 @b(i32 %x) {\n %p = mul i32 %x, 3\n %q = add i32 %p, %x\n ret i32 %q\n}",
        )
        .unwrap();
        let ca = CompiledFunction::compile(&a);
        let cb = CompiledFunction::compile(&b);
        let mut arena = EvalArena::new();
        for i in 0..100u128 {
            let ra = ca.evaluate(&mut arena, &[EvalValue::int(32, i)], Memory::new()).unwrap();
            assert_eq!(ra.result, Some(EvalValue::int(32, (i + 1) & 0xffff_ffff)));
            let rb = cb.evaluate(&mut arena, &[EvalValue::int(32, i)], Memory::new()).unwrap();
            assert_eq!(rb.result, Some(EvalValue::int(32, (i * 4) & 0xffff_ffff)));
        }
    }

    /// Shapes covering every evaluator feature: straight-line int/intrinsic
    /// code, loops + phis, memory traffic, vectors, UB, and arity errors.
    const SHAPES: [&str; 4] = [
        "define i8 @clamp(i8 %0) {\n\
         %2 = icmp slt i8 %0, 0\n\
         %3 = call i8 @llvm.umin.i8(i8 %0, i8 63)\n\
         %4 = select i1 %2, i8 0, i8 %3\n\
         ret i8 %4\n}",
        "define i32 @sum(i32 %n) {\n\
         entry:\n  br label %header\n\
         header:\n\
           %i = phi i32 [ 0, %entry ], [ %i.next, %body ]\n\
           %acc = phi i32 [ 0, %entry ], [ %acc.next, %body ]\n\
           %cmp = icmp slt i32 %i, %n\n\
           br i1 %cmp, label %body, label %exit\n\
         body:\n\
           %acc.next = add i32 %acc, %i\n\
           %i.next = add i32 %i, 1\n\
           br label %header\n\
         exit:\n  ret i32 %acc\n}",
        "define i32 @mem(ptr %p, i32 %x) {\n\
         %q = getelementptr i32, ptr %p, i64 1\n\
         store i32 %x, ptr %q, align 4\n\
         %v = load i32, ptr %q, align 4\n\
         %d = udiv i32 %v, %x\n\
         ret i32 %d\n}",
        "define <4 x i8> @vec(<4 x i8> %x) {\n\
         %s = shl <4 x i8> %x, splat (i8 1)\n\
         %f = freeze <4 x i8> %s\n\
         ret <4 x i8> %f\n}",
    ];

    fn shape_inputs(text: &str) -> Vec<(Vec<EvalValue>, Memory)> {
        let mut inputs = Vec::new();
        match text {
            t if t.contains("@clamp") => {
                for x in [0u128, 1, 5, 63, 64, 127, 128, 200, 255] {
                    inputs.push((vec![EvalValue::int(8, x)], Memory::new()));
                }
            }
            t if t.contains("@sum") => {
                for n in [0i128, 1, 7, 50, -3] {
                    inputs.push((vec![EvalValue::int_signed(32, n)], Memory::new()));
                }
            }
            t if t.contains("@mem") => {
                for x in [0u128, 1, 77] {
                    let mut mem = Memory::new();
                    let alloc = mem.allocate_zeroed(64);
                    inputs.push((
                        vec![EvalValue::Ptr(PtrValue { alloc, offset: 0 }), EvalValue::int(32, x)],
                        mem,
                    ));
                }
            }
            _ => {
                inputs.push((
                    vec![EvalValue::Vector(vec![
                        EvalValue::int(8, 1),
                        EvalValue::int(8, 200),
                        EvalValue::Poison,
                        EvalValue::Undef,
                    ])],
                    Memory::new(),
                ));
            }
        }
        inputs
    }

    #[test]
    fn direct_evaluator_matches_compiled_everywhere() {
        let mut arena = EvalArena::new();
        for text in SHAPES {
            let func = parse_function(text).unwrap();
            let compiled = CompiledFunction::compile(&func);
            for limit in [6, DEFAULT_STEP_LIMIT] {
                for (args, memory) in shape_inputs(text) {
                    let fast =
                        compiled.evaluate_with_limit(&mut arena, &args, memory.clone(), limit);
                    let direct = evaluate_direct(&func, &mut arena, &args, memory, limit);
                    assert_eq!(fast, direct, "diverged on {text} (limit {limit})");
                }
            }
            // Arity error, same message.
            let fast = compiled.evaluate_with_limit(&mut arena, &[], Memory::new(), 100);
            let direct = evaluate_direct(&func, &mut arena, &[], Memory::new(), 100);
            assert_eq!(fast, direct);
            assert!(direct.is_err());
        }
    }

    #[test]
    fn batched_sweep_matches_serial_everywhere() {
        let mut arena = EvalArena::new();
        for text in SHAPES {
            let func = parse_function(text).unwrap();
            let compiled = CompiledFunction::compile(&func);
            for limit in [4, DEFAULT_STEP_LIMIT] {
                let inputs = shape_inputs(text);
                let serial: Vec<_> = inputs
                    .iter()
                    .map(|(args, memory)| {
                        compiled.evaluate_with_limit(&mut arena, args, memory.clone(), limit)
                    })
                    .collect();
                let lanes: Vec<(&[EvalValue], Memory)> =
                    inputs.iter().map(|(args, memory)| (args.as_slice(), memory.clone())).collect();
                let batched = compiled.evaluate_batch_with_limit(&mut arena, lanes, limit);
                assert_eq!(serial, batched, "batch diverged on {text} (limit {limit})");
            }
        }
        // Empty batch and wrong-arity lanes.
        let func = parse_function("define i32 @f(i32 %x) {\n ret i32 %x\n}").unwrap();
        let compiled = CompiledFunction::compile(&func);
        assert!(compiled
            .evaluate_batch_with_limit(&mut arena, Vec::new(), DEFAULT_STEP_LIMIT)
            .is_empty());
        let bad: Vec<(&[EvalValue], Memory)> = vec![(&[], Memory::new())];
        let out = compiled.evaluate_batch_with_limit(&mut arena, bad, DEFAULT_STEP_LIMIT);
        assert!(out[0].is_err());
    }

    #[test]
    fn batched_sweep_isolates_lanes() {
        // Memory and registers must not leak between lanes: every lane
        // stores a different value through the same code.
        let func = parse_function(
            "define i32 @f(ptr %p, i32 %x) {\n\
             store i32 %x, ptr %p, align 4\n\
             %v = load i32, ptr %p, align 4\n\
             ret i32 %v\n}",
        )
        .unwrap();
        let compiled = CompiledFunction::compile(&func);
        let mut arena = EvalArena::new();
        let args: Vec<Vec<EvalValue>> = (0..10u128)
            .map(|i| {
                let mut mem = Memory::new();
                let alloc = mem.allocate_zeroed(16);
                let _ = mem;
                vec![EvalValue::Ptr(PtrValue { alloc, offset: 0 }), EvalValue::int(32, i * 11)]
            })
            .collect();
        let lanes: Vec<(&[EvalValue], Memory)> = args
            .iter()
            .map(|a| {
                let mut mem = Memory::new();
                mem.allocate_zeroed(16);
                (a.as_slice(), mem)
            })
            .collect();
        let out = compiled.evaluate_batch_with_limit(&mut arena, lanes, DEFAULT_STEP_LIMIT);
        for (i, lane) in out.into_iter().enumerate() {
            let outcome = lane.unwrap();
            assert_eq!(outcome.result, Some(EvalValue::int(32, (i as u128) * 11)));
            assert_eq!(outcome.steps, 3);
            // Each lane's final memory holds its own stored value.
            let bytes = outcome.memory.allocation(0).unwrap().bytes().to_vec();
            assert_eq!(bytes[0] as u128, (i as u128 * 11) & 0xff);
        }
    }

    #[test]
    fn wrong_arity_matches_reference() {
        let (fast, slow) = both("define i32 @f(i32 %x) {\n ret i32 %x\n}", &[], Memory::new());
        assert_eq!(fast, slow);
        assert!(fast.is_err());
    }

    #[test]
    fn vector_paths_match_reference() {
        let f = "define <4 x i8> @f(<4 x i32> %x) {\n\
            %c = icmp slt <4 x i32> %x, zeroinitializer\n\
            %m = call <4 x i32> @llvm.umin.v4i32(<4 x i32> %x, <4 x i32> splat (i32 255))\n\
            %t = trunc <4 x i32> %m to <4 x i8>\n\
            %s = select <4 x i1> %c, <4 x i8> zeroinitializer, <4 x i8> %t\n\
            ret <4 x i8> %s\n}";
        let input = EvalValue::Vector(vec![
            EvalValue::int_signed(32, -1),
            EvalValue::int(32, 100),
            EvalValue::int(32, 300),
            EvalValue::int(32, 0),
        ]);
        let (fast, slow) = both(f, &[input], Memory::new());
        assert_eq!(fast, slow);
    }
}
