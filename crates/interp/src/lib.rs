//! # lpo-interp
//!
//! Concrete evaluation of `lpo-ir` functions with LLVM's poison/undef
//! semantics and a bounds-checked byte memory. This is the semantic ground
//! truth the translation validator (`lpo-tv`) compares source and target
//! functions against.
//!
//! ```
//! use lpo_interp::prelude::*;
//! use lpo_ir::parser::parse_function;
//!
//! let f = parse_function("define i8 @f(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}")?;
//! let out = evaluate_default(&f, &[EvalValue::int(8, 41)], Memory::new()).unwrap();
//! assert_eq!(out.result, Some(EvalValue::int(8, 42)));
//! # Ok::<(), lpo_ir::parser::ParseError>(())
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

pub mod compiled;
pub mod eval;
pub mod fuzz;
pub mod memory;
pub mod plane;
pub mod value;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::compiled::{evaluate_direct, CompiledFunction, EvalArena};
    pub use crate::plane::{PlanePlan, PlaneResult};
    pub use crate::eval::{
        evaluate, evaluate_default, evaluate_reference, fold_instruction, to_constant,
        EvalOutcome, Ub, DEFAULT_STEP_LIMIT,
    };
    pub use crate::memory::{Allocation, MemError, Memory, DEFAULT_ALLOC_SIZE};
    pub use crate::value::{EvalValue, PtrValue};
}
