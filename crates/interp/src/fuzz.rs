//! Seeded random generation of straight-line scalar-integer functions.
//!
//! The generator produces *valid* functions by construction — every operand
//! has the width its instruction expects, casts strictly narrow or widen,
//! intrinsic poison flags are literal `i1` constants — while deliberately
//! steering into the semantic corners that make new evaluators wrong:
//!
//! * widths hit the boundaries (1, 7, 8, 16, 31, 32, 33, 63, 64) as well as
//!   arbitrary values in `1..=64`;
//! * constants are biased toward 0, 1, all-ones, the sign bit, the signed
//!   maximum and shift amounts at/over the width, so division and shift
//!   operands trap and flag checks trip;
//! * `nuw`/`nsw`/`exact`/`disjoint`/`nneg` flags are sampled from each
//!   opcode's legal set, and `undef`/`poison` constants appear inline.
//!
//! Everything is derived from the single `u64` seed via the vendored
//! `rand`, so any failing case is replayable from its seed alone. The
//! differential fuzz suite (`tests/plane_differential.rs`) sweeps thousands
//! of these against all three evaluators; the generator is `pub` so future
//! fuzz targets (optimizer differential runs, canonicalizer round-trips)
//! can reuse it.

use lpo_ir::apint::ApInt;
use lpo_ir::builder::FunctionBuilder;
use lpo_ir::constant::Constant;
use lpo_ir::flags::IntFlags;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, CastOp, ICmpPred, InstId, InstKind, Instruction, Intrinsic, Value};
use lpo_ir::types::Type;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Shape knobs for [`random_function_with`].
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Parameters are drawn from `1..=max_params`.
    pub max_params: usize,
    /// Instructions (before the `ret`) are drawn from `1..=max_insts`.
    pub max_insts: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self { max_params: 3, max_insts: 10 }
    }
}

/// Widths the generator favours: the bit-boundary cases where sign
/// extension, masking and overflow detection are easiest to get wrong.
const BOUNDARY_WIDTHS: [u32; 9] = [1, 7, 8, 16, 31, 32, 33, 63, 64];

/// The integer intrinsics the generator emits (the scalar-int subset).
const INT_INTRINSICS: [Intrinsic; 16] = [
    Intrinsic::Umin,
    Intrinsic::Umax,
    Intrinsic::Smin,
    Intrinsic::Smax,
    Intrinsic::UaddSat,
    Intrinsic::SaddSat,
    Intrinsic::UsubSat,
    Intrinsic::SsubSat,
    Intrinsic::Abs,
    Intrinsic::Ctpop,
    Intrinsic::Ctlz,
    Intrinsic::Cttz,
    Intrinsic::Bswap,
    Intrinsic::Bitreverse,
    Intrinsic::Fshl,
    Intrinsic::Fshr,
];

/// Generates a random straight-line scalar-integer function from a seed,
/// with the default shape ([`FuzzConfig::default`]).
pub fn random_function(seed: u64) -> Function {
    random_function_with(seed, &FuzzConfig::default())
}

/// Generates a random straight-line scalar-integer function from a seed.
///
/// The result always has a single block ending in `ret` of an `Int(w <= 64)`
/// and is deterministic in `(seed, config)`.
pub fn random_function_with(seed: u64, config: &FuzzConfig) -> Function {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Generator { rng: &mut rng, pool: HashMap::new() };
    g.build(seed, config)
}

struct Generator<'r> {
    rng: &'r mut StdRng,
    /// Available SSA values (params + instruction results) by width.
    pool: HashMap<u32, Vec<Value>>,
}

impl Generator<'_> {
    fn build(&mut self, seed: u64, config: &FuzzConfig) -> Function {
        let ret_w = self.width();
        let mut b = FunctionBuilder::new(format!("fuzz_{seed:016x}"), Type::Int(ret_w));

        let nparams = self.rng.gen_range(1..config.max_params.max(1) + 1);
        for i in 0..nparams {
            // Bias one param toward the return width so narrow functions
            // still exercise dataflow into the ret.
            let w = if i == 0 && self.rng.gen_bool(0.5) { ret_w } else { self.width() };
            let p = b.add_param(format!("p{i}"), Type::Int(w));
            self.pool.entry(w).or_default().push(p);
        }

        let ninsts = self.rng.gen_range(1..config.max_insts.max(1) + 1);
        for _ in 0..ninsts {
            self.instruction(&mut b);
        }

        // Return a value of the declared width, casting the most recent
        // value into shape if none exists yet.
        let ret = match self.pick(ret_w) {
            Some(v) => v,
            None => {
                // Deterministic choice: HashMap iteration order varies, so
                // pick the smallest populated width.
                let from_w = self
                    .pool
                    .iter()
                    .filter(|(_, vs)| !vs.is_empty())
                    .map(|(w, _)| *w)
                    .min()
                    .expect("params always populate the pool");
                let v = self.pick(from_w).expect("just found");
                if from_w < ret_w {
                    let op = if self.rng.gen_bool(0.5) { CastOp::ZExt } else { CastOp::SExt };
                    b.cast_flagged(op, v, Type::Int(ret_w), self.cast_flags(op))
                } else {
                    b.cast_flagged(CastOp::Trunc, v, Type::Int(ret_w), self.cast_flags(CastOp::Trunc))
                }
            }
        };
        b.ret(Some(ret));
        self.pool.clear();
        b.build()
    }

    /// One random instruction appended to the builder; its result joins the
    /// pool.
    fn instruction(&mut self, b: &mut FunctionBuilder) {
        match self.rng.gen_range(0..10u32) {
            // Binary ops get the biggest share: they carry the flag and
            // trap surface.
            0..=3 => {
                let w = self.pool_width();
                let op = BinOp::ALL[self.rng.gen_range(0..BinOp::ALL.len())];
                let lhs = self.operand(w);
                let rhs = self.operand(w);
                let flags = self.sample_flags(op.allowed_flags());
                let v = b.binary_flagged(op, lhs, rhs, flags);
                self.pool.entry(w).or_default().push(v);
            }
            4 => {
                let w = self.pool_width();
                let pred = ICmpPred::ALL[self.rng.gen_range(0..ICmpPred::ALL.len())];
                let lhs = self.operand(w);
                let rhs = self.operand(w);
                let v = b.icmp(pred, lhs, rhs);
                self.pool.entry(1).or_default().push(v);
            }
            5 => {
                let w = self.pool_width();
                let cond = self.operand(1);
                let t = self.operand(w);
                let f = self.operand(w);
                let v = b.select(cond, t, f);
                self.pool.entry(w).or_default().push(v);
            }
            6 => {
                let from_w = self.pool_width();
                // Casts must strictly narrow or widen; width 1 can only
                // widen, width 64 only narrow.
                let (op, to_w) = if from_w == 1 || (from_w < 64 && self.rng.gen_bool(0.5)) {
                    let op = if self.rng.gen_bool(0.5) { CastOp::ZExt } else { CastOp::SExt };
                    (op, self.rng.gen_range(from_w + 1..65))
                } else {
                    (CastOp::Trunc, self.rng.gen_range(1..from_w))
                };
                let value = self.operand(from_w);
                let v = b.cast_flagged(op, value, Type::Int(to_w), self.cast_flags(op));
                self.pool.entry(to_w).or_default().push(v);
            }
            7..=8 => {
                let mut w = self.pool_width();
                let intr = INT_INTRINSICS[self.rng.gen_range(0..INT_INTRINSICS.len())];
                if intr == Intrinsic::Bswap {
                    w = *[8, 16, 24, 32, 48, 64].iter().rev().find(|&&c| c <= w).unwrap_or(&8);
                }
                let a = self.operand(w);
                let args = match intr {
                    Intrinsic::Abs | Intrinsic::Ctlz | Intrinsic::Cttz => {
                        vec![a, Value::bool(self.rng.gen())]
                    }
                    Intrinsic::Ctpop | Intrinsic::Bswap | Intrinsic::Bitreverse => vec![a],
                    Intrinsic::Fshl | Intrinsic::Fshr => {
                        vec![a, self.operand(w), self.operand(w)]
                    }
                    _ => vec![a, self.operand(w)],
                };
                let v = b.call(intr, args);
                self.pool.entry(w).or_default().push(v);
            }
            _ => {
                let w = self.pool_width();
                let value = self.operand(w);
                let v = b.freeze(value);
                self.pool.entry(w).or_default().push(v);
            }
        }
    }

    /// A random width, boundary-biased.
    fn width(&mut self) -> u32 {
        if self.rng.gen_bool(0.6) {
            BOUNDARY_WIDTHS[self.rng.gen_range(0..BOUNDARY_WIDTHS.len())]
        } else {
            self.rng.gen_range(1..65)
        }
    }

    /// A width to build the next instruction at: usually one that already
    /// has SSA values (so dataflow chains form), occasionally fresh.
    fn pool_width(&mut self) -> u32 {
        let populated: Vec<u32> = self.pool.keys().copied().collect();
        if !populated.is_empty() && self.rng.gen_bool(0.8) {
            let mut ws = populated;
            ws.sort_unstable();
            ws[self.rng.gen_range(0..ws.len())]
        } else {
            self.width()
        }
    }

    /// An existing SSA value of width `w`, if any.
    fn pick(&mut self, w: u32) -> Option<Value> {
        let vs = self.pool.get(&w)?;
        if vs.is_empty() {
            return None;
        }
        let i = self.rng.gen_range(0..vs.len());
        Some(vs[i].clone())
    }

    /// An operand of width `w`: an existing SSA value when available, else a
    /// boundary-biased constant.
    fn operand(&mut self, w: u32) -> Value {
        if self.rng.gen_bool(0.65) {
            if let Some(v) = self.pick(w) {
                return v;
            }
        }
        self.constant(w)
    }

    /// A constant biased toward the values that trap divisions, overflow
    /// shifts and trip flag checks.
    fn constant(&mut self, w: u32) -> Value {
        let bits: u128 = match self.rng.gen_range(0..12u32) {
            0 => 0,
            1 => 1,
            2 => 2,
            // All ones == unsigned max == signed -1.
            3 => ((1u128 << w) - 1) | (1u128 << (w - 1)),
            // Sign bit == signed min.
            4 => 1u128 << (w - 1),
            // Signed max.
            5 => (1u128 << (w - 1)) - 1,
            // Shift amounts at and past the width boundary.
            6 => (w - 1) as u128,
            7 => w as u128,
            8 => (w + 1) as u128,
            9 => return Value::Const(Constant::Undef(Type::Int(w))),
            10 => return Value::Const(Constant::Poison(Type::Int(w))),
            _ => ((self.rng.gen::<u64>() as u128) << 64) | self.rng.gen::<u64>() as u128,
        };
        Value::Const(Constant::Int(ApInt::new(w, bits)))
    }

    /// A random subset of an opcode's legal flags, biased toward none.
    fn sample_flags(&mut self, allowed: IntFlags) -> IntFlags {
        if self.rng.gen_bool(0.5) {
            return IntFlags::none();
        }
        IntFlags {
            nuw: allowed.nuw && self.rng.gen(),
            nsw: allowed.nsw && self.rng.gen(),
            exact: allowed.exact && self.rng.gen(),
            disjoint: allowed.disjoint && self.rng.gen(),
            nneg: allowed.nneg && self.rng.gen(),
        }
    }

    fn cast_flags(&mut self, op: CastOp) -> IntFlags {
        self.sample_flags(op.allowed_flags())
    }
}

// ---------------------------------------------------------------------------
// Source/candidate pair generation.
// ---------------------------------------------------------------------------

/// Generates a source/candidate pair for differential verification: the
/// source is [`random_function`] of the seed, the candidate is the source
/// with one or two seeded mutations stacked on top. The mutation mix is
/// deliberately split between semantics-preserving rewrites (α-renaming,
/// adding an identity operation, swapping commutative operands, dropping
/// poison flags) and semantics-changing ones (twisting the returned value,
/// nudging a constant, adding poison flags, returning a constant), so a
/// differential harness sees proved, refuted and inconclusive candidates
/// from the same stream.
///
/// Both functions always share a signature, stay in the straight-line
/// scalar-int fragment, and are deterministic in the seed.
pub fn random_pair(seed: u64) -> (Function, Function) {
    let src = random_function(seed);
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x2545_f491_4f6c_dd1d) ^ 0x7061_6972);
    let mut tgt = src.clone();
    tgt.name = format!("{}_cand", src.name);
    for _ in 0..rng.gen_range(1..3) {
        mutate_once(&mut tgt, &mut rng);
    }
    (src, tgt)
}

/// Applies one random mutation in place. Every arm degrades to a milder
/// mutation (ultimately an identity insertion, which always applies to the
/// generator's int-returning output) when its precondition is missing.
fn mutate_once(f: &mut Function, rng: &mut StdRng) {
    match rng.gen_range(0..8u32) {
        0 => alpha_rename(f),
        1 => insert_identity(f, rng),
        2 => twist_return_bit(f),
        3 => mutate_flags(f, rng),
        4 => swap_commutative(f, rng),
        5 => nudge_constant(f, rng),
        6 => replace_ret_with_constant(f, rng),
        _ => {
            // A double-width arm for the proof-heavy rewrites, so proved
            // candidates stay a healthy fraction of the stream.
            alpha_rename(f);
            insert_identity(f, rng);
        }
    }
}

/// The id and returned value of the function's `ret`, when it returns one.
fn ret_site(f: &Function) -> Option<(InstId, Value)> {
    f.iter_insts().find_map(|(id, inst)| match &inst.kind {
        InstKind::Ret { value: Some(v) } => Some((id, v.clone())),
        _ => None,
    })
}

/// Renames every named instruction result (semantics-preserving; exercises
/// the structural, name-blind halves of the pipeline).
fn alpha_rename(f: &mut Function) {
    let ids: Vec<InstId> = f.iter_inst_ids().collect();
    for id in ids {
        let inst = f.inst_mut(id);
        if !inst.name.is_empty() {
            inst.name = format!("m{}", id.0);
        }
    }
}

/// Inserts an identity operation (`add 0`, `or 0` or `xor 0`) between the
/// returned value and the `ret` (semantics-preserving, including poison
/// propagation: the identity carries no flags).
fn insert_identity(f: &mut Function, rng: &mut StdRng) {
    let Some(w) = f.ret_ty.int_width() else { return };
    let Some((ret_id, ret_val)) = ret_site(f) else { return };
    let op = [BinOp::Add, BinOp::Or, BinOp::Xor][rng.gen_range(0..3)];
    let id = f.insert_before(
        ret_id,
        Instruction::new(
            InstKind::Binary { op, lhs: ret_val, rhs: Value::int(w, 0), flags: IntFlags::none() },
            Type::Int(w),
            "idle",
        ),
    );
    f.set_operand(ret_id, 0, Value::Inst(id));
}

/// Flips the low bit of the returned value (semantics-changing on every
/// input where the source returns a concrete value).
fn twist_return_bit(f: &mut Function) {
    let Some(w) = f.ret_ty.int_width() else { return };
    let Some((ret_id, ret_val)) = ret_site(f) else { return };
    let id = f.insert_before(
        ret_id,
        Instruction::new(
            InstKind::Binary {
                op: BinOp::Xor,
                lhs: ret_val,
                rhs: Value::int(w, 1),
                flags: IntFlags::none(),
            },
            Type::Int(w),
            "twist",
        ),
    );
    f.set_operand(ret_id, 0, Value::Inst(id));
}

/// Drops or resamples the poison flags of one flag-capable instruction.
/// Dropping flags is a refinement (strictly less poison); adding them may
/// introduce poison the source lacks.
fn mutate_flags(f: &mut Function, rng: &mut StdRng) {
    let ids: Vec<(InstId, IntFlags)> = f
        .iter_insts()
        .filter_map(|(id, inst)| match &inst.kind {
            InstKind::Binary { op, .. } if !op.allowed_flags().is_empty() => {
                Some((id, op.allowed_flags()))
            }
            InstKind::Cast { op, .. } if !op.allowed_flags().is_empty() => {
                Some((id, op.allowed_flags()))
            }
            _ => None,
        })
        .collect();
    if ids.is_empty() {
        return insert_identity(f, rng);
    }
    let (id, allowed) = ids[rng.gen_range(0..ids.len())];
    let new = if rng.gen_bool(0.5) {
        IntFlags::none()
    } else {
        IntFlags {
            nuw: allowed.nuw && rng.gen(),
            nsw: allowed.nsw && rng.gen(),
            exact: allowed.exact && rng.gen(),
            disjoint: allowed.disjoint && rng.gen(),
            nneg: allowed.nneg && rng.gen(),
        }
    };
    match &mut f.inst_mut(id).kind {
        InstKind::Binary { flags, .. } | InstKind::Cast { flags, .. } => *flags = new,
        _ => unreachable!("filtered to flag-capable kinds"),
    }
}

/// Swaps the operands of one commutative binary (semantics-preserving).
fn swap_commutative(f: &mut Function, rng: &mut StdRng) {
    let ids: Vec<InstId> = f
        .iter_insts()
        .filter_map(|(id, inst)| match &inst.kind {
            InstKind::Binary { op, .. } if op.is_commutative() => Some(id),
            _ => None,
        })
        .collect();
    if ids.is_empty() {
        return insert_identity(f, rng);
    }
    let id = ids[rng.gen_range(0..ids.len())];
    let (lhs, rhs) = match &f.inst(id).kind {
        InstKind::Binary { lhs, rhs, .. } => (lhs.clone(), rhs.clone()),
        _ => unreachable!("filtered to binaries"),
    };
    f.set_operand(id, 0, rhs);
    f.set_operand(id, 1, lhs);
}

/// Replaces one integer-constant right operand of a binary with a
/// different constant (usually semantics-changing).
fn nudge_constant(f: &mut Function, rng: &mut StdRng) {
    let sites: Vec<(InstId, u32, u128)> = f
        .iter_insts()
        .filter_map(|(id, inst)| match &inst.kind {
            InstKind::Binary { rhs: Value::Const(Constant::Int(v)), .. } => {
                Some((id, v.width(), v.zext_value()))
            }
            _ => None,
        })
        .collect();
    if sites.is_empty() {
        return twist_return_bit(f);
    }
    let (id, w, old) = sites[rng.gen_range(0..sites.len())];
    let mask = if w >= 128 { u128::MAX } else { (1u128 << w) - 1 };
    let new = (old ^ u128::from(rng.gen_range(1..4u32))) & mask;
    f.set_operand(id, 1, Value::Const(Constant::Int(ApInt::new(w, new))));
}

/// Replaces the returned value with a constant (refuted unless the source
/// itself folds to that constant).
fn replace_ret_with_constant(f: &mut Function, rng: &mut StdRng) {
    let Some(w) = f.ret_ty.int_width() else { return };
    let Some((ret_id, _)) = ret_site(f) else { return };
    let mask = if w >= 128 { u128::MAX } else { (1u128 << w) - 1 };
    let bits = u128::from(rng.gen::<u64>()) & mask;
    f.set_operand(ret_id, 0, Value::Const(Constant::Int(ApInt::new(w, bits))));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plane::PlanePlan;
    use lpo_ir::printer::print_function;

    #[test]
    fn deterministic_in_the_seed() {
        for seed in 0..50 {
            let a = random_function(seed);
            let b = random_function(seed);
            assert_eq!(print_function(&a), print_function(&b));
        }
    }

    #[test]
    fn generated_functions_are_plane_eligible() {
        // The generator only emits the straight-line scalar-int shape, so
        // every output must lower to a plane plan — this is what makes it a
        // useful differential driver for the plane evaluator.
        for seed in 0..200 {
            let f = random_function(seed);
            assert!(
                PlanePlan::compile(&f).is_some(),
                "seed {seed} produced an ineligible function:\n{}",
                print_function(&f)
            );
        }
    }

    #[test]
    fn seeds_produce_distinct_shapes() {
        let mut texts: Vec<String> = (0..100).map(|s| print_function(&random_function(s))).collect();
        texts.sort();
        texts.dedup();
        assert!(texts.len() > 90, "only {} distinct functions in 100 seeds", texts.len());
    }

    #[test]
    fn pairs_are_deterministic_and_share_signatures() {
        for seed in 0..100 {
            let (src, tgt) = random_pair(seed);
            let (src2, tgt2) = random_pair(seed);
            assert_eq!(print_function(&src), print_function(&src2));
            assert_eq!(print_function(&tgt), print_function(&tgt2));
            assert_eq!(src.ret_ty, tgt.ret_ty, "seed {seed} changed the return type");
            assert_eq!(
                src.params.iter().map(|p| p.ty.clone()).collect::<Vec<_>>(),
                tgt.params.iter().map(|p| p.ty.clone()).collect::<Vec<_>>(),
                "seed {seed} changed the parameter list"
            );
        }
    }

    #[test]
    fn pair_candidates_stay_plane_eligible() {
        // Mutations only rename, insert scalar-int binaries or rewrite
        // operands in place, so the candidate stays in the same fragment as
        // the source — the property that lets one stream drive both the
        // plane and the abstract differential harnesses.
        for seed in 0..200 {
            let (_, tgt) = random_pair(seed);
            assert!(
                PlanePlan::compile(&tgt).is_some(),
                "seed {seed} produced an ineligible candidate:\n{}",
                print_function(&tgt)
            );
        }
    }

    #[test]
    fn pair_candidates_actually_mutate() {
        // The candidate must differ from the source for most seeds (an
        // α-rename alone can collide textually only if names were already
        // canonical, which the generator's naming makes impossible).
        let differing = (0..100)
            .filter(|&seed| {
                let (src, tgt) = random_pair(seed);
                let mut s = src.clone();
                let mut t = tgt.clone();
                s.name = "f".into();
                t.name = "f".into();
                print_function(&s) != print_function(&t)
            })
            .count();
        assert!(differing > 80, "only {differing}/100 pairs differ from their source");
    }
}
