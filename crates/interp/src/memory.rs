//! A simple byte-addressed memory model for concrete evaluation.
//!
//! Every pointer argument of a function under test is bound to its own
//! [`Allocation`] of a fixed size. Loads and stores check bounds: any access
//! outside an allocation is immediate undefined behaviour, which is how the
//! refinement checker learns that a candidate dereferences memory the original
//! did not.
//!
//! Values are stored as little-endian bytes with a per-byte poison shadow, so
//! a poisoned store poisons exactly the bytes it touches.

use crate::value::{EvalValue, PtrValue};
use lpo_ir::apint::ApInt;
use lpo_ir::types::{FloatKind, Type};
use std::sync::Arc;

/// The default size of the allocation backing each pointer argument.
pub const DEFAULT_ALLOC_SIZE: usize = 64;

/// One contiguous allocation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Allocation {
    bytes: Vec<u8>,
    poison: Vec<bool>,
}

impl Allocation {
    /// Creates an allocation of `size` zeroed bytes.
    pub fn new(size: usize) -> Self {
        Self { bytes: vec![0; size], poison: vec![false; size] }
    }

    /// Creates an allocation with the given contents.
    pub fn with_bytes(bytes: Vec<u8>) -> Self {
        let len = bytes.len();
        Self { bytes, poison: vec![false; len] }
    }

    /// The allocation size in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// Read-only view of the raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Read-only view of the per-byte poison shadow (`true` = poisoned).
    pub fn poison_mask(&self) -> &[bool] {
        &self.poison
    }
}

/// The evaluation memory: a set of allocations.
///
/// Allocations are held behind [`Arc`]s with copy-on-write mutation, so
/// cloning a `Memory` — which the verification hot path does once per
/// evaluated input — is a refcount bump per allocation instead of copying
/// every byte buffer and poison shadow. The bytes are only copied when an
/// evaluation actually stores into a shared allocation. Equality still
/// compares contents.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Memory {
    allocations: Vec<Arc<Allocation>>,
}

/// An out-of-bounds or null-pointer access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MemError {
    /// Description of the invalid access.
    pub message: String,
}

impl Memory {
    /// Creates an empty memory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an allocation and returns its id.
    pub fn allocate(&mut self, alloc: Allocation) -> usize {
        self.allocations.push(Arc::new(alloc));
        self.allocations.len() - 1
    }

    /// Adds a zero-initialised allocation of `size` bytes and returns its id.
    pub fn allocate_zeroed(&mut self, size: usize) -> usize {
        self.allocate(Allocation::new(size))
    }

    /// The number of allocations.
    pub fn allocation_count(&self) -> usize {
        self.allocations.len()
    }

    /// Access an allocation by id.
    pub fn allocation(&self, id: usize) -> Option<&Allocation> {
        self.allocations.get(id).map(AsRef::as_ref)
    }

    fn check_range(&self, ptr: PtrValue, size: usize) -> Result<(usize, usize), MemError> {
        if ptr.alloc == usize::MAX {
            return Err(MemError { message: "dereference of a null pointer".into() });
        }
        let alloc = self.allocations.get(ptr.alloc).ok_or_else(|| MemError {
            message: format!("dereference of invalid allocation #{}", ptr.alloc),
        })?;
        if ptr.offset < 0 {
            return Err(MemError {
                message: format!("access at negative offset {}", ptr.offset),
            });
        }
        let start = ptr.offset as usize;
        let end = start.checked_add(size).ok_or_else(|| MemError {
            message: "access size overflows the address space".into(),
        })?;
        if end > alloc.size() {
            return Err(MemError {
                message: format!(
                    "out-of-bounds access of {size} bytes at offset {start} in a {}-byte allocation",
                    alloc.size()
                ),
            });
        }
        Ok((ptr.alloc, start))
    }

    /// Loads a value of type `ty` from `ptr`.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] for null or out-of-bounds accesses.
    pub fn load(&self, ptr: PtrValue, ty: &Type) -> Result<EvalValue, MemError> {
        match ty {
            Type::Vector(n, elem) => {
                let elem_size = elem.size_in_bytes() as i64;
                let mut lanes = Vec::with_capacity(*n as usize);
                for i in 0..*n {
                    let lane_ptr = PtrValue { alloc: ptr.alloc, offset: ptr.offset + i as i64 * elem_size };
                    lanes.push(self.load(lane_ptr, elem)?);
                }
                Ok(EvalValue::Vector(lanes))
            }
            _ => {
                let size = ty.size_in_bytes() as usize;
                let (aid, start) = self.check_range(ptr, size)?;
                let alloc = &self.allocations[aid];
                if alloc.poison[start..start + size].iter().any(|p| *p) {
                    return Ok(EvalValue::Poison);
                }
                let mut raw: u128 = 0;
                for (i, &b) in alloc.bytes[start..start + size].iter().enumerate() {
                    raw |= (b as u128) << (8 * i);
                }
                Ok(match ty {
                    Type::Int(w) => EvalValue::Int(ApInt::new(*w, raw)),
                    Type::Float(FloatKind::Float) => {
                        EvalValue::Float(FloatKind::Float, f32::from_bits(raw as u32) as f64)
                    }
                    Type::Float(k) => EvalValue::Float(*k, f64::from_bits(raw as u64)),
                    Type::Ptr => EvalValue::Ptr(PtrValue {
                        alloc: (raw >> 32) as usize,
                        offset: (raw as u32) as i64,
                    }),
                    _ => unreachable!("scalar load"),
                })
            }
        }
    }

    /// Stores `value` of type `ty` to `ptr`.
    ///
    /// Storing poison poisons the destination bytes; storing undef stores an
    /// arbitrary (zero) pattern.
    ///
    /// # Errors
    ///
    /// Returns a [`MemError`] for null or out-of-bounds accesses.
    pub fn store(&mut self, ptr: PtrValue, value: &EvalValue, ty: &Type) -> Result<(), MemError> {
        match (ty, value) {
            (Type::Vector(n, elem), EvalValue::Vector(lanes)) => {
                let elem_size = elem.size_in_bytes() as i64;
                for i in 0..*n as usize {
                    let lane_ptr = PtrValue { alloc: ptr.alloc, offset: ptr.offset + i as i64 * elem_size };
                    let lane = lanes.get(i).cloned().unwrap_or(EvalValue::Poison);
                    self.store(lane_ptr, &lane, elem)?;
                }
                Ok(())
            }
            (Type::Vector(n, elem), EvalValue::Poison | EvalValue::Undef) => {
                let elem_size = elem.size_in_bytes() as i64;
                for i in 0..*n as usize {
                    let lane_ptr = PtrValue { alloc: ptr.alloc, offset: ptr.offset + i as i64 * elem_size };
                    self.store(lane_ptr, value, elem)?;
                }
                Ok(())
            }
            _ => {
                let size = ty.size_in_bytes() as usize;
                let (aid, start) = self.check_range(ptr, size)?;
                // Copy-on-write: the byte buffer is only duplicated when the
                // allocation is still shared with another Memory clone.
                let alloc = Arc::make_mut(&mut self.allocations[aid]);
                let raw: u128 = match value {
                    EvalValue::Int(v) => v.zext_value(),
                    EvalValue::Float(FloatKind::Float, v) => (*v as f32).to_bits() as u128,
                    EvalValue::Float(_, v) => v.to_bits() as u128,
                    EvalValue::Ptr(p) => ((p.alloc as u128) << 32) | (p.offset as u32 as u128),
                    EvalValue::Undef => 0,
                    EvalValue::Poison => {
                        for p in &mut alloc.poison[start..start + size] {
                            *p = true;
                        }
                        return Ok(());
                    }
                    EvalValue::Vector(_) => {
                        return Err(MemError { message: "vector stored through a scalar type".into() })
                    }
                };
                for i in 0..size {
                    alloc.bytes[start + i] = (raw >> (8 * i)) as u8;
                    alloc.poison[start + i] = false;
                }
                Ok(())
            }
        }
    }

    /// Compares the observable contents of two memories: same allocation
    /// count, sizes, bytes and poison shadows.
    pub fn observably_equal(&self, other: &Memory) -> bool {
        self == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_ints() {
        let mut m = Memory::new();
        let a = m.allocate_zeroed(16);
        let p = PtrValue { alloc: a, offset: 4 };
        m.store(p, &EvalValue::int(32, 0xdead_beef), &Type::i32()).unwrap();
        assert_eq!(m.load(p, &Type::i32()).unwrap(), EvalValue::int(32, 0xdead_beef));
        // Little-endian layout: two i16 loads see the halves.
        assert_eq!(m.load(p, &Type::i16()).unwrap(), EvalValue::int(16, 0xbeef));
        let hi = PtrValue { alloc: a, offset: 6 };
        assert_eq!(m.load(hi, &Type::i16()).unwrap(), EvalValue::int(16, 0xdead));
    }

    #[test]
    fn round_trip_floats_and_vectors() {
        let mut m = Memory::new();
        let a = m.allocate_zeroed(64);
        let p = PtrValue { alloc: a, offset: 0 };
        m.store(p, &EvalValue::Float(FloatKind::Double, 1.5), &Type::double()).unwrap();
        assert_eq!(m.load(p, &Type::double()).unwrap(), EvalValue::Float(FloatKind::Double, 1.5));

        let v = EvalValue::Vector(vec![
            EvalValue::int(32, 1),
            EvalValue::int(32, 2),
            EvalValue::int(32, 3),
            EvalValue::int(32, 4),
        ]);
        let vt = Type::vector(4, Type::i32());
        m.store(p, &v, &vt).unwrap();
        assert_eq!(m.load(p, &vt).unwrap(), v);
        // Element 2 readable as scalar.
        let p2 = PtrValue { alloc: a, offset: 8 };
        assert_eq!(m.load(p2, &Type::i32()).unwrap(), EvalValue::int(32, 3));
    }

    #[test]
    fn bounds_are_enforced() {
        let mut m = Memory::new();
        let a = m.allocate_zeroed(8);
        let inside = PtrValue { alloc: a, offset: 4 };
        let outside = PtrValue { alloc: a, offset: 6 };
        assert!(m.load(inside, &Type::i32()).is_ok());
        assert!(m.load(outside, &Type::i32()).is_err());
        assert!(m.store(outside, &EvalValue::int(32, 0), &Type::i32()).is_err());
        let negative = PtrValue { alloc: a, offset: -1 };
        assert!(m.load(negative, &Type::i8()).is_err());
        let null = PtrValue { alloc: usize::MAX, offset: 0 };
        assert!(m.load(null, &Type::i8()).is_err());
        let bogus = PtrValue { alloc: 99, offset: 0 };
        assert!(m.load(bogus, &Type::i8()).is_err());
    }

    #[test]
    fn poison_shadow() {
        let mut m = Memory::new();
        let a = m.allocate_zeroed(8);
        let p = PtrValue { alloc: a, offset: 0 };
        m.store(p, &EvalValue::Poison, &Type::i32()).unwrap();
        assert!(m.load(p, &Type::i32()).unwrap().is_poison());
        // Overwriting clears the poison.
        m.store(p, &EvalValue::int(32, 5), &Type::i32()).unwrap();
        assert_eq!(m.load(p, &Type::i32()).unwrap(), EvalValue::int(32, 5));
        // Partial overlap with poison still reads poison.
        m.store(PtrValue { alloc: a, offset: 2 }, &EvalValue::Poison, &Type::i8()).unwrap();
        assert!(m.load(p, &Type::i32()).unwrap().is_poison());
        assert_eq!(m.load(p, &Type::i16()).unwrap(), EvalValue::int(16, 5));
    }

    #[test]
    fn observational_equality() {
        let mut a = Memory::new();
        let mut b = Memory::new();
        let ia = a.allocate_zeroed(8);
        let ib = b.allocate_zeroed(8);
        assert!(a.observably_equal(&b));
        a.store(PtrValue { alloc: ia, offset: 0 }, &EvalValue::int(8, 1), &Type::i8()).unwrap();
        assert!(!a.observably_equal(&b));
        b.store(PtrValue { alloc: ib, offset: 0 }, &EvalValue::int(8, 1), &Type::i8()).unwrap();
        assert!(a.observably_equal(&b));
    }

    #[test]
    fn allocation_from_bytes() {
        let alloc = Allocation::with_bytes(vec![1, 2, 3, 4]);
        assert_eq!(alloc.size(), 4);
        assert_eq!(alloc.bytes(), &[1, 2, 3, 4]);
        let mut m = Memory::new();
        let id = m.allocate(alloc);
        assert_eq!(m.allocation_count(), 1);
        assert_eq!(
            m.load(PtrValue { alloc: id, offset: 0 }, &Type::i32()).unwrap(),
            EvalValue::int(32, 0x04030201)
        );
        assert!(m.allocation(id).is_some());
        assert!(m.allocation(5).is_none());
    }
}
