//! Concrete evaluation of IR functions with LLVM's poison/undef semantics.
//!
//! The evaluator executes a function on concrete argument values and an
//! initial [`Memory`]. It distinguishes three kinds of "bad" outcomes exactly
//! the way the refinement relation needs them:
//!
//! * **immediate undefined behaviour** ([`Ub`]): division by zero, branching
//!   on poison, out-of-bounds or null dereferences — once the source function
//!   exhibits UB on an input, any target behaviour refines it;
//! * **poison**: a deferred error value that propagates through data flow;
//! * **undef**: an unspecified but fixed bit pattern (modelled
//!   conservatively: it propagates like a tainted value and the refinement
//!   checker treats a source `undef` result as "any target value is allowed").

use crate::memory::Memory;
use crate::value::{EvalValue, PtrValue};
use lpo_ir::apint::ApInt;
use lpo_ir::constant::Constant;
use lpo_ir::flags::{FastMathFlags, IntFlags};
use lpo_ir::function::Function;
use lpo_ir::instruction::{
    BinOp, BlockId, CastOp, FBinOp, FCmpPred, ICmpPred, InstId, InstKind, Intrinsic, Value,
};
use lpo_ir::types::{FloatKind, Type};
use std::borrow::Cow;
use std::collections::HashMap;

/// Immediate undefined behaviour encountered during evaluation.
///
/// The message is a [`Cow`] so the fixed diagnostics on the interpreter's hot
/// path (`division by zero`, flag violations, …) are `&'static str`s — a
/// UB-heavy fuzzing run no longer allocates a `String` per failing input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ub {
    /// What went wrong, e.g. `division by zero`.
    pub message: Cow<'static, str>,
}

impl Ub {
    pub(crate) fn new(message: impl Into<Cow<'static, str>>) -> Self {
        Self { message: message.into() }
    }
}

impl std::fmt::Display for Ub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "undefined behaviour: {}", self.message)
    }
}

impl std::error::Error for Ub {}

/// The observable outcome of running a function on one input.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalOutcome {
    /// The returned value (`None` for `void` functions).
    pub result: Option<EvalValue>,
    /// The final memory state.
    pub memory: Memory,
    /// How many instructions were executed (for throughput accounting).
    pub steps: usize,
}

/// Default limit on executed instructions, to bound loops.
pub const DEFAULT_STEP_LIMIT: usize = 4096;

/// Evaluates `func` on `args` with the given initial memory.
///
/// This compiles the function once (see
/// [`CompiledFunction`](crate::compiled::CompiledFunction)) and runs it on a
/// fresh register file. Callers that evaluate the same function on many
/// inputs should compile once and reuse an
/// [`EvalArena`](crate::compiled::EvalArena) instead.
///
/// # Errors
///
/// Returns [`Ub`] if the execution encounters immediate undefined behaviour or
/// exceeds `step_limit` executed instructions.
pub fn evaluate(
    func: &Function,
    args: &[EvalValue],
    memory: Memory,
    step_limit: usize,
) -> Result<EvalOutcome, Ub> {
    crate::compiled::CompiledFunction::compile(func).evaluate_with_limit(
        &mut crate::compiled::EvalArena::new(),
        args,
        memory,
        step_limit,
    )
}

/// Evaluates with [`DEFAULT_STEP_LIMIT`].
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_default(func: &Function, args: &[EvalValue], memory: Memory) -> Result<EvalOutcome, Ub> {
    evaluate(func, args, memory, DEFAULT_STEP_LIMIT)
}

/// The straightforward walk-the-IR evaluator: one `HashMap` environment,
/// instructions re-decoded on every executed step.
///
/// This is the pre-register-file implementation, kept verbatim as the
/// semantic ground truth: the differential test suite checks the compiled
/// evaluator against it over the whole corpus, and `repro bench-interp` uses
/// it as the baseline its speedup is measured against.
///
/// # Errors
///
/// See [`evaluate`].
pub fn evaluate_reference(
    func: &Function,
    args: &[EvalValue],
    memory: Memory,
    step_limit: usize,
) -> Result<EvalOutcome, Ub> {
    Evaluator { func, args, memory, env: HashMap::new(), steps: 0, step_limit }.run()
}

struct Evaluator<'a> {
    func: &'a Function,
    args: &'a [EvalValue],
    memory: Memory,
    env: HashMap<InstId, EvalValue>,
    steps: usize,
    step_limit: usize,
}

enum Control {
    Continue,
    Jump(BlockId),
    Return(Option<EvalValue>),
}

impl<'a> Evaluator<'a> {
    fn run(mut self) -> Result<EvalOutcome, Ub> {
        if self.args.len() != self.func.params.len() {
            return Err(Ub::new(format!(
                "called with {} arguments but the function has {} parameters",
                self.args.len(),
                self.func.params.len()
            )));
        }
        let mut current = self.func.entry();
        let mut previous: Option<BlockId> = None;
        loop {
            match self.run_block(current, previous)? {
                Control::Return(v) => {
                    return Ok(EvalOutcome { result: v, memory: self.memory, steps: self.steps });
                }
                Control::Jump(next) => {
                    previous = Some(current);
                    current = next;
                }
                Control::Continue => {
                    return Err(Ub::new("basic block fell through without a terminator"));
                }
            }
        }
    }

    fn run_block(&mut self, block: BlockId, previous: Option<BlockId>) -> Result<Control, Ub> {
        // Phi nodes read their incoming values "in parallel" on block entry.
        let mut phi_values: Vec<(InstId, EvalValue)> = Vec::new();
        for &inst_id in &self.func.block(block).insts {
            if let InstKind::Phi { incoming } = &self.func.inst(inst_id).kind {
                let prev = previous.ok_or_else(|| Ub::new("phi executed in the entry block"))?;
                let entry = incoming
                    .iter()
                    .find(|(_, bb)| *bb == prev)
                    .ok_or_else(|| Ub::new("phi has no entry for the executed predecessor"))?;
                phi_values.push((inst_id, self.value(&entry.0)?));
            }
        }
        for (id, v) in phi_values {
            self.env.insert(id, v);
        }

        for &inst_id in &self.func.block(block).insts {
            self.steps += 1;
            if self.steps > self.step_limit {
                return Err(Ub::new("execution step limit exceeded"));
            }
            let inst = self.func.inst(inst_id);
            match &inst.kind {
                InstKind::Phi { .. } => {}
                InstKind::Ret { value } => {
                    let v = match value {
                        Some(v) => Some(self.value(v)?),
                        None => None,
                    };
                    return Ok(Control::Return(v));
                }
                InstKind::Br { cond, then_block, else_block } => {
                    return match cond {
                        None => Ok(Control::Jump(*then_block)),
                        Some(c) => {
                            let cv = self.value(c)?;
                            match cv.as_bool() {
                                Some(true) => Ok(Control::Jump(*then_block)),
                                Some(false) => Ok(Control::Jump(else_block.expect("verified"))),
                                None => Err(Ub::new("branch on a poison or undef condition")),
                            }
                        }
                    };
                }
                InstKind::Unreachable => {
                    return Err(Ub::new("executed an unreachable instruction"));
                }
                _ => {
                    let v = self.eval_inst(inst_id)?;
                    self.env.insert(inst_id, v);
                }
            }
        }
        Ok(Control::Continue)
    }

    fn value(&self, v: &Value) -> Result<EvalValue, Ub> {
        Ok(match v {
            Value::Arg(i) => self
                .args
                .get(*i)
                .cloned()
                .ok_or_else(|| Ub::new(format!("argument #{i} out of range")))?,
            Value::Inst(id) => self
                .env
                .get(id)
                .cloned()
                .ok_or_else(|| Ub::new("use of a value before it is defined"))?,
            Value::Const(c) => EvalValue::from_constant(c),
        })
    }

    fn eval_inst(&mut self, id: InstId) -> Result<EvalValue, Ub> {
        let inst = self.func.inst(id).clone();
        match &inst.kind {
            InstKind::Binary { op, lhs, rhs, flags } => {
                let a = self.value(lhs)?;
                let b = self.value(rhs)?;
                elementwise2(&a, &b, &mut |x, y| eval_binop(*op, x, y, flags))
            }
            InstKind::FBinary { op, lhs, rhs, fmf } => {
                let a = self.value(lhs)?;
                let b = self.value(rhs)?;
                elementwise2(&a, &b, &mut |x, y| eval_fbinop(*op, fmf, x, y))
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                let a = self.value(lhs)?;
                let b = self.value(rhs)?;
                elementwise2(&a, &b, &mut |x, y| eval_icmp(*pred, x, y))
            }
            InstKind::FCmp { pred, lhs, rhs } => {
                let a = self.value(lhs)?;
                let b = self.value(rhs)?;
                elementwise2(&a, &b, &mut |x, y| {
                    match (x.as_float(), y.as_float()) {
                        (Some(xa), Some(ya)) => Ok(EvalValue::bool(eval_fcmp(*pred, xa, ya))),
                        _ => Ok(EvalValue::Poison),
                    }
                })
            }
            InstKind::Select { cond, on_true, on_false } => {
                let c = self.value(cond)?;
                let t = self.value(on_true)?;
                let f = self.value(on_false)?;
                eval_select(&c, &t, &f)
            }
            InstKind::Cast { op, value, flags } => {
                let v = self.value(value)?;
                let to_scalar = inst.ty.scalar_type().clone();
                elementwise1(&v, &mut |x| eval_cast(*op, x, &to_scalar, flags))
            }
            InstKind::Call { intrinsic, args, .. } => {
                let vals: Vec<EvalValue> =
                    args.iter().map(|a| self.value(a)).collect::<Result<_, _>>()?;
                eval_intrinsic(*intrinsic, &vals)
            }
            InstKind::Load { ptr, .. } => {
                let p = self.value(ptr)?;
                eval_load(&p, &inst.ty, &self.memory)
            }
            InstKind::Store { value, ptr, .. } => {
                let v = self.value(value)?;
                let p = self.value(ptr)?;
                let vty = self.func.value_type(value);
                eval_store(&v, &p, &vty, &mut self.memory)
            }
            InstKind::Gep { elem_ty, base, index, inbounds, nuw } => {
                let b = self.value(base)?;
                let i = self.value(index)?;
                eval_gep(&b, &i, elem_ty.size_in_bytes() as i64, *inbounds, *nuw, &self.memory)
            }
            InstKind::Alloca { ty } => {
                let id = self.memory.allocate_zeroed(ty.size_in_bytes() as usize);
                Ok(EvalValue::Ptr(PtrValue { alloc: id, offset: 0 }))
            }
            InstKind::ExtractElement { vector, index } => {
                let v = self.value(vector)?;
                let i = self.value(index)?;
                eval_extractelement(&v, &i)
            }
            InstKind::InsertElement { vector, element, index } => {
                let v = self.value(vector)?;
                let e = self.value(element)?;
                let i = self.value(index)?;
                eval_insertelement(&v, e, &i, inst.ty.lanes().unwrap_or(1) as usize)
            }
            InstKind::ShuffleVector { a, b, mask } => {
                let av = self.value(a)?;
                let bv = self.value(b)?;
                eval_shufflevector(&av, &bv, mask)
            }
            InstKind::Freeze { value } => {
                let v = self.value(value)?;
                Ok(freeze(&v, &inst.ty))
            }
            InstKind::Phi { .. } | InstKind::Ret { .. } | InstKind::Br { .. } | InstKind::Unreachable => {
                unreachable!("handled by run_block")
            }
        }
    }

}

/// Evaluates a `select` over already-evaluated operands (shared by the
/// reference and the compiled evaluator).
pub(crate) fn eval_select(c: &EvalValue, t: &EvalValue, f: &EvalValue) -> Result<EvalValue, Ub> {
    match c {
        EvalValue::Poison => Ok(EvalValue::Poison),
        EvalValue::Undef => Ok(EvalValue::Undef),
        EvalValue::Int(v) if v.width() == 1 => Ok(if v.as_bool() { t.clone() } else { f.clone() }),
        EvalValue::Vector(conds) => {
            let tl = t.lanes().map(<[EvalValue]>::to_vec).unwrap_or_default();
            let fl = f.lanes().map(<[EvalValue]>::to_vec).unwrap_or_default();
            let mut out = Vec::with_capacity(conds.len());
            for (i, cl) in conds.iter().enumerate() {
                let tv = tl.get(i).cloned().unwrap_or(EvalValue::Poison);
                let fv = fl.get(i).cloned().unwrap_or(EvalValue::Poison);
                out.push(match cl.as_bool() {
                    Some(true) => tv,
                    Some(false) => fv,
                    None => {
                        if cl.is_poison() {
                            EvalValue::Poison
                        } else {
                            EvalValue::Undef
                        }
                    }
                });
            }
            Ok(EvalValue::Vector(out))
        }
        _ => Err(Ub::new("select condition is not i1")),
    }
}

/// Evaluates a floating-point binop with fast-math poison semantics (shared
/// by the reference and the compiled evaluator).
pub(crate) fn eval_fbinop(
    op: FBinOp,
    fmf: &FastMathFlags,
    x: &EvalValue,
    y: &EvalValue,
) -> Result<EvalValue, Ub> {
    let (xa, ya) = match (x.as_float(), y.as_float()) {
        (Some(xa), Some(ya)) => (xa, ya),
        _ => return Ok(EvalValue::Poison),
    };
    if (fmf.nnan && (xa.is_nan() || ya.is_nan()))
        || (fmf.ninf && (xa.is_infinite() || ya.is_infinite()))
    {
        return Ok(EvalValue::Poison);
    }
    let r = match op {
        FBinOp::FAdd => xa + ya,
        FBinOp::FSub => xa - ya,
        FBinOp::FMul => xa * ya,
        FBinOp::FDiv => xa / ya,
        FBinOp::FRem => xa % ya,
    };
    if (fmf.nnan && r.is_nan()) || (fmf.ninf && r.is_infinite()) {
        return Ok(EvalValue::Poison);
    }
    let kind = match x {
        EvalValue::Float(k, _) => *k,
        _ => FloatKind::Double,
    };
    Ok(EvalValue::Float(kind, round_to(kind, r)))
}

/// Evaluates a `load` over an already-evaluated pointer (shared by the
/// reference and the compiled evaluator).
pub(crate) fn eval_load(p: &EvalValue, ty: &Type, memory: &Memory) -> Result<EvalValue, Ub> {
    let p = match p {
        EvalValue::Ptr(p) => *p,
        EvalValue::Poison | EvalValue::Undef => {
            return Err(Ub::new("load through a poison or undef pointer"))
        }
        _ => return Err(Ub::new("load through a non-pointer value")),
    };
    memory.load(p, ty).map_err(|e| Ub::new(e.message))
}

/// Evaluates a `store` over already-evaluated operands; `vty` is the stored
/// value's type (shared by the reference and the compiled evaluator).
pub(crate) fn eval_store(
    v: &EvalValue,
    p: &EvalValue,
    vty: &Type,
    memory: &mut Memory,
) -> Result<EvalValue, Ub> {
    let p = match p {
        EvalValue::Ptr(p) => *p,
        EvalValue::Poison | EvalValue::Undef => {
            return Err(Ub::new("store through a poison or undef pointer"))
        }
        _ => return Err(Ub::new("store through a non-pointer value")),
    };
    memory.store(p, v, vty).map_err(|e| Ub::new(e.message))?;
    Ok(EvalValue::Undef) // store has no result; the slot is never read
}

/// Evaluates a `getelementptr` over already-evaluated operands; `elem_size`
/// is the element type's size in bytes (shared by the reference and the
/// compiled evaluator).
pub(crate) fn eval_gep(
    b: &EvalValue,
    i: &EvalValue,
    elem_size: i64,
    inbounds: bool,
    nuw: bool,
    memory: &Memory,
) -> Result<EvalValue, Ub> {
    if b.is_poison() || i.is_poison() {
        return Ok(EvalValue::Poison);
    }
    let base_ptr = match b {
        EvalValue::Ptr(p) => *p,
        _ => return Ok(EvalValue::Poison),
    };
    let idx = match i.as_int() {
        Some(v) => v.sext_value() as i64,
        None => return Ok(EvalValue::Poison),
    };
    if nuw && idx < 0 {
        return Ok(EvalValue::Poison);
    }
    let offset = base_ptr.offset.wrapping_add(idx.wrapping_mul(elem_size));
    if inbounds {
        let alloc_size = memory.allocation(base_ptr.alloc).map(|a| a.size() as i64).unwrap_or(0);
        if offset < 0 || offset > alloc_size {
            return Ok(EvalValue::Poison);
        }
    }
    Ok(EvalValue::Ptr(PtrValue { alloc: base_ptr.alloc, offset }))
}

/// Evaluates an `extractelement` over already-evaluated operands (shared by
/// the reference and the compiled evaluator).
pub(crate) fn eval_extractelement(v: &EvalValue, i: &EvalValue) -> Result<EvalValue, Ub> {
    if v.is_poison() && !matches!(v, EvalValue::Vector(_)) {
        return Ok(EvalValue::Poison);
    }
    let idx = match i.as_int() {
        Some(x) => x.zext_value() as usize,
        None => return Ok(EvalValue::Poison),
    };
    match v.lanes() {
        Some(lanes) => Ok(lanes.get(idx).cloned().unwrap_or(EvalValue::Poison)),
        None => Ok(EvalValue::Poison),
    }
}

/// Evaluates an `insertelement` over already-evaluated operands;
/// `lanes_count` is the result type's lane count (shared by the reference
/// and the compiled evaluator).
pub(crate) fn eval_insertelement(
    v: &EvalValue,
    e: EvalValue,
    i: &EvalValue,
    lanes_count: usize,
) -> Result<EvalValue, Ub> {
    let mut lanes: Vec<EvalValue> = match v.lanes() {
        Some(l) => l.to_vec(),
        None => {
            vec![if v.is_poison() { EvalValue::Poison } else { EvalValue::Undef }; lanes_count]
        }
    };
    let idx = match i.as_int() {
        Some(x) => x.zext_value() as usize,
        None => return Ok(EvalValue::Poison),
    };
    if idx >= lanes.len() {
        return Ok(EvalValue::Poison);
    }
    lanes[idx] = e;
    Ok(EvalValue::Vector(lanes))
}

/// Evaluates a `shufflevector` over already-evaluated operands (shared by
/// the reference and the compiled evaluator).
pub(crate) fn eval_shufflevector(
    a: &EvalValue,
    b: &EvalValue,
    mask: &[i32],
) -> Result<EvalValue, Ub> {
    let lanes_a = a.lanes().map(<[EvalValue]>::to_vec).unwrap_or_default();
    let lanes_b = b.lanes().map(<[EvalValue]>::to_vec).unwrap_or_default();
    let n = lanes_a.len();
    let mut out = Vec::with_capacity(mask.len());
    for &m in mask {
        if m < 0 {
            out.push(EvalValue::Poison);
        } else if (m as usize) < n {
            out.push(lanes_a.get(m as usize).cloned().unwrap_or(EvalValue::Poison));
        } else {
            out.push(lanes_b.get(m as usize - n).cloned().unwrap_or(EvalValue::Poison));
        }
    }
    Ok(EvalValue::Vector(out))
}

/// Folds a single side-effect-free instruction over already-evaluated operand
/// values, without running a whole function.
///
/// This is the folding primitive shared by the optimizer's constant folder and
/// the enumerative superoptimizer baseline. Returns `None` when the
/// instruction kind cannot be folded in isolation (memory and control-flow
/// instructions) or when evaluating it would be immediate undefined behaviour
/// (e.g. division by zero) — callers must not fold those.
pub fn fold_instruction(
    kind: &InstKind,
    operands: &[EvalValue],
    result_ty: &Type,
) -> Option<EvalValue> {
    let result = match kind {
        InstKind::Binary { op, flags, .. } => {
            elementwise2(&operands[0], &operands[1], &mut |x, y| eval_binop(*op, x, y, flags))
        }
        InstKind::FBinary { op, fmf, .. } => {
            elementwise2(&operands[0], &operands[1], &mut |x, y| {
                let (xa, ya) = match (x.as_float(), y.as_float()) {
                    (Some(xa), Some(ya)) => (xa, ya),
                    _ => return Ok(EvalValue::Poison),
                };
                if (fmf.nnan && (xa.is_nan() || ya.is_nan()))
                    || (fmf.ninf && (xa.is_infinite() || ya.is_infinite()))
                {
                    return Ok(EvalValue::Poison);
                }
                let r = match op {
                    FBinOp::FAdd => xa + ya,
                    FBinOp::FSub => xa - ya,
                    FBinOp::FMul => xa * ya,
                    FBinOp::FDiv => xa / ya,
                    FBinOp::FRem => xa % ya,
                };
                let kind = match x {
                    EvalValue::Float(k, _) => *k,
                    _ => FloatKind::Double,
                };
                Ok(EvalValue::Float(kind, round_to(kind, r)))
            })
        }
        InstKind::ICmp { pred, .. } => {
            elementwise2(&operands[0], &operands[1], &mut |x, y| eval_icmp(*pred, x, y))
        }
        InstKind::FCmp { pred, .. } => elementwise2(&operands[0], &operands[1], &mut |x, y| {
            match (x.as_float(), y.as_float()) {
                (Some(xa), Some(ya)) => Ok(EvalValue::bool(eval_fcmp(*pred, xa, ya))),
                _ => Ok(EvalValue::Poison),
            }
        }),
        InstKind::Select { .. } => {
            let c = &operands[0];
            match c {
                EvalValue::Poison => Ok(EvalValue::Poison),
                EvalValue::Undef => Ok(EvalValue::Undef),
                EvalValue::Int(v) if v.width() == 1 => {
                    Ok(if v.as_bool() { operands[1].clone() } else { operands[2].clone() })
                }
                _ => return None,
            }
        }
        InstKind::Cast { op, flags, .. } => {
            let scalar = result_ty.scalar_type().clone();
            elementwise1(&operands[0], &mut |x| eval_cast(*op, x, &scalar, flags))
        }
        InstKind::Call { intrinsic, .. } => eval_intrinsic(*intrinsic, operands),
        InstKind::Freeze { .. } => Ok(freeze(&operands[0], result_ty)),
        _ => return None,
    };
    result.ok()
}

/// Converts an evaluated value back into an IR constant of the given type.
///
/// Returns `None` for pointers into allocations (which have no constant
/// spelling) and for vector lanes that cannot be converted.
pub fn to_constant(value: &EvalValue, ty: &Type) -> Option<Constant> {
    match value {
        EvalValue::Int(v) => Some(Constant::Int(*v)),
        EvalValue::Float(k, v) => Some(Constant::Float(*k, *v)),
        EvalValue::Poison => Some(Constant::Poison(ty.clone())),
        EvalValue::Undef => Some(Constant::Undef(ty.clone())),
        EvalValue::Ptr(p) if p.alloc == usize::MAX => Some(Constant::NullPtr),
        EvalValue::Ptr(_) => None,
        EvalValue::Vector(lanes) => {
            let elem_ty = ty.scalar_type();
            let consts: Option<Vec<Constant>> =
                lanes.iter().map(|l| to_constant(l, elem_ty)).collect();
            Some(Constant::Vector(consts?))
        }
    }
}

pub(crate) fn round_to(kind: FloatKind, v: f64) -> f64 {
    match kind {
        FloatKind::Float | FloatKind::Half => v as f32 as f64,
        FloatKind::Double => v,
    }
}

pub(crate) fn freeze(v: &EvalValue, ty: &Type) -> EvalValue {
    match v {
        EvalValue::Poison | EvalValue::Undef => match ty.scalar_type() {
            Type::Int(w) => EvalValue::Int(ApInt::zero(*w)),
            Type::Float(k) => EvalValue::Float(*k, 0.0),
            Type::Ptr => EvalValue::Ptr(PtrValue { alloc: usize::MAX, offset: 0 }),
            _ => EvalValue::Undef,
        },
        EvalValue::Vector(lanes) => {
            EvalValue::Vector(lanes.iter().map(|l| freeze(l, ty.scalar_type())).collect())
        }
        other => other.clone(),
    }
}

pub(crate) type ScalarOp2<'f> = dyn FnMut(&EvalValue, &EvalValue) -> Result<EvalValue, Ub> + 'f;
pub(crate) type ScalarOp1<'f> = dyn FnMut(&EvalValue) -> Result<EvalValue, Ub> + 'f;

/// Statically-dispatched [`elementwise2`]: the generic `F` lets the scalar
/// kernels inline into the compiled evaluator's dispatch loop (the `dyn`
/// variants above cost an indirect call per lane, which dominates scalar
/// workloads).
#[inline(always)]
pub(crate) fn elementwise2_static<F>(
    a: &EvalValue,
    b: &EvalValue,
    mut f: F,
) -> Result<EvalValue, Ub>
where
    F: FnMut(&EvalValue, &EvalValue) -> Result<EvalValue, Ub>,
{
    if let (EvalValue::Vector(_), _) | (_, EvalValue::Vector(_)) = (a, b) {
        return elementwise2(a, b, &mut f);
    }
    // Scalar fast path: apply2 inlined with a static call. Both operands are
    // known non-vectors here, so the poison/undef tests are plain
    // discriminant compares.
    if matches!(a, EvalValue::Poison) || matches!(b, EvalValue::Poison) {
        return Ok(EvalValue::Poison);
    }
    if matches!(a, EvalValue::Undef) || matches!(b, EvalValue::Undef) {
        return Ok(EvalValue::Undef);
    }
    f(a, b)
}

/// Statically-dispatched [`elementwise1`]; see [`elementwise2_static`].
#[inline(always)]
pub(crate) fn elementwise1_static<F>(a: &EvalValue, mut f: F) -> Result<EvalValue, Ub>
where
    F: FnMut(&EvalValue) -> Result<EvalValue, Ub>,
{
    if let EvalValue::Vector(_) = a {
        return elementwise1(a, &mut f);
    }
    if matches!(a, EvalValue::Poison) {
        return Ok(EvalValue::Poison);
    }
    if matches!(a, EvalValue::Undef) {
        return Ok(EvalValue::Undef);
    }
    f(a)
}

/// Applies a scalar operation lane-wise, broadcasting poison/undef operands.
pub(crate) fn elementwise2(a: &EvalValue, b: &EvalValue, f: &mut ScalarOp2<'_>) -> Result<EvalValue, Ub> {
    match (a, b) {
        (EvalValue::Vector(la), EvalValue::Vector(lb)) => {
            let mut out = Vec::with_capacity(la.len());
            for (x, y) in la.iter().zip(lb) {
                out.push(apply2(x, y, f)?);
            }
            Ok(EvalValue::Vector(out))
        }
        (EvalValue::Vector(la), scalar) => {
            let mut out = Vec::with_capacity(la.len());
            for x in la {
                out.push(apply2(x, scalar, f)?);
            }
            Ok(EvalValue::Vector(out))
        }
        (scalar, EvalValue::Vector(lb)) => {
            let mut out = Vec::with_capacity(lb.len());
            for y in lb {
                out.push(apply2(scalar, y, f)?);
            }
            Ok(EvalValue::Vector(out))
        }
        (x, y) => apply2(x, y, f),
    }
}

fn apply2(x: &EvalValue, y: &EvalValue, f: &mut ScalarOp2<'_>) -> Result<EvalValue, Ub> {
    if x.is_poison() || y.is_poison() {
        return Ok(EvalValue::Poison);
    }
    if x.is_undef() || y.is_undef() {
        return Ok(EvalValue::Undef);
    }
    f(x, y)
}

pub(crate) fn elementwise1(a: &EvalValue, f: &mut ScalarOp1<'_>) -> Result<EvalValue, Ub> {
    match a {
        EvalValue::Vector(lanes) => {
            let mut out = Vec::with_capacity(lanes.len());
            for x in lanes {
                out.push(apply1(x, f)?);
            }
            Ok(EvalValue::Vector(out))
        }
        x => apply1(x, f),
    }
}

fn apply1(x: &EvalValue, f: &mut ScalarOp1<'_>) -> Result<EvalValue, Ub> {
    if x.is_poison() {
        return Ok(EvalValue::Poison);
    }
    if x.is_undef() {
        return Ok(EvalValue::Undef);
    }
    f(x)
}

pub(crate) fn eval_binop(op: BinOp, x: &EvalValue, y: &EvalValue, flags: &IntFlags) -> Result<EvalValue, Ub> {
    let (a, b) = match (x.as_int(), y.as_int()) {
        (Some(a), Some(b)) => (*a, *b),
        _ => return Ok(EvalValue::Poison),
    };
    let poison = Ok(EvalValue::Poison);
    let ok = |v: ApInt| Ok(EvalValue::Int(v));
    match op {
        // The overflow analyses only matter when a wrap flag is set; the
        // unflagged forms (the common case on the hot path) take the plain
        // wrapping operation directly.
        BinOp::Add => {
            if !flags.nuw && !flags.nsw {
                return ok(a.add(&b));
            }
            let (r, uo) = a.uadd_overflow(&b);
            let (_, so) = a.sadd_overflow(&b);
            if (flags.nuw && uo) || (flags.nsw && so) {
                return poison;
            }
            ok(r)
        }
        BinOp::Sub => {
            if !flags.nuw && !flags.nsw {
                return ok(a.sub(&b));
            }
            let (r, uo) = a.usub_overflow(&b);
            let (_, so) = a.ssub_overflow(&b);
            if (flags.nuw && uo) || (flags.nsw && so) {
                return poison;
            }
            ok(r)
        }
        BinOp::Mul => {
            if !flags.nuw && !flags.nsw {
                return ok(a.mul(&b));
            }
            let (r, uo) = a.umul_overflow(&b);
            let (_, so) = a.smul_overflow(&b);
            if (flags.nuw && uo) || (flags.nsw && so) {
                return poison;
            }
            ok(r)
        }
        BinOp::UDiv => match a.udiv(&b) {
            None => Err(Ub::new("division by zero")),
            Some(r) => {
                if flags.exact && a.urem(&b).map(|m| !m.is_zero()).unwrap_or(false) {
                    return poison;
                }
                ok(r)
            }
        },
        BinOp::SDiv => match a.sdiv(&b) {
            None => Err(Ub::new(if b.is_zero() {
                "division by zero"
            } else {
                "signed division overflow"
            })),
            Some(r) => {
                if flags.exact && a.srem(&b).map(|m| !m.is_zero()).unwrap_or(false) {
                    return poison;
                }
                ok(r)
            }
        },
        BinOp::URem => match a.urem(&b) {
            None => Err(Ub::new("remainder by zero")),
            Some(r) => ok(r),
        },
        BinOp::SRem => match a.srem(&b) {
            None => Err(Ub::new(if b.is_zero() {
                "remainder by zero"
            } else {
                "signed remainder overflow"
            })),
            Some(r) => ok(r),
        },
        BinOp::Shl => match a.shl(&b) {
            None => poison,
            Some(r) => {
                let amount = b;
                if flags.nuw && r.lshr(&amount) != Some(a) {
                    return poison;
                }
                if flags.nsw && r.ashr(&amount) != Some(a) {
                    return poison;
                }
                ok(r)
            }
        },
        BinOp::LShr => match a.lshr(&b) {
            None => poison,
            Some(r) => {
                if flags.exact && r.shl(&b) != Some(a) {
                    return poison;
                }
                ok(r)
            }
        },
        BinOp::AShr => match a.ashr(&b) {
            None => poison,
            Some(r) => {
                if flags.exact && r.shl(&b) != Some(a) {
                    return poison;
                }
                ok(r)
            }
        },
        BinOp::And => ok(a.and(&b)),
        BinOp::Or => {
            if flags.disjoint && !a.and(&b).is_zero() {
                return poison;
            }
            ok(a.or(&b))
        }
        BinOp::Xor => ok(a.xor(&b)),
    }
}

pub(crate) fn eval_icmp(pred: ICmpPred, x: &EvalValue, y: &EvalValue) -> Result<EvalValue, Ub> {
    if let (EvalValue::Ptr(a), EvalValue::Ptr(b)) = (x, y) {
        let result = match pred {
            ICmpPred::Eq => a == b,
            ICmpPred::Ne => a != b,
            _ => {
                if a.alloc == b.alloc {
                    return eval_icmp(
                        pred,
                        &EvalValue::int_signed(64, a.offset as i128),
                        &EvalValue::int_signed(64, b.offset as i128),
                    );
                }
                return Ok(EvalValue::Undef);
            }
        };
        return Ok(EvalValue::bool(result));
    }
    let (a, b) = match (x.as_int(), y.as_int()) {
        (Some(a), Some(b)) => (a, b),
        _ => return Ok(EvalValue::Poison),
    };
    let r = match pred {
        ICmpPred::Eq => a == b,
        ICmpPred::Ne => a != b,
        ICmpPred::Ugt => b.ult(a),
        ICmpPred::Uge => b.ule(a),
        ICmpPred::Ult => a.ult(b),
        ICmpPred::Ule => a.ule(b),
        ICmpPred::Sgt => b.slt(a),
        ICmpPred::Sge => b.sle(a),
        ICmpPred::Slt => a.slt(b),
        ICmpPred::Sle => a.sle(b),
    };
    Ok(EvalValue::bool(r))
}

pub(crate) fn eval_fcmp(pred: FCmpPred, a: f64, b: f64) -> bool {
    let unordered = a.is_nan() || b.is_nan();
    match pred {
        FCmpPred::False => false,
        FCmpPred::True => true,
        FCmpPred::Ord => !unordered,
        FCmpPred::Uno => unordered,
        FCmpPred::Oeq => !unordered && a == b,
        FCmpPred::Ogt => !unordered && a > b,
        FCmpPred::Oge => !unordered && a >= b,
        FCmpPred::Olt => !unordered && a < b,
        FCmpPred::Ole => !unordered && a <= b,
        FCmpPred::One => !unordered && a != b,
        FCmpPred::Ueq => unordered || a == b,
        FCmpPred::Ugt => unordered || a > b,
        FCmpPred::Uge => unordered || a >= b,
        FCmpPred::Ult => unordered || a < b,
        FCmpPred::Ule => unordered || a <= b,
        FCmpPred::Une => unordered || a != b,
    }
}

pub(crate) fn eval_cast(op: CastOp, x: &EvalValue, to: &Type, flags: &IntFlags) -> Result<EvalValue, Ub> {
    let poison = Ok(EvalValue::Poison);
    match op {
        CastOp::Trunc => {
            let v = match x.as_int() {
                Some(v) => v,
                None => return poison,
            };
            let w = to.int_width().expect("verified");
            if flags.nuw && !v.trunc_is_nuw(w) {
                return poison;
            }
            if flags.nsw && !v.trunc_is_nsw(w) {
                return poison;
            }
            Ok(EvalValue::Int(v.trunc(w)))
        }
        CastOp::ZExt => {
            let v = match x.as_int() {
                Some(v) => v,
                None => return poison,
            };
            if flags.nneg && v.is_negative() {
                return poison;
            }
            Ok(EvalValue::Int(v.zext(to.int_width().expect("verified"))))
        }
        CastOp::SExt => match x.as_int() {
            Some(v) => Ok(EvalValue::Int(v.sext(to.int_width().expect("verified")))),
            None => poison,
        },
        CastOp::FpTrunc | CastOp::FpExt => match (x.as_float(), to) {
            (Some(v), Type::Float(k)) => Ok(EvalValue::Float(*k, round_to(*k, v))),
            _ => poison,
        },
        CastOp::FpToUi => match (x.as_float(), to.int_width()) {
            (Some(v), Some(w)) => {
                if v.is_nan() || v < 0.0 || v >= 2f64.powi(w as i32) {
                    poison
                } else {
                    Ok(EvalValue::Int(ApInt::new(w, v as u128)))
                }
            }
            _ => poison,
        },
        CastOp::FpToSi => match (x.as_float(), to.int_width()) {
            (Some(v), Some(w)) => {
                let bound = 2f64.powi(w as i32 - 1);
                if v.is_nan() || v < -bound || v >= bound {
                    poison
                } else {
                    Ok(EvalValue::Int(ApInt::from_i128(w, v as i128)))
                }
            }
            _ => poison,
        },
        CastOp::UiToFp => match (x.as_int(), to) {
            (Some(v), Type::Float(k)) => {
                if flags.nneg && v.is_negative() {
                    return poison;
                }
                Ok(EvalValue::Float(*k, round_to(*k, v.zext_value() as f64)))
            }
            _ => poison,
        },
        CastOp::SiToFp => match (x.as_int(), to) {
            (Some(v), Type::Float(k)) => Ok(EvalValue::Float(*k, round_to(*k, v.sext_value() as f64))),
            _ => poison,
        },
        CastOp::PtrToInt => match x {
            EvalValue::Ptr(p) => {
                let w = to.int_width().expect("verified");
                // A synthetic but stable address: allocation id in the high bits.
                let addr = ((p.alloc as u128) << 32).wrapping_add(p.offset as u32 as u128);
                Ok(EvalValue::Int(ApInt::new(w, addr)))
            }
            _ => poison,
        },
        CastOp::IntToPtr => match x.as_int() {
            Some(v) => Ok(EvalValue::Ptr(PtrValue {
                alloc: (v.zext_value() >> 32) as usize,
                offset: (v.zext_value() as u32) as i64,
            })),
            None => poison,
        },
        CastOp::Bitcast => match (x, to) {
            (EvalValue::Int(v), Type::Float(k)) => {
                let f = match k {
                    FloatKind::Float => f32::from_bits(v.zext_value() as u32) as f64,
                    _ => f64::from_bits(v.zext_value() as u64),
                };
                Ok(EvalValue::Float(*k, f))
            }
            (EvalValue::Float(k, v), Type::Int(w)) => {
                let bits = match k {
                    FloatKind::Float => (*v as f32).to_bits() as u128,
                    _ => v.to_bits() as u128,
                };
                Ok(EvalValue::Int(ApInt::new(*w, bits)))
            }
            (EvalValue::Int(v), Type::Int(w)) => Ok(EvalValue::Int(ApInt::new(*w, v.zext_value()))),
            _ => poison,
        },
    }
}

pub(crate) fn eval_intrinsic(intrinsic: Intrinsic, args: &[EvalValue]) -> Result<EvalValue, Ub> {
    // Integer two-operand intrinsics and float intrinsics are elementwise.
    match intrinsic {
        Intrinsic::Umin | Intrinsic::Umax | Intrinsic::Smin | Intrinsic::Smax
        | Intrinsic::UaddSat | Intrinsic::SaddSat | Intrinsic::UsubSat | Intrinsic::SsubSat => {
            elementwise2_static(&args[0], &args[1], |x, y| {
                let (a, b) = match (x.as_int(), y.as_int()) {
                    (Some(a), Some(b)) => (a, b),
                    _ => return Ok(EvalValue::Poison),
                };
                let r = match intrinsic {
                    Intrinsic::Umin => a.umin(b),
                    Intrinsic::Umax => a.umax(b),
                    Intrinsic::Smin => a.smin(b),
                    Intrinsic::Smax => a.smax(b),
                    Intrinsic::UaddSat => a.uadd_sat(b),
                    Intrinsic::SaddSat => a.sadd_sat(b),
                    Intrinsic::UsubSat => a.usub_sat(b),
                    Intrinsic::SsubSat => a.ssub_sat(b),
                    _ => unreachable!(),
                };
                Ok(EvalValue::Int(r))
            })
        }
        Intrinsic::Abs => {
            let poison_on_min = args[1].as_bool().unwrap_or(false);
            elementwise1_static(&args[0], |x| match x.as_int() {
                Some(v) => {
                    if poison_on_min && *v == ApInt::signed_min(v.width()) {
                        Ok(EvalValue::Poison)
                    } else {
                        Ok(EvalValue::Int(v.abs()))
                    }
                }
                None => Ok(EvalValue::Poison),
            })
        }
        Intrinsic::Ctpop | Intrinsic::Bswap | Intrinsic::Bitreverse => {
            elementwise1_static(&args[0], |x| match x.as_int() {
                Some(v) => Ok(EvalValue::Int(match intrinsic {
                    Intrinsic::Ctpop => ApInt::new(v.width(), v.count_ones() as u128),
                    Intrinsic::Bswap => v.bswap(),
                    _ => v.bitreverse(),
                })),
                None => Ok(EvalValue::Poison),
            })
        }
        Intrinsic::Ctlz | Intrinsic::Cttz => {
            let poison_on_zero = args[1].as_bool().unwrap_or(false);
            elementwise1_static(&args[0], |x| match x.as_int() {
                Some(v) => {
                    if poison_on_zero && v.is_zero() {
                        Ok(EvalValue::Poison)
                    } else {
                        let count = if intrinsic == Intrinsic::Ctlz {
                            v.leading_zeros()
                        } else {
                            v.trailing_zeros()
                        };
                        Ok(EvalValue::Int(ApInt::new(v.width(), count as u128)))
                    }
                }
                None => Ok(EvalValue::Poison),
            })
        }
        Intrinsic::Fshl | Intrinsic::Fshr => {
            // Three operands, all the same shape: fold lane-wise by zipping.
            let lanes = args[0].lanes().map(<[EvalValue]>::len);
            match lanes {
                Some(n) => {
                    let mut out = Vec::with_capacity(n);
                    for i in 0..n {
                        let a = &args[0].lanes().unwrap()[i];
                        let b = &args[1].lanes().unwrap()[i];
                        let c = &args[2].lanes().unwrap()[i];
                        out.push(funnel_shift(intrinsic, a, b, c));
                    }
                    Ok(EvalValue::Vector(out))
                }
                None => Ok(funnel_shift(intrinsic, &args[0], &args[1], &args[2])),
            }
        }
        Intrinsic::Fabs | Intrinsic::Sqrt => elementwise1_static(&args[0], |x| match x {
            EvalValue::Float(k, v) => Ok(EvalValue::Float(
                *k,
                round_to(*k, if intrinsic == Intrinsic::Fabs { v.abs() } else { v.sqrt() }),
            )),
            _ => Ok(EvalValue::Poison),
        }),
        Intrinsic::Minnum | Intrinsic::Maxnum | Intrinsic::Copysign => {
            elementwise2_static(&args[0], &args[1], |x, y| match (x, y) {
                (EvalValue::Float(k, a), EvalValue::Float(_, b)) => {
                    let r = match intrinsic {
                        Intrinsic::Minnum => {
                            if a.is_nan() { *b } else if b.is_nan() { *a } else { a.min(*b) }
                        }
                        Intrinsic::Maxnum => {
                            if a.is_nan() { *b } else if b.is_nan() { *a } else { a.max(*b) }
                        }
                        _ => a.copysign(*b),
                    };
                    Ok(EvalValue::Float(*k, round_to(*k, r)))
                }
                _ => Ok(EvalValue::Poison),
            })
        }
        Intrinsic::Fma => {
            let lanes = args[0].lanes().map(<[EvalValue]>::len);
            let scalar_fma = |a: &EvalValue, b: &EvalValue, c: &EvalValue| -> EvalValue {
                match (a, b, c) {
                    (EvalValue::Float(k, x), EvalValue::Float(_, y), EvalValue::Float(_, z)) => {
                        EvalValue::Float(*k, round_to(*k, x.mul_add(*y, *z)))
                    }
                    _ => EvalValue::Poison,
                }
            };
            match lanes {
                Some(n) => {
                    let mut out = Vec::with_capacity(n);
                    for i in 0..n {
                        out.push(scalar_fma(
                            &args[0].lanes().unwrap()[i],
                            &args[1].lanes().unwrap()[i],
                            &args[2].lanes().unwrap()[i],
                        ));
                    }
                    Ok(EvalValue::Vector(out))
                }
                None => Ok(scalar_fma(&args[0], &args[1], &args[2])),
            }
        }
    }
}

fn funnel_shift(intrinsic: Intrinsic, a: &EvalValue, b: &EvalValue, c: &EvalValue) -> EvalValue {
    if a.is_poison() || b.is_poison() || c.is_poison() {
        return EvalValue::Poison;
    }
    if a.is_undef() || b.is_undef() || c.is_undef() {
        return EvalValue::Undef;
    }
    match (a.as_int(), b.as_int(), c.as_int()) {
        (Some(x), Some(y), Some(amt)) => EvalValue::Int(if intrinsic == Intrinsic::Fshl {
            x.fshl(y, amt)
        } else {
            y.fshr(x, amt)
        }),
        _ => EvalValue::Poison,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    fn eval_ret(text: &str, args: &[EvalValue]) -> Result<Option<EvalValue>, Ub> {
        let f = parse_function(text).unwrap();
        let mut memory = Memory::new();
        // Bind each pointer argument to a fresh 64-byte allocation.
        let mut bound = Vec::new();
        for (i, p) in f.params.iter().enumerate() {
            if p.ty.is_ptr() && args.get(i).is_none() {
                let id = memory.allocate_zeroed(64);
                bound.push(EvalValue::Ptr(PtrValue { alloc: id, offset: 0 }));
            } else {
                bound.push(args[i].clone());
            }
        }
        evaluate_default(&f, &bound, memory).map(|o| o.result)
    }

    #[test]
    fn clamp_example_from_figure_1() {
        let src = "define i8 @src(i32 %0) {\n\
            %2 = icmp slt i32 %0, 0\n\
            %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
            %4 = trunc nuw i32 %3 to i8\n\
            %5 = select i1 %2, i8 0, i8 %4\n\
            ret i8 %5\n}";
        assert_eq!(eval_ret(src, &[EvalValue::int_signed(32, -5)]).unwrap(), Some(EvalValue::int(8, 0)));
        assert_eq!(eval_ret(src, &[EvalValue::int(32, 300)]).unwrap(), Some(EvalValue::int(8, 255)));
        assert_eq!(eval_ret(src, &[EvalValue::int(32, 42)]).unwrap(), Some(EvalValue::int(8, 42)));
    }

    #[test]
    fn poison_from_flag_violations() {
        let f = "define i8 @f(i8 %x) {\n %r = add nuw i8 %x, 200\n ret i8 %r\n}";
        assert_eq!(eval_ret(f, &[EvalValue::int(8, 100)]).unwrap(), Some(EvalValue::Poison));
        assert_eq!(eval_ret(f, &[EvalValue::int(8, 10)]).unwrap(), Some(EvalValue::int(8, 210)));

        let g = "define i8 @g(i8 %x) {\n %r = shl nuw i8 %x, 1\n ret i8 %r\n}";
        assert_eq!(eval_ret(g, &[EvalValue::int(8, 0x80)]).unwrap(), Some(EvalValue::Poison));
        assert_eq!(eval_ret(g, &[EvalValue::int(8, 0x40)]).unwrap(), Some(EvalValue::int(8, 0x80)));

        let h = "define i8 @h(i8 %x) {\n %r = or disjoint i8 %x, 1\n ret i8 %r\n}";
        assert_eq!(eval_ret(h, &[EvalValue::int(8, 1)]).unwrap(), Some(EvalValue::Poison));
        assert_eq!(eval_ret(h, &[EvalValue::int(8, 2)]).unwrap(), Some(EvalValue::int(8, 3)));

        let t = "define i8 @t(i32 %x) {\n %r = trunc nuw i32 %x to i8\n ret i8 %r\n}";
        assert_eq!(eval_ret(t, &[EvalValue::int(32, 300)]).unwrap(), Some(EvalValue::Poison));
        assert_eq!(eval_ret(t, &[EvalValue::int(32, 200)]).unwrap(), Some(EvalValue::int(8, 200)));
    }

    #[test]
    fn division_ub() {
        let f = "define i32 @f(i32 %x, i32 %y) {\n %r = sdiv i32 %x, %y\n ret i32 %r\n}";
        assert!(eval_ret(f, &[EvalValue::int(32, 5), EvalValue::int(32, 0)]).is_err());
        assert!(eval_ret(
            f,
            &[EvalValue::int_signed(32, i32::MIN as i128), EvalValue::int_signed(32, -1)]
        )
        .is_err());
        assert_eq!(
            eval_ret(f, &[EvalValue::int(32, 12), EvalValue::int(32, 3)]).unwrap(),
            Some(EvalValue::int(32, 4))
        );
    }

    #[test]
    fn shift_out_of_range_is_poison_not_ub() {
        let f = "define i32 @f(i32 %x, i32 %y) {\n %r = lshr i32 %x, %y\n ret i32 %r\n}";
        assert_eq!(
            eval_ret(f, &[EvalValue::int(32, 5), EvalValue::int(32, 40)]).unwrap(),
            Some(EvalValue::Poison)
        );
    }

    #[test]
    fn memory_roundtrip_and_ub() {
        let f = "define i32 @f(ptr %p) {\n\
            store i32 77, ptr %p, align 4\n\
            %v = load i32, ptr %p, align 4\n\
            ret i32 %v\n}";
        assert_eq!(eval_ret(f, &[]).unwrap(), Some(EvalValue::int(32, 77)));

        // Out-of-bounds GEP + store is UB (the allocation is 64 bytes).
        let g = "define void @g(ptr %p) {\n\
            %q = getelementptr i32, ptr %p, i64 100\n\
            store i32 1, ptr %q, align 4\n\
            ret void\n}";
        assert!(eval_ret(g, &[]).is_err());
    }

    #[test]
    fn consecutive_load_merge_case_study_1() {
        // Figure 4a/4d: two i16 loads combined == one i32 load (little endian).
        let src = "define i32 @src(ptr %0) {\n\
            %2 = load i16, ptr %0, align 2\n\
            %3 = getelementptr i8, ptr %0, i64 2\n\
            %4 = load i16, ptr %3, align 1\n\
            %5 = zext i16 %4 to i32\n\
            %6 = shl nuw i32 %5, 16\n\
            %7 = zext i16 %2 to i32\n\
            %8 = or disjoint i32 %6, %7\n\
            ret i32 %8\n}";
        let tgt = "define i32 @tgt(ptr %0) {\n\
            %2 = load i32, ptr %0, align 2\n\
            ret i32 %2\n}";
        let sf = parse_function(src).unwrap();
        let tf = parse_function(tgt).unwrap();
        let mut mem = Memory::new();
        let alloc = mem.allocate(crate::memory::Allocation::with_bytes(vec![
            0x34, 0x12, 0x78, 0x56, 0, 0, 0, 0,
        ]));
        let args = vec![EvalValue::Ptr(PtrValue { alloc, offset: 0 })];
        let a = evaluate_default(&sf, &args, mem.clone()).unwrap();
        let b = evaluate_default(&tf, &args, mem).unwrap();
        assert_eq!(a.result, Some(EvalValue::int(32, 0x5678_1234)));
        assert_eq!(a.result, b.result);
    }

    #[test]
    fn vector_operations_are_lane_wise() {
        let f = "define <4 x i8> @f(<4 x i32> %x) {\n\
            %c = icmp slt <4 x i32> %x, zeroinitializer\n\
            %m = call <4 x i32> @llvm.umin.v4i32(<4 x i32> %x, <4 x i32> splat (i32 255))\n\
            %t = trunc <4 x i32> %m to <4 x i8>\n\
            %s = select <4 x i1> %c, <4 x i8> zeroinitializer, <4 x i8> %t\n\
            ret <4 x i8> %s\n}";
        let input = EvalValue::Vector(vec![
            EvalValue::int_signed(32, -1),
            EvalValue::int(32, 100),
            EvalValue::int(32, 300),
            EvalValue::int(32, 0),
        ]);
        let expected = EvalValue::Vector(vec![
            EvalValue::int(8, 0),
            EvalValue::int(8, 100),
            EvalValue::int(8, 255),
            EvalValue::int(8, 0),
        ]);
        assert_eq!(eval_ret(f, &[input]).unwrap(), Some(expected));
    }

    #[test]
    fn float_case_study_3() {
        let src = "define i1 @src(double %0) {\n\
            %2 = fcmp ord double %0, 0.000000e+00\n\
            %3 = select i1 %2, double %0, double 0.000000e+00\n\
            %4 = fcmp oeq double %3, 1.000000e+00\n\
            ret i1 %4\n}";
        assert_eq!(
            eval_ret(src, &[EvalValue::Float(FloatKind::Double, 1.0)]).unwrap(),
            Some(EvalValue::bool(true))
        );
        assert_eq!(
            eval_ret(src, &[EvalValue::Float(FloatKind::Double, f64::NAN)]).unwrap(),
            Some(EvalValue::bool(false))
        );
        assert_eq!(
            eval_ret(src, &[EvalValue::Float(FloatKind::Double, 2.0)]).unwrap(),
            Some(EvalValue::bool(false))
        );
    }

    #[test]
    fn umax_shift_case_study_2() {
        let src = "define i8 @src(i8 %0) {\n\
            %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)\n\
            %3 = shl nuw i8 %2, 1\n\
            %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)\n\
            ret i8 %4\n}";
        assert_eq!(eval_ret(src, &[EvalValue::int(8, 0)]).unwrap(), Some(EvalValue::int(8, 16)));
        assert_eq!(eval_ret(src, &[EvalValue::int(8, 20)]).unwrap(), Some(EvalValue::int(8, 40)));
        assert_eq!(eval_ret(src, &[EvalValue::int(8, 5)]).unwrap(), Some(EvalValue::int(8, 16)));
    }

    #[test]
    fn loops_execute_and_terminate() {
        let f = "define i32 @sum(i32 %n) {\n\
            entry:\n  br label %header\n\
            header:\n\
              %i = phi i32 [ 0, %entry ], [ %i.next, %body ]\n\
              %acc = phi i32 [ 0, %entry ], [ %acc.next, %body ]\n\
              %cmp = icmp slt i32 %i, %n\n\
              br i1 %cmp, label %body, label %exit\n\
            body:\n\
              %acc.next = add i32 %acc, %i\n\
              %i.next = add i32 %i, 1\n\
              br label %header\n\
            exit:\n  ret i32 %acc\n}";
        assert_eq!(eval_ret(f, &[EvalValue::int(32, 5)]).unwrap(), Some(EvalValue::int(32, 10)));
        // Step limit guards against effectively-unbounded loops.
        let parsed = parse_function(f).unwrap();
        let res = evaluate(&parsed, &[EvalValue::int(32, 1_000_000)], Memory::new(), 100);
        assert!(res.is_err());
    }

    #[test]
    fn branch_on_poison_is_ub() {
        let f = "define i32 @f(i32 %x) {\n\
            %p = add nuw i32 %x, 1\n\
            %c = icmp eq i32 %p, 0\n\
            br i1 %c, label %a, label %b\n\
            a:\n  ret i32 1\n\
            b:\n  ret i32 2\n}";
        // x = UINT_MAX makes %p poison; branching on it is UB.
        assert!(eval_ret(f, &[EvalValue::int(32, u32::MAX as u128)]).is_err());
        assert_eq!(eval_ret(f, &[EvalValue::int(32, 1)]).unwrap(), Some(EvalValue::int(32, 2)));
    }

    #[test]
    fn freeze_and_undef() {
        let f = "define i32 @f() {\n %x = freeze i32 undef\n %y = add i32 %x, 1\n ret i32 %y\n}";
        assert_eq!(eval_ret(f, &[]).unwrap(), Some(EvalValue::int(32, 1)));
        let g = "define i32 @g() {\n %y = add i32 undef, 1\n ret i32 %y\n}";
        assert_eq!(eval_ret(g, &[]).unwrap(), Some(EvalValue::Undef));
    }

    #[test]
    fn misc_intrinsics() {
        let f = "define i32 @f(i32 %x) {\n %r = call i32 @llvm.ctpop.i32(i32 %x)\n ret i32 %r\n}";
        assert_eq!(eval_ret(f, &[EvalValue::int(32, 0xf0f0)]).unwrap(), Some(EvalValue::int(32, 8)));
        let g = "define i16 @g(i16 %x) {\n %r = call i16 @llvm.bswap.i16(i16 %x)\n ret i16 %r\n}";
        assert_eq!(eval_ret(g, &[EvalValue::int(16, 0x1234)]).unwrap(), Some(EvalValue::int(16, 0x3412)));
        let h = "define i8 @h(i8 %x) {\n %r = call i8 @llvm.ctlz.i8(i8 %x, i1 true)\n ret i8 %r\n}";
        assert_eq!(eval_ret(h, &[EvalValue::int(8, 0)]).unwrap(), Some(EvalValue::Poison));
        assert_eq!(eval_ret(h, &[EvalValue::int(8, 1)]).unwrap(), Some(EvalValue::int(8, 7)));
        let s = "define i8 @s(i8 %x, i8 %y) {\n %r = call i8 @llvm.uadd.sat.i8(i8 %x, i8 %y)\n ret i8 %r\n}";
        assert_eq!(
            eval_ret(s, &[EvalValue::int(8, 200), EvalValue::int(8, 100)]).unwrap(),
            Some(EvalValue::int(8, 255))
        );
        let fsh = "define i8 @fsh(i8 %x, i8 %y) {\n %r = call i8 @llvm.fshl.i8(i8 %x, i8 %y, i8 3)\n ret i8 %r\n}";
        assert_eq!(
            eval_ret(fsh, &[EvalValue::int(8, 0b1000_0001), EvalValue::int(8, 0b1100_0000)]).unwrap(),
            Some(EvalValue::int(8, 0b0000_1110))
        );
    }

    #[test]
    fn float_intrinsics() {
        let f = "define double @f(double %x) {\n %r = call double @llvm.fabs.f64(double %x)\n ret double %r\n}";
        assert_eq!(
            eval_ret(f, &[EvalValue::Float(FloatKind::Double, -2.5)]).unwrap(),
            Some(EvalValue::Float(FloatKind::Double, 2.5))
        );
        let g = "define double @g(double %x, double %y) {\n %r = call double @llvm.maxnum.f64(double %x, double %y)\n ret double %r\n}";
        assert_eq!(
            eval_ret(
                g,
                &[EvalValue::Float(FloatKind::Double, f64::NAN), EvalValue::Float(FloatKind::Double, 3.0)]
            )
            .unwrap(),
            Some(EvalValue::Float(FloatKind::Double, 3.0))
        );
    }

    #[test]
    fn vector_shuffle_insert_extract() {
        let f = "define i32 @f(<4 x i32> %v) {\n\
            %s = shufflevector <4 x i32> %v, <4 x i32> %v, <2 x i32> <i32 3, i32 0>\n\
            %e = extractelement <2 x i32> %s, i64 0\n\
            ret i32 %e\n}";
        let input = EvalValue::Vector(vec![
            EvalValue::int(32, 10),
            EvalValue::int(32, 20),
            EvalValue::int(32, 30),
            EvalValue::int(32, 40),
        ]);
        assert_eq!(eval_ret(f, &[input]).unwrap(), Some(EvalValue::int(32, 40)));
    }

    #[test]
    fn wrong_arity_is_reported() {
        let f = parse_function("define i32 @f(i32 %x) {\n ret i32 %x\n}").unwrap();
        assert!(evaluate_default(&f, &[], Memory::new()).is_err());
    }
}
