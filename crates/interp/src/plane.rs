//! Type-specialized *plane* evaluation for straight-line scalar-integer
//! functions.
//!
//! The batched evaluator ([`CompiledFunction::evaluate_batch_with_limit`](crate::compiled::CompiledFunction::evaluate_batch_with_limit))
//! already amortizes step decode over a batch of inputs, but every lane of
//! every step still flows through `EvalValue` — an enum whose discriminant
//! check, `ApInt` width bookkeeping and per-lane `Result` plumbing dominate
//! the cost of the actual arithmetic. For the functions the LPO corpora are
//! made of (one block, integer scalars ≤ 64 bits, no memory), all of that
//! structure is static: every value is a `u64` plus two flag bits.
//!
//! [`PlanePlan::compile`] checks a function against that shape and, when it
//! fits, lowers it to a *plane program*: each SSA register becomes a plane —
//! a flat `lanes`-long `u64` array — and each instruction becomes one pass
//! of a tight `for` loop over the operand planes, which the compiler can
//! auto-vectorize. Poison and undef are tracked per lane in a parallel `u8`
//! state plane (`1` = poison, `2` = undef); immediate UB (division by zero
//! and friends) is recorded per *lane* as a one-byte code indexing a static
//! message table, so a trapping lane never allocates and never disturbs its
//! neighbours.
//!
//! The plan is embedded in [`CompiledFunction`](crate::compiled::CompiledFunction) at compile time (the check
//! is one linear walk), so callers that already cache compiled functions —
//! the translation validator's `CompileCache` in particular — get the plane
//! program for free. Ineligible functions (memory, vectors, floats, control
//! flow, wide integers) simply compile with `plane: None` and keep using the
//! batched evaluator; [`PlanePlan::compile`] returning `None` *is* the
//! fallback contract.
//!
//! # Semantics
//!
//! [`PlanePlan::evaluate_lanes`] reproduces the batched evaluator bit for
//! bit on eligible functions and inputs:
//!
//! * identical results, poison/undef propagation and UB messages per lane
//!   (the differential fuzz suite in `tests/plane_differential.rs` proves
//!   this over thousands of random functions);
//! * identical lock-step step accounting — instruction `j` executes only if
//!   `j + 1 <= step_limit`, the `ret` costs one more step, and lanes still
//!   live when the limit trips report `execution step limit exceeded`;
//! * per-lane isolation: one lane's UB or poison never leaks into another.

use crate::compiled::EvalArena;
use crate::eval::{EvalOutcome, Ub};
use crate::memory::Memory;
use crate::value::EvalValue;
use lpo_ir::apint::ApInt;
use lpo_ir::constant::Constant;
use lpo_ir::flags::IntFlags;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, CastOp, ICmpPred, InstId, InstKind, Intrinsic, Value};
use lpo_ir::types::Type;
use std::collections::HashMap;

/// Per-lane UB codes; index into [`UB_MESSAGES`]. `0` means "no UB".
const UB_DIV_ZERO: u8 = 1;
const UB_SDIV_OVERFLOW: u8 = 2;
const UB_REM_ZERO: u8 = 3;
const UB_SREM_OVERFLOW: u8 = 4;
const UB_STEP_LIMIT: u8 = 5;

/// The only UB diagnostics reachable from plane-eligible instructions, with
/// byte-for-byte the messages the interpreter's other evaluators emit.
const UB_MESSAGES: [&str; 6] = [
    "",
    "division by zero",
    "signed division overflow",
    "remainder by zero",
    "signed remainder overflow",
    "execution step limit exceeded",
];

/// Lane state bits: bit 0 = poison, bit 1 = undef. Poison dominates when
/// operand states are OR-combined, matching the evaluators' check order.
const ST_POISON: u8 = 1;
const ST_UNDEF: u8 = 2;

/// Tag bit marking an unresolved instruction reference during compilation.
const INST_BIT: u32 = 1 << 31;
/// Sentinel for operand slots a step does not use.
const UNUSED: u32 = u32::MAX;

/// One lowered instruction: an opcode payload plus up to three operand
/// plane indexes and the destination plane.
#[derive(Clone, Debug)]
struct PStep {
    op: POp,
    a: u32,
    b: u32,
    c: u32,
    dst: u32,
}

/// Plane opcodes. Widths are baked in at compile time so the execution
/// loops never consult a type.
#[derive(Clone, Debug)]
enum POp {
    /// Integer binary op over planes `a`, `b`.
    Bin { op: BinOp, flags: IntFlags, w: u32 },
    /// Integer compare of planes `a`, `b`; destination is an `i1` plane.
    Cmp { pred: ICmpPred, w: u32 },
    /// `select` with condition plane `a` and value planes `b`/`c`.
    Sel,
    /// `trunc`/`zext`/`sext` from `from_w` to `to_w`.
    Cast { op: CastOp, flags: IntFlags, from_w: u32, to_w: u32 },
    /// Two-operand integer intrinsic (min/max/saturating arithmetic).
    Intr2 { intr: Intrinsic, w: u32 },
    /// `abs`/`ctlz`/`cttz` with their compile-time-constant poison flag.
    IntrFlag { intr: Intrinsic, w: u32, flag: bool },
    /// One-operand integer intrinsic (`ctpop`/`bswap`/`bitreverse`).
    Intr1 { intr: Intrinsic, w: u32 },
    /// Funnel shift over planes `a` (high), `b` (low), `c` (amount).
    Funnel { fshr: bool, w: u32 },
    /// `freeze`: poison/undef lanes become zero.
    Freeze,
}

/// A straight-line scalar-integer function lowered to plane form.
///
/// Plane layout is `[params][constants][instruction results]`, so a step's
/// destination plane index is always strictly greater than its operands' —
/// which is what lets the executor split the plane storage mutably without
/// `unsafe`.
#[derive(Clone, Debug)]
pub struct PlanePlan {
    num_params: usize,
    param_widths: Vec<u32>,
    /// Broadcast constants: `(canonical value, lane state)`.
    consts: Vec<(u64, u8)>,
    num_planes: usize,
    steps: Vec<PStep>,
    ret_plane: u32,
    ret_width: u32,
}

/// The per-lane results of one plane sweep.
///
/// Values, states and UB codes are copied out of the arena so the result
/// owns its data (the arena is immediately reusable).
#[derive(Clone, Debug)]
pub struct PlaneResult {
    vals: Vec<u64>,
    states: Vec<u8>,
    ub: Vec<u8>,
    steps: usize,
    ret_width: u32,
}

impl PlaneResult {
    /// Number of lanes in this sweep.
    pub fn lanes(&self) -> usize {
        self.ub.len()
    }

    /// The step count every non-UB lane reports (instructions + the `ret`).
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Width of the returned integer.
    pub fn ret_width(&self) -> u32 {
        self.ret_width
    }

    /// Whether the lane hit immediate UB.
    pub fn is_ub(&self, lane: usize) -> bool {
        self.ub[lane] != 0
    }

    /// The lane's UB diagnostic, if it hit UB.
    pub fn ub_message(&self, lane: usize) -> Option<&'static str> {
        (self.ub[lane] != 0).then(|| UB_MESSAGES[self.ub[lane] as usize])
    }

    /// Whether the lane's return value is poison.
    pub fn is_poison(&self, lane: usize) -> bool {
        self.ub[lane] == 0 && self.states[lane] == ST_POISON
    }

    /// Whether the lane's return value is undef.
    pub fn is_undef(&self, lane: usize) -> bool {
        self.ub[lane] == 0 && self.states[lane] == ST_UNDEF
    }

    /// The lane's raw return bits (meaningful only when the lane is neither
    /// UB nor poison/undef).
    pub fn raw(&self, lane: usize) -> u64 {
        self.vals[lane]
    }

    /// Materializes the lane's outcome in the interpreter's native form,
    /// identical to what [`CompiledFunction::evaluate_batch_with_limit`](crate::compiled::CompiledFunction::evaluate_batch_with_limit)
    /// returns for the same input. `memory` is threaded through unchanged
    /// (eligible functions never touch it).
    ///
    /// # Errors
    ///
    /// Returns the lane's [`Ub`] when it hit immediate undefined behaviour.
    pub fn outcome(&self, lane: usize, memory: Memory) -> Result<EvalOutcome, Ub> {
        if self.ub[lane] != 0 {
            return Err(Ub::new(UB_MESSAGES[self.ub[lane] as usize]));
        }
        let result = Some(match self.states[lane] {
            ST_POISON => EvalValue::Poison,
            ST_UNDEF => EvalValue::Undef,
            _ => EvalValue::Int(ApInt::new(self.ret_width, self.vals[lane] as u128)),
        });
        Ok(EvalOutcome { result, memory, steps: self.steps })
    }
}

/// Scalar `Int(w)` with `w <= 64`, the only type planes carry.
fn int_w(ty: &Type) -> Option<u32> {
    match ty {
        Type::Int(w) if *w <= 64 => Some(*w),
        _ => None,
    }
}

/// All-ones mask of the low `w` bits.
#[inline(always)]
fn mask(w: u32) -> u64 {
    if w == 64 { u64::MAX } else { (1u64 << w) - 1 }
}

/// Sign-extends the canonical `w`-bit value to `i64`.
#[inline(always)]
fn sx64(x: u64, w: u32) -> i64 {
    ((x << (64 - w)) as i64) >> (64 - w)
}

/// Sign-extends to `i128`, wide enough that sums/products never wrap.
#[inline(always)]
fn sxi(x: u64, w: u32) -> i128 {
    sx64(x, w) as i128
}

/// Smallest signed `w`-bit value, as `i128`.
#[inline(always)]
fn smin_i128(w: u32) -> i128 {
    -(1i128 << (w - 1))
}

/// Largest signed `w`-bit value, as `i128`.
#[inline(always)]
fn smax_i128(w: u32) -> i128 {
    (1i128 << (w - 1)) - 1
}

/// Clamps a signed `i128` into `w` bits (saturating-intrinsic helper).
#[inline(always)]
fn clamp_s(v: i128, w: u32) -> u64 {
    let lo = smin_i128(w);
    let hi = smax_i128(w);
    (v.clamp(lo, hi) as u64) & mask(w)
}

/// Records UB in a lane unless the lane already died (first UB wins, like
/// the lock-step evaluators where a dead lane stops executing).
#[inline(always)]
fn flag_ub(slot: &mut u8, code: u8) {
    if *slot == 0 {
        *slot = code;
    }
}

impl PlanePlan {
    /// Lowers `func` to plane form, or returns `None` if it is ineligible.
    ///
    /// Eligible functions are exactly: a single basic block ending in
    /// `ret` of a scalar `Int(w)`, `w <= 64`; all parameters scalar
    /// `Int(w <= 64)`; and every instruction one of
    ///
    /// * an integer binary op, `icmp`, `select`, or `freeze`,
    /// * `trunc`/`zext`/`sext` between `Int(<=64)` types,
    /// * an integer intrinsic (`umin`/`umax`/`smin`/`smax`, saturating
    ///   add/sub, `abs`, `ctpop`, `ctlz`, `cttz`, `bswap` on byte-multiple
    ///   widths, `bitreverse`, `fshl`/`fshr`) — with the `abs`/`ctlz`/`cttz`
    ///   poison flag a literal constant,
    ///
    /// over operands that are parameters, earlier instructions in the same
    /// block, or integer/`undef`/`poison` constants of matching width.
    /// Memory, floats, vectors, pointers, wide integers and control flow all
    /// disqualify — those shapes keep the batched evaluator.
    pub fn compile(func: &Function) -> Option<PlanePlan> {
        if func.blocks().len() != 1 {
            return None;
        }
        let ret_width = int_w(&func.ret_ty)?;
        let mut param_widths = Vec::with_capacity(func.params.len());
        for p in &func.params {
            param_widths.push(int_w(&p.ty)?);
        }
        let np = param_widths.len();
        let insts = &func.blocks()[0].insts;
        let (last, body) = insts.split_last()?;

        let mut consts: Vec<(u64, u8)> = Vec::new();
        let mut pos_of: HashMap<InstId, (u32, u32)> = HashMap::new();
        let mut steps: Vec<PStep> = Vec::with_capacity(body.len());

        // Resolves an operand of expected width `want_w` to a (possibly
        // still inst-tagged) plane index. Constant operands each get their
        // own broadcast plane; forward or unplaced instruction references
        // make the function ineligible.
        let resolve = |v: &Value,
                       want_w: u32,
                       consts: &mut Vec<(u64, u8)>,
                       pos_of: &HashMap<InstId, (u32, u32)>|
         -> Option<u32> {
            match v {
                Value::Arg(i) => {
                    (param_widths.get(*i).copied()? == want_w).then_some(*i as u32)
                }
                Value::Inst(id) => {
                    let (pos, w) = pos_of.get(id).copied()?;
                    (w == want_w).then_some(INST_BIT | pos)
                }
                Value::Const(c) => {
                    let (val, st) = match c {
                        Constant::Int(v) if v.width() == want_w => {
                            (v.zext_value() as u64, 0u8)
                        }
                        Constant::Undef(Type::Int(w)) if *w == want_w => (0, ST_UNDEF),
                        Constant::Poison(Type::Int(w)) if *w == want_w => (0, ST_POISON),
                        _ => return None,
                    };
                    consts.push((val, st));
                    Some((np + consts.len() - 1) as u32)
                }
            }
        };

        for (k, id) in body.iter().enumerate() {
            let inst = func.inst(*id);
            let mut step = PStep { op: POp::Freeze, a: UNUSED, b: UNUSED, c: UNUSED, dst: INST_BIT | k as u32 };
            let w = match &inst.kind {
                InstKind::Binary { op, lhs, rhs, flags } => {
                    let w = int_w(&inst.ty)?;
                    step.op = POp::Bin { op: *op, flags: *flags, w };
                    step.a = resolve(lhs, w, &mut consts, &pos_of)?;
                    step.b = resolve(rhs, w, &mut consts, &pos_of)?;
                    w
                }
                InstKind::ICmp { pred, lhs, rhs } => {
                    if int_w(&inst.ty)? != 1 {
                        return None;
                    }
                    let ow = int_w(&func.value_type(lhs))?;
                    step.op = POp::Cmp { pred: *pred, w: ow };
                    step.a = resolve(lhs, ow, &mut consts, &pos_of)?;
                    step.b = resolve(rhs, ow, &mut consts, &pos_of)?;
                    1
                }
                InstKind::Select { cond, on_true, on_false } => {
                    let w = int_w(&inst.ty)?;
                    if int_w(&func.value_type(cond))? != 1 {
                        return None;
                    }
                    step.op = POp::Sel;
                    step.a = resolve(cond, 1, &mut consts, &pos_of)?;
                    step.b = resolve(on_true, w, &mut consts, &pos_of)?;
                    step.c = resolve(on_false, w, &mut consts, &pos_of)?;
                    w
                }
                InstKind::Cast { op, value, flags } => {
                    let to_w = int_w(&inst.ty)?;
                    let from_w = int_w(&func.value_type(value))?;
                    // Only strictly-narrowing truncs and strictly-widening
                    // extensions are lowered; malformed same-width casts
                    // keep the batched evaluator's behaviour.
                    match op {
                        CastOp::Trunc if from_w > to_w => {}
                        CastOp::ZExt | CastOp::SExt if from_w < to_w => {}
                        _ => return None,
                    }
                    step.op = POp::Cast { op: *op, flags: *flags, from_w, to_w };
                    step.a = resolve(value, from_w, &mut consts, &pos_of)?;
                    to_w
                }
                InstKind::Call { intrinsic, args, .. } => {
                    let w = int_w(&inst.ty)?;
                    match intrinsic {
                        Intrinsic::Umin
                        | Intrinsic::Umax
                        | Intrinsic::Smin
                        | Intrinsic::Smax
                        | Intrinsic::UaddSat
                        | Intrinsic::SaddSat
                        | Intrinsic::UsubSat
                        | Intrinsic::SsubSat => {
                            if args.len() != 2 {
                                return None;
                            }
                            step.op = POp::Intr2 { intr: *intrinsic, w };
                            step.a = resolve(&args[0], w, &mut consts, &pos_of)?;
                            step.b = resolve(&args[1], w, &mut consts, &pos_of)?;
                        }
                        Intrinsic::Abs | Intrinsic::Ctlz | Intrinsic::Cttz => {
                            if args.len() != 2 {
                                return None;
                            }
                            // The poison flag is an immarg in LLVM; require a
                            // literal so it can be baked into the step. A
                            // poison/undef/non-i1 constant reads as `false`,
                            // exactly like `as_bool().unwrap_or(false)`.
                            let flag = match &args[1] {
                                Value::Const(c) => {
                                    EvalValue::from_constant(c).as_bool().unwrap_or(false)
                                }
                                _ => return None,
                            };
                            step.op = POp::IntrFlag { intr: *intrinsic, w, flag };
                            step.a = resolve(&args[0], w, &mut consts, &pos_of)?;
                        }
                        Intrinsic::Ctpop | Intrinsic::Bitreverse => {
                            if args.len() != 1 {
                                return None;
                            }
                            step.op = POp::Intr1 { intr: *intrinsic, w };
                            step.a = resolve(&args[0], w, &mut consts, &pos_of)?;
                        }
                        Intrinsic::Bswap => {
                            if args.len() != 1 || w % 8 != 0 {
                                return None;
                            }
                            step.op = POp::Intr1 { intr: *intrinsic, w };
                            step.a = resolve(&args[0], w, &mut consts, &pos_of)?;
                        }
                        Intrinsic::Fshl | Intrinsic::Fshr => {
                            if args.len() != 3 {
                                return None;
                            }
                            step.op = POp::Funnel { fshr: *intrinsic == Intrinsic::Fshr, w };
                            step.a = resolve(&args[0], w, &mut consts, &pos_of)?;
                            step.b = resolve(&args[1], w, &mut consts, &pos_of)?;
                            step.c = resolve(&args[2], w, &mut consts, &pos_of)?;
                        }
                        _ => return None,
                    }
                    w
                }
                InstKind::Freeze { value } => {
                    let w = int_w(&inst.ty)?;
                    step.op = POp::Freeze;
                    step.a = resolve(value, w, &mut consts, &pos_of)?;
                    w
                }
                _ => return None,
            };
            steps.push(step);
            pos_of.insert(*id, (k as u32, w));
        }

        let mut ret_plane = match &func.inst(*last).kind {
            InstKind::Ret { value: Some(v) } => resolve(v, ret_width, &mut consts, &pos_of)?,
            _ => return None,
        };

        // Resolve instruction-tagged references now that the constant count
        // is known: plane layout is [params][consts][insts].
        let base = (np + consts.len()) as u32;
        let fix = |r: &mut u32| {
            if *r != UNUSED && *r & INST_BIT != 0 {
                *r = base + (*r & !INST_BIT);
            }
        };
        for step in &mut steps {
            fix(&mut step.a);
            fix(&mut step.b);
            fix(&mut step.c);
            fix(&mut step.dst);
        }
        fix(&mut ret_plane);

        let num_planes = np + consts.len() + steps.len();
        Some(PlanePlan {
            num_params: np,
            param_widths,
            consts,
            num_planes,
            steps,
            ret_plane,
            ret_width,
        })
    }

    /// Number of parameters the plan expects.
    pub fn num_params(&self) -> usize {
        self.num_params
    }

    /// Whether one concrete argument list can feed this plan: right arity,
    /// and every argument a matching-width scalar integer, poison or undef.
    pub fn accepts_args(&self, args: &[EvalValue]) -> bool {
        args.len() == self.num_params
            && args.iter().zip(&self.param_widths).all(|(a, &w)| match a {
                EvalValue::Int(v) => v.width() == w,
                EvalValue::Poison | EvalValue::Undef => true,
                _ => false,
            })
    }

    /// Runs the plan over `lanes` inputs in lock step.
    ///
    /// Returns `None` (caller should fall back to the batched evaluator)
    /// if any lane's arguments fail [`accepts_args`](Self::accepts_args).
    /// Otherwise the result holds, per lane, exactly what
    /// [`CompiledFunction::evaluate_batch_with_limit`](crate::compiled::CompiledFunction::evaluate_batch_with_limit) would produce for
    /// the same input and `step_limit` — same values, same poison/undef,
    /// same UB diagnostics, same step counts.
    pub fn evaluate_lanes(
        &self,
        arena: &mut EvalArena,
        lanes: &[&[EvalValue]],
        step_limit: usize,
    ) -> Option<PlaneResult> {
        for args in lanes {
            if !self.accepts_args(args) {
                return None;
            }
        }
        let n = lanes.len();
        arena.plane_vals.clear();
        arena.plane_vals.resize(self.num_planes * n, 0);
        arena.plane_states.clear();
        arena.plane_states.resize(self.num_planes * n, 0);
        arena.plane_ub.clear();
        arena.plane_ub.resize(n, 0);
        let vals = &mut arena.plane_vals[..];
        let states = &mut arena.plane_states[..];
        let ub = &mut arena.plane_ub[..];

        // Parameter planes.
        for (j, _) in self.param_widths.iter().enumerate() {
            let base = j * n;
            for (i, args) in lanes.iter().enumerate() {
                match &args[j] {
                    EvalValue::Int(v) => vals[base + i] = v.zext_value() as u64,
                    EvalValue::Poison => states[base + i] = ST_POISON,
                    EvalValue::Undef => states[base + i] = ST_UNDEF,
                    _ => unreachable!("checked by accepts_args"),
                }
            }
        }
        // Constant planes (broadcast).
        for (j, &(v, st)) in self.consts.iter().enumerate() {
            let base = (self.num_params + j) * n;
            vals[base..base + n].fill(v);
            states[base..base + n].fill(st);
        }

        // Lock-step execution with the batched evaluator's step accounting:
        // instruction `j` runs only when `j + 1 <= step_limit`.
        let exec = self.steps.len().min(step_limit);
        for step in &self.steps[..exec] {
            run_step(step, vals, states, ub, n);
        }
        // The `ret` costs one more step; if the budget does not cover the
        // whole walk, every still-live lane reports the limit.
        let total_steps = self.steps.len() + 1;
        if total_steps > step_limit {
            for slot in ub.iter_mut() {
                flag_ub(slot, UB_STEP_LIMIT);
            }
        }

        let rp = self.ret_plane as usize * n;
        Some(PlaneResult {
            vals: vals[rp..rp + n].to_vec(),
            states: states[rp..rp + n].to_vec(),
            ub: arena.plane_ub.clone(),
            steps: total_steps,
            ret_width: self.ret_width,
        })
    }
}

/// Splits plane storage at the destination plane. The compile-time layout
/// guarantees `dst` is greater than every operand plane, so operands are
/// fully inside the head slices.
#[inline(always)]
fn split_dst<'t>(
    vals: &'t mut [u64],
    states: &'t mut [u8],
    n: usize,
    dst: usize,
) -> (&'t [u64], &'t [u8], &'t mut [u64], &'t mut [u8]) {
    let (vh, vt) = vals.split_at_mut(dst * n);
    let (sh, st) = states.split_at_mut(dst * n);
    (vh, sh, &mut vt[..n], &mut st[..n])
}

/// Elementwise two-operand loop for UB-free kernels. The kernel sees only
/// concrete lanes; poison/undef operands propagate with poison dominating,
/// exactly like `elementwise2_static`.
#[inline(always)]
fn run2(
    n: usize,
    a: (&[u64], &[u8]),
    b: (&[u64], &[u8]),
    d: (&mut [u64], &mut [u8]),
    kernel: impl Fn(u64, u64) -> (u64, u8),
) {
    let ((av, asl), (bv, bsl), (dv, ds)) = (a, b, d);
    for i in 0..n {
        let s = asl[i] | bsl[i];
        if s == 0 {
            let (v, st) = kernel(av[i], bv[i]);
            dv[i] = v;
            ds[i] = st;
        } else {
            dv[i] = 0;
            ds[i] = if s & ST_POISON != 0 { ST_POISON } else { ST_UNDEF };
        }
    }
}

/// Like [`run2`] but the kernel may record per-lane UB (division/remainder).
#[inline(always)]
fn run2_ub(
    n: usize,
    a: (&[u64], &[u8]),
    b: (&[u64], &[u8]),
    d: (&mut [u64], &mut [u8]),
    ub: &mut [u8],
    kernel: impl Fn(u64, u64, &mut u8) -> (u64, u8),
) {
    let ((av, asl), (bv, bsl), (dv, ds)) = (a, b, d);
    for i in 0..n {
        let s = asl[i] | bsl[i];
        if s == 0 {
            let (v, st) = kernel(av[i], bv[i], &mut ub[i]);
            dv[i] = v;
            ds[i] = st;
        } else {
            dv[i] = 0;
            ds[i] = if s & ST_POISON != 0 { ST_POISON } else { ST_UNDEF };
        }
    }
}

/// Elementwise one-operand loop, mirroring `elementwise1_static`.
#[inline(always)]
fn run1(
    n: usize,
    a: (&[u64], &[u8]),
    d: (&mut [u64], &mut [u8]),
    kernel: impl Fn(u64) -> (u64, u8),
) {
    let ((av, asl), (dv, ds)) = (a, d);
    for i in 0..n {
        let s = asl[i];
        if s == 0 {
            let (v, st) = kernel(av[i]);
            dv[i] = v;
            ds[i] = st;
        } else {
            dv[i] = 0;
            ds[i] = s;
        }
    }
}

/// Elementwise three-operand loop (funnel shifts): any poison operand wins,
/// then any undef, then the kernel — the order `funnel_shift` checks in.
#[inline(always)]
fn run3(
    n: usize,
    a: (&[u64], &[u8]),
    b: (&[u64], &[u8]),
    c: (&[u64], &[u8]),
    d: (&mut [u64], &mut [u8]),
    kernel: impl Fn(u64, u64, u64) -> u64,
) {
    let ((av, asl), (bv, bsl), (cv, csl), (dv, ds)) = (a, b, c, d);
    for i in 0..n {
        let s = asl[i] | bsl[i] | csl[i];
        if s == 0 {
            dv[i] = kernel(av[i], bv[i], cv[i]);
            ds[i] = 0;
        } else {
            dv[i] = 0;
            ds[i] = if s & ST_POISON != 0 { ST_POISON } else { ST_UNDEF };
        }
    }
}

/// Executes one plane step across all lanes.
fn run_step(step: &PStep, vals: &mut [u64], states: &mut [u8], ub: &mut [u8], n: usize) {
    let dst = step.dst as usize;
    let (vh, sh, dv, ds) = split_dst(vals, states, n, dst);
    let a = step.a as usize;
    let av = &vh[a * n..a * n + n];
    let asl = &sh[a * n..a * n + n];
    match &step.op {
        POp::Bin { op, flags, w } => {
            let w = *w;
            let m = mask(w);
            let f = *flags;
            let b = step.b as usize;
            let bv = &vh[b * n..b * n + n];
            let bsl = &sh[b * n..b * n + n];
            match op {
                BinOp::Add => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    let r = x.wrapping_add(y) & m;
                    let p = (f.nuw && (x as u128 + y as u128) > m as u128)
                        || (f.nsw && sxi(x, w) + sxi(y, w) != sxi(r, w));
                    (r, p as u8)
                }),
                BinOp::Sub => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    let r = x.wrapping_sub(y) & m;
                    let p = (f.nuw && x < y)
                        || (f.nsw && sxi(x, w) - sxi(y, w) != sxi(r, w));
                    (r, p as u8)
                }),
                BinOp::Mul => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    let full = x as u128 * y as u128;
                    let r = (full as u64) & m;
                    let p = (f.nuw && full > m as u128)
                        || (f.nsw && sxi(x, w) * sxi(y, w) != sxi(r, w));
                    (r, p as u8)
                }),
                BinOp::UDiv => run2_ub(n, (av, asl), (bv, bsl), (dv, ds), ub, |x, y, u| {
                    if y == 0 {
                        flag_ub(u, UB_DIV_ZERO);
                        (0, 0)
                    } else if f.exact && x % y != 0 {
                        (0, ST_POISON)
                    } else {
                        (x / y, 0)
                    }
                }),
                BinOp::SDiv => run2_ub(n, (av, asl), (bv, bsl), (dv, ds), ub, |x, y, u| {
                    let (sx, sy) = (sxi(x, w), sxi(y, w));
                    if y == 0 {
                        flag_ub(u, UB_DIV_ZERO);
                        (0, 0)
                    } else if sx == smin_i128(w) && sy == -1 {
                        flag_ub(u, UB_SDIV_OVERFLOW);
                        (0, 0)
                    } else if f.exact && sx % sy != 0 {
                        (0, ST_POISON)
                    } else {
                        (((sx / sy) as u64) & m, 0)
                    }
                }),
                BinOp::URem => run2_ub(n, (av, asl), (bv, bsl), (dv, ds), ub, |x, y, u| {
                    if y == 0 {
                        flag_ub(u, UB_REM_ZERO);
                        (0, 0)
                    } else {
                        (x % y, 0)
                    }
                }),
                BinOp::SRem => run2_ub(n, (av, asl), (bv, bsl), (dv, ds), ub, |x, y, u| {
                    let (sx, sy) = (sxi(x, w), sxi(y, w));
                    if y == 0 {
                        flag_ub(u, UB_REM_ZERO);
                        (0, 0)
                    } else if sx == smin_i128(w) && sy == -1 {
                        flag_ub(u, UB_SREM_OVERFLOW);
                        (0, 0)
                    } else {
                        (((sx % sy) as u64) & m, 0)
                    }
                }),
                BinOp::Shl => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    if y >= w as u64 {
                        return (0, ST_POISON);
                    }
                    let r = (x << y) & m;
                    let p = (f.nuw && (r >> y) != x)
                        || (f.nsw && (((sx64(r, w) >> y) as u64) & m) != x);
                    (r, p as u8)
                }),
                BinOp::LShr => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    if y >= w as u64 {
                        return (0, ST_POISON);
                    }
                    let r = x >> y;
                    (r, (f.exact && ((r << y) & m) != x) as u8)
                }),
                BinOp::AShr => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    if y >= w as u64 {
                        return (0, ST_POISON);
                    }
                    let r = ((sx64(x, w) >> y) as u64) & m;
                    (r, (f.exact && ((r << y) & m) != x) as u8)
                }),
                BinOp::And => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| (x & y, 0)),
                BinOp::Or => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    if f.disjoint && x & y != 0 {
                        (0, ST_POISON)
                    } else {
                        (x | y, 0)
                    }
                }),
                BinOp::Xor => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| (x ^ y, 0)),
            }
        }
        POp::Cmp { pred, w } => {
            let w = *w;
            let b = step.b as usize;
            let bv = &vh[b * n..b * n + n];
            let bsl = &sh[b * n..b * n + n];
            macro_rules! cmp {
                ($test:expr) => {
                    run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| (($test)(x, y) as u64, 0))
                };
            }
            match pred {
                ICmpPred::Eq => cmp!(|x, y| x == y),
                ICmpPred::Ne => cmp!(|x, y| x != y),
                ICmpPred::Ugt => cmp!(|x, y| x > y),
                ICmpPred::Uge => cmp!(|x, y| x >= y),
                ICmpPred::Ult => cmp!(|x, y| x < y),
                ICmpPred::Ule => cmp!(|x, y| x <= y),
                ICmpPred::Sgt => cmp!(|x, y| sx64(x, w) > sx64(y, w)),
                ICmpPred::Sge => cmp!(|x, y| sx64(x, w) >= sx64(y, w)),
                ICmpPred::Slt => cmp!(|x, y| sx64(x, w) < sx64(y, w)),
                ICmpPred::Sle => cmp!(|x, y| sx64(x, w) <= sx64(y, w)),
            }
        }
        POp::Sel => {
            let b = step.b as usize;
            let c = step.c as usize;
            let (tv, tsl) = (&vh[b * n..b * n + n], &sh[b * n..b * n + n]);
            let (fv, fsl) = (&vh[c * n..c * n + n], &sh[c * n..c * n + n]);
            for i in 0..n {
                let cs = asl[i];
                let (v, st) = if cs & ST_POISON != 0 {
                    (0, ST_POISON)
                } else if cs != 0 {
                    (0, ST_UNDEF)
                } else if av[i] & 1 != 0 {
                    (tv[i], tsl[i])
                } else {
                    (fv[i], fsl[i])
                };
                dv[i] = v;
                ds[i] = st;
            }
        }
        POp::Cast { op, flags, from_w, to_w } => {
            let (fw, tw) = (*from_w, *to_w);
            let f = *flags;
            match op {
                CastOp::Trunc => {
                    let fm = mask(fw);
                    let tm = mask(tw);
                    run1(n, (av, asl), (dv, ds), |x| {
                        let r = x & tm;
                        let p = (f.nuw && r != x)
                            || (f.nsw && ((sx64(r, tw) as u64) & fm) != x);
                        (r, p as u8)
                    })
                }
                CastOp::ZExt => run1(n, (av, asl), (dv, ds), |x| {
                    (x, (f.nneg && sx64(x, fw) < 0) as u8)
                }),
                CastOp::SExt => {
                    let tm = mask(tw);
                    run1(n, (av, asl), (dv, ds), |x| (((sx64(x, fw) as u64) & tm), 0))
                }
                _ => unreachable!("excluded at compile time"),
            }
        }
        POp::Intr2 { intr, w } => {
            let w = *w;
            let m = mask(w);
            let b = step.b as usize;
            let bv = &vh[b * n..b * n + n];
            let bsl = &sh[b * n..b * n + n];
            match intr {
                Intrinsic::Umin => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| (x.min(y), 0)),
                Intrinsic::Umax => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| (x.max(y), 0)),
                Intrinsic::Smin => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    (if sx64(x, w) <= sx64(y, w) { x } else { y }, 0)
                }),
                Intrinsic::Smax => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    (if sx64(x, w) >= sx64(y, w) { x } else { y }, 0)
                }),
                Intrinsic::UaddSat => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    let s = x as u128 + y as u128;
                    (if s > m as u128 { m } else { s as u64 }, 0)
                }),
                Intrinsic::SaddSat => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    (clamp_s(sxi(x, w) + sxi(y, w), w), 0)
                }),
                Intrinsic::UsubSat => {
                    run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| (x.saturating_sub(y), 0))
                }
                Intrinsic::SsubSat => run2(n, (av, asl), (bv, bsl), (dv, ds), |x, y| {
                    (clamp_s(sxi(x, w) - sxi(y, w), w), 0)
                }),
                _ => unreachable!("excluded at compile time"),
            }
        }
        POp::IntrFlag { intr, w, flag } => {
            let w = *w;
            let m = mask(w);
            let flag = *flag;
            match intr {
                Intrinsic::Abs => {
                    let smin_bits = 1u64 << (w - 1);
                    run1(n, (av, asl), (dv, ds), |x| {
                        if flag && x == smin_bits {
                            (0, ST_POISON)
                        } else if sx64(x, w) < 0 {
                            (x.wrapping_neg() & m, 0)
                        } else {
                            (x, 0)
                        }
                    })
                }
                Intrinsic::Ctlz => run1(n, (av, asl), (dv, ds), |x| {
                    if flag && x == 0 {
                        (0, ST_POISON)
                    } else {
                        ((x.leading_zeros() - (64 - w)) as u64, 0)
                    }
                }),
                Intrinsic::Cttz => run1(n, (av, asl), (dv, ds), |x| {
                    if flag && x == 0 {
                        (0, ST_POISON)
                    } else if x == 0 {
                        (w as u64, 0)
                    } else {
                        (x.trailing_zeros() as u64, 0)
                    }
                }),
                _ => unreachable!("excluded at compile time"),
            }
        }
        POp::Intr1 { intr, w } => {
            let w = *w;
            match intr {
                Intrinsic::Ctpop => {
                    run1(n, (av, asl), (dv, ds), |x| (x.count_ones() as u64, 0))
                }
                Intrinsic::Bswap => {
                    run1(n, (av, asl), (dv, ds), |x| (x.swap_bytes() >> (64 - w), 0))
                }
                Intrinsic::Bitreverse => {
                    run1(n, (av, asl), (dv, ds), |x| (x.reverse_bits() >> (64 - w), 0))
                }
                _ => unreachable!("excluded at compile time"),
            }
        }
        POp::Funnel { fshr, w } => {
            let w = *w;
            let m = mask(w);
            let fshr = *fshr;
            let b = step.b as usize;
            let c = step.c as usize;
            let bv = &vh[b * n..b * n + n];
            let bsl = &sh[b * n..b * n + n];
            let cv = &vh[c * n..c * n + n];
            let csl = &sh[c * n..c * n + n];
            run3(n, (av, asl), (bv, bsl), (cv, csl), (dv, ds), |x, y, amt| {
                let am = amt % w as u64;
                if fshr {
                    if am == 0 { y } else { ((y >> am) | (x << (w as u64 - am))) & m }
                } else if am == 0 {
                    x
                } else {
                    ((x << am) | (y >> (w as u64 - am))) & m
                }
            })
        }
        POp::Freeze => {
            for i in 0..n {
                dv[i] = if asl[i] != 0 { 0 } else { av[i] };
                ds[i] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiled::CompiledFunction;
    use lpo_ir::parser::parse_function;

    fn plan(text: &str) -> Option<PlanePlan> {
        PlanePlan::compile(&parse_function(text).unwrap())
    }

    #[test]
    fn eligibility_boundaries() {
        // Straight-line scalar int: eligible.
        assert!(plan("define i8 @f(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").is_some());
        // Wide integers are not.
        assert!(plan("define i128 @f(i128 %x) {\n ret i128 %x\n}").is_none());
        // Memory is not.
        assert!(plan("define i32 @f(ptr %p) {\n %v = load i32, ptr %p, align 4\n ret i32 %v\n}").is_none());
        // Vectors are not.
        assert!(plan("define <2 x i8> @f(<2 x i8> %x) {\n ret <2 x i8> %x\n}").is_none());
        // Control flow is not.
        assert!(plan(
            "define i8 @f(i1 %c) {\nentry:\n br i1 %c, label %a, label %b\na:\n ret i8 1\nb:\n ret i8 2\n}"
        )
        .is_none());
        // Floats are not.
        assert!(plan("define double @f(double %x) {\n ret double %x\n}").is_none());
    }

    #[test]
    fn plane_matches_batch_on_exhaustive_i8() {
        let f = parse_function(
            "define i8 @f(i8 %x, i8 %y) {\n\
             %d = sdiv i8 %x, %y\n\
             %s = add nsw i8 %d, %y\n\
             %c = icmp slt i8 %s, %x\n\
             %r = select i1 %c, i8 %s, i8 %x\n\
             ret i8 %r\n}",
        )
        .unwrap();
        let compiled = CompiledFunction::compile(&f);
        let plan = compiled.plane().expect("eligible");
        let mut arena = EvalArena::new();
        let args: Vec<[EvalValue; 2]> = (0..=255u8)
            .flat_map(|x| (0..=255u8).step_by(17).map(move |y| {
                [EvalValue::int(8, x as u128), EvalValue::int(8, y as u128)]
            }))
            .collect();
        let refs: Vec<&[EvalValue]> = args.iter().map(|a| a.as_slice()).collect();
        let result = plan.evaluate_lanes(&mut arena, &refs, 1 << 14).unwrap();
        let lanes: Vec<(&[EvalValue], Memory)> =
            args.iter().map(|a| (a.as_slice(), Memory::new())).collect();
        let batch = compiled.evaluate_batch_with_limit(&mut EvalArena::new(), lanes, 1 << 14);
        for (i, expect) in batch.into_iter().enumerate() {
            assert_eq!(result.outcome(i, Memory::new()), expect, "lane {i}");
        }
    }

    #[test]
    fn ub_lane_does_not_poison_neighbours() {
        let f = parse_function("define i8 @f(i8 %x) {\n %r = udiv i8 10, %x\n ret i8 %r\n}").unwrap();
        let plan = PlanePlan::compile(&f).unwrap();
        let args =
            [[EvalValue::int(8, 2)], [EvalValue::int(8, 0)], [EvalValue::int(8, 5)]];
        let refs: Vec<&[EvalValue]> = args.iter().map(|a| a.as_slice()).collect();
        let r = plan.evaluate_lanes(&mut EvalArena::new(), &refs, 100).unwrap();
        assert_eq!(r.raw(0), 5);
        assert!(r.is_ub(1));
        assert_eq!(r.ub_message(1), Some("division by zero"));
        assert_eq!(r.raw(2), 2);
        assert!(!r.is_ub(0) && !r.is_ub(2));
    }

    #[test]
    fn step_limit_matches_batch() {
        let f = parse_function(
            "define i8 @f(i8 %x) {\n %a = add i8 %x, 1\n %b = add i8 %a, 1\n ret i8 %b\n}",
        )
        .unwrap();
        let compiled = CompiledFunction::compile(&f);
        let plan = compiled.plane().unwrap();
        let args = [[EvalValue::int(8, 1)]];
        let refs: Vec<&[EvalValue]> = args.iter().map(|a| a.as_slice()).collect();
        for limit in 0..5 {
            let r = plan.evaluate_lanes(&mut EvalArena::new(), &refs, limit).unwrap();
            let batch = compiled.evaluate_batch_with_limit(
                &mut EvalArena::new(),
                vec![(args[0].as_slice(), Memory::new())],
                limit,
            );
            assert_eq!(r.outcome(0, Memory::new()), batch[0].clone(), "limit {limit}");
        }
    }

    #[test]
    fn poison_and_undef_args_flow_through() {
        let f = parse_function("define i8 @f(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").unwrap();
        let plan = PlanePlan::compile(&f).unwrap();
        let args = [[EvalValue::Poison], [EvalValue::Undef], [EvalValue::int(8, 3)]];
        let refs: Vec<&[EvalValue]> = args.iter().map(|a| a.as_slice()).collect();
        let r = plan.evaluate_lanes(&mut EvalArena::new(), &refs, 100).unwrap();
        assert!(r.is_poison(0));
        assert!(r.is_undef(1));
        assert_eq!(r.raw(2), 4);
    }

    #[test]
    fn mismatched_inputs_are_rejected() {
        let f = parse_function("define i8 @f(i8 %x) {\n ret i8 %x\n}").unwrap();
        let plan = PlanePlan::compile(&f).unwrap();
        let wrong_width = [[EvalValue::int(16, 3)]];
        let refs: Vec<&[EvalValue]> = wrong_width.iter().map(|a| a.as_slice()).collect();
        assert!(plan.evaluate_lanes(&mut EvalArena::new(), &refs, 100).is_none());
        let wrong_arity: [&[EvalValue]; 1] = [&[]];
        assert!(plan.evaluate_lanes(&mut EvalArena::new(), &wrong_arity, 100).is_none());
    }
}
