//! Runtime values produced by concrete evaluation.
//!
//! [`EvalValue`] mirrors LLVM's dynamic semantics: an integer, float, pointer
//! or vector, plus the two "deferred error" values `poison` and `undef`.
//! Immediate undefined behaviour (division by zero, out-of-bounds stores, …)
//! is *not* a value — the evaluator reports it through
//! [`Ub`](crate::eval::Ub) instead.

use lpo_ir::apint::ApInt;
use lpo_ir::constant::Constant;
use lpo_ir::types::{FloatKind, Type};
use std::fmt;

/// A pointer value: an allocation id plus a byte offset into it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PtrValue {
    /// Which allocation this pointer refers to (index into the [`Memory`](crate::memory::Memory)).
    pub alloc: usize,
    /// Byte offset from the allocation base. May be negative or out of bounds;
    /// bounds are only checked when the pointer is dereferenced.
    pub offset: i64,
}

/// A concrete runtime value.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalValue {
    /// An integer of a specific bit width.
    Int(ApInt),
    /// A floating-point value.
    Float(FloatKind, f64),
    /// A pointer into the evaluation memory.
    Ptr(PtrValue),
    /// A fixed-length vector of scalar values (lanes may individually be poison).
    Vector(Vec<EvalValue>),
    /// The poison value: the result of a violated instruction assumption.
    Poison,
    /// The undef value: an unspecified but fixed bit pattern.
    Undef,
}

impl EvalValue {
    /// Creates an integer value.
    pub fn int(width: u32, value: u128) -> EvalValue {
        EvalValue::Int(ApInt::new(width, value))
    }

    /// Creates an integer value from a signed integer.
    pub fn int_signed(width: u32, value: i128) -> EvalValue {
        EvalValue::Int(ApInt::from_i128(width, value))
    }

    /// Creates a boolean (`i1`) value.
    pub fn bool(value: bool) -> EvalValue {
        EvalValue::Int(ApInt::bool(value))
    }

    /// Converts an IR constant into a runtime value.
    pub fn from_constant(c: &Constant) -> EvalValue {
        match c {
            Constant::Int(v) => EvalValue::Int(*v),
            Constant::Float(k, v) => EvalValue::Float(*k, *v),
            Constant::NullPtr => EvalValue::Ptr(PtrValue { alloc: usize::MAX, offset: 0 }),
            Constant::Undef(_) => EvalValue::Undef,
            Constant::Poison(_) => EvalValue::Poison,
            Constant::Vector(elems) => {
                EvalValue::Vector(elems.iter().map(EvalValue::from_constant).collect())
            }
        }
    }

    /// Returns `true` if the value is poison, or a vector with any poison lane.
    pub fn is_poison(&self) -> bool {
        match self {
            EvalValue::Poison => true,
            EvalValue::Vector(lanes) => lanes.iter().any(EvalValue::is_poison),
            _ => false,
        }
    }

    /// Returns `true` if the value is undef, or a vector with any undef lane.
    pub fn is_undef(&self) -> bool {
        match self {
            EvalValue::Undef => true,
            EvalValue::Vector(lanes) => lanes.iter().any(EvalValue::is_undef),
            _ => false,
        }
    }

    /// Returns the integer if this is an integer value.
    pub fn as_int(&self) -> Option<&ApInt> {
        match self {
            EvalValue::Int(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the float if this is a floating-point value.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            EvalValue::Float(_, v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the pointer if this is a pointer value.
    pub fn as_ptr(&self) -> Option<PtrValue> {
        match self {
            EvalValue::Ptr(p) => Some(*p),
            _ => None,
        }
    }

    /// Returns the lanes if this is a vector value.
    pub fn lanes(&self) -> Option<&[EvalValue]> {
        match self {
            EvalValue::Vector(lanes) => Some(lanes),
            _ => None,
        }
    }

    /// Interprets the value as a boolean.
    ///
    /// Returns `None` for poison/undef or non-`i1` values.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            EvalValue::Int(v) if v.width() == 1 => Some(v.as_bool()),
            _ => None,
        }
    }

    /// Resolves `undef` (including undef vector lanes) to a concrete value of
    /// the given type using the supplied chooser bits, leaving everything else
    /// unchanged. The same chooser value always resolves to the same concrete
    /// value, which is what the refinement checker needs when it enumerates
    /// undef choices.
    pub fn resolve_undef(&self, ty: &Type, choice: u64) -> EvalValue {
        match self {
            EvalValue::Undef => match ty.scalar_type() {
                Type::Int(w) => EvalValue::Int(ApInt::new(*w, choice as u128)),
                Type::Float(k) => EvalValue::Float(*k, choice as f64),
                Type::Ptr => EvalValue::Ptr(PtrValue { alloc: usize::MAX, offset: 0 }),
                _ => EvalValue::Undef,
            },
            EvalValue::Vector(lanes) => EvalValue::Vector(
                lanes
                    .iter()
                    .enumerate()
                    .map(|(i, l)| l.resolve_undef(ty.scalar_type(), choice.wrapping_add(i as u64)))
                    .collect(),
            ),
            other => other.clone(),
        }
    }

    /// Structural equality that treats NaN floats as equal to each other,
    /// which is what "same observable behaviour" means for our refinement
    /// checker (LLVM NaN payloads are not observable at this level).
    pub fn same_as(&self, other: &EvalValue) -> bool {
        match (self, other) {
            (EvalValue::Float(_, a), EvalValue::Float(_, b)) => {
                (a.is_nan() && b.is_nan()) || a == b || (*a == 0.0 && *b == 0.0)
            }
            (EvalValue::Vector(a), EvalValue::Vector(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.same_as(y))
            }
            (a, b) => a == b,
        }
    }
}

impl fmt::Display for EvalValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalValue::Int(v) => write!(f, "{}", v.sext_value()),
            EvalValue::Float(_, v) => write!(f, "{v}"),
            EvalValue::Ptr(p) => {
                if p.alloc == usize::MAX {
                    write!(f, "null")
                } else {
                    write!(f, "&alloc{}+{}", p.alloc, p.offset)
                }
            }
            EvalValue::Vector(lanes) => {
                write!(f, "<")?;
                for (i, l) in lanes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l}")?;
                }
                write!(f, ">")
            }
            EvalValue::Poison => write!(f, "poison"),
            EvalValue::Undef => write!(f, "undef"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_conversion() {
        assert_eq!(
            EvalValue::from_constant(&Constant::int(8, 7)),
            EvalValue::int(8, 7)
        );
        assert_eq!(
            EvalValue::from_constant(&Constant::double(2.5)),
            EvalValue::Float(FloatKind::Double, 2.5)
        );
        assert!(EvalValue::from_constant(&Constant::Poison(Type::i8())).is_poison());
        assert!(EvalValue::from_constant(&Constant::Undef(Type::i8())).is_undef());
        let v = EvalValue::from_constant(&Constant::splat(4, Constant::int(32, 1)));
        assert_eq!(v.lanes().unwrap().len(), 4);
    }

    #[test]
    fn poison_and_undef_in_vectors() {
        let v = EvalValue::Vector(vec![EvalValue::int(8, 1), EvalValue::Poison]);
        assert!(v.is_poison());
        assert!(!v.is_undef());
        let u = EvalValue::Vector(vec![EvalValue::Undef, EvalValue::int(8, 1)]);
        assert!(u.is_undef());
    }

    #[test]
    fn bool_accessor() {
        assert_eq!(EvalValue::bool(true).as_bool(), Some(true));
        assert_eq!(EvalValue::int(8, 1).as_bool(), None);
        assert_eq!(EvalValue::Poison.as_bool(), None);
    }

    #[test]
    fn undef_resolution_is_deterministic() {
        let ty = Type::i32();
        let a = EvalValue::Undef.resolve_undef(&ty, 42);
        let b = EvalValue::Undef.resolve_undef(&ty, 42);
        assert_eq!(a, b);
        assert_eq!(a, EvalValue::int(32, 42));
        let vec_ty = Type::vector(2, Type::i8());
        let v = EvalValue::Vector(vec![EvalValue::Undef, EvalValue::int(8, 3)]);
        let resolved = v.resolve_undef(&vec_ty, 5);
        assert_eq!(
            resolved,
            EvalValue::Vector(vec![EvalValue::int(8, 5), EvalValue::int(8, 3)])
        );
    }

    #[test]
    fn nan_aware_equality() {
        let a = EvalValue::Float(FloatKind::Double, f64::NAN);
        let b = EvalValue::Float(FloatKind::Double, f64::NAN);
        assert!(a.same_as(&b));
        assert!(!a.same_as(&EvalValue::Float(FloatKind::Double, 1.0)));
        let z1 = EvalValue::Float(FloatKind::Double, 0.0);
        let z2 = EvalValue::Float(FloatKind::Double, -0.0);
        assert!(z1.same_as(&z2));
        assert!(EvalValue::int(8, 3).same_as(&EvalValue::int(8, 3)));
    }

    #[test]
    fn display() {
        assert_eq!(EvalValue::int_signed(8, -1).to_string(), "-1");
        assert_eq!(EvalValue::Poison.to_string(), "poison");
        assert_eq!(
            EvalValue::Vector(vec![EvalValue::int(8, 1), EvalValue::int(8, 2)]).to_string(),
            "<1, 2>"
        );
        assert_eq!(
            EvalValue::Ptr(PtrValue { alloc: usize::MAX, offset: 0 }).to_string(),
            "null"
        );
        assert_eq!(
            EvalValue::Ptr(PtrValue { alloc: 1, offset: 8 }).to_string(),
            "&alloc1+8"
        );
    }
}
