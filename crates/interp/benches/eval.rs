//! Microbenchmarks for the concrete-evaluation hot path: the register-file
//! [`CompiledFunction`] evaluator against the HashMap-environment reference
//! evaluator, on the workload shapes the translation validator produces.
//!
//! * `compiled_clamp` / `reference_clamp` — the Figure 1 clamp (straight-line
//!   integer code with an intrinsic), one evaluation per iteration;
//! * `compiled_loop` / `reference_loop` — a phi-carrying counted loop, ~160
//!   steps per evaluation (amortizes per-eval fixed costs away);
//! * `compiled_memory` / `reference_memory` — load/store traffic against a
//!   64-byte allocation, including the per-input `Memory` clone the
//!   verification loop pays;
//! * `compile_only` — the one-time pre-decoding cost of `CompiledFunction`.

use criterion::{criterion_group, criterion_main, Criterion};
use lpo_interp::prelude::*;
use lpo_ir::function::Function;
use lpo_ir::parser::parse_function;

const CLAMP: &str = "define i8 @src(i32 %0) {\n\
    %2 = icmp slt i32 %0, 0\n\
    %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
    %4 = trunc nuw i32 %3 to i8\n\
    %5 = select i1 %2, i8 0, i8 %4\n\
    ret i8 %5\n}";

const LOOP: &str = "define i32 @sum(i32 %n) {\n\
    entry:\n  br label %header\n\
    header:\n\
      %i = phi i32 [ 0, %entry ], [ %i.next, %body ]\n\
      %acc = phi i32 [ 0, %entry ], [ %acc.next, %body ]\n\
      %cmp = icmp slt i32 %i, %n\n\
      br i1 %cmp, label %body, label %exit\n\
    body:\n\
      %acc.next = add i32 %acc, %i\n\
      %i.next = add i32 %i, 1\n\
      br label %header\n\
    exit:\n  ret i32 %acc\n}";

const MEMORY: &str = "define i32 @mem(ptr %p) {\n\
    %v = load i32, ptr %p, align 4\n\
    %w = add i32 %v, 1\n\
    store i32 %w, ptr %p, align 4\n\
    %q = getelementptr i8, ptr %p, i64 4\n\
    store i32 %w, ptr %q, align 4\n\
    ret i32 %w\n}";

fn clamp_args(i: u64) -> [EvalValue; 1] {
    [EvalValue::int(32, u128::from(i) & 0xffff_ffff)]
}

fn bench_clamp(c: &mut Criterion) {
    let func = parse_function(CLAMP).unwrap();
    let compiled = CompiledFunction::compile(&func);
    let mut arena = EvalArena::new();
    let mut i = 0u64;
    c.bench_function("compiled_clamp", |b| {
        b.iter(|| {
            i += 1;
            compiled.evaluate(&mut arena, &clamp_args(i), Memory::new()).unwrap().result
        })
    });
    let mut i = 0u64;
    c.bench_function("reference_clamp", |b| {
        b.iter(|| {
            i += 1;
            evaluate_reference(&func, &clamp_args(i), Memory::new(), DEFAULT_STEP_LIMIT)
                .unwrap()
                .result
        })
    });
}

fn bench_loop(c: &mut Criterion) {
    let func = parse_function(LOOP).unwrap();
    let compiled = CompiledFunction::compile(&func);
    let mut arena = EvalArena::new();
    let args = [EvalValue::int(32, 32)];
    c.bench_function("compiled_loop", |b| {
        b.iter(|| compiled.evaluate(&mut arena, &args, Memory::new()).unwrap().steps)
    });
    c.bench_function("reference_loop", |b| {
        b.iter(|| {
            evaluate_reference(&func, &args, Memory::new(), DEFAULT_STEP_LIMIT).unwrap().steps
        })
    });
}

fn memory_input() -> (Memory, [EvalValue; 1]) {
    let mut memory = Memory::new();
    let alloc = memory.allocate(Allocation::with_bytes((0..64).collect()));
    (memory, [EvalValue::Ptr(PtrValue { alloc, offset: 0 })])
}

fn bench_memory(c: &mut Criterion) {
    let func = parse_function(MEMORY).unwrap();
    let compiled = CompiledFunction::compile(&func);
    let mut arena = EvalArena::new();
    let (memory, args) = memory_input();
    c.bench_function("compiled_memory", |b| {
        b.iter(|| compiled.evaluate(&mut arena, &args, memory.clone()).unwrap().result)
    });
    c.bench_function("reference_memory", |b| {
        b.iter(|| {
            evaluate_reference(&func, &args, memory.clone(), DEFAULT_STEP_LIMIT).unwrap().result
        })
    });
}

fn bench_compile_only(c: &mut Criterion) {
    let funcs: Vec<Function> =
        [CLAMP, LOOP, MEMORY].iter().map(|t| parse_function(t).unwrap()).collect();
    c.bench_function("compile_only", |b| {
        b.iter(|| {
            funcs
                .iter()
                .map(|f| CompiledFunction::compile(f).register_count())
                .sum::<usize>()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_clamp, bench_loop, bench_memory, bench_compile_only
}
criterion_main!(benches);
