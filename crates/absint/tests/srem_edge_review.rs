use lpo_absint::{certificate, Certificate, FunctionAnalysis};
use lpo_ir::parser::parse_function;

#[test]
fn srem_int_min_divisor_is_sound() {
    // srem(i64 MAX, i64 MIN) = i64 MAX (q = 0, r = dividend). The abstract
    // transfer must contain that value.
    let tgt = parse_function(
        "define i64 @t() {\nentry:\n  %r = srem i64 9223372036854775807, -9223372036854775808\n  ret i64 %r\n}",
    )
    .expect("parse tgt");
    let tgt_abs = FunctionAnalysis::analyze(&tgt).expect("fragment");
    let r = tgt_abs.ret_abs().expect("ret");
    eprintln!("abs = {r:?}, may_ub = {}", tgt_abs.may_ub());
    assert!(
        r.contains(i64::MAX as u64),
        "actual result {} escapes the abstraction {:?}",
        i64::MAX,
        r
    );

    // And the downstream consequence: a false Refuted certificate against a
    // source that returns exactly that constant.
    let src = parse_function(
        "define i64 @s() {\nentry:\n  ret i64 9223372036854775807\n}",
    )
    .expect("parse src");
    let src_abs = FunctionAnalysis::analyze(&src).expect("src fragment");
    let cert = certificate(&src, &src_abs, &tgt, &tgt_abs);
    assert_ne!(
        cert,
        Some(Certificate::Refuted),
        "candidate always returns the source's value but was abstractly refuted"
    );
}
