//! Abstract interpretation over the straight-line scalar-int fragment.
//!
//! Two analyses live here:
//!
//! * [`KnownBits`] + [`KnownBitsCtx`] — the known-zero/known-one bit analysis
//!   used by InstCombine rules in `lpo-opt`. The context memoizes per
//!   instruction, so shared def chains are walked once per function instead
//!   of once per query (the old free-function query re-walked the whole
//!   chain under a depth cap).
//! * [`AbsValue`] + [`FunctionAnalysis`] — a product domain of known bits,
//!   an unsigned interval and a signed interval, with poison/undef may-flags,
//!   evaluated forward over the straight-line scalar-int (≤ 64-bit) fragment
//!   the plane tier supports. [`certificate`] turns a source/candidate pair
//!   of analyses into a pre-verification [`Certificate`]: `Refuted` when the
//!   two return values are provably disjoint for every input (so any concrete
//!   input is a counterexample), `Proved` when both sides provably compute
//!   the same value on every input (same singleton constant, or structurally
//!   identical return DAGs under singleton-constant folding).
//!
//! # Soundness contract
//!
//! Abstract conclusions are only ever a *pre-filter certificate* for the
//! concrete verifier: a `Refuted` certificate promises that **every** concrete
//! input refutes the candidate (the source is provably concrete and defined,
//! and the value sets never intersect), and a `Proved` certificate promises
//! the candidate's verdict equals the full concrete sweep's `Correct`. Every
//! transfer function over-approximates the plane-kernel semantics in
//! `lpo_interp::plane` — including flag-poison (`nuw`/`nsw`/`exact`/
//! `disjoint`/`nneg`), shift-amount poison, and division UB. When in doubt a
//! transfer returns ⊤ (and sets `may_poison`/`may_ub`), which can only make
//! the tier fall through to the concrete probe, never lie.
//! `tests/absint_differential.rs` fuzzes thousands of source/candidate pairs
//! and asserts no certificate ever disagrees with the concrete reference.

use std::cell::RefCell;
use std::collections::HashMap;

use lpo_ir::apint::ApInt;
use lpo_ir::constant::Constant;
use lpo_ir::flags::IntFlags;
use lpo_ir::function::Function;
use lpo_ir::instruction::{BinOp, CastOp, ICmpPred, InstId, InstKind, Intrinsic, Value};
use lpo_ir::types::Type;

/// Functions larger than this are outside the fragment. Keeps the analysis
/// linear and guarantees a straight-line evaluation never nears the
/// interpreter step limit.
const MAX_INSTS: usize = 4096;

/// Budget of instruction-pair comparisons for the return-DAG equality check.
const DAG_BUDGET: usize = 2048;

// ---------------------------------------------------------------------------
// Known bits (u128, any width): the InstCombine-facing analysis.
// ---------------------------------------------------------------------------

/// Known-zero / known-one bit masks for one integer value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnownBits {
    /// Bits known to be zero.
    pub zeros: u128,
    /// Bits known to be one.
    pub ones: u128,
    /// The value's bit width.
    pub width: u32,
}

impl KnownBits {
    /// Nothing known for a value of the given width.
    pub fn unknown(width: u32) -> Self {
        Self { zeros: 0, ones: 0, width }
    }

    /// Everything known: the value is exactly `v`.
    pub fn constant(v: &ApInt) -> Self {
        let mask = mask_of(v.width());
        Self { zeros: !v.zext_value() & mask, ones: v.zext_value(), width: v.width() }
    }

    /// Returns the exact value if every bit is known.
    pub fn as_constant(&self) -> Option<ApInt> {
        if self.zeros | self.ones == mask_of(self.width) {
            Some(ApInt::new(self.width, self.ones))
        } else {
            None
        }
    }

    /// True when the sign bit is known zero.
    pub fn is_non_negative(&self) -> bool {
        self.zeros >> (self.width - 1) & 1 == 1
    }

    /// True when the sign bit is known one.
    pub fn is_negative(&self) -> bool {
        self.ones >> (self.width - 1) & 1 == 1
    }

    /// The largest value consistent with the known bits.
    pub fn umax(&self) -> u128 {
        !self.zeros & mask_of(self.width)
    }

    /// The smallest value consistent with the known bits.
    pub fn umin(&self) -> u128 {
        self.ones
    }

    /// Number of high bits known to be zero.
    pub fn leading_zeros(&self) -> u32 {
        let significant = 128 - self.width;
        (self.zeros << significant).leading_ones()
    }
}

/// All-ones mask for a value of `width` bits.
pub fn mask_of(width: u32) -> u128 {
    if width >= 128 {
        u128::MAX
    } else {
        (1u128 << width) - 1
    }
}

/// Memoized per-function known-bits analysis.
///
/// Construct once per function, then query any number of values: each
/// instruction's bits are computed at most once, so a query over a def chain
/// with heavy sharing costs O(chain size) total instead of O(paths). The
/// transfer rules are a superset of the old free-function `known_bits` query
/// in `lpo-opt` (which remains as a reference oracle in its tests), so every
/// bit the old analysis proves, the context proves too.
pub struct KnownBitsCtx<'f> {
    func: &'f Function,
    cache: RefCell<HashMap<u32, KnownBits>>,
}

impl<'f> KnownBitsCtx<'f> {
    /// A fresh context for `func`; nothing is computed until queried.
    pub fn new(func: &'f Function) -> Self {
        Self { func, cache: RefCell::new(HashMap::new()) }
    }

    /// Known bits of `value`, memoized per instruction.
    pub fn known_bits(&self, value: &Value) -> KnownBits {
        let ty = self.func.value_type(value);
        let width = match ty {
            Type::Int(w) => w,
            _ => return KnownBits::unknown(ty.int_width().unwrap_or(1)),
        };
        match value {
            Value::Const(Constant::Int(v)) => KnownBits::constant(v),
            Value::Const(_) | Value::Arg(_) => KnownBits::unknown(width),
            Value::Inst(id) => {
                if let Some(known) = self.cache.borrow().get(&id.0) {
                    return *known;
                }
                // Seed the cache with ⊤ before descending: a (malformed)
                // cyclic def chain then terminates at ⊤ instead of
                // recursing forever.
                self.cache.borrow_mut().insert(id.0, KnownBits::unknown(width));
                let known = self.compute(*id, width);
                self.cache.borrow_mut().insert(id.0, known);
                known
            }
        }
    }

    fn compute(&self, id: InstId, width: u32) -> KnownBits {
        let mask = mask_of(width);
        let inst = self.func.inst(id);
        match &inst.kind {
            InstKind::Binary { op, lhs, rhs, .. } => {
                let l = self.known_bits(lhs);
                let r = self.known_bits(rhs);
                match op {
                    BinOp::And => KnownBits {
                        zeros: (l.zeros | r.zeros) & mask,
                        ones: l.ones & r.ones,
                        width,
                    },
                    BinOp::Or => KnownBits {
                        zeros: l.zeros & r.zeros,
                        ones: (l.ones | r.ones) & mask,
                        width,
                    },
                    BinOp::Xor => {
                        let known = (l.zeros | l.ones) & (r.zeros | r.ones);
                        let value = (l.ones ^ r.ones) & known;
                        KnownBits { zeros: known & !value & mask, ones: value, width }
                    }
                    BinOp::Shl => match const_shift_amount(self.func, rhs, width) {
                        Some(amount) => KnownBits {
                            zeros: ((l.zeros << amount) | (mask_of(amount)) ) & mask,
                            ones: (l.ones << amount) & mask,
                            width,
                        },
                        None => KnownBits::unknown(width),
                    },
                    BinOp::LShr => match const_shift_amount(self.func, rhs, width) {
                        Some(amount) => {
                            let high = mask & !(mask >> amount);
                            KnownBits {
                                zeros: ((l.zeros & mask) >> amount) | high,
                                ones: (l.ones & mask) >> amount,
                                width,
                            }
                        }
                        None => KnownBits::unknown(width),
                    },
                    BinOp::AShr => match const_shift_amount(self.func, rhs, width) {
                        Some(amount) => {
                            let high = mask & !(mask >> amount);
                            let mut zeros = (l.zeros & mask) >> amount;
                            let mut ones = (l.ones & mask) >> amount;
                            if l.is_non_negative() {
                                zeros |= high;
                            } else if l.is_negative() {
                                ones |= high;
                            }
                            KnownBits { zeros: zeros & mask, ones: ones & mask, width }
                        }
                        None => KnownBits::unknown(width),
                    },
                    BinOp::URem => match constant_of(self.func, rhs) {
                        Some(c) if c.is_power_of_two() => KnownBits {
                            zeros: !(c.zext_value() - 1) & mask,
                            ones: 0,
                            width,
                        },
                        _ => KnownBits::unknown(width),
                    },
                    _ => KnownBits::unknown(width),
                }
            }
            InstKind::Cast { op: CastOp::ZExt, value, .. } => {
                let v = self.known_bits(value);
                let low = mask_of(v.width);
                KnownBits { zeros: (v.zeros & low) | (mask & !low), ones: v.ones & low, width }
            }
            InstKind::Cast { op: CastOp::SExt, value, .. } => {
                let v = self.known_bits(value);
                let low = mask_of(v.width);
                let high = mask & !low;
                let mut zeros = v.zeros & low;
                let mut ones = v.ones & low;
                if v.is_non_negative() {
                    zeros |= high;
                } else if v.is_negative() {
                    ones |= high;
                }
                KnownBits { zeros, ones, width }
            }
            InstKind::Cast { op: CastOp::Trunc, value, .. } => {
                let v = self.known_bits(value);
                KnownBits { zeros: v.zeros & mask, ones: v.ones & mask, width }
            }
            InstKind::Call { intrinsic: Intrinsic::Umin, args, .. } if args.len() == 2 => {
                let l = self.known_bits(&args[0]);
                let r = self.known_bits(&args[1]);
                // The result is no larger than either operand: high bits
                // known zero in either operand are known zero in the result.
                let lead = l.leading_zeros().max(r.leading_zeros());
                let zeros = if lead == 0 { 0 } else { mask & !(mask >> lead) };
                KnownBits { zeros, ones: 0, width }
            }
            InstKind::Call { intrinsic: Intrinsic::Smax, args, .. } if args.len() == 2 => {
                let l = self.known_bits(&args[0]);
                let r = self.known_bits(&args[1]);
                if l.is_non_negative() || r.is_non_negative() {
                    KnownBits { zeros: 1 << (width - 1), ones: 0, width }
                } else {
                    KnownBits::unknown(width)
                }
            }
            InstKind::Select { on_true, on_false, .. } => {
                let t = self.known_bits(on_true);
                let f = self.known_bits(on_false);
                KnownBits { zeros: t.zeros & f.zeros, ones: t.ones & f.ones, width }
            }
            _ => KnownBits::unknown(width),
        }
    }
}

fn constant_of<'a>(func: &'a Function, value: &'a Value) -> Option<&'a ApInt> {
    match value {
        Value::Const(Constant::Int(v)) => Some(v),
        _ => {
            let _ = func;
            None
        }
    }
}

fn const_shift_amount(func: &Function, value: &Value, width: u32) -> Option<u32> {
    let amount = constant_of(func, value)?.zext_value();
    (amount < u128::from(width)).then_some(amount as u32)
}

// ---------------------------------------------------------------------------
// The TV-facing product domain (u64, widths 1..=64).
// ---------------------------------------------------------------------------

#[inline]
fn mask64(w: u32) -> u64 {
    if w >= 64 {
        u64::MAX
    } else {
        (1u64 << w) - 1
    }
}

/// Sign-extends the low `w` bits of `v` to an `i64`.
#[inline]
fn sx64(v: u64, w: u32) -> i64 {
    ((v << (64 - w)) as i64) >> (64 - w)
}

#[inline]
fn smin_of(w: u32) -> i64 {
    sx64(1u64 << (w - 1), w)
}

#[inline]
fn smax_of(w: u32) -> i64 {
    (mask64(w) >> 1) as i64
}

/// One value in the product domain: known bits × unsigned interval × signed
/// interval, plus may-poison / may-undef flags. Intervals are inclusive; the
/// signed bounds are sign-extended `w`-bit values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AbsValue {
    /// Bit width, 1..=64.
    pub width: u32,
    /// Bits known to be zero.
    pub zeros: u64,
    /// Bits known to be one.
    pub ones: u64,
    /// Smallest possible value, unsigned.
    pub umin: u64,
    /// Largest possible value, unsigned.
    pub umax: u64,
    /// Smallest possible value, signed.
    pub smin: i64,
    /// Largest possible value, signed.
    pub smax: i64,
    /// The value may be poison.
    pub may_poison: bool,
    /// The value may be undef.
    pub may_undef: bool,
}

impl AbsValue {
    /// ⊤: any concrete value of the width, neither poison nor undef.
    #[inline]
    pub fn top(width: u32) -> Self {
        Self {
            width,
            zeros: 0,
            ones: 0,
            umin: 0,
            umax: mask64(width),
            smin: smin_of(width),
            smax: smax_of(width),
            may_poison: false,
            may_undef: false,
        }
    }

    /// The singleton `v` (masked to the width).
    #[inline]
    pub fn constant(width: u32, v: u64) -> Self {
        let v = v & mask64(width);
        Self {
            width,
            zeros: !v & mask64(width),
            ones: v,
            umin: v,
            umax: v,
            smin: sx64(v, width),
            smax: sx64(v, width),
            may_poison: false,
            may_undef: false,
        }
    }

    /// Neither poison nor undef is possible.
    #[inline]
    pub fn is_concrete(&self) -> bool {
        !self.may_poison && !self.may_undef
    }

    /// The single concrete value, when exactly one is possible.
    #[inline]
    pub fn singleton(&self) -> Option<u64> {
        if self.umin == self.umax {
            Some(self.umin)
        } else if self.zeros | self.ones == mask64(self.width) {
            Some(self.ones)
        } else {
            None
        }
    }

    /// Whether the concrete value `v` is inside the abstraction.
    #[inline]
    pub fn contains(&self, v: u64) -> bool {
        let v = v & mask64(self.width);
        v & self.zeros == 0
            && self.ones & !v == 0
            && self.umin <= v
            && v <= self.umax
            && self.smin <= sx64(v, self.width)
            && sx64(v, self.width) <= self.smax
    }

    #[inline]
    fn with_flags(mut self, may_poison: bool, may_undef: bool) -> Self {
        self.may_poison |= may_poison;
        self.may_undef |= may_undef;
        self
    }

    /// Cross-tightens the three value components (each derivation is sound:
    /// it only removes values no component admits). An inconsistent product
    /// (which a sound transfer never produces) is repaired to ⊤ rather than
    /// ever being read as an empty set — a bug then loses precision, not
    /// soundness.
    #[inline]
    fn normalized(mut self) -> Self {
        let w = self.width;
        let m = mask64(w);
        let half = 1u64 << (w - 1);
        // Known bits → unsigned range.
        self.umin = self.umin.max(self.ones);
        self.umax = self.umax.min(!self.zeros & m);
        // Unsigned range → common-prefix known bits.
        let diff = self.umin ^ self.umax;
        let fixed = if diff == 0 { m } else { m & !(u64::MAX >> diff.leading_zeros()) };
        self.ones |= self.umin & fixed;
        self.zeros |= !self.umin & fixed & m;
        // Signed range → unsigned range (when the set stays in one half).
        if self.smin >= 0 {
            self.umin = self.umin.max(self.smin as u64);
            self.umax = self.umax.min(self.smax.max(0) as u64);
        } else if self.smax < 0 {
            self.umin = self.umin.max(self.smin as u64 & m);
            self.umax = self.umax.min(self.smax as u64 & m);
        }
        // Unsigned range → signed range.
        if self.umax < half {
            self.smin = self.smin.max(self.umin as i64);
            self.smax = self.smax.min(self.umax as i64);
        } else if self.umin >= half {
            self.smin = self.smin.max(sx64(self.umin, w));
            self.smax = self.smax.min(sx64(self.umax, w));
        }
        // Sign bit ↔ signed range.
        if self.smin >= 0 {
            self.zeros |= half;
        }
        if self.smax < 0 {
            self.ones |= half;
        }
        if self.zeros & half != 0 {
            self.smin = self.smin.max(0);
        }
        if self.ones & half != 0 {
            self.smax = self.smax.min(-1);
        }
        if self.zeros & self.ones != 0 || self.umin > self.umax || self.smin > self.smax {
            let (p, u) = (self.may_poison, self.may_undef);
            return AbsValue::top(w).with_flags(p, u);
        }
        self
    }

    #[inline]
    fn from_bits(width: u32, zeros: u64, ones: u64) -> Self {
        let m = mask64(width);
        AbsValue { zeros: zeros & m, ones: ones & m, ..AbsValue::top(width) }.normalized()
    }

    #[inline]
    fn from_urange(width: u32, umin: u64, umax: u64) -> Self {
        AbsValue { umin, umax, ..AbsValue::top(width) }.normalized()
    }

    #[inline]
    fn from_srange(width: u32, smin: i64, smax: i64) -> Self {
        AbsValue { smin, smax, ..AbsValue::top(width) }.normalized()
    }
}

/// Least upper bound of two abstractions of the same width.
pub fn join(a: &AbsValue, b: &AbsValue) -> AbsValue {
    AbsValue {
        width: a.width,
        zeros: a.zeros & b.zeros,
        ones: a.ones & b.ones,
        umin: a.umin.min(b.umin),
        umax: a.umax.max(b.umax),
        smin: a.smin.min(b.smin),
        smax: a.smax.max(b.smax),
        may_poison: a.may_poison | b.may_poison,
        may_undef: a.may_undef | b.may_undef,
    }
    .normalized()
}

/// True when no concrete value can be in both abstractions: a known-bits
/// conflict, or disjoint unsigned or signed intervals.
pub fn disjoint(a: &AbsValue, b: &AbsValue) -> bool {
    a.width == b.width
        && (a.ones & b.zeros != 0
            || a.zeros & b.ones != 0
            || a.umax < b.umin
            || b.umax < a.umin
            || a.smax < b.smin
            || b.smax < a.smin)
}

// ---------------------------------------------------------------------------
// Transfer functions. Each mirrors (over-approximates) the corresponding
// plane kernel in `lpo_interp::plane`, including flag-poison and UB.
// ---------------------------------------------------------------------------

/// The number of low bits known (zero or one) in both operands: the low bits
/// of `x op y` for op ∈ {add, sub, mul} depend only on the low bits of the
/// operands, so that many result bits are exact.
#[inline]
fn known_low_run(a: &AbsValue, b: &AbsValue) -> u32 {
    let known = (a.zeros | a.ones) & (b.zeros | b.ones);
    (!known).trailing_zeros()
}

#[inline]
fn bits_from_low_run(w: u32, a: &AbsValue, b: &AbsValue, exact_low: u64) -> (u64, u64) {
    let run = known_low_run(a, b).min(w);
    if run == 0 {
        return (0, 0);
    }
    let low = mask64(run);
    (!exact_low & low, exact_low & low)
}

#[inline]
fn signed_fits(w: u32, v: i128) -> bool {
    i128::from(smin_of(w)) <= v && v <= i128::from(smax_of(w))
}

fn binary_transfer(op: BinOp, flags: IntFlags, a: &AbsValue, b: &AbsValue, may_ub: &mut bool) -> AbsValue {
    let w = a.width;
    let m = mask64(w);
    // Division UB is decided on the raw lane values in the plane kernels, so
    // an unknown or possibly-poisonous divisor has to be assumed trapping.
    if op.is_division() {
        let smin_pat = smin_of(w) as u64 & m;
        let unsafe_divisor = !b.is_concrete()
            || !a.is_concrete()
            || b.contains(0)
            || (matches!(op, BinOp::SDiv | BinOp::SRem) && a.contains(smin_pat) && b.contains(m));
        if unsafe_divisor {
            *may_ub = true;
        }
    }
    if !a.is_concrete() || !b.is_concrete() {
        // A poisonous operand forces the result conservative: value ⊤, the
        // operand flags OR-combined, plus any flag- or shift-poison the op
        // itself could add.
        let own_poison = !flags.is_empty() || op.is_shift();
        return AbsValue::top(w)
            .with_flags(a.may_poison | b.may_poison | own_poison, a.may_undef | b.may_undef);
    }
    let mut r = match op {
        BinOp::Add => {
            let (uo, us) = (u128::from(a.umin) + u128::from(b.umin), u128::from(a.umax) + u128::from(b.umax));
            let (so, ss) = (i128::from(a.smin) + i128::from(b.smin), i128::from(a.smax) + i128::from(b.smax));
            let mut r = AbsValue::top(w);
            if us <= u128::from(m) {
                r.umin = uo as u64;
                r.umax = us as u64;
            }
            if signed_fits(w, so) && signed_fits(w, ss) {
                r.smin = so as i64;
                r.smax = ss as i64;
            }
            let (z, o) = bits_from_low_run(w, a, b, a.ones.wrapping_add(b.ones));
            r.zeros = z;
            r.ones = o;
            let mut r = r.normalized();
            if flags.nuw && us > u128::from(m) {
                r.may_poison = true;
            }
            if flags.nsw && !(signed_fits(w, so) && signed_fits(w, ss)) {
                r.may_poison = true;
            }
            r
        }
        BinOp::Sub => {
            let mut r = AbsValue::top(w);
            if a.umin >= b.umax {
                r.umin = a.umin - b.umax;
                r.umax = a.umax - b.umin;
            }
            let (so, ss) = (i128::from(a.smin) - i128::from(b.smax), i128::from(a.smax) - i128::from(b.smin));
            if signed_fits(w, so) && signed_fits(w, ss) {
                r.smin = so as i64;
                r.smax = ss as i64;
            }
            let (z, o) = bits_from_low_run(w, a, b, a.ones.wrapping_sub(b.ones));
            r.zeros = z;
            r.ones = o;
            let mut r = r.normalized();
            if flags.nuw && a.umin < b.umax {
                r.may_poison = true;
            }
            if flags.nsw && !(signed_fits(w, so) && signed_fits(w, ss)) {
                r.may_poison = true;
            }
            r
        }
        BinOp::Mul => {
            let uhi = u128::from(a.umax) * u128::from(b.umax);
            let corners = [
                i128::from(a.smin) * i128::from(b.smin),
                i128::from(a.smin) * i128::from(b.smax),
                i128::from(a.smax) * i128::from(b.smin),
                i128::from(a.smax) * i128::from(b.smax),
            ];
            let sfit = corners.iter().all(|&c| signed_fits(w, c));
            let mut r = AbsValue::top(w);
            if uhi <= u128::from(m) {
                r.umin = (u128::from(a.umin) * u128::from(b.umin)) as u64;
                r.umax = uhi as u64;
            }
            if sfit {
                r.smin = *corners.iter().min().unwrap() as i64;
                r.smax = *corners.iter().max().unwrap() as i64;
            }
            let (mut z, o) = bits_from_low_run(w, a, b, a.ones.wrapping_mul(b.ones));
            // Trailing zeros add under multiplication.
            let tz = (a.zeros.trailing_ones() + b.zeros.trailing_ones()).min(w);
            z |= mask64(tz);
            r.zeros = z & !o;
            r.ones = o;
            let mut r = r.normalized();
            if flags.nuw && uhi > u128::from(m) {
                r.may_poison = true;
            }
            if flags.nsw && !sfit {
                r.may_poison = true;
            }
            r
        }
        BinOp::UDiv => {
            let lo = a.umin / b.umax.max(1);
            let hi = a.umax / b.umin.max(1);
            let mut r = AbsValue::from_urange(w, lo, hi);
            if flags.exact && !exact_division_is_safe(a, b) {
                r.may_poison = true;
            }
            r
        }
        BinOp::SDiv => {
            let mut r = if b.smin > 0 || b.smax < 0 {
                let mut lo = i64::MAX;
                let mut hi = i64::MIN;
                let mut fits = true;
                for x in [a.smin, a.smax] {
                    for y in [b.smin, b.smax] {
                        let q = i128::from(x) / i128::from(y);
                        fits &= signed_fits(w, q);
                        lo = lo.min(q.clamp(i64::MIN.into(), i64::MAX.into()) as i64);
                        hi = hi.max(q.clamp(i64::MIN.into(), i64::MAX.into()) as i64);
                    }
                }
                if fits { AbsValue::from_srange(w, lo, hi) } else { AbsValue::top(w) }
            } else {
                AbsValue::top(w)
            };
            if flags.exact && !exact_division_is_safe(a, b) {
                r.may_poison = true;
            }
            r
        }
        BinOp::URem => {
            if let Some(c) = b.singleton().filter(|&c| c.is_power_of_two()) {
                AbsValue::from_bits(w, !(c - 1), 0)
            } else {
                AbsValue::from_urange(w, 0, a.umax.min(b.umax.saturating_sub(1)))
            }
        }
        BinOp::SRem => {
            // |x srem y| < |y| and the sign follows the dividend. The
            // magnitude bound |y| - 1 must be computed before clamping to
            // i64: a divisor of SMIN has magnitude 2^63, whose remainders
            // reach i64::MAX — clamping first would lose that last value.
            let bmag = i128::from(b.smin)
                .unsigned_abs()
                .max(i128::from(b.smax).unsigned_abs());
            let mag = bmag.saturating_sub(1).min(u128::from(u64::MAX >> 1)) as i64;
            let lo = if a.smin >= 0 { 0 } else { -mag };
            let hi = if a.smax < 0 { 0 } else { mag.min(a.smax.max(0)) };
            AbsValue::from_srange(w, lo.max(a.smin.min(0)), hi)
        }
        BinOp::Shl => {
            let mut r = if let Some(k) = b.singleton().filter(|&k| k < u64::from(w)) {
                let k = k as u32;
                let mut r = AbsValue::from_bits(w, (a.zeros << k) | mask64(k), a.ones << k);
                if u128::from(a.umax) << k <= u128::from(m) {
                    r.umin = r.umin.max(a.umin << k);
                    r.umax = r.umax.min(a.umax << k);
                    r = r.normalized();
                }
                r
            } else {
                // Unknown amount: at least b.umin low bits become zero.
                let low = mask64(b.umin.min(u64::from(w)) as u32);
                AbsValue::from_bits(w, low, 0)
            };
            if b.umax >= u64::from(w) {
                r.may_poison = true;
            }
            if flags.nuw && !(b.umax < u64::from(w) && u128::from(a.umax) << b.umax <= u128::from(m)) {
                r.may_poison = true;
            }
            if flags.nsw {
                let safe = b.umax < u64::from(w)
                    && signed_fits(w, i128::from(a.smin) << b.umax)
                    && signed_fits(w, i128::from(a.smax) << b.umax);
                if !safe {
                    r.may_poison = true;
                }
            }
            r
        }
        BinOp::LShr => {
            let k1 = b.umin.min(63) as u32;
            let k2 = b.umax.min(63) as u32;
            let mut r = AbsValue::from_urange(w, a.umin >> k2, a.umax >> k1);
            if let Some(k) = b.singleton().filter(|&k| k < u64::from(w)) {
                let k = k as u32;
                let high = m & !(m >> k);
                r = AbsValue {
                    zeros: r.zeros | ((a.zeros & m) >> k) | high,
                    ones: r.ones | ((a.ones & m) >> k),
                    ..r
                }
                .normalized();
            }
            if b.umax >= u64::from(w) {
                r.may_poison = true;
            }
            if flags.exact && !exact_shift_is_safe(a, b) {
                r.may_poison = true;
            }
            r
        }
        BinOp::AShr => {
            let mut lo = i64::MAX;
            let mut hi = i64::MIN;
            for x in [a.smin, a.smax] {
                for k in [b.umin.min(63) as u32, b.umax.min(63) as u32] {
                    lo = lo.min(x >> k);
                    hi = hi.max(x >> k);
                }
            }
            let mut r = AbsValue::from_srange(w, lo, hi);
            if let Some(k) = b.singleton().filter(|&k| k < u64::from(w)) {
                let k = k as u32;
                let high = m & !(m >> k);
                let mut zeros = r.zeros | ((a.zeros & m) >> k);
                let mut ones = r.ones | ((a.ones & m) >> k);
                let half = 1u64 << (w - 1);
                if a.zeros & half != 0 {
                    zeros |= high;
                } else if a.ones & half != 0 {
                    ones |= high;
                }
                r = AbsValue { zeros: zeros & m, ones: ones & m, ..r }.normalized();
            }
            if b.umax >= u64::from(w) {
                r.may_poison = true;
            }
            if flags.exact && !exact_shift_is_safe(a, b) {
                r.may_poison = true;
            }
            r
        }
        BinOp::And => AbsValue {
            zeros: (a.zeros | b.zeros) & m,
            ones: a.ones & b.ones,
            umax: a.umax.min(b.umax),
            ..AbsValue::top(w)
        }
        .normalized(),
        BinOp::Or => {
            let mut r = AbsValue {
                zeros: a.zeros & b.zeros,
                ones: (a.ones | b.ones) & m,
                umin: a.umin.max(b.umin),
                ..AbsValue::top(w)
            }
            .normalized();
            if flags.disjoint && (!a.zeros & m) & (!b.zeros & m) != 0 {
                r.may_poison = true;
            }
            r
        }
        BinOp::Xor => {
            let known = (a.zeros | a.ones) & (b.zeros | b.ones);
            let value = (a.ones ^ b.ones) & known;
            AbsValue::from_bits(w, known & !value, value)
        }
    };
    r.may_poison |= a.may_poison | b.may_poison;
    r.may_undef |= a.may_undef | b.may_undef;
    r
}

/// `exact` division never drops a remainder: provable for a divisor of one,
/// or a power-of-two divisor whose low bits are known zero in the dividend.
fn exact_division_is_safe(a: &AbsValue, b: &AbsValue) -> bool {
    match b.singleton() {
        Some(1) => true,
        Some(c) if c.is_power_of_two() => a.zeros & (c - 1) == c - 1,
        _ => false,
    }
}

/// `exact` right-shift never drops a one bit: provable when every possible
/// shift amount only shifts out known-zero bits.
fn exact_shift_is_safe(a: &AbsValue, b: &AbsValue) -> bool {
    match b.singleton() {
        Some(k) if k < u64::from(a.width) => a.zeros & mask64(k as u32) == mask64(k as u32),
        _ => false,
    }
}

fn icmp_transfer(pred: ICmpPred, a: &AbsValue, b: &AbsValue) -> AbsValue {
    if !a.is_concrete() || !b.is_concrete() {
        return AbsValue::top(1).with_flags(a.may_poison | b.may_poison, a.may_undef | b.may_undef);
    }
    let both_singleton_eq = match (a.singleton(), b.singleton()) {
        (Some(x), Some(y)) => x == y,
        _ => false,
    };
    // (may be true, may be false); each side is an over-approximation.
    let (can_t, can_f) = match pred {
        ICmpPred::Eq => (!disjoint(a, b), !both_singleton_eq),
        ICmpPred::Ne => (!both_singleton_eq, !disjoint(a, b)),
        ICmpPred::Ult => (a.umin < b.umax, a.umax >= b.umin),
        ICmpPred::Ule => (a.umin <= b.umax, a.umax > b.umin),
        ICmpPred::Ugt => (a.umax > b.umin, a.umin <= b.umax),
        ICmpPred::Uge => (a.umax >= b.umin, a.umin < b.umax),
        ICmpPred::Slt => (a.smin < b.smax, a.smax >= b.smin),
        ICmpPred::Sle => (a.smin <= b.smax, a.smax > b.smin),
        ICmpPred::Sgt => (a.smax > b.smin, a.smin <= b.smax),
        ICmpPred::Sge => (a.smax >= b.smin, a.smin < b.smax),
    };
    match (can_t, can_f) {
        (true, false) => AbsValue::constant(1, 1),
        (false, true) => AbsValue::constant(1, 0),
        _ => AbsValue::top(1),
    }
}

fn select_transfer(cond: &AbsValue, t: &AbsValue, f: &AbsValue) -> AbsValue {
    if cond.is_concrete() {
        if let Some(c) = cond.singleton() {
            return if c != 0 { *t } else { *f };
        }
    }
    join(t, f).with_flags(cond.may_poison, cond.may_undef)
}

fn cast_transfer(op: CastOp, flags: IntFlags, a: &AbsValue, to: u32) -> Option<AbsValue> {
    let from = a.width;
    let mut r = match op {
        CastOp::Trunc if to <= from => {
            if !a.is_concrete() {
                AbsValue::top(to)
            } else {
                let mut r = AbsValue::from_bits(to, a.zeros, a.ones);
                if a.umax <= mask64(to) {
                    r.umin = r.umin.max(a.umin);
                    r.umax = r.umax.min(a.umax);
                    r = r.normalized();
                }
                if flags.nuw && a.umax > mask64(to) {
                    r.may_poison = true;
                }
                if flags.nsw && !(a.smin >= smin_of(to) && a.smax <= smax_of(to)) {
                    r.may_poison = true;
                }
                r
            }
        }
        CastOp::ZExt if to >= from => {
            if !a.is_concrete() {
                let mut r = AbsValue::from_urange(to, 0, mask64(from));
                if flags.nneg {
                    r.may_poison = true;
                }
                r
            } else {
                let mut r = AbsValue {
                    zeros: a.zeros | (mask64(to) & !mask64(from)),
                    ones: a.ones,
                    umin: a.umin,
                    umax: a.umax,
                    ..AbsValue::top(to)
                }
                .normalized();
                if flags.nneg && a.smin < 0 {
                    r.may_poison = true;
                }
                r
            }
        }
        CastOp::SExt if to >= from => {
            if !a.is_concrete() {
                AbsValue::from_srange(to, smin_of(from), smax_of(from))
            } else {
                let high = mask64(to) & !mask64(from);
                let half = 1u64 << (from - 1);
                let mut zeros = a.zeros;
                let mut ones = a.ones;
                if a.zeros & half != 0 {
                    zeros |= high;
                } else if a.ones & half != 0 {
                    ones |= high;
                }
                AbsValue {
                    zeros: zeros & mask64(to),
                    ones: ones & mask64(to),
                    smin: a.smin,
                    smax: a.smax,
                    ..AbsValue::top(to)
                }
                .normalized()
            }
        }
        _ => return None,
    };
    r.may_poison |= a.may_poison;
    r.may_undef |= a.may_undef;
    Some(r)
}

/// `freeze` in this interpreter maps poison and undef to zero, so the result
/// is the operand's value or zero — and never poison or undef itself.
fn freeze_transfer(a: &AbsValue) -> AbsValue {
    if a.is_concrete() {
        return *a;
    }
    let mut v = *a;
    v.may_poison = false;
    v.may_undef = false;
    join(&v, &AbsValue::constant(a.width, 0))
}

/// `width - bit_length(v)`: leading zeros of a `w`-bit value.
fn lzw(v: u64, w: u32) -> u64 {
    u64::from(w) - u64::from(64 - v.leading_zeros()).min(u64::from(w))
}

fn intrinsic_transfer(intrinsic: Intrinsic, args: &[AbsValue], poison_flag: bool) -> Option<AbsValue> {
    let a = args.first()?;
    let w = a.width;
    let m = mask64(w);
    let may_poison = args.iter().any(|v| v.may_poison);
    let may_undef = args.iter().any(|v| v.may_undef);
    if args.iter().any(|v| !v.is_concrete()) {
        let own = poison_flag && matches!(intrinsic, Intrinsic::Abs | Intrinsic::Ctlz | Intrinsic::Cttz);
        return Some(AbsValue::top(w).with_flags(may_poison | own, may_undef));
    }
    let r = match intrinsic {
        Intrinsic::Umin => {
            let b = args.get(1)?;
            AbsValue::from_urange(w, a.umin.min(b.umin), a.umax.min(b.umax))
        }
        Intrinsic::Umax => {
            let b = args.get(1)?;
            AbsValue::from_urange(w, a.umin.max(b.umin), a.umax.max(b.umax))
        }
        Intrinsic::Smin => {
            let b = args.get(1)?;
            AbsValue::from_srange(w, a.smin.min(b.smin), a.smax.min(b.smax))
        }
        Intrinsic::Smax => {
            let b = args.get(1)?;
            AbsValue::from_srange(w, a.smin.max(b.smin), a.smax.max(b.smax))
        }
        Intrinsic::UaddSat => {
            let b = args.get(1)?;
            let sat = |x: u64, y: u64| (u128::from(x) + u128::from(y)).min(u128::from(m)) as u64;
            AbsValue::from_urange(w, sat(a.umin, b.umin), sat(a.umax, b.umax))
        }
        Intrinsic::SaddSat => {
            let b = args.get(1)?;
            let sat = |x: i64, y: i64| {
                (i128::from(x) + i128::from(y)).clamp(i128::from(smin_of(w)), i128::from(smax_of(w))) as i64
            };
            AbsValue::from_srange(w, sat(a.smin, b.smin), sat(a.smax, b.smax))
        }
        Intrinsic::UsubSat => {
            let b = args.get(1)?;
            AbsValue::from_urange(w, a.umin.saturating_sub(b.umax), a.umax.saturating_sub(b.umin))
        }
        Intrinsic::SsubSat => {
            let b = args.get(1)?;
            let sat = |x: i64, y: i64| {
                (i128::from(x) - i128::from(y)).clamp(i128::from(smin_of(w)), i128::from(smax_of(w))) as i64
            };
            AbsValue::from_srange(w, sat(a.smin, b.smax), sat(a.smax, b.smin))
        }
        Intrinsic::Abs => {
            let smin_pat = smin_of(w) as u64 & m;
            let mut r = if a.smin > smin_of(w) || !a.contains(smin_pat) {
                let lo = if a.smin >= 0 {
                    a.smin
                } else if a.smax < 0 {
                    -a.smax
                } else {
                    0
                };
                let hi = a.smax.max(0).max(a.smin.checked_neg().unwrap_or(i64::MAX));
                AbsValue::from_srange(w, lo, hi.min(smax_of(w)))
            } else {
                // INT_MIN may wrap back to INT_MIN without the flag.
                AbsValue::top(w)
            };
            if poison_flag && a.contains(smin_pat) {
                r.may_poison = true;
            }
            r
        }
        Intrinsic::Ctpop => {
            AbsValue::from_urange(w, u64::from(a.ones.count_ones()), u64::from(w - (a.zeros & m).count_ones()))
        }
        Intrinsic::Ctlz => {
            let mut r = AbsValue::from_urange(w, lzw(a.umax, w), lzw(a.umin, w));
            if poison_flag && a.contains(0) {
                r.may_poison = true;
            }
            r
        }
        Intrinsic::Cttz => {
            let hi = if a.ones != 0 {
                u64::from(a.ones.trailing_zeros()).min(u64::from(w))
            } else {
                u64::from(w)
            };
            let lo = u64::from(a.zeros.trailing_ones()).min(hi);
            let mut r = AbsValue::from_urange(w, lo, hi.max(if a.contains(0) { u64::from(w) } else { 0 }));
            if poison_flag && a.contains(0) {
                r.may_poison = true;
            }
            r
        }
        Intrinsic::Bswap => {
            if w % 8 != 0 {
                return None;
            }
            let swap = |v: u64| v.swap_bytes() >> (64 - w);
            AbsValue::from_bits(w, swap(a.zeros & m), swap(a.ones))
        }
        Intrinsic::Bitreverse => {
            let rev = |v: u64| v.reverse_bits() >> (64 - w);
            AbsValue::from_bits(w, rev(a.zeros & m), rev(a.ones))
        }
        Intrinsic::Fshl | Intrinsic::Fshr => {
            let b = args.get(1)?;
            let c = args.get(2)?;
            match c.singleton() {
                Some(amt) => {
                    let k = (amt % u64::from(w)) as u32;
                    if k == 0 {
                        if matches!(intrinsic, Intrinsic::Fshl) {
                            *a
                        } else {
                            *b
                        }
                    } else {
                        let (hz, ho, lz, lo_bits, sh) = if matches!(intrinsic, Intrinsic::Fshl) {
                            (a.zeros, a.ones, b.zeros, b.ones, k)
                        } else {
                            (a.zeros, a.ones, b.zeros, b.ones, w - k)
                        };
                        let zeros = ((hz << sh) | ((lz & m) >> (w - sh))) & m;
                        let ones = ((ho << sh) | ((lo_bits & m) >> (w - sh))) & m;
                        AbsValue::from_bits(w, zeros, ones)
                    }
                }
                None => AbsValue::top(w),
            }
        }
        _ => return None,
    };
    Some(r.with_flags(may_poison, may_undef))
}

// ---------------------------------------------------------------------------
// Whole-function forward analysis over the straight-line fragment.
// ---------------------------------------------------------------------------

/// Forward analysis of one function in the straight-line scalar-int
/// (≤ 64-bit) fragment. Reusable: [`FunctionAnalysis::run`] clears and
/// refills the same buffers, so a per-candidate analysis in a hot loop is
/// allocation-free after warm-up.
#[derive(Clone, Debug, Default)]
pub struct FunctionAnalysis {
    // The per-instruction abstractions live in an epoch-stamped buffer: a
    // slot holds a value from the *current* run iff its stamp equals
    // `epoch`. Bumping the epoch invalidates every slot in O(1), which keeps
    // the per-candidate hot loop free of the O(arena) clear-and-refill
    // memset a plain `Vec<Option<AbsValue>>` would need.
    values: Vec<AbsValue>,
    stamps: Vec<u32>,
    epoch: u32,
    ret: Option<AbsValue>,
    ret_value: Option<Value>,
    may_ub: bool,
}

impl FunctionAnalysis {
    /// Analyzes `func`; `None` when it is outside the fragment.
    pub fn analyze(func: &Function) -> Option<Self> {
        let mut analysis = Self::default();
        analysis.run(func).then_some(analysis)
    }

    /// (Re)runs the analysis over `func`, reusing buffers. Returns `false`
    /// (with cleared state) when the function is outside the fragment:
    /// multiple blocks, non-integer or > 64-bit types, unsupported opcodes,
    /// or no integer return.
    pub fn run(&mut self, func: &Function) -> bool {
        // A fresh epoch invalidates every stamped slot; on the (theoretical)
        // u32 wrap the stamps are cleared so an ancient slot can never alias
        // the new epoch.
        self.epoch = match self.epoch.checked_add(1) {
            Some(epoch) => epoch,
            None => {
                self.stamps.fill(0);
                1
            }
        };
        self.ret = None;
        self.ret_value = None;
        self.may_ub = false;
        // Single block, so the block's own length is the placed-instruction
        // total — no extra counting walk.
        if func.blocks().len() != 1 || func.blocks()[0].insts.len() > MAX_INSTS {
            return false;
        }
        if func.params.iter().any(|p| int_width_64(&p.ty).is_none()) {
            return false;
        }
        if int_width_64(&func.ret_ty).is_none() {
            return false;
        }
        let arena_len = func.inst_arena_len();
        if self.stamps.len() < arena_len {
            self.stamps.resize(arena_len, 0);
            self.values.resize(arena_len, AbsValue::top(1));
        }
        for (id, inst) in func.iter_insts() {
            match &inst.kind {
                InstKind::Ret { value: Some(value) } => {
                    let Some(abs) = self.operand(func, value) else { return false };
                    self.ret = Some(abs);
                    self.ret_value = Some(value.clone());
                }
                InstKind::Ret { value: None } | InstKind::Br { .. } | InstKind::Unreachable => {
                    return false;
                }
                kind => {
                    let Some(w) = int_width_64(&inst.ty) else { return false };
                    let Some(abs) = self.transfer(func, kind, w) else { return false };
                    let slot = id.0 as usize;
                    self.values[slot] = abs;
                    self.stamps[slot] = self.epoch;
                }
            }
        }
        self.ret.is_some()
    }

    /// The abstraction of the returned value.
    pub fn ret_abs(&self) -> Option<&AbsValue> {
        self.ret.as_ref()
    }

    /// Whether any instruction may hit immediate UB (straight-line code
    /// executes every instruction, so a trapping dead instruction counts).
    pub fn may_ub(&self) -> bool {
        self.may_ub
    }

    /// The abstraction computed for one instruction.
    pub fn value_of(&self, id: InstId) -> Option<&AbsValue> {
        let slot = id.0 as usize;
        (self.stamps.get(slot) == Some(&self.epoch)).then(|| &self.values[slot])
    }

    /// The returned value is provably a concrete (never poison/undef) value
    /// and no instruction can trap.
    pub fn provably_concrete(&self) -> bool {
        !self.may_ub && self.ret.as_ref().is_some_and(|r| r.is_concrete())
    }

    fn operand(&self, func: &Function, value: &Value) -> Option<AbsValue> {
        match value {
            Value::Arg(index) => {
                let w = int_width_64(&func.params.get(*index)?.ty)?;
                Some(AbsValue::top(w))
            }
            Value::Inst(id) => {
                let slot = id.0 as usize;
                if *self.stamps.get(slot)? != self.epoch {
                    return None;
                }
                Some(self.values[slot])
            }
            Value::Const(Constant::Int(v)) if v.width() <= 64 => {
                Some(AbsValue::constant(v.width(), v.zext_value() as u64))
            }
            Value::Const(Constant::Undef(ty)) => {
                Some(AbsValue::top(int_width_64(ty)?).with_flags(false, true))
            }
            Value::Const(Constant::Poison(ty)) => {
                Some(AbsValue::top(int_width_64(ty)?).with_flags(true, false))
            }
            _ => None,
        }
    }

    fn typed_operand(&self, func: &Function, value: &Value, w: u32) -> Option<AbsValue> {
        let abs = self.operand(func, value)?;
        (abs.width == w).then_some(abs)
    }

    fn transfer(&mut self, func: &Function, kind: &InstKind, w: u32) -> Option<AbsValue> {
        match kind {
            InstKind::Binary { op, lhs, rhs, flags } => {
                let a = self.typed_operand(func, lhs, w)?;
                let b = self.typed_operand(func, rhs, w)?;
                let mut may_ub = false;
                let r = binary_transfer(*op, *flags, &a, &b, &mut may_ub);
                self.may_ub |= may_ub;
                Some(r)
            }
            InstKind::ICmp { pred, lhs, rhs } => {
                if w != 1 {
                    return None;
                }
                let a = self.operand(func, lhs)?;
                let b = self.operand(func, rhs)?;
                (a.width == b.width).then(|| icmp_transfer(*pred, &a, &b))
            }
            InstKind::Select { cond, on_true, on_false } => {
                let c = self.typed_operand(func, cond, 1)?;
                let t = self.typed_operand(func, on_true, w)?;
                let f = self.typed_operand(func, on_false, w)?;
                Some(select_transfer(&c, &t, &f))
            }
            InstKind::Cast { op, value, flags } => {
                let a = self.operand(func, value)?;
                cast_transfer(*op, *flags, &a, w)
            }
            InstKind::Call { intrinsic, args, .. } => {
                if !intrinsic.is_integer() {
                    return None;
                }
                match intrinsic {
                    Intrinsic::Abs | Intrinsic::Ctlz | Intrinsic::Cttz => {
                        if args.len() != 2 {
                            return None;
                        }
                        let a = self.typed_operand(func, &args[0], w)?;
                        let flag = self.typed_operand(func, &args[1], 1)?;
                        intrinsic_transfer(*intrinsic, &[a], flag.contains(1) || !flag.is_concrete())
                    }
                    Intrinsic::Fshl | Intrinsic::Fshr => {
                        if args.len() != 3 {
                            return None;
                        }
                        let a = self.typed_operand(func, &args[0], w)?;
                        let b = self.typed_operand(func, &args[1], w)?;
                        let c = self.typed_operand(func, &args[2], w)?;
                        intrinsic_transfer(*intrinsic, &[a, b, c], false)
                    }
                    _ => {
                        if args.len() != 2 {
                            return None;
                        }
                        let a = self.typed_operand(func, &args[0], w)?;
                        let b = self.typed_operand(func, &args[1], w)?;
                        intrinsic_transfer(*intrinsic, &[a, b], false)
                    }
                }
            }
            InstKind::Freeze { value } => {
                let a = self.typed_operand(func, value, w)?;
                Some(freeze_transfer(&a))
            }
            _ => None,
        }
    }
}

#[inline]
fn int_width_64(ty: &Type) -> Option<u32> {
    match ty {
        Type::Int(w) if *w >= 1 && *w <= 64 => Some(*w),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Pre-verification certificates.
// ---------------------------------------------------------------------------

/// A pre-verification certificate for a source/candidate pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Certificate {
    /// Both sides provably compute the same concrete value on every input:
    /// the concrete sweep's `Correct` verdict is guaranteed.
    Proved,
    /// The source provably returns a concrete, defined value on every input
    /// and the two return-value sets never intersect: every concrete input
    /// is a counterexample.
    Refuted,
}

/// Tries to prove or refute `tgt` as a refinement of `src` from the two
/// analyses alone. `None` means the abstraction is inconclusive and the
/// concrete tier must decide. The caller is responsible for having checked
/// that the two functions share a signature.
pub fn certificate(
    src: &Function,
    src_abs: &FunctionAnalysis,
    tgt: &Function,
    tgt_abs: &FunctionAnalysis,
) -> Option<Certificate> {
    let (src_ret, tgt_ret) = (src_abs.ret_abs()?, tgt_abs.ret_abs()?);
    let src_concrete = src_abs.provably_concrete();
    // Refute: the source is concrete and defined everywhere, and no value can
    // be in both return sets — so the candidate either returns a different
    // concrete value, or poison/undef/UB, on *every* input.
    if src_concrete && disjoint(src_ret, tgt_ret) {
        return Some(Certificate::Refuted);
    }
    // Prove, form 1: both sides are defined everywhere and fold to the same
    // singleton constant.
    if src_concrete
        && !tgt_abs.may_ub()
        && tgt_ret.is_concrete()
        && src_ret.singleton().is_some()
        && src_ret.singleton() == tgt_ret.singleton()
        && src_ret.width == tgt_ret.width
    {
        return Some(Certificate::Proved);
    }
    // Prove, form 2: no instruction on either side can trap, and the return
    // DAGs are structurally identical under singleton-constant folding — the
    // two sides then compute bit-identical outcomes (including poison and
    // undef, which the deterministic interpreter reproduces identically for
    // identical DAGs).
    if !src_abs.may_ub() && !tgt_abs.may_ub() {
        let (sv, tv) = (src_abs.ret_value.as_ref()?, tgt_abs.ret_value.as_ref()?);
        let mut eq = DagEq {
            src,
            src_abs,
            tgt,
            tgt_abs,
            memo: HashMap::new(),
            budget: DAG_BUDGET,
        };
        if eq.values_equal(sv, tv) {
            return Some(Certificate::Proved);
        }
    }
    None
}

struct DagEq<'a> {
    src: &'a Function,
    src_abs: &'a FunctionAnalysis,
    tgt: &'a Function,
    tgt_abs: &'a FunctionAnalysis,
    memo: HashMap<(u32, u32), bool>,
    budget: usize,
}

impl DagEq<'_> {
    /// The value folds to a provably-concrete singleton constant.
    fn fold(func: &Function, abs: &FunctionAnalysis, value: &Value) -> Option<(u32, u64)> {
        let _ = func;
        match value {
            Value::Const(Constant::Int(v)) if v.width() <= 64 => {
                Some((v.width(), v.zext_value() as u64))
            }
            Value::Inst(id) => {
                let a = abs.value_of(*id)?;
                if a.is_concrete() {
                    a.singleton().map(|s| (a.width, s))
                } else {
                    None
                }
            }
            _ => None,
        }
    }

    fn values_equal(&mut self, sv: &Value, tv: &Value) -> bool {
        let sf = Self::fold(self.src, self.src_abs, sv);
        let tf = Self::fold(self.tgt, self.tgt_abs, tv);
        if let (Some(a), Some(b)) = (sf, tf) {
            return a == b;
        }
        match (sv, tv) {
            (Value::Arg(i), Value::Arg(j)) => {
                i == j
                    && self.src.params.get(*i).map(|p| &p.ty) == self.tgt.params.get(*j).map(|p| &p.ty)
            }
            (Value::Const(a), Value::Const(b)) => a == b,
            (Value::Inst(s), Value::Inst(t)) => self.insts_equal(*s, *t),
            _ => false,
        }
    }

    fn insts_equal(&mut self, s: InstId, t: InstId) -> bool {
        if let Some(&r) = self.memo.get(&(s.0, t.0)) {
            return r;
        }
        if self.budget == 0 {
            return false;
        }
        self.budget -= 1;
        let si = self.src.inst(s);
        let ti = self.tgt.inst(t);
        let r = si.ty == ti.ty
            && match (&si.kind, &ti.kind) {
                (
                    InstKind::Binary { op: o1, lhs: l1, rhs: r1, flags: f1 },
                    InstKind::Binary { op: o2, lhs: l2, rhs: r2, flags: f2 },
                ) => {
                    o1 == o2
                        && f1 == f2
                        && (self.values_equal(l1, l2) && self.values_equal(r1, r2)
                            || o1.is_commutative()
                                && self.values_equal(l1, r2)
                                && self.values_equal(r1, l2))
                }
                (
                    InstKind::ICmp { pred: p1, lhs: l1, rhs: r1 },
                    InstKind::ICmp { pred: p2, lhs: l2, rhs: r2 },
                ) => {
                    p1 == p2 && self.values_equal(l1, l2) && self.values_equal(r1, r2)
                        || *p2 == p1.swapped()
                            && self.values_equal(l1, r2)
                            && self.values_equal(r1, l2)
                }
                (
                    InstKind::Select { cond: c1, on_true: t1, on_false: f1 },
                    InstKind::Select { cond: c2, on_true: t2, on_false: f2 },
                ) => {
                    self.values_equal(c1, c2)
                        && self.values_equal(t1, t2)
                        && self.values_equal(f1, f2)
                }
                (
                    InstKind::Cast { op: o1, value: v1, flags: f1 },
                    InstKind::Cast { op: o2, value: v2, flags: f2 },
                ) => o1 == o2 && f1 == f2 && self.values_equal(v1, v2),
                (
                    InstKind::Call { intrinsic: i1, args: a1, .. },
                    InstKind::Call { intrinsic: i2, args: a2, .. },
                ) => {
                    i1 == i2
                        && a1.len() == a2.len()
                        && a1.iter().zip(a2.iter()).all(|(x, y)| self.values_equal(x, y))
                }
                (InstKind::Freeze { value: v1 }, InstKind::Freeze { value: v2 }) => {
                    self.values_equal(v1, v2)
                }
                _ => false,
            };
        self.memo.insert((s.0, t.0), r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    fn analyze(text: &str) -> FunctionAnalysis {
        let func = parse_function(text).expect("parse");
        FunctionAnalysis::analyze(&func).expect("fragment")
    }

    fn cert(src: &str, tgt: &str) -> Option<Certificate> {
        let src = parse_function(src).expect("parse src");
        let tgt = parse_function(tgt).expect("parse tgt");
        let src_abs = FunctionAnalysis::analyze(&src).expect("src fragment");
        let tgt_abs = FunctionAnalysis::analyze(&tgt).expect("tgt fragment");
        certificate(&src, &src_abs, &tgt, &tgt_abs)
    }

    enum Concrete {
        Value(u64),
        Poison,
        Ub,
    }

    /// Exhaustively checks a binary transfer over all i4×i4 operand pairs:
    /// every concrete result must be inside the abstraction, for every
    /// operand abstraction drawn from a small set of shapes.
    fn check_binary_exhaustive(op: BinOp, eval: impl Fn(u64, u64) -> Concrete) {
        let w = 4;
        let shapes = [
            AbsValue::top(w),
            AbsValue::from_urange(w, 2, 9),
            AbsValue::from_srange(w, -3, 3),
            AbsValue::from_bits(w, 0b0001, 0b0100),
            AbsValue::constant(w, 5),
        ];
        for a_shape in &shapes {
            for b_shape in &shapes {
                let mut may_ub = false;
                let r = binary_transfer(op, IntFlags::none(), a_shape, b_shape, &mut may_ub);
                for x in 0..16u64 {
                    for y in 0..16u64 {
                        if !a_shape.contains(x) || !b_shape.contains(y) {
                            continue;
                        }
                        match eval(x, y) {
                            Concrete::Value(v) => assert!(
                                r.contains(v) || r.may_poison,
                                "{op:?}: {x} op {y} = {v} escapes {r:?} (a={a_shape:?}, b={b_shape:?})"
                            ),
                            Concrete::Poison => assert!(
                                r.may_poison,
                                "{op:?}: {x} op {y} is poison but not may_poison"
                            ),
                            Concrete::Ub => assert!(may_ub, "{op:?}: {x} op {y} traps but no may_ub"),
                        }
                    }
                }
            }
        }
    }

    fn sx4(v: u64) -> i64 {
        sx64(v, 4)
    }

    #[test]
    fn binary_transfers_are_sound_over_i4() {
        let m = 15u64;
        check_binary_exhaustive(BinOp::Add, |x, y| Concrete::Value((x + y) & m));
        check_binary_exhaustive(BinOp::Sub, |x, y| Concrete::Value(x.wrapping_sub(y) & m));
        check_binary_exhaustive(BinOp::Mul, |x, y| Concrete::Value((x * y) & m));
        check_binary_exhaustive(BinOp::And, |x, y| Concrete::Value(x & y));
        check_binary_exhaustive(BinOp::Or, |x, y| Concrete::Value(x | y));
        check_binary_exhaustive(BinOp::Xor, |x, y| Concrete::Value(x ^ y));
        check_binary_exhaustive(BinOp::UDiv, |x, y| {
            x.checked_div(y).map_or(Concrete::Ub, Concrete::Value)
        });
        check_binary_exhaustive(BinOp::URem, |x, y| {
            if y == 0 { Concrete::Ub } else { Concrete::Value(x % y) }
        });
        check_binary_exhaustive(BinOp::SDiv, |x, y| {
            if y == 0 || (sx4(x) == -8 && sx4(y) == -1) {
                Concrete::Ub
            } else {
                Concrete::Value(((sx4(x) / sx4(y)) as u64) & m)
            }
        });
        check_binary_exhaustive(BinOp::SRem, |x, y| {
            if y == 0 || (sx4(x) == -8 && sx4(y) == -1) {
                Concrete::Ub
            } else {
                Concrete::Value(((sx4(x) % sx4(y)) as u64) & m)
            }
        });
        // Shift amounts >= width produce poison, not UB.
        check_binary_exhaustive(BinOp::Shl, |x, y| {
            if y < 4 { Concrete::Value((x << y) & m) } else { Concrete::Poison }
        });
        check_binary_exhaustive(BinOp::LShr, |x, y| {
            if y < 4 { Concrete::Value(x >> y) } else { Concrete::Poison }
        });
        check_binary_exhaustive(BinOp::AShr, |x, y| {
            if y < 4 { Concrete::Value(((sx4(x) >> y) as u64) & m) } else { Concrete::Poison }
        });
    }

    #[test]
    fn flag_poison_is_over_approximated() {
        // nuw add of two ⊤ i8 values can overflow.
        let a = AbsValue::top(8);
        let mut may_ub = false;
        let r = binary_transfer(BinOp::Add, IntFlags::nuw(), &a, &a, &mut may_ub);
        assert!(r.may_poison);
        // ...but provably-small operands cannot.
        let small = AbsValue::from_urange(8, 0, 100);
        let r = binary_transfer(BinOp::Add, IntFlags::nuw(), &small, &small, &mut may_ub);
        assert!(!r.may_poison);
    }

    #[test]
    fn division_ub_is_over_approximated() {
        let a = AbsValue::top(8);
        let mut may_ub = false;
        binary_transfer(BinOp::UDiv, IntFlags::none(), &a, &a, &mut may_ub);
        assert!(may_ub, "unknown divisor must be assumed trapping");
        let mut may_ub = false;
        let nonzero = AbsValue::from_urange(8, 3, 7);
        binary_transfer(BinOp::UDiv, IntFlags::none(), &a, &nonzero, &mut may_ub);
        assert!(!may_ub, "a provably nonzero divisor cannot trap");
        let mut may_ub = false;
        binary_transfer(BinOp::SDiv, IntFlags::none(), &a, &nonzero, &mut may_ub);
        assert!(!may_ub, "sdiv by [3,7] excludes both zero and -1: {nonzero:?}");
        let mut may_ub = false;
        let minus_one = AbsValue::constant(8, 0xff);
        binary_transfer(BinOp::SDiv, IntFlags::none(), &a, &minus_one, &mut may_ub);
        assert!(may_ub, "sdiv INT_MIN / -1 must be assumed trapping");
    }

    #[test]
    fn constant_chains_fold_to_singletons() {
        let abs = analyze(
            "define i8 @f(i8 %x) {\nentry:\n  %a = add i8 3, 4\n  %b = mul i8 %a, 2\n  ret i8 %b\n}",
        );
        assert_eq!(abs.ret_abs().and_then(|r| r.singleton()), Some(14));
        assert!(abs.provably_concrete());
    }

    #[test]
    fn masked_bits_refute_disjoint_pairs() {
        // src pins bit 0 to zero, tgt pins it to one: provably disjoint.
        let src = "define i8 @f(i8 %x) {\nentry:\n  %r = and i8 %x, -2\n  ret i8 %r\n}";
        let tgt = "define i8 @f(i8 %x) {\nentry:\n  %r = or i8 %x, 1\n  ret i8 %r\n}";
        assert_eq!(cert(src, tgt), Some(Certificate::Refuted));
    }

    #[test]
    fn renamed_and_commuted_twins_are_proved() {
        let src = "define i8 @f(i8 %x, i8 %y) {\nentry:\n  %r = add i8 %x, %y\n  ret i8 %r\n}";
        let renamed = "define i8 @f(i8 %x, i8 %y) {\nentry:\n  %t = add i8 %x, %y\n  ret i8 %t\n}";
        let commuted = "define i8 @f(i8 %x, i8 %y) {\nentry:\n  %t = add i8 %y, %x\n  ret i8 %t\n}";
        assert_eq!(cert(src, renamed), Some(Certificate::Proved));
        assert_eq!(cert(src, commuted), Some(Certificate::Proved));
    }

    #[test]
    fn constant_folding_is_proved_against_the_literal() {
        let src = "define i8 @f(i8 %x) {\nentry:\n  %a = add i8 3, 4\n  ret i8 %a\n}";
        let tgt = "define i8 @f(i8 %x) {\nentry:\n  ret i8 7\n}";
        assert_eq!(cert(src, tgt), Some(Certificate::Proved));
    }

    #[test]
    fn inconclusive_pairs_get_no_certificate() {
        let src = "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 1\n  ret i8 %r\n}";
        let tgt = "define i8 @f(i8 %x) {\nentry:\n  %r = add i8 %x, 2\n  ret i8 %r\n}";
        assert_eq!(cert(src, tgt), None);
    }

    #[test]
    fn possible_ub_blocks_proofs() {
        // Identical DAGs, but a division that can trap: no proof, because a
        // `Proved` tier skips the sweep that would compare UB behaviour.
        let text = "define i8 @f(i8 %x) {\nentry:\n  %r = udiv i8 7, %x\n  ret i8 %r\n}";
        assert_eq!(cert(text, text), None);
    }

    #[test]
    fn more_poisonous_twins_are_not_proved() {
        let src = "define i8 @f(i8 %x, i8 %y) {\nentry:\n  %r = add i8 %x, %y\n  ret i8 %r\n}";
        let tgt = "define i8 @f(i8 %x, i8 %y) {\nentry:\n  %r = add nuw i8 %x, %y\n  ret i8 %r\n}";
        assert_eq!(cert(src, tgt), None);
    }

    #[test]
    fn fragment_gate_rejects_unsupported_shapes() {
        let vector = "define <2 x i8> @f(<2 x i8> %x) {\nentry:\n  ret <2 x i8> %x\n}";
        if let Ok(func) = parse_function(vector) {
            assert!(FunctionAnalysis::analyze(&func).is_none());
        }
        let wide = "define i128 @f(i128 %x) {\nentry:\n  ret i128 %x\n}";
        let func = parse_function(wide).expect("parse");
        assert!(FunctionAnalysis::analyze(&func).is_none());
    }

    #[test]
    fn memoized_known_bits_match_spot_checks() {
        let func = parse_function(
            "define i8 @f(i8 %x) {\nentry:\n  %a = and i8 %x, 15\n  %b = shl i8 %a, 2\n  %c = or i8 %b, 1\n  ret i8 %c\n}",
        )
        .expect("parse");
        let ctx = KnownBitsCtx::new(&func);
        let bits = ctx.known_bits(func.return_value().expect("ret"));
        assert_eq!(bits.ones, 0b0000_0001);
        assert_eq!(bits.zeros, 0b1100_0000 | 0b0000_0010);
        // Memoized: querying twice hits the cache and agrees.
        assert_eq!(ctx.known_bits(func.return_value().expect("ret")), bits);
    }

    #[test]
    fn select_and_icmp_fold_decided_branches() {
        let abs = analyze(
            "define i8 @f(i8 %x) {\nentry:\n  %m = and i8 %x, 7\n  %c = icmp ult i8 %m, 16\n  %r = select i1 %c, i8 1, i8 2\n  ret i8 %r\n}",
        );
        assert_eq!(abs.ret_abs().and_then(|r| r.singleton()), Some(1));
    }

    #[test]
    fn normalize_repairs_instead_of_claiming_empty_sets() {
        let broken = AbsValue {
            width: 8,
            zeros: 1,
            ones: 1,
            umin: 9,
            umax: 3,
            smin: 5,
            smax: -5,
            may_poison: true,
            may_undef: false,
        }
        .normalized();
        assert_eq!(broken.umin, 0);
        assert_eq!(broken.umax, 255);
        assert!(broken.may_poison);
    }
}
