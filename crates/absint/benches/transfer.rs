//! Microbenchmarks for the abstract-interpretation tier: raw transfer
//! functions, whole-function analysis throughput (the cost a candidate pays
//! before any concrete eval), and the memoized known-bits context against a
//! pathologically shared def chain.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lpo_absint::{certificate, AbsValue, FunctionAnalysis, KnownBitsCtx};
use lpo_ir::parser::parse_function;

fn transfer_functions(c: &mut Criterion) {
    let src = parse_function(
        "define i8 @src(i8 %x) {\nentry:\n  %m = and i8 %x, -2\n  %s = shl i8 %m, 1\n  %r = or i8 %s, 4\n  ret i8 %r\n}",
    )
    .expect("parse");
    let tgt = parse_function(
        "define i8 @tgt(i8 %x) {\nentry:\n  %m = or i8 %x, 1\n  %s = add i8 %m, %m\n  %r = or i8 %s, 1\n  ret i8 %r\n}",
    )
    .expect("parse");

    c.bench_function("absint/analyze_function", |b| {
        let mut analysis = FunctionAnalysis::default();
        b.iter(|| {
            assert!(analysis.run(black_box(&src)));
            black_box(analysis.ret_abs());
        })
    });

    c.bench_function("absint/certificate_refuted", |b| {
        let src_abs = FunctionAnalysis::analyze(&src).expect("fragment");
        let mut tgt_abs = FunctionAnalysis::default();
        b.iter(|| {
            assert!(tgt_abs.run(black_box(&tgt)));
            black_box(certificate(&src, &src_abs, &tgt, &tgt_abs))
        })
    });

    c.bench_function("absint/join", |b| {
        let x = AbsValue::constant(64, 0x1234_5678_9abc_def0);
        let y = AbsValue::top(64);
        b.iter(|| black_box(lpo_absint::join(black_box(&x), black_box(&y))))
    });
}

/// A ladder where every rung uses the previous one twice: the old recursive
/// query re-walked both subtrees per step (exponential paths under its depth
/// cap); the memoized context visits each instruction once.
fn shared_chain(depth: usize) -> String {
    let mut body = String::from("  %v0 = and i64 %x, 255\n");
    for i in 1..=depth {
        body.push_str(&format!("  %v{i} = add i64 %v{}, %v{}\n", i - 1, i - 1));
    }
    format!("define i64 @chain(i64 %x) {{\nentry:\n{body}  ret i64 %v{depth}\n}}")
}

fn memoized_known_bits(c: &mut Criterion) {
    let func = parse_function(&shared_chain(64)).expect("parse");
    let ret = func.return_value().expect("ret").clone();
    c.bench_function("absint/known_bits_memoized_chain64", |b| {
        b.iter(|| {
            let ctx = KnownBitsCtx::new(black_box(&func));
            black_box(ctx.known_bits(&ret))
        })
    });
}

criterion_group!(benches, transfer_functions, memoized_known_bits);
criterion_main!(benches);
