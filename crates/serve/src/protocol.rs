//! The wire protocol: line-delimited JSON over TCP.
//!
//! Every frame is one JSON object on one `\n`-terminated line (strings are
//! escaped, so a raw newline always ends a frame). Requests carry a `kind`
//! field — `submit`, `stats` or `shutdown` — and responses echo a `kind` of
//! `accepted`, `case`, `done`, `stats`, `error` or `bye`. A malformed or
//! unknown request gets an `error` response and the connection stays usable;
//! a frame longer than the server's limit is drained and answered with an
//! `error` too.
//!
//! A `submit` names its workload either inline (`"module"`: IR text whose
//! functions become the job's cases, in order) or by corpus name
//! (`"corpus"`: `rq1` / `rq2`), plus optional `model` (default
//! `Gemini2.0T`), `seed` (default 42), `round` (default 0) and `resume`
//! (default false — replay checkpointed case reports from the store
//! instead of recomputing them).

use crate::json::Json;
use lpo::prelude::{CaseOutcome, CaseReport};

/// Default cap on one request frame, in bytes. IR modules are text; 4 MiB
/// is far beyond any real submission and small enough that a stray
/// non-protocol client cannot balloon server memory.
pub const MAX_FRAME_BYTES: usize = 4 << 20;

/// Default model profile for submissions that do not name one.
pub const DEFAULT_MODEL: &str = "Gemini2.0T";

/// Default model seed for submissions that do not carry one.
pub const DEFAULT_SEED: u64 = 42;

/// Where a submitted job's cases come from.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitSource {
    /// Inline IR text; each function in the module is one case.
    Module(String),
    /// A named built-in corpus (`rq1`, `rq2`).
    Corpus(String),
}

/// A parsed `submit` request.
#[derive(Clone, Debug, PartialEq)]
pub struct SubmitRequest {
    /// The workload.
    pub source: SubmitSource,
    /// Model profile name ([`lpo_llm::profiles::by_name`]).
    pub model: String,
    /// Model seed.
    pub seed: u64,
    /// Experiment round (namespaces sessions and checkpoints).
    pub round: u64,
    /// Replay checkpointed case reports recorded under the same content key
    /// instead of recomputing them (the serving counterpart of `--resume`).
    pub resume: bool,
}

/// A parsed request frame.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Run a job; results stream back on this connection.
    Submit(SubmitRequest),
    /// Report server statistics.
    Stats,
    /// Stop the server.
    Shutdown,
}

impl Request {
    /// Parses one request line. The error string is sent back verbatim in an
    /// `error` response.
    pub fn parse(line: &str) -> Result<Request, String> {
        let value = Json::parse(line).map_err(|e| format!("malformed request: {e}"))?;
        let kind = value
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| "request has no \"kind\" field".to_string())?;
        match kind {
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            "submit" => {
                let module = value.get("module").map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "\"module\" must be a string".to_string())
                });
                let corpus = value.get("corpus").map(|v| {
                    v.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "\"corpus\" must be a string".to_string())
                });
                let source = match (module, corpus) {
                    (Some(module), None) => SubmitSource::Module(module?),
                    (None, Some(corpus)) => SubmitSource::Corpus(corpus?),
                    (Some(_), Some(_)) => {
                        return Err("submit carries both \"module\" and \"corpus\"".to_string())
                    }
                    (None, None) => {
                        return Err("submit needs a \"module\" or a \"corpus\"".to_string())
                    }
                };
                Ok(Request::Submit(SubmitRequest {
                    source,
                    model: match value.get("model") {
                        Some(v) => v
                            .as_str()
                            .ok_or_else(|| "\"model\" must be a string".to_string())?
                            .to_string(),
                        None => DEFAULT_MODEL.to_string(),
                    },
                    seed: parse_u64(&value, "seed")?.unwrap_or(DEFAULT_SEED),
                    round: parse_u64(&value, "round")?.unwrap_or(0),
                    resume: match value.get("resume") {
                        Some(v) => v
                            .as_bool()
                            .ok_or_else(|| "\"resume\" must be a boolean".to_string())?,
                        None => false,
                    },
                }))
            }
            other => Err(format!("unknown request kind {other:?}")),
        }
    }
}

fn parse_u64(value: &Json, key: &str) -> Result<Option<u64>, String> {
    match value.get(key) {
        None => Ok(None),
        Some(v) => {
            let n = v.as_num().ok_or_else(|| format!("\"{key}\" must be a number"))?;
            if n < 0.0 || n.fract() != 0.0 {
                return Err(format!("\"{key}\" must be a non-negative integer"));
            }
            Ok(Some(n as u64))
        }
    }
}

/// The protocol's short name for a case outcome.
pub fn outcome_kind(outcome: &CaseOutcome) -> &'static str {
    match outcome {
        CaseOutcome::Found { .. } => "found",
        CaseOutcome::NotInteresting => "not-interesting",
        CaseOutcome::Rejected => "rejected",
        CaseOutcome::SyntaxError => "syntax-error",
        CaseOutcome::Failed { .. } => "failed",
    }
}

/// One `\n`-terminated response frame from a [`Json`] value.
pub fn frame(value: &Json) -> String {
    let mut line = value.render_compact();
    line.push('\n');
    line
}

/// The `error` response.
pub fn error_frame(message: &str) -> String {
    frame(&Json::Obj(vec![
        ("kind".into(), Json::Str("error".into())),
        ("message".into(), Json::Str(message.to_string())),
    ]))
}

/// The `accepted` response opening a job's result stream.
pub fn accepted_frame(job: u64, cases: usize, unique: usize) -> String {
    frame(&Json::Obj(vec![
        ("kind".into(), Json::Str("accepted".into())),
        ("job".into(), Json::Num(job as f64)),
        ("cases".into(), Json::Num(cases as f64)),
        ("unique".into(), Json::Num(unique as f64)),
    ]))
}

/// One streamed per-case result.
///
/// `fingerprint` is the full [`CaseReport::fingerprint`] — the protocol's
/// determinism contract is that it is byte-identical to a batch-mode run of
/// the same corpus. `store_hit` tags cases whose Stage-3 verdicts replayed
/// from the shared verdict store; `resumed` tags checkpoint replays;
/// `dedup` tags structural duplicates replaying their representative's
/// report.
pub fn case_frame(
    job: u64,
    case_index: usize,
    report: &CaseReport,
    resumed: bool,
    dedup: bool,
) -> String {
    let tier = match report.tier {
        Some(tier) => Json::Str(tier.as_str().to_string()),
        None => Json::Null,
    };
    frame(&Json::Obj(vec![
        ("kind".into(), Json::Str("case".into())),
        ("job".into(), Json::Num(job as f64)),
        ("case".into(), Json::Num(case_index as f64)),
        ("outcome".into(), Json::Str(outcome_kind(&report.outcome).into())),
        ("attempts".into(), Json::Num(report.attempts as f64)),
        ("tier".into(), tier),
        ("store_hit".into(), Json::Bool(report.store_hits > 0)),
        ("resumed".into(), Json::Bool(resumed)),
        ("dedup".into(), Json::Bool(dedup)),
        ("fingerprint".into(), Json::Str(report.fingerprint())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn submit_requests_parse_with_defaults() {
        let req = Request::parse(r#"{"kind":"submit","corpus":"rq1"}"#).unwrap();
        match req {
            Request::Submit(submit) => {
                assert_eq!(submit.source, SubmitSource::Corpus("rq1".into()));
                assert_eq!(submit.model, DEFAULT_MODEL);
                assert_eq!(submit.seed, DEFAULT_SEED);
                assert_eq!(submit.round, 0);
                assert!(!submit.resume);
            }
            other => panic!("not a submit: {other:?}"),
        }

        let req = Request::parse(
            r#"{"kind":"submit","module":"define i32 @f() {\n ret i32 0\n}","model":"GPT4.1","seed":7,"round":2,"resume":true}"#,
        )
        .unwrap();
        match req {
            Request::Submit(submit) => {
                assert!(matches!(submit.source, SubmitSource::Module(ref m) if m.contains("@f")));
                assert_eq!(submit.model, "GPT4.1");
                assert_eq!(submit.seed, 7);
                assert_eq!(submit.round, 2);
                assert!(submit.resume);
            }
            other => panic!("not a submit: {other:?}"),
        }

        assert_eq!(Request::parse(r#"{"kind":"stats"}"#), Ok(Request::Stats));
        assert_eq!(Request::parse(r#"{"kind":"shutdown"}"#), Ok(Request::Shutdown));
    }

    #[test]
    fn malformed_requests_are_rejected_with_reasons() {
        for (line, needle) in [
            ("not json at all", "malformed request"),
            (r#"{"no":"kind"}"#, "no \"kind\""),
            (r#"{"kind":"frobnicate"}"#, "unknown request kind"),
            (r#"{"kind":"submit"}"#, "needs a \"module\" or a \"corpus\""),
            (r#"{"kind":"submit","module":"x","corpus":"rq1"}"#, "both"),
            (r#"{"kind":"submit","corpus":"rq1","seed":-1}"#, "non-negative"),
            (r#"{"kind":"submit","corpus":"rq1","seed":1.5}"#, "non-negative"),
            (r#"{"kind":"submit","corpus":"rq1","resume":"yes"}"#, "boolean"),
            (r#"{"kind":"submit","module":7}"#, "must be a string"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "line {line:?} gave error {err:?}");
        }
    }

    #[test]
    fn response_frames_are_single_lines() {
        let report = CaseReport::failed("boom".into(), 1, Duration::ZERO);
        for line in [
            error_frame("bad"),
            accepted_frame(3, 25, 24),
            case_frame(3, 7, &report, false, true),
        ] {
            assert!(line.ends_with('\n'));
            assert_eq!(line.matches('\n').count(), 1, "line: {line:?}");
            let value = Json::parse(line.trim_end()).unwrap();
            assert!(value.get("kind").is_some());
        }
        let case = Json::parse(case_frame(3, 7, &report, false, true).trim_end()).unwrap();
        assert_eq!(case.get("outcome").unwrap().as_str(), Some("failed"));
        assert_eq!(case.get("dedup").unwrap().as_bool(), Some(true));
        assert_eq!(case.get("store_hit").unwrap().as_bool(), Some(false));
        assert_eq!(case.get("tier"), Some(&Json::Null));
    }
}
