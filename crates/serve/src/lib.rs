//! `lpo-serve` — LPO as a long-running service.
//!
//! Batch mode (`repro run`) pays the pipeline's warm-up on every invocation
//! and throws the process — with its compile caches and open verdict store —
//! away at the end. This crate keeps that process alive: a
//! [`Server`](server::Server) owns
//! one shared [`Lpo`](lpo::prelude::Lpo) pipeline and one shared
//! [`VerdictStore`](lpo::prelude::VerdictStore), accepts line-delimited JSON
//! requests over TCP ([`protocol`]), and runs each submitted job through the
//! same deterministic engine as batch mode, streaming per-case results back
//! as they settle.
//!
//! The contract that makes serving trustworthy is *fingerprint identity*: a
//! served job's per-case [`CaseReport`](lpo::prelude::CaseReport)
//! fingerprints are byte-identical to a batch `run_batch_persisted` run of
//! the same corpus, for any worker count and any store temperature. Warm
//! resubmissions answer almost entirely from the shared store (the
//! `bench-serve` gate holds the warm cache-hit rate above its baseline
//! floor), and a restarted server resumes a killed job's checkpointed cases
//! when the client resubmits with `"resume": true`.
//!
//! Module map:
//!
//! * [`json`] — the hand-rolled JSON used by both the wire protocol and
//!   `lpo-bench`'s results store (which re-exports it);
//! * [`protocol`] — request parsing and response frames;
//! * [`server`] — the accept loop, bounded FIFO job queue, per-job
//!   cancellation and result streaming;
//! * [`client`] — a small blocking client (tests, `repro serve-client`).

pub mod client;
pub mod json;
pub mod protocol;
pub mod server;

/// The crate's working set in one import.
pub mod prelude {
    pub use crate::client::{JobOutcome, ServeClient, SubmitOptions};
    pub use crate::json::Json;
    pub use crate::protocol::{Request, SubmitRequest, SubmitSource, MAX_FRAME_BYTES};
    pub use crate::server::{
        DefaultFactoryProvider, FactoryProvider, ServeConfig, Server,
    };
}
