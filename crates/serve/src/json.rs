//! The hand-rolled JSON reader/writer shared by the wire protocol and the
//! `BENCH_results.json` store.
//!
//! This started life inside `lpo-bench`'s results module; the serving layer
//! moved it here so the wire protocol and the benchmark store parse and
//! render with the same code (`lpo-bench` re-exports [`Json`] from its old
//! path). The container has no crates.io access (no serde), so this covers
//! exactly the subset the two schemas need: objects, arrays, strings,
//! numbers, booleans and null.

use std::fmt::Write as _;

/// A parsed JSON value (the minimal subset the protocol and results schemas
/// use).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; the schemas never need 64-bit ints).
    Num(f64),
    /// A string (no escape sequences beyond `\" \\ \n \t` are produced).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, with insertion order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up an object field.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }

    /// Serializes with 2-space indentation.
    pub fn render(&self) -> String {
        let mut out = String::new();
        render_value(self, 0, &mut out);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no whitespace — the wire framing
    /// of the serve protocol (one value per `\n`-terminated line). Escaped
    /// strings never contain a raw newline, so the frame boundary is
    /// unambiguous.
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        render_compact_value(self, &mut out);
        out
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && bytes[*pos].is_ascii_whitespace() {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = match parse_value(bytes, pos)? {
                    Json::Str(s) => s,
                    other => return Err(format!("object key must be a string, got {other:?}")),
                };
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(format!("expected ':' at byte {pos}"));
                }
                *pos += 1;
                fields.push((key, parse_value(bytes, pos)?));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'"') => {
            *pos += 1;
            let mut out = String::new();
            loop {
                match bytes.get(*pos) {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        *pos += 1;
                        return Ok(Json::Str(out));
                    }
                    Some(b'\\') => {
                        *pos += 1;
                        match bytes.get(*pos) {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b't') => out.push('\t'),
                            Some(b'r') => out.push('\r'),
                            other => return Err(format!("unsupported escape {other:?}")),
                        }
                        *pos += 1;
                    }
                    Some(&b) => {
                        // Multi-byte UTF-8 sequences pass through unchanged.
                        let start = *pos;
                        let mut end = *pos + 1;
                        if b >= 0x80 {
                            while end < bytes.len() && bytes[end] & 0xc0 == 0x80 {
                                end += 1;
                            }
                        }
                        out.push_str(
                            std::str::from_utf8(&bytes[start..end])
                                .map_err(|e| e.to_string())?,
                        );
                        *pos = end;
                    }
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < bytes.len()
                && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>().map(Json::Num).map_err(|e| format!("bad number '{text}': {e}"))
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out.push('"');
}

fn render_number(n: f64, out: &mut String) {
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:.6}");
    }
}

fn render_value(value: &Json, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(n) => render_number(*n, out),
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                let _ = write!(out, "{pad}  ");
                render_value(item, indent + 1, out);
                out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}]");
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                let _ = write!(out, "{pad}  \"{key}\": ");
                render_value(val, indent + 1, out);
                out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
            }
            let _ = write!(out, "{pad}}}");
        }
    }
}

fn render_compact_value(value: &Json, out: &mut String) {
    match value {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Num(n) => render_number(*n, out),
        Json::Str(s) => render_string(s, out),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_compact_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_string(key, out);
                out.push(':');
                render_compact_value(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trip() {
        let text = r#"{"a": 1, "b": [true, null, "x\ny"], "c": {"d": -2.5}}"#;
        let parsed = Json::parse(text).unwrap();
        assert_eq!(parsed.get("a").unwrap().as_num(), Some(1.0));
        assert_eq!(parsed.get("b").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(parsed.get("c").unwrap().get("d").unwrap().as_num(), Some(-2.5));
        // Rendered output parses back to the same value.
        let rendered = parsed.render();
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn json_errors_are_reported() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1, ]").is_err());
        assert!(Json::parse("{\"a\" 1}").is_err());
        assert!(Json::parse("12x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn compact_rendering_is_single_line_and_round_trips() {
        let value = Json::Obj(vec![
            ("kind".into(), Json::Str("case".into())),
            ("text".into(), Json::Str("a\nb\t\"c\"".into())),
            ("n".into(), Json::Num(2.5)),
            ("flags".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("empty".into(), Json::Obj(Vec::new())),
        ]);
        let line = value.render_compact();
        // The frame invariant: escaped output never contains a raw newline.
        assert!(!line.contains('\n'));
        assert_eq!(
            line,
            r#"{"kind":"case","text":"a\nb\t\"c\"","n":2.500000,"flags":[true,null],"empty":{}}"#
        );
        assert_eq!(Json::parse(&line).unwrap(), value);
        assert_eq!(value.as_bool(), None);
        assert_eq!(Json::Bool(true).as_bool(), Some(true));
    }
}
