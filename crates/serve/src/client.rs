//! A small blocking client for the serve protocol.
//!
//! Used by the protocol/chaos/malformed integration tests and by the
//! `repro serve-client` subcommand that scripts a session in CI. One
//! [`ServeClient`] is one connection; [`submit`](ServeClient::submit) drives
//! a full job round-trip (request, `accepted`, streamed `case` frames, the
//! closing `done`), while [`request`](ServeClient::request) does a plain
//! one-frame exchange (`stats`, `shutdown`, or malformed lines in tests).

use crate::json::Json;
use crate::protocol::frame;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::TcpStream;
use std::time::Duration;

/// What to submit and how to run it. Unset fields take the server-side
/// protocol defaults.
#[derive(Clone, Debug, Default)]
pub struct SubmitOptions {
    /// Named built-in corpus (`rq1` / `rq2`). Exclusive with `module`.
    pub corpus: Option<String>,
    /// Inline IR text. Exclusive with `corpus`.
    pub module: Option<String>,
    /// Model profile name.
    pub model: Option<String>,
    /// Model seed.
    pub seed: Option<u64>,
    /// Experiment round.
    pub round: Option<u64>,
    /// Replay checkpointed case reports under the same content key.
    pub resume: bool,
}

impl SubmitOptions {
    /// Submit a named corpus.
    pub fn corpus(name: &str) -> Self {
        Self { corpus: Some(name.to_string()), ..Self::default() }
    }

    /// Submit inline IR.
    pub fn module(text: &str) -> Self {
        Self { module: Some(text.to_string()), ..Self::default() }
    }

    /// The request frame this submission serializes to.
    pub fn request_line(&self) -> String {
        let mut fields = vec![("kind".to_string(), Json::Str("submit".into()))];
        if let Some(corpus) = &self.corpus {
            fields.push(("corpus".into(), Json::Str(corpus.clone())));
        }
        if let Some(module) = &self.module {
            fields.push(("module".into(), Json::Str(module.clone())));
        }
        if let Some(model) = &self.model {
            fields.push(("model".into(), Json::Str(model.clone())));
        }
        if let Some(seed) = self.seed {
            fields.push(("seed".into(), Json::Num(seed as f64)));
        }
        if let Some(round) = self.round {
            fields.push(("round".into(), Json::Num(round as f64)));
        }
        if self.resume {
            fields.push(("resume".into(), Json::Bool(true)));
        }
        frame(&Json::Obj(fields))
    }
}

/// How a submission ended.
#[derive(Clone, Debug)]
pub enum JobOutcome {
    /// The server rejected the submission before running it (validation or
    /// queue-capacity failure); the connection stays usable.
    Rejected(String),
    /// The job ran to its `done` frame.
    Finished {
        /// The `accepted` frame.
        accepted: Json,
        /// Every streamed `case` frame, in arrival order (settle order is
        /// scheduling-dependent; key on each frame's `case` index).
        cases: Vec<Json>,
        /// The closing `done` frame.
        done: Json,
    },
}

impl JobOutcome {
    /// The `done` frame of a finished job; panics on a rejection (tests use
    /// this where a rejection is a bug).
    pub fn done(&self) -> &Json {
        match self {
            JobOutcome::Finished { done, .. } => done,
            JobOutcome::Rejected(message) => panic!("job was rejected: {message}"),
        }
    }

    /// The streamed `case` frames of a finished job (panics on a rejection).
    pub fn cases(&self) -> &[Json] {
        match self {
            JobOutcome::Finished { cases, .. } => cases,
            JobOutcome::Rejected(message) => panic!("job was rejected: {message}"),
        }
    }
}

/// One client connection.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    /// Connects to a running server.
    pub fn connect(addr: &str) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(ServeClient { reader: BufReader::new(stream) })
    }

    /// Connects with retries — for scripted sessions racing a server that is
    /// still binding (the CI smoke job).
    pub fn connect_retry(addr: &str, attempts: u32, delay: Duration) -> std::io::Result<ServeClient> {
        let mut last = None;
        for _ in 0..attempts.max(1) {
            match Self::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    last = Some(e);
                    std::thread::sleep(delay);
                }
            }
        }
        Err(last.unwrap_or_else(|| ErrorKind::ConnectionRefused.into()))
    }

    /// The underlying stream (tests use this to disconnect abruptly or push
    /// raw bytes).
    pub fn stream(&self) -> &TcpStream {
        self.reader.get_ref()
    }

    /// Sends one raw line (a trailing `\n` is added when missing).
    pub fn send_line(&mut self, line: &str) -> std::io::Result<()> {
        let mut stream = self.reader.get_ref();
        stream.write_all(line.as_bytes())?;
        if !line.ends_with('\n') {
            stream.write_all(b"\n")?;
        }
        Ok(())
    }

    /// Sends raw bytes verbatim (malformed-input tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        self.reader.get_ref().write_all(bytes)
    }

    /// Reads one response frame.
    pub fn read_frame(&mut self) -> std::io::Result<Json> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ErrorKind::UnexpectedEof.into());
        }
        Json::parse(line.trim_end()).map_err(|e| {
            std::io::Error::new(ErrorKind::InvalidData, format!("bad frame {line:?}: {e}"))
        })
    }

    /// One request/one response exchange.
    pub fn request(&mut self, line: &str) -> std::io::Result<Json> {
        self.send_line(line)?;
        self.read_frame()
    }

    /// Requests server statistics.
    pub fn stats(&mut self) -> std::io::Result<Json> {
        self.request(r#"{"kind":"stats"}"#)
    }

    /// Requests shutdown; returns the `bye` frame.
    pub fn shutdown(&mut self) -> std::io::Result<Json> {
        self.request(r#"{"kind":"shutdown"}"#)
    }

    /// Submits a job and drains its result stream.
    pub fn submit(&mut self, options: &SubmitOptions) -> std::io::Result<JobOutcome> {
        self.send_line(&options.request_line())?;
        let first = self.read_frame()?;
        match first.get("kind").and_then(Json::as_str) {
            Some("error") => {
                let message = first
                    .get("message")
                    .and_then(Json::as_str)
                    .unwrap_or("(no message)")
                    .to_string();
                return Ok(JobOutcome::Rejected(message));
            }
            Some("accepted") => {}
            other => {
                return Err(std::io::Error::new(
                    ErrorKind::InvalidData,
                    format!("expected accepted/error, got kind {other:?}"),
                ))
            }
        }
        let mut cases = Vec::new();
        loop {
            let next = self.read_frame()?;
            match next.get("kind").and_then(Json::as_str) {
                Some("case") => cases.push(next),
                Some("done") => {
                    return Ok(JobOutcome::Finished { accepted: first, cases, done: next })
                }
                other => {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("expected case/done, got kind {other:?}"),
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_options_serialize_to_protocol_frames() {
        let line = SubmitOptions::corpus("rq1").request_line();
        assert_eq!(line, "{\"kind\":\"submit\",\"corpus\":\"rq1\"}\n");

        let mut options = SubmitOptions::module("define i32 @f() {\n ret i32 0\n}");
        options.model = Some("GPT4.1".into());
        options.seed = Some(7);
        options.round = Some(1);
        options.resume = true;
        let line = options.request_line();
        let parsed = Json::parse(line.trim_end()).unwrap();
        assert_eq!(parsed.get("kind").unwrap().as_str(), Some("submit"));
        assert!(parsed.get("module").unwrap().as_str().unwrap().contains("@f"));
        assert_eq!(parsed.get("model").unwrap().as_str(), Some("GPT4.1"));
        assert_eq!(parsed.get("seed").unwrap().as_num(), Some(7.0));
        assert_eq!(parsed.get("round").unwrap().as_num(), Some(1.0));
        assert_eq!(parsed.get("resume").unwrap().as_bool(), Some(true));
        // The frame is single-line even with embedded newlines in the IR.
        assert_eq!(line.matches('\n').count(), 1);
    }
}
