//! The discovery server: accept loop, bounded FIFO job queue, per-job
//! cancellation and result streaming.
//!
//! # Threading model
//!
//! One thread per connection. A connection alternates between reading
//! request frames and — for `submit` — running the job *inline*: it reserves
//! a slot in the bounded FIFO job queue (jobs execute one at a time, in
//! submission order), drives the execution engine with the server's
//! configured `--jobs` workers, and streams each case's result back on its
//! own socket as the engine settles it. While a job runs, a watcher thread
//! reads the connection: a client that disconnects mid-job flips the job's
//! cancel flag, so the engine fails the remaining cases instantly instead of
//! computing into a dead socket (bytes a pipelining client sent early are
//! preserved for the next request).
//!
//! # Determinism and the shared store
//!
//! Every job runs on one shared [`Lpo`] pipeline with one shared
//! [`VerdictStore`]: Stage-3 verdicts recorded by any job replay for every
//! later job, so resubmitting a module is almost entirely store cache hits.
//! Replayed verdicts are byte-identical to fresh ones, so a served job's
//! case fingerprints equal a batch-mode `run_batch_persisted` run of the
//! same corpus — cold store, warm store, any `--jobs` value
//! (`tests/serve_protocol.rs` pins this). Checkpoints are content-keyed
//! (model, seed, corpus digest), so a server restarted on the same
//! `--store` resumes a killed job's completed cases when the client
//! resubmits with `"resume": true`.

use crate::json::Json;
use crate::protocol::{
    accepted_frame, case_frame, error_frame, Request, SubmitRequest, SubmitSource,
    MAX_FRAME_BYTES,
};
use lpo::exec::{run_batch_hooked, BatchHooks};
use lpo::prelude::{
    DedupPlan, ExecConfig, Lpo, LpoConfig, Persist, VerdictStore, DEFAULT_SHARD_SIZE,
};
use lpo_corpus::cases::{rq1_suite, rq2_suite};
use lpo_ir::function::Function;
use lpo_ir::hash::hash_function;
use lpo_ir::parser::parse_module;
use lpo_llm::fault::{FaultPolicy, FaultPolicyFactory};
use lpo_llm::model::ModelFactory;
use lpo_llm::profiles::{by_name, ModelProfile};
use lpo_llm::simulated::SimulatedModelFactory;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// How a server instance runs.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Engine worker threads per job (`0` = auto, like `--jobs 0`).
    pub jobs: usize,
    /// Inputs per Stage-3 sweep shard (see [`lpo::exec::ExecConfig`]).
    pub shard_size: usize,
    /// Maximum jobs queued or running at once; a submit beyond this gets a
    /// structured `error` response instead of blocking.
    pub queue_capacity: usize,
    /// Maximum request frame length in bytes; longer frames are drained and
    /// answered with an `error`.
    pub max_frame_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            jobs: 0,
            shard_size: DEFAULT_SHARD_SIZE,
            queue_capacity: 16,
            max_frame_bytes: MAX_FRAME_BYTES,
        }
    }
}

/// Builds the per-job [`ModelFactory`] — the boundary where a deployment
/// (or a chaos test) decides what actually answers prompts.
pub trait FactoryProvider: Send + Sync {
    /// One factory per job, seeded by the submission.
    fn build(&self, profile: ModelProfile, seed: u64) -> Box<dyn ModelFactory>;
}

/// The default provider: a [`SimulatedModelFactory`] wrapped in a
/// [`FaultPolicyFactory`] with the default failure policy. Clean calls pass
/// through the policy unchanged, so served results stay byte-identical to a
/// plain batch run while real session faults (timeouts, backend errors)
/// still get deadlines, retries and typed failure reports.
pub struct DefaultFactoryProvider;

impl FactoryProvider for DefaultFactoryProvider {
    fn build(&self, profile: ModelProfile, seed: u64) -> Box<dyn ModelFactory> {
        Box::new(FaultPolicyFactory::new(
            SimulatedModelFactory::new(profile, seed),
            FaultPolicy::default(),
        ))
    }
}

/// Monotonic server counters, all updated relaxed (they are reporting, not
/// synchronization).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    jobs_accepted: AtomicU64,
    jobs_completed: AtomicU64,
    jobs_cancelled: AtomicU64,
}

/// Bounded FIFO run-slot queue: tickets are granted in submission order and
/// at most `capacity` may be outstanding (queued + running).
struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    capacity: usize,
}

#[derive(Default)]
struct QueueState {
    next: u64,
    serving: u64,
}

/// A reserved place in line. [`wait`](Ticket::wait) blocks until every
/// earlier ticket has released; dropping the ticket (entered or not) passes
/// the slot to the next in line, so an abandoned reservation can never wedge
/// the queue.
struct Ticket<'a> {
    queue: &'a JobQueue,
    ticket: u64,
    entered: bool,
}

impl JobQueue {
    fn new(capacity: usize) -> Self {
        Self { state: Mutex::new(QueueState::default()), cv: Condvar::new(), capacity: capacity.max(1) }
    }

    /// Reserves the next ticket, or `None` when the queue is full.
    fn reserve(&self) -> Option<Ticket<'_>> {
        let mut state = self.state.lock().expect("job queue poisoned");
        if (state.next - state.serving) as usize >= self.capacity {
            return None;
        }
        let ticket = state.next;
        state.next += 1;
        Some(Ticket { queue: self, ticket, entered: false })
    }

    /// Jobs queued or running right now.
    fn depth(&self) -> usize {
        let state = self.state.lock().expect("job queue poisoned");
        (state.next - state.serving) as usize
    }
}

impl Ticket<'_> {
    /// Blocks until this ticket holds the run slot.
    fn wait(&mut self) {
        let mut state = self.queue.state.lock().expect("job queue poisoned");
        while state.serving != self.ticket {
            state = self.queue.cv.wait(state).expect("job queue poisoned");
        }
        self.entered = true;
    }
}

impl Drop for Ticket<'_> {
    fn drop(&mut self) {
        let mut state = self.queue.state.lock().expect("job queue poisoned");
        // An abandoned reservation still waits its turn, then passes it on
        // immediately — FIFO order is preserved and nothing wedges.
        while !self.entered && state.serving != self.ticket {
            state = self.queue.cv.wait(state).expect("job queue poisoned");
        }
        state.serving += 1;
        self.queue.cv.notify_all();
    }
}

struct Shared {
    config: ServeConfig,
    lpo: Lpo,
    store: Arc<VerdictStore>,
    provider: Box<dyn FactoryProvider>,
    local_addr: SocketAddr,
    queue: JobQueue,
    counters: Counters,
    start: Instant,
    shutdown: AtomicBool,
    /// Clones of every accepted connection, closed on shutdown so blocked
    /// readers unwind.
    conns: Mutex<Vec<TcpStream>>,
    active: Mutex<usize>,
    active_cv: Condvar,
}

/// The discovery server. [`bind`](Server::bind), then [`run`](Server::run)
/// (which blocks until a `shutdown` request).
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds with the [`DefaultFactoryProvider`].
    pub fn bind(
        addr: &str,
        config: ServeConfig,
        store: Arc<VerdictStore>,
    ) -> std::io::Result<Server> {
        Self::bind_with_provider(addr, config, store, Box::new(DefaultFactoryProvider))
    }

    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and prepares
    /// the shared pipeline. Nothing is accepted until [`run`](Server::run).
    pub fn bind_with_provider(
        addr: &str,
        config: ServeConfig,
        store: Arc<VerdictStore>,
        provider: Box<dyn FactoryProvider>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let lpo = Lpo::new(LpoConfig::default()).with_verdict_store(store.clone());
        let queue = JobQueue::new(config.queue_capacity);
        let shared = Arc::new(Shared {
            config,
            lpo,
            store,
            provider,
            local_addr,
            queue,
            counters: Counters::default(),
            start: Instant::now(),
            shutdown: AtomicBool::new(false),
            conns: Mutex::new(Vec::new()),
            active: Mutex::new(0),
            active_cv: Condvar::new(),
        });
        Ok(Server { listener, shared })
    }

    /// The bound address (resolves the port of a `:0` bind).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// The shared verdict store.
    pub fn store(&self) -> &Arc<VerdictStore> {
        &self.shared.store
    }

    /// Serves connections until a `shutdown` request, then waits for every
    /// connection thread to unwind before returning.
    pub fn run(self) -> std::io::Result<()> {
        let Server { listener, shared } = self;
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(_) => {
                    if shared.shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    continue;
                }
            };
            if shared.shutdown.load(Ordering::SeqCst) {
                // The shutdown handler's wake-up connection (or a straggler).
                break;
            }
            let _ = stream.set_nodelay(true);
            if let Ok(clone) = stream.try_clone() {
                shared.conns.lock().expect("registry poisoned").push(clone);
            }
            *shared.active.lock().expect("active count poisoned") += 1;
            let conn_shared = shared.clone();
            std::thread::spawn(move || {
                handle_connection(&conn_shared, stream);
                let mut active = conn_shared.active.lock().expect("active count poisoned");
                *active -= 1;
                conn_shared.active_cv.notify_all();
            });
        }
        let mut active = shared.active.lock().expect("active count poisoned");
        while *active > 0 {
            active = shared.active_cv.wait(active).expect("active count poisoned");
        }
        Ok(())
    }
}

impl Shared {
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unwind every blocked connection reader.
        for conn in self.conns.lock().expect("registry poisoned").drain(..) {
            let _ = conn.shutdown(Shutdown::Both);
        }
        // Unblock the acceptor.
        let _ = TcpStream::connect(self.local_addr);
    }
}

/// One request frame, as read off the wire.
enum Frame {
    /// A complete line (newline stripped; lossily decoded, so a non-UTF-8
    /// frame fails request parsing rather than killing the connection).
    Line(String),
    /// A frame longer than the configured limit (already drained).
    Oversized,
    /// Connection closed (a truncated trailing line is dropped).
    Eof,
}

/// Line reader with a shared pushback buffer: the mid-job watcher thread
/// appends any bytes a pipelining client sends during a job, and the next
/// [`read_frame`](FrameReader::read_frame) consumes them first.
struct FrameReader {
    stream: TcpStream,
    buf: Arc<Mutex<Vec<u8>>>,
    max_frame: usize,
}

impl FrameReader {
    fn read_frame(&mut self) -> Frame {
        let mut skipping = false;
        loop {
            {
                let mut buf = self.buf.lock().expect("frame buffer poisoned");
                if let Some(pos) = buf.iter().position(|&b| b == b'\n') {
                    let line: Vec<u8> = buf.drain(..=pos).collect();
                    if skipping || line.len() - 1 > self.max_frame {
                        return Frame::Oversized;
                    }
                    let mut text = String::from_utf8_lossy(&line).into_owned();
                    text.pop();
                    if text.ends_with('\r') {
                        text.pop();
                    }
                    return Frame::Line(text);
                }
                if buf.len() > self.max_frame {
                    // Over the limit with no newline yet: discard until the
                    // frame ends, then report it oversized.
                    buf.clear();
                    skipping = true;
                }
            }
            let mut tmp = [0u8; 4096];
            match self.stream.read(&mut tmp) {
                Ok(0) => return Frame::Eof,
                Ok(n) => {
                    let mut buf = self.buf.lock().expect("frame buffer poisoned");
                    if !skipping {
                        buf.extend_from_slice(&tmp[..n]);
                    } else if let Some(pos) = tmp[..n].iter().position(|&b| b == b'\n') {
                        buf.extend_from_slice(&tmp[pos + 1..n]);
                        return Frame::Oversized;
                    }
                }
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                    continue;
                }
                Err(_) => return Frame::Eof,
            }
        }
    }
}

fn write_line(writer: &Mutex<TcpStream>, line: &str) -> std::io::Result<()> {
    let mut stream = writer.lock().expect("writer poisoned");
    stream.write_all(line.as_bytes())
}

fn handle_connection(shared: &Arc<Shared>, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let Ok(write_half) = stream.try_clone() else { return };
    let buf = Arc::new(Mutex::new(Vec::new()));
    let mut reader = FrameReader {
        stream: read_half,
        buf: buf.clone(),
        max_frame: shared.config.max_frame_bytes,
    };
    let writer = Mutex::new(write_half);
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
        match reader.read_frame() {
            Frame::Eof => return,
            Frame::Oversized => {
                let message = format!(
                    "request frame exceeds {} bytes",
                    shared.config.max_frame_bytes
                );
                if write_line(&writer, &error_frame(&message)).is_err() {
                    return;
                }
            }
            Frame::Line(line) => {
                shared.counters.requests.fetch_add(1, Ordering::Relaxed);
                let outcome = match Request::parse(&line) {
                    Err(message) => write_line(&writer, &error_frame(&message)),
                    Ok(Request::Stats) => write_line(&writer, &stats_frame(shared)),
                    Ok(Request::Shutdown) => {
                        let bye =
                            crate::protocol::frame(&Json::Obj(vec![(
                                "kind".into(),
                                Json::Str("bye".into()),
                            )]));
                        let _ = write_line(&writer, &bye);
                        shared.begin_shutdown();
                        return;
                    }
                    Ok(Request::Submit(submit)) => {
                        handle_submit(shared, &writer, &buf, &stream, submit)
                    }
                };
                if outcome.is_err() {
                    return;
                }
            }
        }
    }
}

/// The server-wide `stats` response.
fn stats_frame(shared: &Shared) -> String {
    let uptime = shared.start.elapsed().as_secs_f64();
    let requests = shared.counters.requests.load(Ordering::Relaxed);
    let store = shared.store.stats();
    crate::protocol::frame(&Json::Obj(vec![
        ("kind".into(), Json::Str("stats".into())),
        ("uptime_seconds".into(), Json::Num(uptime)),
        ("queue_depth".into(), Json::Num(shared.queue.depth() as f64)),
        ("jobs".into(), Json::Num(shared.config.jobs as f64)),
        (
            "jobs_accepted".into(),
            Json::Num(shared.counters.jobs_accepted.load(Ordering::Relaxed) as f64),
        ),
        (
            "jobs_completed".into(),
            Json::Num(shared.counters.jobs_completed.load(Ordering::Relaxed) as f64),
        ),
        (
            "jobs_cancelled".into(),
            Json::Num(shared.counters.jobs_cancelled.load(Ordering::Relaxed) as f64),
        ),
        ("requests".into(), Json::Num(requests as f64)),
        (
            "requests_per_second".into(),
            Json::Num(if uptime > 0.0 { requests as f64 / uptime } else { 0.0 }),
        ),
        ("verdict_hits".into(), Json::Num(store.verdict_hits as f64)),
        ("verdict_misses".into(), Json::Num(store.verdict_misses as f64)),
        ("case_replays".into(), Json::Num(store.case_replays as f64)),
        ("cache_hit_rate".into(), Json::Num(store.verdict_hit_rate())),
    ]))
}

/// Validates a submission, reserves a queue slot, runs the job and streams
/// its results. `Err` means this connection's socket is dead; a validation
/// failure is an `Ok` with an `error` frame (the connection stays usable).
fn handle_submit(
    shared: &Arc<Shared>,
    writer: &Mutex<TcpStream>,
    buf: &Arc<Mutex<Vec<u8>>>,
    stream: &TcpStream,
    submit: SubmitRequest,
) -> std::io::Result<()> {
    // Validate before touching the queue: bad submissions cost nothing.
    let functions = match resolve_functions(&submit.source) {
        Ok(functions) => functions,
        Err(message) => return write_line(writer, &error_frame(&message)),
    };
    let Some(profile) = by_name(&submit.model) else {
        return write_line(writer, &error_frame(&format!("unknown model {:?}", submit.model)));
    };
    let Some(mut ticket) = shared.queue.reserve() else {
        let message =
            format!("job queue full (capacity {})", shared.config.queue_capacity);
        return write_line(writer, &error_frame(&message));
    };
    let job = shared.counters.jobs_accepted.fetch_add(1, Ordering::Relaxed) + 1;
    let plan = DedupPlan::new(&functions, true);
    write_line(writer, &accepted_frame(job, functions.len(), plan.unique_indices().len()))?;
    ticket.wait();

    // Watch the socket while the job runs: EOF (client gone) cancels the
    // job; bytes from a pipelining client land in the reader's buffer.
    let cancel = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicBool::new(false));
    let watcher = stream.try_clone().ok().map(|watch_stream| {
        let _ = watch_stream.set_read_timeout(Some(Duration::from_millis(25)));
        let buf = buf.clone();
        let cancel = cancel.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let mut tmp = [0u8; 4096];
            while !done.load(Ordering::Relaxed) {
                match watch_stream.as_ref_read(&mut tmp) {
                    Ok(0) => {
                        cancel.store(true, Ordering::Relaxed);
                        break;
                    }
                    Ok(n) => {
                        buf.lock().expect("frame buffer poisoned").extend_from_slice(&tmp[..n]);
                    }
                    Err(e)
                        if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                    Err(_) => {
                        cancel.store(true, Ordering::Relaxed);
                        break;
                    }
                }
            }
        })
    });

    let factory = shared.provider.build(profile, submit.seed);
    let run_key = run_key(&submit, &functions);
    let persist = Persist { store: &shared.store, run_key: &run_key, resume: submit.resume };
    let exec = ExecConfig {
        jobs: shared.config.jobs,
        shard_size: shared.config.shard_size,
        ..ExecConfig::default()
    };
    let store_before = shared.store.stats();
    let observer = |index: usize, report: &lpo::prelude::CaseReport, resumed: bool| {
        if write_line(writer, &case_frame(job, index, report, resumed, false)).is_err() {
            cancel.store(true, Ordering::Relaxed);
        }
    };
    let hooks = BatchHooks { observer: Some(&observer), cancel: Some(&cancel) };
    let batch = run_batch_hooked(
        &shared.lpo,
        &*factory,
        submit.round,
        &functions,
        &exec,
        Some(&persist),
        hooks,
    );

    // The job is over: stop watching, restore the blocking read the
    // connection loop expects (the timeout is a socket-level option shared
    // by every clone of this connection).
    done.store(true, Ordering::Relaxed);
    if let Some(handle) = watcher {
        let _ = handle.join();
    }
    let _ = stream.set_read_timeout(None);

    // Structural duplicates replay their representative's settled report.
    for index in 0..functions.len() {
        if plan.representative(index) != index {
            let _ =
                write_line(writer, &case_frame(job, index, &batch.reports[index], false, true));
        }
    }

    let delta = shared.store.stats().since(store_before);
    let cancelled = cancel.load(Ordering::Relaxed);
    if cancelled {
        shared.counters.jobs_cancelled.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.counters.jobs_completed.fetch_add(1, Ordering::Relaxed);
    }
    let done_frame = crate::protocol::frame(&Json::Obj(vec![
        ("kind".into(), Json::Str("done".into())),
        ("job".into(), Json::Num(job as f64)),
        ("cancelled".into(), Json::Bool(cancelled)),
        ("summary".into(), Json::Str(batch.summary.fingerprint())),
        ("cases".into(), Json::Num(batch.stats.cases as f64)),
        ("found".into(), Json::Num(batch.summary.found as f64)),
        ("failed".into(), Json::Num(batch.summary.failed as f64)),
        ("dedup_hits".into(), Json::Num(batch.stats.cache_hits as f64)),
        ("resumed".into(), Json::Num(batch.stats.resumed_cases as f64)),
        ("verdict_hits".into(), Json::Num(delta.verdict_hits as f64)),
        ("verdict_misses".into(), Json::Num(delta.verdict_misses as f64)),
        ("cache_hit_rate".into(), Json::Num(delta.verdict_hit_rate())),
    ]));
    // The client may already be gone when the job was cancelled; that is
    // not a connection-loop error.
    let wrote = write_line(writer, &done_frame);
    if cancelled {
        Ok(())
    } else {
        wrote
    }
}

/// Resolves a submission source to the job's case list.
fn resolve_functions(source: &SubmitSource) -> Result<Vec<Function>, String> {
    match source {
        SubmitSource::Corpus(name) => match name.as_str() {
            "rq1" => Ok(rq1_suite().into_iter().map(|case| case.function).collect()),
            "rq2" => Ok(rq2_suite().into_iter().map(|case| case.function).collect()),
            other => Err(format!("unknown corpus {other:?} (expected rq1 or rq2)")),
        },
        SubmitSource::Module(text) => {
            let module = parse_module(text).map_err(|e| format!("invalid IR: {e}"))?;
            if module.functions.is_empty() {
                return Err("module defines no functions".to_string());
            }
            Ok(module.functions)
        }
    }
}

/// The content-derived checkpoint namespace of a job: model, seed, and the
/// order-sensitive combined digest of the submitted functions. A restarted
/// server resuming the same submission lands on the same key.
fn run_key(submit: &SubmitRequest, functions: &[Function]) -> String {
    let mut digest = 0xcbf2_9ce4_8422_2325u64;
    for function in functions {
        digest ^= hash_function(function).0;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("serve/{}/s{}/{digest:016x}", submit.model, submit.seed)
}

/// `Read::read` through a `&TcpStream` (the watcher owns no unique handle).
trait ReadByRef {
    fn as_ref_read(&self, buf: &mut [u8]) -> std::io::Result<usize>;
}

impl ReadByRef for TcpStream {
    fn as_ref_read(&self, buf: &mut [u8]) -> std::io::Result<usize> {
        (&mut &*self).read(buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_grants_fifo_and_bounds_depth() {
        let queue = JobQueue::new(2);
        let mut first = queue.reserve().expect("first slot");
        let second = queue.reserve().expect("second slot");
        assert!(queue.reserve().is_none(), "capacity 2 means a third reservation fails");
        assert_eq!(queue.depth(), 2);
        first.wait();
        drop(first);
        assert_eq!(queue.depth(), 1);
        // An abandoned (never-entered) reservation releases its slot too.
        drop(second);
        assert_eq!(queue.depth(), 0);
        let mut again = queue.reserve().expect("queue drained");
        again.wait();
    }

    #[test]
    fn run_keys_are_content_derived() {
        let submit = SubmitRequest {
            source: SubmitSource::Corpus("rq1".into()),
            model: "Gemini2.0T".into(),
            seed: 42,
            round: 0,
            resume: false,
        };
        let functions = resolve_functions(&submit.source).unwrap();
        let a = run_key(&submit, &functions);
        let b = run_key(&submit, &functions);
        assert_eq!(a, b, "same content, same key");
        assert!(a.starts_with("serve/Gemini2.0T/s42/"));
        // A different workload maps to a different namespace.
        let fewer = &functions[..functions.len() - 1];
        assert_ne!(a, run_key(&submit, fewer));
    }

    #[test]
    fn corpus_resolution_and_validation() {
        assert_eq!(resolve_functions(&SubmitSource::Corpus("rq1".into())).unwrap().len(), 25);
        assert!(resolve_functions(&SubmitSource::Corpus("rq9".into())).is_err());
        assert!(resolve_functions(&SubmitSource::Module("not ir".into()))
            .unwrap_err()
            .contains("invalid IR"));
        let module = "define i32 @f(i32 %x) {\n %r = add i32 %x, 0\n ret i32 %r\n}";
        assert_eq!(resolve_functions(&SubmitSource::Module(module.into())).unwrap().len(), 1);
    }
}
