//! Microbenchmarks of the staged translation validator's three cost shapes:
//!
//! * `probe_reject_staged` / `probe_reject_reference` — a wrong candidate
//!   refuted on its first input, the dominant candidate traffic. Staged pays
//!   a couple of direct-evaluator calls; the reference pays
//!   `CompiledFunction::compile` plus one sweep step.
//! * `full_sweep_staged` / `full_sweep_reference` — a correct candidate over
//!   a 256-input exhaustive space: the survivor cost, where the batched
//!   sweep amortizes step decoding across inputs.
//! * `cached_survivor` — the same survivor verified through a warm
//!   `CompileCache`, the cross-candidate steady state.
//!
//! Run with `cargo bench -p lpo-tv --bench verify`.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use lpo_ir::function::Function;
use lpo_ir::parser::parse_function;
use lpo_tv::prelude::{CompileCache, EvalArena, SourceCache, TvConfig};
use std::time::Duration;

/// The Figure 1 clamp, narrowed to an i8 domain so the sweep is exhaustive.
fn clamp_source() -> Function {
    parse_function(
        "define i8 @src(i8 %0) {\n\
         %2 = icmp slt i8 %0, 0\n\
         %3 = call i8 @llvm.umin.i8(i8 %0, i8 63)\n\
         %4 = select i1 %2, i8 0, i8 %3\n\
         ret i8 %4\n}",
    )
    .unwrap()
}

/// Wrong on every concrete input: the clamp with the select arms flipped.
fn wrong_candidate() -> Function {
    parse_function(
        "define i8 @tgt(i8 %0) {\n\
         %2 = icmp slt i8 %0, 0\n\
         %3 = call i8 @llvm.umin.i8(i8 %0, i8 63)\n\
         %4 = select i1 %2, i8 %3, i8 0\n\
         ret i8 %4\n}",
    )
    .unwrap()
}

/// Correct: the canonical smax/umin form.
fn correct_candidate() -> Function {
    parse_function(
        "define i8 @tgt(i8 %0) {\n\
         %2 = call i8 @llvm.smax.i8(i8 %0, i8 0)\n\
         %3 = call i8 @llvm.umin.i8(i8 %2, i8 63)\n\
         ret i8 %3\n}",
    )
    .unwrap()
}

fn bench_probe_reject(c: &mut Criterion) {
    let src = clamp_source();
    let wrong = wrong_candidate();
    let correct = correct_candidate();
    let case = SourceCache::new(&src, TvConfig::default());
    let mut arena = EvalArena::new();
    // Warm the source-outcome cache so the benchmark isolates candidate cost.
    assert!(case.verify_with(&correct, &mut arena).is_correct());
    c.bench_function("probe_reject_staged", |b| {
        b.iter(|| black_box(case.verify_with(&wrong, &mut arena).is_correct()))
    });
    c.bench_function("probe_reject_reference", |b| {
        b.iter(|| black_box(case.verify_reference(&wrong, &mut arena).is_correct()))
    });
}

fn bench_full_sweep(c: &mut Criterion) {
    let src = clamp_source();
    let correct = correct_candidate();
    let case = SourceCache::new(&src, TvConfig::default());
    let mut arena = EvalArena::new();
    assert!(case.verify_with(&correct, &mut arena).is_correct());
    c.bench_function("full_sweep_staged", |b| {
        b.iter(|| black_box(case.verify_with(&correct, &mut arena).is_correct()))
    });
    c.bench_function("full_sweep_reference", |b| {
        b.iter(|| black_box(case.verify_reference(&correct, &mut arena).is_correct()))
    });
}

fn bench_cached_survivor(c: &mut Criterion) {
    let src = clamp_source();
    let correct = correct_candidate();
    let cache = CompileCache::new();
    let case = SourceCache::new(&src, TvConfig::default()).with_compile_cache(&cache);
    let mut arena = EvalArena::new();
    assert!(case.verify_with(&correct, &mut arena).is_correct()); // compile once
    c.bench_function("cached_survivor", |b| {
        b.iter(|| black_box(case.verify_with(&correct, &mut arena).is_correct()))
    });
    assert!(cache.misses() == 1 && cache.hits() > 0, "cache must have served the survivor");
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(30)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(1200));
    targets = bench_probe_reject, bench_full_sweep, bench_cached_survivor
);
criterion_main!(benches);
