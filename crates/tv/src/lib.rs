//! # lpo-tv
//!
//! Translation validation for `lpo-ir` — this reproduction's stand-in for
//! Alive2. Given a source function and a candidate produced by the (simulated)
//! LLM, it decides whether the transformation is a correct *refinement* and,
//! when it is not, produces an Alive2-style counterexample that the LPO
//! pipeline feeds back to the model.
//!
//! ```
//! use lpo_tv::prelude::*;
//! use lpo_ir::parser::parse_function;
//!
//! let src = parse_function("define i8 @src(i8 %x) {\n %r = mul i8 %x, 2\n ret i8 %r\n}")?;
//! let tgt = parse_function("define i8 @tgt(i8 %x) {\n %r = shl i8 %x, 1\n ret i8 %r\n}")?;
//! assert!(verify_refinement(&src, &tgt).is_correct());
//! # Ok::<(), lpo_ir::parser::ParseError>(())
//! ```
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph and where this crate sits in the three-stage verification flow.

pub mod inputs;
pub mod refine;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::inputs::{corner_values, generate_inputs, InputConfig, TestInput};
    pub use crate::refine::{
        verify_refinement, verify_refinement_with, Counterexample, SourceCache, TvConfig,
        Validator, Verdict,
    };
    pub use lpo_interp::compiled::EvalArena;
}
