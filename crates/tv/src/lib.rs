//! # lpo-tv
//!
//! Translation validation for `lpo-ir` — this reproduction's stand-in for
//! Alive2. Given a source function and a candidate produced by the (simulated)
//! LLM, it decides whether the transformation is a correct *refinement* and,
//! when it is not, produces an Alive2-style counterexample that the LPO
//! pipeline feeds back to the model.
//!
//! ```
//! use lpo_tv::prelude::*;
//! use lpo_ir::parser::parse_function;
//!
//! let src = parse_function("define i8 @src(i8 %x) {\n %r = mul i8 %x, 2\n ret i8 %r\n}")?;
//! let tgt = parse_function("define i8 @tgt(i8 %x) {\n %r = shl i8 %x, 1\n ret i8 %r\n}")?;
//! assert!(verify_refinement(&src, &tgt).is_correct());
//! # Ok::<(), lpo_ir::parser::ParseError>(())
//! ```
//!
//! # The staged checker
//!
//! Checking is *staged* so that refutation is cheap and verification cost
//! concentrates on survivors: a probe over the first few inputs on the
//! uncompiled evaluator, lazy compilation (through the shared
//! [`refine::CompileCache`]) only for probe survivors, and a batched sweep
//! over the remaining inputs. Callers verifying many candidates of one
//! source build a per-case [`refine::SourceCache`]:
//!
//! ```
//! use lpo_tv::prelude::*;
//! use lpo_ir::parser::parse_function;
//!
//! let src = parse_function("define i8 @src(i8 %x) {\n %r = mul i8 %x, 2\n ret i8 %r\n}")?;
//! let wrong = parse_function("define i8 @t(i8 %x) {\n %r = shl i8 %x, 2\n ret i8 %r\n}")?;
//! let cache = CompileCache::new();
//! let case = SourceCache::new(&src, TvConfig::default()).with_compile_cache(&cache);
//! let mut arena = EvalArena::new();
//! assert!(!case.verify_with(&wrong, &mut arena).is_correct());
//! // Refuted by the probe: the wrong candidate never paid a compile.
//! assert_eq!(case.probe_rejects(), 1);
//! assert_eq!(cache.misses(), 0);
//! # Ok::<(), lpo_ir::parser::ParseError>(())
//! ```
//!
//! The pre-staging checker is retained as
//! [`refine::verify_refinement_reference`] and the two are proven
//! outcome-identical (verdicts, counterexamples, UB messages) by
//! `tests/tv_differential.rs`.
//!
//! See `ARCHITECTURE.md` at the repository root for the workspace crate
//! graph, where this crate sits in the three-stage verification flow, and
//! the "Translation validation hot path" section for the staged checker's
//! design and invariants.

pub mod frozen;
pub mod inputs;
pub mod refine;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::frozen::{
        FrozenCase, SerialDriver, SweepDriver, SweepOutcome, SweepShard, SweepSlot,
    };
    pub use crate::inputs::{corner_values, generate_inputs, input_count, InputConfig, TestInput};
    pub use crate::refine::{
        verify_refinement, verify_refinement_reference, verify_refinement_with, CompileCache,
        Counterexample, SourceCache, TvConfig, Validator, Verdict, VerdictTier,
    };
    pub use lpo_interp::compiled::EvalArena;
}
