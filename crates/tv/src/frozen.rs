//! Thread-shareable snapshots of a verification case, and the shard
//! decomposition of the Stage-3 survivor sweep.
//!
//! The per-case [`SourceCache`] is deliberately
//! single-threaded (`Cell`/`RefCell`/`Rc` state, lazily filled): it lives on
//! one worker and fills source outcomes in input order as candidates walk
//! them. That layout is what makes the *per-case* engine fast — but it also
//! pins one case to one worker. A [`FrozenCase`] is the bridge to intra-case
//! parallelism: an immutable, `Arc`-shared snapshot of everything the sweep
//! needs (the generated inputs, the source's outcome on every one of them,
//! and the dense plane-comparison table), cheap to clone across threads.
//!
//! On top of it, a [`SweepShard`] is one stealable unit of Stage-3 work: the
//! half-open input range `[start, end)` of one candidate's survivor sweep.
//! [`SweepShard::run`] reproduces the staged sweep exactly — plane chunks of
//! 256 lanes while the inputs stay in the plane domain, then 32-lane batched
//! chunks — and stops at the shard's first refuting input.
//!
//! # Ordered merge and cancellation
//!
//! Shards are scheduled by a [`SweepDriver`]. The contract that keeps
//! `--jobs N` bit-identical for every `N`:
//!
//! * the driver returns one [`SweepSlot`] per shard, **in shard order**;
//! * a shard may be [`Cancelled`](SweepSlot::Cancelled) only if some
//!   earlier shard's outcome [`refutes`](SweepOutcome::refutes);
//! * the merge takes the **first** executed slot with a finding.
//!
//! Because the serial-first refuting input lives in some shard *k*, shards
//! `< k` contain no refuting inputs at all — whether they run before, after
//! or concurrently with shard *k*, they report no finding. So the first
//! finding in shard order is always the first refuting input in input order,
//! exactly what the serial sweep reports, independent of scheduling.

use crate::inputs::TestInput;
use crate::refine::{
    dense_table, refutation, CompileCache, DenseOutcomes, Refutation, SourceCache, SourceOutcome,
    TargetOutcome, TvConfig, PLANE_LANES, STEP_LIMIT, SWEEP_LANES,
};
use lpo_interp::compiled::{evaluate_direct, CompiledFunction, EvalArena};
use lpo_interp::value::EvalValue;
use lpo_ir::function::Function;
use std::sync::Arc;

/// An immutable, `Send + Sync` snapshot of one verification case: the source
/// function, its generated test inputs, and the source's outcome on **every**
/// input (fully materialized, unlike the lazily filled
/// [`SourceCache`]). Cloning is an `Arc` bump.
///
/// Freezing evaluates any source inputs no candidate has reached yet, in
/// input order — so a frozen case front-loads the source sweep that the lazy
/// cache would have paid across candidates. Only probe survivors are worth
/// freezing; probe rejects never get here.
#[derive(Clone)]
pub struct FrozenCase {
    inner: Arc<FrozenInner>,
}

struct FrozenInner {
    src: Function,
    inputs: Vec<TestInput>,
    exhaustive: bool,
    outcomes: Vec<SourceOutcome>,
    /// Dense comparison table for plane-mode lanes; `None` when the case's
    /// shape can't carry it (memory, vectors, wide/void returns).
    dense: Option<DenseOutcomes>,
    plane_sweep: bool,
    probe_inputs: usize,
}

fn _frozen_is_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<FrozenCase>();
    check::<SweepShard>();
}

impl FrozenCase {
    /// Freezes a standalone case: generates inputs, evaluates the source on
    /// all of them, and snapshots the result. Convenience for enumerative
    /// callers (the superoptimizer baselines) that don't hold a
    /// [`SourceCache`]; the engine path freezes through
    /// [`SourceCache::frozen_case`] so the lazy cache and the snapshot share
    /// one source sweep.
    pub fn freeze(src: &Function, config: &TvConfig, arena: &mut EvalArena) -> FrozenCase {
        SourceCache::new(src, config.clone()).frozen_case(arena)
    }

    pub(crate) fn from_parts(
        src: Function,
        inputs: Vec<TestInput>,
        exhaustive: bool,
        outcomes: Vec<SourceOutcome>,
        plane_sweep: bool,
        probe_inputs: usize,
    ) -> FrozenCase {
        let dense = dense_table(&inputs, outcomes.iter());
        FrozenCase {
            inner: Arc::new(FrozenInner {
                src,
                inputs,
                exhaustive,
                outcomes,
                dense,
                plane_sweep,
                probe_inputs,
            }),
        }
    }

    /// The frozen source function.
    pub fn source(&self) -> &Function {
        &self.inner.src
    }

    /// How many test inputs the case covers.
    pub fn input_count(&self) -> usize {
        self.inner.inputs.len()
    }

    /// Whether the inputs enumerate the whole input space.
    pub fn exhaustive(&self) -> bool {
        self.inner.exhaustive
    }

    fn signature_matches(&self, tgt: &Function) -> bool {
        let src = &self.inner.src;
        src.params.len() == tgt.params.len()
            && src.params.iter().zip(&tgt.params).all(|(a, b)| a.ty == b.ty)
            && src.ret_ty == tgt.ret_ty
    }

    /// Accept/reject verification of one candidate against the frozen case:
    /// the staged probe → compile → full-range sweep, with the same verdict
    /// bit as [`SourceCache::verify_outcome_only`]. Runs entirely on
    /// immutable shared state, so enumeration shards can verify planned
    /// candidates from any worker thread.
    pub fn verify_outcome_only(
        &self,
        tgt: &Function,
        cache: Option<&CompileCache>,
        arena: &mut EvalArena,
    ) -> bool {
        if !self.signature_matches(tgt) {
            return false;
        }
        let total = self.inner.inputs.len();
        let probe_n = self.inner.probe_inputs.min(total);
        for index in 0..probe_n {
            let input = &self.inner.inputs[index];
            let tgt_out =
                evaluate_direct(tgt, arena, &input.args, input.memory.clone(), STEP_LIMIT)
                    .map(|o| (o.result, o.memory));
            if refutation(input, &self.inner.outcomes[index], &tgt_out).is_some() {
                return false;
            }
        }
        if probe_n == total {
            return true;
        }
        let compiled: Arc<CompiledFunction> = match cache {
            Some(cache) => cache.get_or_compile(tgt),
            None => Arc::new(CompiledFunction::compile(tgt)),
        };
        let shard = SweepShard::new(self.clone(), compiled, probe_n, total);
        shard.run(arena).finding.is_none()
    }
}

/// One stealable unit of Stage-3 work: inputs `[start, end)` of one
/// candidate's survivor sweep against a frozen case.
#[derive(Clone)]
pub struct SweepShard {
    case: FrozenCase,
    tgt: Arc<CompiledFunction>,
    start: usize,
    end: usize,
}

impl SweepShard {
    /// Builds the shard for inputs `[start, end)` of `case`.
    pub fn new(case: FrozenCase, tgt: Arc<CompiledFunction>, start: usize, end: usize) -> Self {
        Self { case, tgt, start, end }
    }

    /// The input range this shard covers.
    pub fn range(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    /// Sweeps the shard's input range, mirroring the serial staged sweep:
    /// plane chunks of `PLANE_LANES` while the candidate has a plane form
    /// and the inputs stay in the plane domain, then `SWEEP_LANES` batched
    /// chunks. Stops at the shard's first refuting input.
    ///
    /// A chunk outside the plane domain drops this shard to the batched tier
    /// for its own remainder only; later shards retry the plane. The serial
    /// path instead abandons the plane for the whole rest of the sweep —
    /// the tiers produce identical outcomes (proven by
    /// `tests/plane_differential.rs`), so the verdict and the refuting input
    /// are unaffected; only which evaluator ran a lane can differ.
    pub fn run(&self, arena: &mut EvalArena) -> SweepOutcome {
        let inner = &*self.case.inner;
        let mut index = self.start;
        let mut used_plane = false;
        if inner.plane_sweep {
            if let Some(plan) = self.tgt.plane() {
                while index < self.end {
                    let chunk_end = (index + PLANE_LANES).min(self.end);
                    let lanes: Vec<&[EvalValue]> = inner.inputs[index..chunk_end]
                        .iter()
                        .map(|input| input.args.as_slice())
                        .collect();
                    let Some(result) = plan.evaluate_lanes(arena, &lanes, STEP_LIMIT) else {
                        break;
                    };
                    used_plane = true;
                    for offset in 0..chunk_end - index {
                        let lane_index = index + offset;
                        // Dense pre-filter, then the authoritative comparison
                        // for suspect lanes — same split as the serial sweep.
                        if let Some(table) = &inner.dense {
                            if table.lane_refines(lane_index, &result, offset) {
                                continue;
                            }
                        }
                        let input = &inner.inputs[lane_index];
                        let tgt_out = result
                            .outcome(offset, input.memory.clone())
                            .map(|o| (o.result, o.memory));
                        if let Some(refutation) =
                            refutation(input, &inner.outcomes[lane_index], &tgt_out)
                        {
                            return SweepOutcome {
                                finding: Some(SweepFinding { index: lane_index, tgt_out, refutation }),
                                used_plane,
                            };
                        }
                    }
                    index = chunk_end;
                }
            }
        }
        while index < self.end {
            let chunk_end = (index + SWEEP_LANES).min(self.end);
            let lanes: Vec<(&[EvalValue], lpo_interp::memory::Memory)> = inner.inputs
                [index..chunk_end]
                .iter()
                .map(|input| (input.args.as_slice(), input.memory.clone()))
                .collect();
            let lane_outs = self.tgt.evaluate_batch_with_limit(arena, lanes, STEP_LIMIT);
            for (offset, lane_out) in lane_outs.into_iter().enumerate() {
                let lane_index = index + offset;
                let input = &inner.inputs[lane_index];
                let tgt_out = lane_out.map(|o| (o.result, o.memory));
                if let Some(refutation) = refutation(input, &inner.outcomes[lane_index], &tgt_out)
                {
                    return SweepOutcome {
                        finding: Some(SweepFinding { index: lane_index, tgt_out, refutation }),
                        used_plane,
                    };
                }
            }
            index = chunk_end;
        }
        SweepOutcome { finding: None, used_plane }
    }
}

/// What one executed shard concluded.
pub struct SweepOutcome {
    pub(crate) finding: Option<SweepFinding>,
    /// Whether at least one chunk of this shard ran on the plane evaluator.
    pub(crate) used_plane: bool,
}

impl SweepOutcome {
    /// Whether this shard found a refuting input. A driver may cancel all
    /// shards *after* one whose outcome refutes.
    pub fn refutes(&self) -> bool {
        self.finding.is_some()
    }
}

/// A refuting input found by a shard, carrying everything the renderer needs
/// (the input index, the target outcome, the refutation descriptor) without
/// rendering anything on the hot path.
pub(crate) struct SweepFinding {
    pub(crate) index: usize,
    pub(crate) tgt_out: TargetOutcome,
    pub(crate) refutation: Refutation,
}

/// One slot of a driver's result, in shard order.
pub enum SweepSlot {
    /// The shard ran to its first refutation or its end.
    Executed(SweepOutcome),
    /// The shard was skipped because an earlier shard refuted.
    Cancelled,
}

/// Schedules a candidate's sweep shards and returns one [`SweepSlot`] per
/// shard, in shard order. See the module docs for the cancellation contract
/// that keeps the merged verdict scheduling-independent.
pub trait SweepDriver {
    /// Runs `shards`, cancelling later shards once an earlier one refutes.
    fn drive(&self, shards: Vec<SweepShard>, arena: &mut EvalArena) -> Vec<SweepSlot>;
}

/// The in-order reference driver: runs each shard on the caller's thread and
/// cancels everything after the first refuting shard. The work-stealing
/// driver in `lpo-core` is proven slot-equivalent to this by the shard
/// determinism tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct SerialDriver;

impl SweepDriver for SerialDriver {
    fn drive(&self, shards: Vec<SweepShard>, arena: &mut EvalArena) -> Vec<SweepSlot> {
        let mut slots = Vec::with_capacity(shards.len());
        let mut cut = false;
        for shard in shards {
            if cut {
                slots.push(SweepSlot::Cancelled);
                continue;
            }
            let outcome = shard.run(arena);
            cut = outcome.refutes();
            slots.push(SweepSlot::Executed(outcome));
        }
        slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::Verdict;
    use lpo_ir::parser::parse_function;

    fn freeze(src: &str) -> (FrozenCase, EvalArena) {
        let src = parse_function(src).unwrap();
        let mut arena = EvalArena::new();
        let case = FrozenCase::freeze(&src, &TvConfig::default(), &mut arena);
        (case, arena)
    }

    #[test]
    fn frozen_case_materializes_every_outcome() {
        let (case, _) = freeze("define i8 @s(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}");
        assert_eq!(case.input_count(), 256);
        assert!(case.exhaustive());
        assert_eq!(case.source().name, "s");
    }

    #[test]
    fn frozen_outcome_only_matches_the_source_cache() {
        let src =
            parse_function("define i8 @s(i8 %x) {\n %r = mul i8 %x, 2\n ret i8 %r\n}").unwrap();
        let candidates = [
            "define i8 @t(i8 %x) {\n %r = shl i8 %x, 1\n ret i8 %r\n}",
            "define i8 @t(i8 %x) {\n %r = shl i8 %x, 2\n ret i8 %r\n}",
            "define i8 @t(i8 %x) {\n %r = shl nuw i8 %x, 1\n ret i8 %r\n}",
            "define i8 @t(i16 %x) {\n %r = trunc i16 %x to i8\n ret i8 %r\n}",
        ];
        let mut arena = EvalArena::new();
        let frozen = FrozenCase::freeze(&src, &TvConfig::default(), &mut arena);
        let cache = SourceCache::new(&src, TvConfig::default());
        let shared = CompileCache::new();
        for text in candidates {
            let tgt = parse_function(text).unwrap();
            assert_eq!(
                frozen.verify_outcome_only(&tgt, Some(&shared), &mut arena),
                cache.verify_outcome_only(&tgt, &mut arena),
                "frozen disagreed with the lazy cache on {text}"
            );
        }
    }

    #[test]
    fn serial_driver_cancels_after_the_first_refuting_shard() {
        let src =
            parse_function("define i8 @s(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").unwrap();
        // Wrong only for inputs >= 128 (the sign bit changes srem behaviour),
        // so early shards execute cleanly and a later shard refutes.
        let tgt =
            parse_function("define i8 @t(i8 %x) {\n %c = icmp slt i8 %x, 0\n %a = add i8 %x, 1\n %b = add i8 %x, 2\n %r = select i1 %c, i8 %b, i8 %a\n ret i8 %r\n}")
                .unwrap();
        let mut arena = EvalArena::new();
        let frozen = FrozenCase::freeze(&src, &TvConfig::default(), &mut arena);
        let compiled = Arc::new(CompiledFunction::compile(&tgt));
        let shard_size = 16;
        let total = frozen.input_count();
        let shards: Vec<SweepShard> = (0..total)
            .step_by(shard_size)
            .map(|start| {
                SweepShard::new(
                    frozen.clone(),
                    compiled.clone(),
                    start,
                    (start + shard_size).min(total),
                )
            })
            .collect();
        let slots = SerialDriver.drive(shards, &mut arena);
        // Inputs 0..128 refine; input 128 (shard 8) is the first refutation.
        let first_refuting = slots
            .iter()
            .position(|slot| matches!(slot, SweepSlot::Executed(out) if out.refutes()))
            .expect("one shard must refute");
        assert_eq!(first_refuting, 128 / shard_size);
        for (i, slot) in slots.iter().enumerate() {
            match slot {
                SweepSlot::Executed(out) if i < first_refuting => assert!(!out.refutes()),
                SweepSlot::Executed(out) if i == first_refuting => {
                    assert_eq!(out.finding.as_ref().unwrap().index, 128)
                }
                SweepSlot::Cancelled if i > first_refuting => {}
                _ => panic!("slot {i} violates the cancellation contract"),
            }
        }
        // And the full driver-based verdict pinpoints input 128, exactly as
        // the serial checker does.
        let case = SourceCache::new(&src, TvConfig::default());
        let serial = case.verify_with(&tgt, &mut arena);
        let sharded = case.verify_with_driver(&tgt, &mut arena, &SerialDriver, shard_size);
        assert_eq!(sharded, serial);
        assert!(matches!(sharded, Verdict::Incorrect(_)));
    }
}
