//! The refinement relation and the counterexample-producing checker.
//!
//! A transformation from `src` to `tgt` is *correct* when every behaviour of
//! `tgt` is allowed by `src` (Section 2.4 of the paper):
//!
//! * on any input where `src` has undefined behaviour, anything is allowed;
//! * where `src` returns `poison`, `tgt` may return anything;
//! * where `src` returns `undef`, `tgt` may return anything except `poison`;
//! * where `src` returns a concrete value, `tgt` must return the same value
//!   (lane-wise for vectors, with the poison/undef rules applied per lane);
//! * the final contents of the memory reachable from the arguments must refine
//!   byte-for-byte under the same rules.
//!
//! The check evaluates both functions on the inputs produced by
//! [`generate_inputs`]; a failure yields a
//! [`Counterexample`] formatted the way Alive2 reports them, which the LPO
//! pipeline feeds back to the LLM.
//!
//! # Staged verification
//!
//! Almost every candidate the discovery loop proposes is *wrong*, and wrong
//! candidates are usually refuted by one of the very first inputs. The
//! checker therefore runs in three stages (see `ARCHITECTURE.md`
//! § Translation validation hot path):
//!
//! 1. **Probe** — the first [`TvConfig::probe_inputs`] inputs are evaluated
//!    with [`lpo_interp::compiled::evaluate_direct`], straight off the raw
//!    [`Function`]: a candidate refuted here never pays
//!    [`CompiledFunction::compile`].
//! 2. **Lazy compile** — only probe survivors are compiled, through the
//!    structural-hash-keyed [`CompileCache`] when one is attached, so
//!    syntactically distinct but structurally identical candidates compile
//!    once per worker pool.
//! 3. **Sweep** — the remaining inputs run in chunks. Straight-line
//!    scalar-integer candidates, whose compiled form carries a
//!    [`lpo_interp::plane::PlanePlan`], sweep 256 inputs at a
//!    time over native `u64` register planes; everything else (memory,
//!    vectors, control flow) falls back to
//!    [`CompiledFunction::evaluate_batch_with_limit`], which drives
//!    32 lanes through one walk of the decoded step list. The
//!    plane tier can be switched off with [`TvConfig::plane_sweep`].
//!
//! Ahead of the probe sits **Stage 3a₀, abstract pre-verification**
//! ([`TvConfig::absint`]): source and candidate are pushed through
//! `lpo_absint`'s known-bits × interval product domain. A *refutation*
//! certificate (source provably concrete, return ranges provably disjoint)
//! means every input refutes — outcome-only callers reject with **zero**
//! concrete evaluations, while verdict-rendering callers fall through and
//! let the probe refute concretely on the first input so counterexamples
//! stay byte-identical to the reference. A *proof* certificate (same
//! singleton constant, or structurally equal return DAGs under constant
//! folding, with no possible UB/poison divergence) accepts without the
//! sweep. Inconclusive candidates proceed unchanged, so the tier can only
//! remove work, never change a verdict — `tests/absint_differential.rs`
//! fuzzes exactly that.
//!
//! The staged path is **outcome-identical** to the retained single-stage
//! path ([`verify_refinement_reference`] /
//! [`SourceCache::verify_reference`]): same verdicts, same counterexamples,
//! same UB messages, and the same number of source-side evaluations
//! ([`SourceCache::source_eval_count`]). `tests/tv_differential.rs` checks
//! this differentially over the rq1/rq2 corpora, and
//! `tests/plane_differential.rs` fuzzes the plane tier against both
//! retained evaluators over randomly generated functions.

use crate::frozen::{FrozenCase, SweepDriver, SweepShard, SweepSlot};
use crate::inputs::{generate_inputs, InputConfig, TestInput};
use lpo_absint::{certificate, Certificate, FunctionAnalysis};
use lpo_interp::compiled::{evaluate_direct, CompiledFunction, EvalArena};
use lpo_interp::eval::Ub;
use lpo_interp::memory::Memory;
use lpo_interp::plane::{PlanePlan, PlaneResult};
use lpo_interp::value::EvalValue;
use lpo_ir::function::Function;
use lpo_ir::hash::{hash_function, Digest};
use lpo_ir::printer;
use std::cell::{Cell, OnceCell, RefCell};
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// How many instructions a single evaluation may execute.
pub(crate) const STEP_LIMIT: usize = 1 << 14;

/// How many inputs one batched survivor-sweep call covers.
pub(crate) const SWEEP_LANES: usize = 32;

/// How many inputs one plane survivor-sweep call covers. Planes are flat
/// `u64` slices, so wider chunks amortize the per-step loop overhead and
/// keep the auto-vectorized kernels fed; 256 lanes × a few dozen planes
/// stays comfortably inside L2.
pub(crate) const PLANE_LANES: usize = 256;

/// The result of checking one candidate transformation.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Every tested behaviour of the target refines the source.
    Correct {
        /// How many inputs were checked.
        inputs_checked: usize,
        /// Whether the whole input space was enumerated.
        exhaustive: bool,
    },
    /// The transformation is wrong; a counterexample demonstrates it.
    Incorrect(Counterexample),
    /// The pair could not be compared (e.g. mismatched signatures). The
    /// message is suitable as feedback to the LLM.
    Error(String),
}

impl Verdict {
    /// Returns `true` for [`Verdict::Correct`].
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct { .. })
    }

    /// Returns the counterexample if the verdict is [`Verdict::Incorrect`].
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Incorrect(cex) => Some(cex),
            _ => None,
        }
    }
}

/// A concrete input on which the target does not refine the source.
#[derive(Clone, Debug, PartialEq)]
pub struct Counterexample {
    /// Why the refinement fails, e.g. `Value mismatch` or
    /// `Target is more poisonous than source`.
    pub reason: String,
    /// Human-readable `name = value` bindings for the arguments.
    pub args: Vec<(String, String)>,
    /// Description of the source behaviour on this input.
    pub src_behaviour: String,
    /// Description of the target behaviour on this input.
    pub tgt_behaviour: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Transformation doesn't verify!")?;
        writeln!(f, "ERROR: {}", self.reason)?;
        writeln!(f)?;
        writeln!(f, "Example:")?;
        for (name, value) in &self.args {
            writeln!(f, "{name} = {value}")?;
        }
        writeln!(f)?;
        writeln!(f, "Source:")?;
        writeln!(f, "{}", self.src_behaviour)?;
        writeln!(f)?;
        writeln!(f, "Target:")?;
        write!(f, "{}", self.tgt_behaviour)
    }
}

/// Configuration of the translation validator.
#[derive(Clone, Debug)]
pub struct TvConfig {
    /// Input generation parameters.
    pub inputs: InputConfig,
    /// How many leading inputs the staged checker probes with the direct
    /// (uncompiled) evaluator before paying `CompiledFunction::compile` for
    /// the candidate. `0` compiles immediately; a value at or above the
    /// input-set size means the whole check runs on the probe evaluator.
    pub probe_inputs: usize,
    /// Whether probe survivors whose compiled form carries a
    /// [`PlanePlan`] sweep the remaining inputs on the type-specialized
    /// plane evaluator. Off, every survivor takes the general batched
    /// sweep; verdicts are identical either way.
    pub plane_sweep: bool,
    /// Whether candidates run through the abstract pre-verification tier
    /// (Stage 3a₀) before any concrete evaluation: `lpo_absint` certificates
    /// prove correct candidates without a sweep and refute provably-disjoint
    /// ones without a single evaluation. Off, every candidate goes straight
    /// to the probe; verdicts are identical either way.
    pub absint: bool,
}

impl Default for TvConfig {
    fn default() -> Self {
        Self { inputs: InputConfig::default(), probe_inputs: 16, plane_sweep: true, absint: true }
    }
}

/// Which tier of the staged checker decided a candidate's verdict. Carried
/// alongside (never inside) [`Verdict`]: the verdict says *what* was decided,
/// the tier says *how much work* deciding it took.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VerdictTier {
    /// Accepted by an abstract proof certificate — no concrete sweep ran.
    Proved,
    /// Accepted by the concrete sweep over every generated input.
    Tested,
    /// Rejected on an abstract refutation certificate (the verdict-rendering
    /// paths still materialize the counterexample concretely).
    RefutedAbstract,
    /// Rejected by a concrete counterexample with no abstract certificate.
    RefutedConcrete,
}

impl VerdictTier {
    /// Stable lowercase name, used by the persistent store and the drivers'
    /// `[stage3]` footers.
    pub fn as_str(self) -> &'static str {
        match self {
            VerdictTier::Proved => "proved",
            VerdictTier::Tested => "tested",
            VerdictTier::RefutedAbstract => "refuted-abstract",
            VerdictTier::RefutedConcrete => "refuted-concrete",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "proved" => Some(VerdictTier::Proved),
            "tested" => Some(VerdictTier::Tested),
            "refuted-abstract" => Some(VerdictTier::RefutedAbstract),
            "refuted-concrete" => Some(VerdictTier::RefutedConcrete),
            _ => None,
        }
    }
}

impl fmt::Display for VerdictTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A shared, sharded cache of compiled candidate functions, keyed by
/// [`lpo_ir::hash::hash_function`].
///
/// Structurally identical candidates — different value names, same dataflow —
/// show up constantly across a case's feedback attempts, across the dedup
/// groups of a corpus batch, and across `table4`'s model profiles. The digest
/// covers everything that influences execution (opcodes, flags, types,
/// constants, operand shape, block structure and branch targets), so a cached
/// [`CompiledFunction`] is behaviourally interchangeable with recompiling the
/// candidate, and cache hits cannot change verdicts.
///
/// The cache is `Send + Sync` (digest-sharded `Mutex`es) and is shared by all
/// workers of an execution pool; hit/miss totals are scheduling-dependent
/// (two workers can race to compile the same digest), but verdicts are not.
/// Each shard is capped at [`CompileCache::SHARD_CAP`] entries; once full,
/// new digests are compiled but not retained.
pub struct CompileCache {
    shards: Vec<Mutex<HashMap<Digest, Arc<CompiledFunction>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl Default for CompileCache {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for CompileCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CompileCache")
            .field("entries", &self.len())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl CompileCache {
    /// Entries held per shard before new digests stop being retained.
    pub const SHARD_CAP: usize = 1024;
    /// Number of shards (a power of two, so digest → shard is a mask).
    const SHARDS: usize = 8;

    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..Self::SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
        }
    }

    /// Returns the compiled form of `func`, compiling (and retaining) it on
    /// first sight of its structural digest.
    pub fn get_or_compile(&self, func: &Function) -> Arc<CompiledFunction> {
        let digest = hash_function(func);
        let shard = &self.shards[(digest.0 as usize) & (Self::SHARDS - 1)];
        if let Some(hit) = shard.lock().expect("compile cache poisoned").get(&digest) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        // Compile outside the lock; a concurrent miss on the same digest
        // costs one duplicate compile, never a wrong result.
        let compiled = Arc::new(CompiledFunction::compile(func));
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut map = shard.lock().expect("compile cache poisoned");
        if let Some(existing) = map.get(&digest) {
            return existing.clone();
        }
        if map.len() < Self::SHARD_CAP {
            map.insert(digest, compiled.clone());
        }
        compiled
    }

    /// Lookups served from the cache so far.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Compiles performed (first sight of a digest, plus rare races). The
    /// compile-once tests use this as their oracle.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Compiled functions currently retained.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().expect("compile cache poisoned").len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The translation validator (this reproduction's stand-in for Alive2).
#[derive(Clone, Debug, Default)]
pub struct Validator {
    config: TvConfig,
}

impl Validator {
    /// Creates a validator with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a validator with a specific configuration.
    pub fn with_config(config: TvConfig) -> Self {
        Self { config }
    }

    /// Checks whether the transformation from `src` to `tgt` is a refinement.
    pub fn verify(&self, src: &Function, tgt: &Function) -> Verdict {
        verify_refinement_with(src, tgt, &self.config)
    }

    /// Prepares a cached per-case checker for `src`: the generated test
    /// inputs and the source's per-input outcomes are computed once and
    /// shared by every candidate verified against it.
    pub fn case<'a>(&self, src: &'a Function) -> SourceCache<'a> {
        SourceCache::new(src, self.config.clone())
    }

    /// Checks refinement in both directions; `true` means the two functions
    /// are observationally equivalent on every tested input.
    pub fn equivalent(&self, a: &Function, b: &Function) -> bool {
        self.verify(a, b).is_correct() && self.verify(b, a).is_correct()
    }
}

/// Checks refinement with the default configuration (staged).
pub fn verify_refinement(src: &Function, tgt: &Function) -> Verdict {
    verify_refinement_with(src, tgt, &TvConfig::default())
}

/// Checks refinement with an explicit configuration, on the staged
/// (probe → lazy compile → batched sweep) checker.
///
/// One-shot convenience: callers that verify several candidate rewrites of
/// the same source (the LPO loop, the superoptimizer baselines) should build
/// a [`SourceCache`] instead, so the source's per-input outcomes and the
/// generated inputs are computed once per case instead of once per candidate.
pub fn verify_refinement_with(src: &Function, tgt: &Function, config: &TvConfig) -> Verdict {
    SourceCache::new(src, config.clone()).verify(tgt)
}

/// Checks refinement on the retained pre-staging path: the candidate is
/// compiled unconditionally and the inputs are swept one at a time from the
/// first.
///
/// This is the differential oracle for the staged checker — verdicts,
/// counterexamples and UB messages are bit-identical between the two — and
/// the baseline `repro bench-tv` measures the staged path against.
pub fn verify_refinement_reference(src: &Function, tgt: &Function, config: &TvConfig) -> Verdict {
    let cache = SourceCache::new(src, config.clone());
    let mut arena = EvalArena::new();
    cache.verify_reference(tgt, &mut arena)
}

/// The outcome of evaluating the source function on one input: the returned
/// value and final memory, or the UB it exhibited.
pub(crate) type SourceOutcome = Result<(Option<EvalValue>, Memory), Ub>;

/// The same shape for the target side (probe, batched or compiled-serial —
/// all three evaluators produce identical outcomes).
pub(crate) type TargetOutcome = Result<(Option<EvalValue>, Memory), Ub>;

/// What the staged walk concluded, before any diagnostic rendering.
enum StagedVerdict {
    /// Every input refined.
    Correct { inputs_checked: usize, exhaustive: bool },
    /// Input `index` refutes the candidate.
    Refuted { index: usize, tgt_out: TargetOutcome, refutation: Refutation },
    /// An abstract refutation certificate rejected the candidate with zero
    /// concrete evaluations. Only produced on the outcome-only entry points
    /// (`abstract_refute_shortcut`); the verdict-rendering paths instead let
    /// the probe find the concrete counterexample.
    RefutedAbstract,
}

/// Per-case verification state, cached across candidate rewrites.
///
/// The refinement check's cost model is `candidates × inputs × (src eval +
/// tgt eval)`. For one extracted sequence the LPO loop verifies up to
/// `attempt_limit` candidates and the Souper baseline hundreds — but the
/// *source* side of every one of those checks is identical. `SourceCache`
/// computes, once per case and lazily on first use:
///
/// * the [`TestInput`]s for the source signature (exhaustive or sampled);
/// * the source's outcome per input — result, final memory and UB/poison
///   classification — via a pre-compiled [`CompiledFunction`], filled
///   **per input as the check walks them**, so a candidate rejected on the
///   third input costs three source evaluations, not the whole sweep;
///
/// so verifying the k-th candidate only evaluates the *target* (plus any
/// source inputs no earlier candidate reached). Each source input is
/// evaluated at most once per case, and verdicts are bit-identical to the
/// retained [`verify_refinement_reference`] path.
///
/// Candidate verification itself is *staged* (see the module docs): a probe
/// over the first [`TvConfig::probe_inputs`] inputs on the uncompiled
/// evaluator, then lazy compilation — through an attached [`CompileCache`],
/// if any — and a batched sweep for the survivors.
/// [`probe_rejects`](Self::probe_rejects) / [`survivors`](Self::survivors)
/// count how candidates split between the two stages.
pub struct SourceCache<'a> {
    src: &'a Function,
    config: TvConfig,
    compile_cache: Option<&'a CompileCache>,
    inputs: OnceCell<(Vec<TestInput>, bool)>,
    compiled_src: OnceCell<CompiledFunction>,
    outcomes: RefCell<Vec<Option<SourceOutcome>>>,
    source_evals: Cell<usize>,
    candidates: Cell<usize>,
    probe_rejects: Cell<usize>,
    survivors: Cell<usize>,
    plane_sweeps: Cell<usize>,
    proved: Cell<usize>,
    absint_refuted: Cell<usize>,
    last_tier: Cell<Option<VerdictTier>>,
    src_abs: OnceCell<Option<FunctionAnalysis>>,
    tgt_abs: RefCell<FunctionAnalysis>,
    dense: RefCell<DenseState>,
    frozen: OnceCell<crate::frozen::FrozenCase>,
}

/// Lazily built cache of [`DenseOutcomes`] for one case.
enum DenseState {
    /// Not yet attempted — the source outcomes aren't fully populated.
    NotBuilt,
    /// Attempted and not representable (a non-scalar or void return);
    /// permanent, since cached outcomes never change shape.
    Unavailable,
    /// Built; shared with the plane sweep.
    Built(Rc<DenseOutcomes>),
}

/// Source outcome tag: the source exhibited UB on this input.
const DENSE_SRC_UB: u8 = 0;
/// Source outcome tag: the source returned `poison`.
const DENSE_POISON: u8 = 1;
/// Source outcome tag: the source returned `undef`.
const DENSE_UNDEF: u8 = 2;
/// Source outcome tag: the source returned the concrete value in `vals`.
const DENSE_CONCRETE: u8 = 3;

/// The source's per-input outcome table flattened into dense arrays — one
/// tag byte plus one canonical `u64` per input — so the plane sweep compares
/// a survivor lane without materializing an [`EvalValue`].
///
/// Only built for cases in the plane domain (scalar-integer signature, no
/// input allocations), where the memory half of the refinement check is
/// vacuous: inputs carry no observable allocations, so value refinement is
/// the whole comparison.
pub(crate) struct DenseOutcomes {
    tags: Vec<u8>,
    vals: Vec<u64>,
}

impl DenseOutcomes {
    /// Whether plane lane `offset` of `result` provably refines input
    /// `index`'s cached source outcome. The tag order mirrors
    /// [`refutation`]: source UB admits anything, then target UB refutes,
    /// then the value-refinement lattice. `false` means *suspect* — the
    /// caller re-runs the lane through the full comparison, which stays
    /// authoritative for the verdict and the refutation descriptor.
    pub(crate) fn lane_refines(&self, index: usize, result: &PlaneResult, offset: usize) -> bool {
        match self.tags[index] {
            DENSE_SRC_UB => true,
            _ if result.is_ub(offset) => false,
            DENSE_POISON => true,
            DENSE_UNDEF => !result.is_poison(offset),
            _ => {
                !result.is_poison(offset)
                    && !result.is_undef(offset)
                    && result.raw(offset) == self.vals[index]
            }
        }
    }
}

/// Flattens fully materialized source outcomes into a [`DenseOutcomes`]
/// table, or `None` when the case's shape can't carry it (observable
/// allocations, non-scalar or void returns, integers wider than 64 bits).
/// Shared by the lazy [`SourceCache`] and the frozen snapshot so the two
/// plane tiers compare lanes identically.
pub(crate) fn dense_table<'o>(
    inputs: &[TestInput],
    outcomes: impl Iterator<Item = &'o SourceOutcome>,
) -> Option<DenseOutcomes> {
    if inputs.iter().any(|input| input.memory.allocation_count() != 0) {
        // Unreachable for plane-eligible signatures (scalar-integer params
        // generate no allocations), but the dense compare skips memory
        // refinement, so gate on it explicitly.
        return None;
    }
    let mut tags = Vec::with_capacity(inputs.len());
    let mut vals = Vec::with_capacity(inputs.len());
    for outcome in outcomes {
        let (tag, val) = match outcome {
            Err(_) => (DENSE_SRC_UB, 0),
            Ok((Some(EvalValue::Poison), _)) => (DENSE_POISON, 0),
            Ok((Some(EvalValue::Undef), _)) => (DENSE_UNDEF, 0),
            Ok((Some(EvalValue::Int(v)), _)) if v.width() <= 64 => {
                (DENSE_CONCRETE, v.zext_value() as u64)
            }
            _ => return None,
        };
        tags.push(tag);
        vals.push(val);
    }
    Some(DenseOutcomes { tags, vals })
}

impl<'a> SourceCache<'a> {
    /// Creates the cache for one source function. No inputs are generated and
    /// nothing is evaluated until the first [`verify`](Self::verify) call.
    pub fn new(src: &'a Function, config: TvConfig) -> Self {
        Self {
            src,
            config,
            compile_cache: None,
            inputs: OnceCell::new(),
            compiled_src: OnceCell::new(),
            outcomes: RefCell::new(Vec::new()),
            source_evals: Cell::new(0),
            candidates: Cell::new(0),
            probe_rejects: Cell::new(0),
            survivors: Cell::new(0),
            plane_sweeps: Cell::new(0),
            proved: Cell::new(0),
            absint_refuted: Cell::new(0),
            last_tier: Cell::new(None),
            src_abs: OnceCell::new(),
            tgt_abs: RefCell::new(FunctionAnalysis::default()),
            dense: RefCell::new(DenseState::NotBuilt),
            frozen: OnceCell::new(),
        }
    }

    /// Attaches a shared compiled-function cache: probe survivors are then
    /// compiled through it, so structurally identical candidates compile once
    /// per pool instead of once per verification.
    pub fn with_compile_cache(mut self, cache: &'a CompileCache) -> Self {
        self.compile_cache = Some(cache);
        self
    }

    /// The source function this cache verifies candidates against.
    pub fn source(&self) -> &'a Function {
        self.src
    }

    /// How many candidates were fully checked (signature errors excluded).
    pub fn candidates_checked(&self) -> usize {
        self.candidates.get()
    }

    /// Candidates refuted inside the probe window — they never paid a
    /// `CompiledFunction::compile`.
    pub fn probe_rejects(&self) -> usize {
        self.probe_rejects.get()
    }

    /// Candidates that survived the probe and went through compile (or a
    /// compile-cache hit) plus the batched sweep.
    pub fn survivors(&self) -> usize {
        self.survivors.get()
    }

    /// Survivors whose post-probe sweep ran on the type-specialized plane
    /// evaluator rather than the general batched interpreter. A subset of
    /// [`survivors`](Self::survivors); deterministic for a given case and
    /// candidate sequence.
    pub fn plane_sweeps(&self) -> usize {
        self.plane_sweeps.get()
    }

    /// Candidates accepted on an abstract proof certificate — they paid no
    /// probe, no compile and no sweep, and are *not* counted in
    /// [`survivors`](Self::survivors).
    pub fn proved(&self) -> usize {
        self.proved.get()
    }

    /// Candidates rejected on an abstract refutation certificate. Counted at
    /// certificate time on every entry point, so the total is identical
    /// whether the caller took the zero-evaluation shortcut
    /// ([`verify_outcome_only`](Self::verify_outcome_only)) or rendered a
    /// concrete counterexample; these are *not* counted in
    /// [`probe_rejects`](Self::probe_rejects).
    pub fn absint_refuted(&self) -> usize {
        self.absint_refuted.get()
    }

    /// Which tier decided the most recently verified candidate, or `None` if
    /// no candidate has been checked yet (or the last one was a signature
    /// error). Reference-path verifications don't touch it.
    pub fn last_tier(&self) -> Option<VerdictTier> {
        self.last_tier.get()
    }

    /// How many times the source function has been concretely evaluated.
    ///
    /// At most one evaluation per (case, input), independent of the candidate
    /// count; once any candidate has passed every input, this equals the
    /// input count exactly. Tests use this as the cache-hit oracle.
    pub fn source_eval_count(&self) -> usize {
        self.source_evals.get()
    }

    fn inputs(&self) -> &(Vec<TestInput>, bool) {
        self.inputs.get_or_init(|| {
            (generate_inputs(self.src, &self.config.inputs), is_exhaustive(self.src, &self.config.inputs))
        })
    }

    /// Fills the source outcome for input `index` if no earlier candidate
    /// reached it.
    fn ensure_outcome(&self, index: usize, total: usize, input: &TestInput, arena: &mut EvalArena) {
        let mut outcomes = self.outcomes.borrow_mut();
        if outcomes.len() != total {
            outcomes.resize_with(total, || None);
        }
        if outcomes[index].is_none() {
            let compiled = self.compiled_src.get_or_init(|| CompiledFunction::compile(self.src));
            self.source_evals.set(self.source_evals.get() + 1);
            outcomes[index] = Some(
                compiled
                    .evaluate_with_limit(arena, &input.args, input.memory.clone(), STEP_LIMIT)
                    .map(|o| (o.result, o.memory)),
            );
        }
    }

    /// The dense source-outcome table for plane-mode comparison, built the
    /// first time a plane sweep runs after every source outcome has been
    /// filled (one full survivor pass does that). Until then — and for
    /// shapes the dense form can't carry — returns `None` and the sweep
    /// materializes each lane through [`check_input`](Self::check_input),
    /// which keeps `source_eval_count` filling strictly in input order.
    fn dense_outcomes(&self) -> Option<Rc<DenseOutcomes>> {
        match &*self.dense.borrow() {
            DenseState::Built(table) => return Some(table.clone()),
            DenseState::Unavailable => return None,
            DenseState::NotBuilt => {}
        }
        let (inputs, _) = self.inputs();
        let total = inputs.len();
        // Each input is evaluated at most once, so the count hitting the
        // input total means every outcome slot is filled.
        if self.source_evals.get() != total {
            return None;
        }
        let outcomes = self.outcomes.borrow();
        let table =
            dense_table(inputs, outcomes.iter().map(|o| o.as_ref().expect("all outcomes filled")));
        drop(outcomes);
        match table {
            Some(table) => {
                let table = Rc::new(table);
                *self.dense.borrow_mut() = DenseState::Built(table.clone());
                Some(table)
            }
            None => {
                *self.dense.borrow_mut() = DenseState::Unavailable;
                None
            }
        }
    }

    /// Stage 3 on the plane evaluator: sweeps inputs `*index..total` in
    /// [`PLANE_LANES`] chunks through `plan`. Returns the verdict, or
    /// `None` if a chunk's inputs fall outside the plane domain — `*index`
    /// is then the first unswept input and the caller finishes on the
    /// batched path.
    fn sweep_planes(
        &self,
        plan: &PlanePlan,
        index: &mut usize,
        total: usize,
        exhaustive: bool,
        arena: &mut EvalArena,
    ) -> Option<StagedVerdict> {
        let dense = self.dense_outcomes();
        let mut counted = false;
        while *index < total {
            let start = *index;
            let end = (start + PLANE_LANES).min(total);
            let lanes: Vec<&[EvalValue]> =
                self.inputs().0[start..end].iter().map(|input| input.args.as_slice()).collect();
            let result = plan.evaluate_lanes(arena, &lanes, STEP_LIMIT)?;
            if !counted {
                counted = true;
                self.plane_sweeps.set(self.plane_sweeps.get() + 1);
            }
            for offset in 0..end - start {
                let lane_index = start + offset;
                // The dense table is a cheap pre-filter: a lane it clears is
                // proven refining; a lane it suspects goes through the full
                // comparison below, which stays authoritative for both the
                // verdict and the refutation descriptor.
                if let Some(table) = &dense {
                    if table.lane_refines(lane_index, &result, offset) {
                        continue;
                    }
                }
                let input = &self.inputs().0[lane_index];
                let tgt_out =
                    result.outcome(offset, input.memory.clone()).map(|o| (o.result, o.memory));
                if let Some(refutation) = self.check_input(lane_index, input, &tgt_out, arena) {
                    return Some(StagedVerdict::Refuted {
                        index: lane_index,
                        tgt_out,
                        refutation,
                    });
                }
            }
            *index = end;
        }
        Some(StagedVerdict::Correct { inputs_checked: total, exhaustive })
    }

    /// Signature compatibility: same parameter types (names may differ) and
    /// the same return type. A mismatch is a *fixable* error reported as
    /// feedback.
    fn signature_error(&self, tgt: &Function) -> Option<Verdict> {
        if self.src.params.len() != tgt.params.len()
            || self.src.params.iter().zip(&tgt.params).any(|(a, b)| a.ty != b.ty)
        {
            return Some(Verdict::Error(format!(
                "ERROR: program doesn't type check!\nsource signature:  {}\ntarget signature:  {}\nthe target function must take exactly the same parameters as the source",
                printer::signature(self.src),
                printer::signature(tgt)
            )));
        }
        if self.src.ret_ty != tgt.ret_ty {
            return Some(Verdict::Error(format!(
                "ERROR: program doesn't type check!\nsource returns {} but target returns {}",
                self.src.ret_ty, tgt.ret_ty
            )));
        }
        None
    }

    /// Compares one input's cached source outcome against a freshly computed
    /// target outcome, returning the cheap refutation descriptor.
    fn check_input(
        &self,
        index: usize,
        input: &TestInput,
        tgt_out: &TargetOutcome,
        arena: &mut EvalArena,
    ) -> Option<Refutation> {
        let total = self.inputs().0.len();
        self.ensure_outcome(index, total, input, arena);
        let outcomes = self.outcomes.borrow();
        let src_out = outcomes[index].as_ref().expect("outcome just ensured");
        refutation(input, src_out, tgt_out)
    }

    /// Runs a candidate through the abstract domains: the source analysis is
    /// computed once per case (and cached, including "out of fragment"), the
    /// candidate analyzes into a reusable scratch buffer. `None` when the
    /// tier is disabled, either side falls outside the straight-line
    /// scalar-int fragment, or the domains are inconclusive.
    fn absint_certificate(&self, tgt: &Function) -> Option<Certificate> {
        if !self.config.absint {
            return None;
        }
        let src_abs = self.src_abs.get_or_init(|| FunctionAnalysis::analyze(self.src)).as_ref()?;
        let mut tgt_abs = self.tgt_abs.borrow_mut();
        if !tgt_abs.run(tgt) {
            return None;
        }
        certificate(self.src, src_abs, tgt, &tgt_abs)
    }

    /// Stage 3a₀: the abstract pre-verification gate shared by both staged
    /// walks. A proof certificate yields the full-sweep `Correct` verdict
    /// (every input provably refines, so `inputs_checked` is the input
    /// total) with zero concrete evaluations. A refutation certificate is
    /// *counted* here — so the counter is path-independent — and either
    /// short-circuits (outcome-only callers) or returns `None` so the probe
    /// can refute concretely on the first input, which an abstract
    /// refutation guarantees is a counterexample.
    fn absint_prefilter(
        &self,
        tgt: &Function,
        abstract_refute_shortcut: bool,
    ) -> Option<StagedVerdict> {
        match self.absint_certificate(tgt)? {
            Certificate::Proved => {
                self.proved.set(self.proved.get() + 1);
                self.last_tier.set(Some(VerdictTier::Proved));
                let (inputs, exhaustive) = self.inputs();
                Some(StagedVerdict::Correct { inputs_checked: inputs.len(), exhaustive: *exhaustive })
            }
            Certificate::Refuted => {
                self.absint_refuted.set(self.absint_refuted.get() + 1);
                self.last_tier.set(Some(VerdictTier::RefutedAbstract));
                abstract_refute_shortcut.then_some(StagedVerdict::RefutedAbstract)
            }
        }
    }

    /// Records which tier decided the current candidate, unless the abstract
    /// gate already tagged it (an abstract refutation that fell through to a
    /// concrete probe/sweep rejection keeps its `RefutedAbstract` tag).
    fn settle_tier(&self, tier: VerdictTier) {
        if self.last_tier.get().is_none() {
            self.last_tier.set(Some(tier));
        }
    }

    /// The staged walk shared by [`verify_with`](Self::verify_with) and
    /// [`verify_outcome_only`](Self::verify_outcome_only): abstract gate →
    /// probe → lazy (cached) compile → batched sweep. On refutation it
    /// returns the failing input index, the target outcome and the
    /// refutation descriptor — everything needed to render the
    /// counterexample, without rendering it.
    fn verify_staged(
        &self,
        tgt: &Function,
        arena: &mut EvalArena,
        abstract_refute_shortcut: bool,
    ) -> Result<StagedVerdict, Verdict> {
        self.last_tier.set(None);
        if let Some(error) = self.signature_error(tgt) {
            return Err(error);
        }
        self.candidates.set(self.candidates.get() + 1);

        // Stage 3a₀: abstract pre-verification (see module docs).
        if let Some(verdict) = self.absint_prefilter(tgt, abstract_refute_shortcut) {
            return Ok(verdict);
        }

        let probe_n = {
            let (inputs, _) = self.inputs();
            self.config.probe_inputs.min(inputs.len())
        };

        // Stage 1: probe, no compile. Inputs are walked in the same order as
        // the reference path, so the refuting input (and the number of
        // source-side evaluations) is identical.
        for index in 0..probe_n {
            let input = &self.inputs().0[index];
            let tgt_out = evaluate_direct(tgt, arena, &input.args, input.memory.clone(), STEP_LIMIT)
                .map(|o| (o.result, o.memory));
            if let Some(refutation) = self.check_input(index, input, &tgt_out, arena) {
                // Abstractly-refuted candidates keep their certificate tag
                // and don't count as probe rejects: the probe only supplies
                // their diagnostic, it didn't decide them.
                if self.last_tier.get().is_none() {
                    self.probe_rejects.set(self.probe_rejects.get() + 1);
                    self.last_tier.set(Some(VerdictTier::RefutedConcrete));
                }
                return Ok(StagedVerdict::Refuted { index, tgt_out, refutation });
            }
        }

        let (inputs, exhaustive) = self.inputs();
        let (total, exhaustive) = (inputs.len(), *exhaustive);
        if probe_n == total {
            self.settle_tier(VerdictTier::Tested);
            return Ok(StagedVerdict::Correct { inputs_checked: total, exhaustive });
        }

        // Stage 2: the candidate survived the probe — compile it (once per
        // structural digest when a cache is attached).
        self.survivors.set(self.survivors.get() + 1);
        let cached;
        let owned;
        let compiled_tgt: &CompiledFunction = match self.compile_cache {
            Some(cache) => {
                cached = cache.get_or_compile(tgt);
                &cached
            }
            None => {
                owned = CompiledFunction::compile(tgt);
                &owned
            }
        };

        // Stage 3: sweep the remaining inputs. Target lanes are evaluated a
        // chunk at a time, but source outcomes are still filled (and
        // compared) strictly in input order, stopping at the first failure —
        // so `source_eval_count` matches the reference path even for
        // candidates refuted mid-sweep.
        let mut index = probe_n;

        // Stage 3a: candidates whose compiled form carries a `PlanePlan`
        // (straight-line, scalar-integer, memory-free) sweep over native
        // `u64` register planes. Any input outside the plane domain drops
        // to the batched path below at the first unswept chunk.
        if self.config.plane_sweep {
            if let Some(plan) = compiled_tgt.plane() {
                if let Some(verdict) =
                    self.sweep_planes(plan, &mut index, total, exhaustive, arena)
                {
                    self.settle_tier(match &verdict {
                        StagedVerdict::Correct { .. } => VerdictTier::Tested,
                        _ => VerdictTier::RefutedConcrete,
                    });
                    return Ok(verdict);
                }
            }
        }

        // Stage 3b: general batched sweep.
        while index < total {
            let end = (index + SWEEP_LANES).min(total);
            let lanes: Vec<(&[EvalValue], Memory)> = self.inputs().0[index..end]
                .iter()
                .map(|input| (input.args.as_slice(), input.memory.clone()))
                .collect();
            let lane_outs = compiled_tgt.evaluate_batch_with_limit(arena, lanes, STEP_LIMIT);
            for (offset, lane_out) in lane_outs.into_iter().enumerate() {
                let input = &self.inputs().0[index + offset];
                let tgt_out = lane_out.map(|o| (o.result, o.memory));
                if let Some(refutation) = self.check_input(index + offset, input, &tgt_out, arena)
                {
                    self.settle_tier(VerdictTier::RefutedConcrete);
                    return Ok(StagedVerdict::Refuted { index: index + offset, tgt_out, refutation });
                }
            }
            index = end;
        }
        self.settle_tier(VerdictTier::Tested);
        Ok(StagedVerdict::Correct { inputs_checked: total, exhaustive })
    }

    /// Checks whether `tgt` refines the cached source on the **staged**
    /// checker, reusing `arena`'s register file for every evaluation:
    ///
    /// 1. the first [`TvConfig::probe_inputs`] inputs run on the direct
    ///    (uncompiled) evaluator — most wrong candidates die here for the
    ///    cost of a few interpreter calls;
    /// 2. survivors are compiled, through the attached [`CompileCache`] when
    ///    present;
    /// 3. the remaining inputs are swept in 32-input batches through one
    ///    walk of the decoded step list.
    ///
    /// Verdicts are bit-identical to [`verify_reference`](Self::verify_reference),
    /// and the source side is still evaluated at most once per input, in
    /// input order, stopping at the first counterexample.
    pub fn verify_with(&self, tgt: &Function, arena: &mut EvalArena) -> Verdict {
        let staged = self.verify_staged(tgt, arena, false);
        self.render_staged(staged)
    }

    /// Renders a staged conclusion into the public [`Verdict`], building the
    /// Alive2-style counterexample only when a candidate was actually
    /// refuted. The refuting input's source outcome is always present: the
    /// probe ensures it lazily, and the sharded sweep runs against a frozen
    /// case whose construction filled every outcome.
    fn render_staged(&self, staged: Result<StagedVerdict, Verdict>) -> Verdict {
        match staged {
            Err(error) => error,
            Ok(StagedVerdict::Correct { inputs_checked, exhaustive }) => {
                Verdict::Correct { inputs_checked, exhaustive }
            }
            Ok(StagedVerdict::RefutedAbstract) => {
                unreachable!("shortcut verdicts only arise on the outcome-only entry points")
            }
            Ok(StagedVerdict::Refuted { index, tgt_out, refutation }) => {
                let input = &self.inputs().0[index];
                let outcomes = self.outcomes.borrow();
                let src_out = outcomes[index].as_ref().expect("refuting input was ensured");
                Verdict::Incorrect(build_counterexample(
                    self.src, input, src_out, &tgt_out, refutation,
                ))
            }
        }
    }

    /// The frozen, `Arc`-shared snapshot of this case (see
    /// [`FrozenCase`]), built once on first use: any source inputs no
    /// candidate has reached yet are evaluated **in input order** to fill the
    /// outcome table, so after this call [`source_eval_count`](Self::source_eval_count)
    /// equals the input count.
    pub fn frozen_case(&self, arena: &mut EvalArena) -> FrozenCase {
        if let Some(frozen) = self.frozen.get() {
            return frozen.clone();
        }
        let (inputs, exhaustive) = self.inputs();
        let total = inputs.len();
        for (index, input) in inputs.iter().enumerate() {
            self.ensure_outcome(index, total, input, arena);
        }
        let outcomes: Vec<SourceOutcome> =
            self.outcomes.borrow().iter().map(|o| o.clone().expect("just filled")).collect();
        let frozen = FrozenCase::from_parts(
            self.src.clone(),
            inputs.clone(),
            *exhaustive,
            outcomes,
            self.config.plane_sweep,
            self.config.probe_inputs,
        );
        self.frozen.get_or_init(|| frozen).clone()
    }

    /// The staged walk with a *sharded* Stage 3: probe and lazy compile
    /// exactly as [`verify_staged`](Self::verify_staged), then the survivor
    /// sweep is split into `shard_size`-input [`SweepShard`]s handed to
    /// `driver`. The ordered merge takes the first executed shard with a
    /// finding, which the cancellation contract (see [`crate::frozen`])
    /// proves is the serial-first refuting input — verdicts and
    /// counterexamples are identical to the serial sweep for every driver,
    /// shard size and worker count.
    ///
    /// Two counters diverge from the lazy path, deterministically so:
    /// freezing the case fills **all** source outcomes up front (so
    /// `source_eval_count` jumps to the input total on the first survivor),
    /// and `plane_sweeps` reflects whether the survivor's *first* shard used
    /// the plane evaluator (the serial path's flag covers the whole sweep).
    fn verify_staged_sharded(
        &self,
        tgt: &Function,
        arena: &mut EvalArena,
        driver: &dyn SweepDriver,
        shard_size: usize,
        abstract_refute_shortcut: bool,
    ) -> Result<StagedVerdict, Verdict> {
        self.last_tier.set(None);
        if let Some(error) = self.signature_error(tgt) {
            return Err(error);
        }
        self.candidates.set(self.candidates.get() + 1);

        // Stage 3a₀: abstract pre-verification, identical to the serial path.
        if let Some(verdict) = self.absint_prefilter(tgt, abstract_refute_shortcut) {
            return Ok(verdict);
        }

        let probe_n = {
            let (inputs, _) = self.inputs();
            self.config.probe_inputs.min(inputs.len())
        };
        // Stage 1: probe, identical to the serial path (lazy outcomes, input
        // order), so probe rejects cost the same few source evaluations.
        for index in 0..probe_n {
            let input = &self.inputs().0[index];
            let tgt_out = evaluate_direct(tgt, arena, &input.args, input.memory.clone(), STEP_LIMIT)
                .map(|o| (o.result, o.memory));
            if let Some(refutation) = self.check_input(index, input, &tgt_out, arena) {
                if self.last_tier.get().is_none() {
                    self.probe_rejects.set(self.probe_rejects.get() + 1);
                    self.last_tier.set(Some(VerdictTier::RefutedConcrete));
                }
                return Ok(StagedVerdict::Refuted { index, tgt_out, refutation });
            }
        }

        let (inputs, exhaustive) = self.inputs();
        let (total, exhaustive) = (inputs.len(), *exhaustive);
        if probe_n == total {
            self.settle_tier(VerdictTier::Tested);
            return Ok(StagedVerdict::Correct { inputs_checked: total, exhaustive });
        }

        // Stage 2: compile the survivor (shared cache when attached).
        self.survivors.set(self.survivors.get() + 1);
        let compiled_tgt: Arc<CompiledFunction> = match self.compile_cache {
            Some(cache) => cache.get_or_compile(tgt),
            None => Arc::new(CompiledFunction::compile(tgt)),
        };

        // Stage 3: decompose `[probe_n, total)` into shards and let the
        // driver schedule them.
        let frozen = self.frozen_case(arena);
        let shard_size = shard_size.max(1);
        let mut shards = Vec::with_capacity((total - probe_n).div_ceil(shard_size));
        let mut start = probe_n;
        while start < total {
            let end = total.min(start.saturating_add(shard_size));
            shards.push(SweepShard::new(frozen.clone(), compiled_tgt.clone(), start, end));
            start = end;
        }
        let slots = driver.drive(shards, arena);

        // Shard 0 is never cancelled (cancellation needs an earlier refuting
        // shard), so this flag is deterministic for a given shard size.
        if let Some(SweepSlot::Executed(out)) = slots.first() {
            if out.used_plane {
                self.plane_sweeps.set(self.plane_sweeps.get() + 1);
            }
        }
        for slot in slots {
            if let SweepSlot::Executed(out) = slot {
                if let Some(finding) = out.finding {
                    self.settle_tier(VerdictTier::RefutedConcrete);
                    return Ok(StagedVerdict::Refuted {
                        index: finding.index,
                        tgt_out: finding.tgt_out,
                        refutation: finding.refutation,
                    });
                }
            }
        }
        self.settle_tier(VerdictTier::Tested);
        Ok(StagedVerdict::Correct { inputs_checked: total, exhaustive })
    }

    /// [`verify_with`](Self::verify_with) with the survivor sweep sharded
    /// across `driver` in `shard_size`-input units. Verdicts and
    /// counterexamples are bit-identical to [`verify_with`](Self::verify_with)
    /// for every driver, shard size and worker count.
    pub fn verify_with_driver(
        &self,
        tgt: &Function,
        arena: &mut EvalArena,
        driver: &dyn SweepDriver,
        shard_size: usize,
    ) -> Verdict {
        let staged = self.verify_staged_sharded(tgt, arena, driver, shard_size, false);
        self.render_staged(staged)
    }

    /// [`verify_outcome_only`](Self::verify_outcome_only) with a sharded
    /// survivor sweep: the accept/reject bit without any counterexample
    /// rendering.
    pub fn verify_outcome_only_driver(
        &self,
        tgt: &Function,
        arena: &mut EvalArena,
        driver: &dyn SweepDriver,
        shard_size: usize,
    ) -> bool {
        matches!(
            self.verify_staged_sharded(tgt, arena, driver, shard_size, true),
            Ok(StagedVerdict::Correct { .. })
        )
    }

    /// [`verify_with`](Self::verify_with) minus the diagnostic: returns
    /// exactly `verify_with(tgt, arena).is_correct()` but never renders a
    /// counterexample — signature errors and refutations are both `false`.
    ///
    /// Refuted candidates are the bulk of verification traffic, and for
    /// enumerative callers (the Souper baseline explores up to
    /// `candidate_budget` candidates per case, Minotaur its template set)
    /// the counterexample is discarded; on tiny peephole functions its
    /// rendering costs more than the refuting evaluation itself, so this
    /// entry point is the hot path for accept/reject-only verification.
    pub fn verify_outcome_only(&self, tgt: &Function, arena: &mut EvalArena) -> bool {
        matches!(self.verify_staged(tgt, arena, true), Ok(StagedVerdict::Correct { .. }))
    }

    /// Checks `tgt` on the retained pre-staging path: unconditional compile,
    /// serial sweep from the first input. The staged checker is proven
    /// outcome-identical against this.
    pub fn verify_reference(&self, tgt: &Function, arena: &mut EvalArena) -> Verdict {
        if let Some(error) = self.signature_error(tgt) {
            return error;
        }
        let (inputs, exhaustive) = self.inputs();
        let compiled_tgt = CompiledFunction::compile(tgt);
        for (index, input) in inputs.iter().enumerate() {
            self.ensure_outcome(index, inputs.len(), input, arena);
            let outcomes = self.outcomes.borrow();
            let src_out = outcomes[index].as_ref().expect("outcome just ensured");
            if let Some(cex) = check_one(self.src, &compiled_tgt, input, src_out, arena) {
                return Verdict::Incorrect(cex);
            }
        }
        Verdict::Correct { inputs_checked: inputs.len(), exhaustive: *exhaustive }
    }

    /// [`verify_with`](Self::verify_with) on a fresh throwaway arena.
    pub fn verify(&self, tgt: &Function) -> Verdict {
        self.verify_with(tgt, &mut EvalArena::new())
    }
}

fn is_exhaustive(func: &Function, config: &InputConfig) -> bool {
    let mut bits = 0u32;
    for p in &func.params {
        match &p.ty {
            lpo_ir::types::Type::Int(w) => bits += w,
            lpo_ir::types::Type::Vector(n, e) => match e.as_ref() {
                lpo_ir::types::Type::Int(w) => bits += n * w,
                _ => return false,
            },
            _ => return false,
        }
    }
    bits <= config.exhaustive_bits
}

fn describe_args(func: &Function, input: &TestInput) -> Vec<(String, String)> {
    func.params
        .iter()
        .zip(&input.args)
        .map(|(p, v)| {
            let shown = if p.ty.is_ptr() {
                match v.as_ptr().and_then(|ptr| input.memory.allocation(ptr.alloc)) {
                    Some(alloc) => format!(
                        "&mem [{}]",
                        alloc.bytes()[..8.min(alloc.size())]
                            .iter()
                            .map(|b| format!("{b:#04x}"))
                            .collect::<Vec<_>>()
                            .join(" ")
                    ),
                    None => "null".to_string(),
                }
            } else {
                v.to_string()
            };
            (format!("{} %{}", p.ty, p.name), shown)
        })
        .collect()
}

fn describe_outcome(result: &SourceOutcome) -> String {
    match result {
        Err(ub) => format!("function exhibits undefined behaviour: {}", ub.message),
        Ok((None, _)) => "returns void".to_string(),
        Ok((Some(v), _)) => format!("ret {v}"),
    }
}

/// Checks a single input against the cached source outcome on the reference
/// path: evaluate the compiled target serially, then compare.
fn check_one(
    src: &Function,
    compiled_tgt: &CompiledFunction,
    input: &TestInput,
    src_out: &SourceOutcome,
    arena: &mut EvalArena,
) -> Option<Counterexample> {
    let tgt_out = compiled_tgt
        .evaluate_with_limit(arena, &input.args, input.memory.clone(), STEP_LIMIT)
        .map(|o| (o.result, o.memory));
    refinement_failure(src, input, src_out, &tgt_out)
}

/// Why a target outcome fails to refine the source outcome on one input —
/// the *detection* half of a refutation, cheap to produce (no formatting, no
/// allocation). [`build_counterexample`] renders it into the Alive2-style
/// [`Counterexample`] when a caller actually wants the diagnostic; hot
/// callers that only need the verdict bit
/// ([`SourceCache::verify_outcome_only`]) skip the rendering entirely.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Refutation {
    /// Target exhibits UB where the source is defined.
    TargetUb,
    /// One side returns a value, the other `void`.
    ReturnShapeMismatch,
    /// Return-value refinement failed, with the reason label.
    Value(&'static str),
    /// A target memory byte is poison where the source byte is concrete.
    MemoryPoison { alloc: usize, byte: usize },
    /// A target memory byte differs from the source byte.
    MemoryByte { alloc: usize, byte: usize, src: u8, tgt: u8 },
}

/// The refinement comparison itself: one input's cached source outcome
/// against a target outcome from any of the three evaluators. Returns the
/// cheap refutation descriptor on failure.
pub(crate) fn refutation(
    input: &TestInput,
    src_out: &SourceOutcome,
    tgt_out: &TargetOutcome,
) -> Option<Refutation> {
    // Source UB ⇒ any target behaviour is fine.
    let (src_ret, src_mem) = match src_out {
        Err(_) => return None,
        Ok(pair) => pair,
    };
    let (tgt_ret, tgt_mem) = match tgt_out {
        Err(_) => return Some(Refutation::TargetUb),
        Ok(pair) => pair,
    };

    // Return value refinement.
    match (src_ret, tgt_ret) {
        (None, None) => {}
        (Some(s), Some(t)) => {
            if let Some(reason) = value_refinement_failure(s, t) {
                return Some(Refutation::Value(reason));
            }
        }
        _ => return Some(Refutation::ReturnShapeMismatch),
    }

    // Memory refinement over the allocations that existed before execution
    // (allocas created inside the functions are not observable).
    let observable = input.memory.allocation_count();
    for alloc_id in 0..observable {
        let initial = input.memory.allocation(alloc_id).expect("input allocation");
        let s_alloc = src_mem.allocation(alloc_id);
        let t_alloc = tgt_mem.allocation(alloc_id);
        let (s_alloc, t_alloc) = match (s_alloc, t_alloc) {
            (Some(a), Some(b)) => (a, b),
            _ => continue,
        };
        for i in 0..initial.size() {
            let s_poison = s_alloc.poison_mask().get(i).copied().unwrap_or(false);
            let t_poison = t_alloc.poison_mask().get(i).copied().unwrap_or(false);
            let s_byte = s_alloc.bytes().get(i).copied().unwrap_or(0);
            let t_byte = t_alloc.bytes().get(i).copied().unwrap_or(0);
            if s_poison {
                continue; // source byte is poison: anything refines it
            }
            if t_poison {
                return Some(Refutation::MemoryPoison { alloc: alloc_id, byte: i });
            }
            if s_byte != t_byte {
                return Some(Refutation::MemoryByte {
                    alloc: alloc_id,
                    byte: i,
                    src: s_byte,
                    tgt: t_byte,
                });
            }
        }
    }
    None
}

/// Renders a [`Refutation`] into the Alive2-style counterexample the LPO
/// feedback loop sends back to the model.
pub(crate) fn build_counterexample(
    src: &Function,
    input: &TestInput,
    src_out: &SourceOutcome,
    tgt_out: &TargetOutcome,
    refutation: Refutation,
) -> Counterexample {
    let cex = |reason: &str, tgt_desc: String| Counterexample {
        reason: reason.to_string(),
        args: describe_args(src, input),
        src_behaviour: describe_outcome(src_out),
        tgt_behaviour: tgt_desc,
    };
    match refutation {
        Refutation::TargetUb => {
            let message = match tgt_out {
                Err(ub) => &ub.message,
                Ok(_) => unreachable!("TargetUb refutation from a defined target"),
            };
            cex(
                "Source is guaranteed to be defined, but target is not",
                format!("function exhibits undefined behaviour: {message}"),
            )
        }
        Refutation::ReturnShapeMismatch => {
            let tgt_ret = tgt_out.as_ref().ok().and_then(|(v, _)| v.as_ref());
            cex(
                "Value mismatch",
                format!(
                    "returns {}",
                    tgt_ret.map(|v| v.to_string()).unwrap_or_else(|| "void".into())
                ),
            )
        }
        Refutation::Value(reason) => {
            let tgt_ret = tgt_out.as_ref().ok().and_then(|(v, _)| v.as_ref());
            cex(
                reason,
                format!("ret {}", tgt_ret.expect("value refutation implies a returned value")),
            )
        }
        Refutation::MemoryPoison { alloc, byte } => cex(
            "Mismatch in memory",
            format!("memory byte {byte} of allocation #{alloc} is poison in the target"),
        ),
        Refutation::MemoryByte { alloc, byte, src: s_byte, tgt: t_byte } => cex(
            "Mismatch in memory",
            format!(
                "memory byte {byte} of allocation #{alloc}: source wrote {s_byte:#04x}, target wrote {t_byte:#04x}"
            ),
        ),
    }
}

/// Detection + rendering in one step, for the reference path.
fn refinement_failure(
    src: &Function,
    input: &TestInput,
    src_out: &SourceOutcome,
    tgt_out: &TargetOutcome,
) -> Option<Counterexample> {
    refutation(input, src_out, tgt_out)
        .map(|r| build_counterexample(src, input, src_out, tgt_out, r))
}

/// Returns a failure reason if `tgt` does not refine `src` as a value.
fn value_refinement_failure(src: &EvalValue, tgt: &EvalValue) -> Option<&'static str> {
    match (src, tgt) {
        (EvalValue::Vector(s), EvalValue::Vector(t)) => {
            if s.len() != t.len() {
                return Some("Value mismatch");
            }
            for (a, b) in s.iter().zip(t) {
                if let Some(r) = value_refinement_failure(a, b) {
                    return Some(r);
                }
            }
            None
        }
        (EvalValue::Poison, _) => None,
        (EvalValue::Undef, EvalValue::Poison) => Some("Target is more poisonous than source"),
        (EvalValue::Undef, _) => None,
        (_, EvalValue::Poison) => Some("Target is more poisonous than source"),
        (_, EvalValue::Undef) => Some("Target is more undefined than source"),
        (s, t) => {
            if s.same_as(t) {
                None
            } else {
                Some("Value mismatch")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    fn check(src: &str, tgt: &str) -> Verdict {
        let s = parse_function(src).unwrap();
        let t = parse_function(tgt).unwrap();
        verify_refinement(&s, &t)
    }

    #[test]
    fn accepts_the_paper_clamp_optimization() {
        // Figure 1b → 1c.
        let verdict = check(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
            "define i8 @tgt(i32 %0) {\n\
             %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
             %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             ret i8 %4\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
    }

    #[test]
    fn rejects_a_wrong_clamp_rewrite() {
        // Dropping the negative clamp changes behaviour for x < 0.
        let verdict = check(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
            "define i8 @tgt(i32 %0) {\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc i32 %3 to i8\n\
             ret i8 %4\n}",
        );
        let cex = verdict.counterexample().expect("must be incorrect");
        assert_eq!(cex.reason, "Value mismatch");
        let rendered = cex.to_string();
        assert!(rendered.contains("Transformation doesn't verify!"));
        assert!(rendered.contains("Example:"));
        assert!(rendered.contains("Source:"));
        assert!(rendered.contains("Target:"));
    }

    #[test]
    fn rejects_added_poison() {
        // Claiming nuw on an add that can wrap makes the target more poisonous.
        let verdict = check(
            "define i8 @src(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}",
            "define i8 @tgt(i8 %x) {\n %r = add nuw i8 %x, 1\n ret i8 %r\n}",
        );
        let cex = verdict.counterexample().expect("must be incorrect");
        assert_eq!(cex.reason, "Target is more poisonous than source");
        // The reverse direction (dropping the flag) is a valid refinement.
        let verdict = check(
            "define i8 @src(i8 %x) {\n %r = add nuw i8 %x, 1\n ret i8 %r\n}",
            "define i8 @tgt(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}",
        );
        assert!(verdict.is_correct());
    }

    #[test]
    fn rejects_added_ub() {
        let verdict = check(
            "define i32 @src(i32 %x, i32 %y) {\n %r = add i32 %x, %y\n ret i32 %r\n}",
            "define i32 @tgt(i32 %x, i32 %y) {\n %d = udiv i32 %x, %y\n %r = add i32 %x, %y\n ret i32 %r\n}",
        );
        let cex = verdict.counterexample().expect("must be incorrect");
        assert!(cex.reason.contains("guaranteed to be defined"));
    }

    #[test]
    fn accepts_ub_refinement() {
        // Source divides (UB when %y == 0); target returns a constant. Every
        // defined source behaviour (x/x == 1 for x != 0 … well, only when x==y)
        // must still match, so use x/x to keep it simple.
        let verdict = check(
            "define i32 @src(i32 %x) {\n %r = udiv i32 %x, %x\n ret i32 %r\n}",
            "define i32 @tgt(i32 %x) {\n ret i32 1\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
        // The reverse is NOT correct: target would introduce UB at %x == 0.
        let verdict = check(
            "define i32 @src(i32 %x) {\n ret i32 1\n}",
            "define i32 @tgt(i32 %x) {\n %r = udiv i32 %x, %x\n ret i32 %r\n}",
        );
        assert!(!verdict.is_correct());
    }

    #[test]
    fn signature_mismatch_is_a_fixable_error() {
        let verdict = check(
            "define i32 @src(i32 %x) {\n ret i32 %x\n}",
            "define i32 @tgt(i32 %x, i32 %y) {\n ret i32 %x\n}",
        );
        match verdict {
            Verdict::Error(msg) => assert!(msg.contains("type check")),
            other => panic!("expected an error verdict, got {other:?}"),
        }
        let verdict = check(
            "define i32 @src(i32 %x) {\n ret i32 %x\n}",
            "define i64 @tgt(i32 %x) {\n %r = zext i32 %x to i64\n ret i64 %r\n}",
        );
        assert!(matches!(verdict, Verdict::Error(_)));
    }

    #[test]
    fn memory_effects_are_compared() {
        // Source stores 1; a target that stores 2 must be rejected,
        // a target that stores 1 through an equivalent computation accepted.
        let src = "define void @src(ptr %p) {\n store i32 1, ptr %p, align 4\n ret void\n}";
        let good = "define void @tgt(ptr %p) {\n %v = add i32 0, 1\n store i32 %v, ptr %p, align 4\n ret void\n}";
        let bad = "define void @tgt(ptr %p) {\n store i32 2, ptr %p, align 4\n ret void\n}";
        assert!(check(src, good).is_correct());
        let verdict = check(src, bad);
        assert_eq!(verdict.counterexample().unwrap().reason, "Mismatch in memory");
    }

    #[test]
    fn accepts_load_widening_case_study_1() {
        let verdict = check(
            "define i32 @src(ptr %0) {\n\
             %2 = load i16, ptr %0, align 2\n\
             %3 = getelementptr i8, ptr %0, i64 2\n\
             %4 = load i16, ptr %3, align 1\n\
             %5 = zext i16 %4 to i32\n\
             %6 = shl nuw i32 %5, 16\n\
             %7 = zext i16 %2 to i32\n\
             %8 = or disjoint i32 %6, %7\n\
             ret i32 %8\n}",
            "define i32 @tgt(ptr %0) {\n %2 = load i32, ptr %0, align 2\n ret i32 %2\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
    }

    #[test]
    fn accepts_redundant_umax_removal_case_study_2() {
        let verdict = check(
            "define i8 @src(i8 %0) {\n\
             %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)\n\
             %3 = shl nuw i8 %2, 1\n\
             %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)\n\
             ret i8 %4\n}",
            "define i8 @tgt(i8 %0) {\n\
             %2 = shl nuw i8 %0, 1\n\
             %3 = call i8 @llvm.umax.i8(i8 %2, i8 16)\n\
             ret i8 %3\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
    }

    #[test]
    fn accepts_fcmp_simplification_case_study_3() {
        let verdict = check(
            "define i1 @src(double %0) {\n\
             %2 = fcmp ord double %0, 0.000000e+00\n\
             %3 = select i1 %2, double %0, double 0.000000e+00\n\
             %4 = fcmp oeq double %3, 1.000000e+00\n\
             ret i1 %4\n}",
            "define i1 @tgt(double %0) {\n %2 = fcmp oeq double %0, 1.000000e+00\n ret i1 %2\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
    }

    #[test]
    fn rejects_vector_lane_errors() {
        let verdict = check(
            "define <4 x i8> @src(<4 x i8> %x) {\n\
             %r = add <4 x i8> %x, splat (i8 1)\n ret <4 x i8> %r\n}",
            "define <4 x i8> @tgt(<4 x i8> %x) {\n\
             %r = add <4 x i8> %x, <i8 1, i8 1, i8 2, i8 1>\n ret <4 x i8> %r\n}",
        );
        assert!(!verdict.is_correct());
        let verdict = check(
            "define <4 x i8> @src(<4 x i8> %x) {\n\
             %r = add <4 x i8> %x, splat (i8 1)\n ret <4 x i8> %r\n}",
            "define <4 x i8> @tgt(<4 x i8> %x) {\n\
             %r = sub <4 x i8> %x, splat (i8 -1)\n ret <4 x i8> %r\n}",
        );
        assert!(verdict.is_correct());
    }

    #[test]
    fn equivalence_helper() {
        let v = Validator::new();
        let a = parse_function("define i32 @a(i32 %x) {\n %r = mul i32 %x, 2\n ret i32 %r\n}").unwrap();
        let b = parse_function("define i32 @b(i32 %x) {\n %r = shl i32 %x, 1\n ret i32 %r\n}").unwrap();
        let c = parse_function("define i32 @c(i32 %x) {\n %r = shl nuw i32 %x, 1\n ret i32 %r\n}").unwrap();
        assert!(v.equivalent(&a, &b));
        // c is a refinement target of neither direction being equal: a ⇒ c adds poison.
        assert!(!v.equivalent(&a, &c));
        assert!(v.verify(&c, &a).is_correct());
    }

    #[test]
    fn source_cache_evaluates_the_source_once_per_input() {
        let src = parse_function(
            "define i8 @src(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}",
        )
        .unwrap();
        let candidates = [
            "define i8 @tgt(i8 %x) {\n %r = sub i8 %x, -1\n ret i8 %r\n}",
            "define i8 @tgt(i8 %x) {\n %r = add i8 %x, 2\n ret i8 %r\n}", // wrong
            "define i8 @tgt(i8 %x) {\n %r = add nuw i8 %x, 1\n ret i8 %r\n}", // more poisonous
            "define i8 @tgt(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}",
        ];
        let cache = SourceCache::new(&src, TvConfig::default());
        assert_eq!(cache.source_eval_count(), 0, "lazy until the first verify");
        let mut arena = EvalArena::new();

        // Outcomes fill lazily per input: a candidate rejected on the very
        // first input (src(0) = 1, this tgt(0) = 2) costs one source
        // evaluation, not the whole 256-input sweep.
        let early = parse_function("define i8 @tgt(i8 %x) {\n %r = add i8 %x, 2\n ret i8 %r\n}").unwrap();
        assert!(!cache.verify_with(&early, &mut arena).is_correct());
        assert_eq!(cache.source_eval_count(), 1);
        let cached: Vec<Verdict> = candidates
            .iter()
            .map(|t| cache.verify_with(&parse_function(t).unwrap(), &mut arena))
            .collect();
        // i8 signature → 256 exhaustive inputs, each evaluated exactly once on
        // the source side no matter how many candidates were checked.
        assert_eq!(cache.source_eval_count(), 256);

        // Cached verdicts are identical to the uncached one-shot path.
        for (text, verdict) in candidates.iter().zip(&cached) {
            let uncached = verify_refinement(&src, &parse_function(text).unwrap());
            assert_eq!(*verdict, uncached, "cached verdict diverged for {text}");
        }
        assert!(cached[0].is_correct());
        assert_eq!(cached[1].counterexample().unwrap().reason, "Value mismatch");
        assert_eq!(
            cached[2].counterexample().unwrap().reason,
            "Target is more poisonous than source"
        );
        assert!(cached[3].is_correct());

        // A signature mismatch is rejected before any evaluation happens.
        let other = parse_function("define i8 @tgt(i16 %x) {\n %r = trunc i16 %x to i8\n ret i8 %r\n}").unwrap();
        assert!(matches!(cache.verify_with(&other, &mut arena), Verdict::Error(_)));
        assert_eq!(cache.source_eval_count(), 256);
    }

    #[test]
    fn staged_counters_split_probe_rejects_from_survivors() {
        let src = parse_function("define i8 @s(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").unwrap();
        let wrong = parse_function("define i8 @t(i8 %x) {\n %r = add i8 %x, 2\n ret i8 %r\n}").unwrap();
        let right = parse_function("define i8 @t(i8 %x) {\n %r = sub i8 %x, -1\n ret i8 %r\n}").unwrap();
        let case = SourceCache::new(&src, TvConfig::default());
        let mut arena = EvalArena::new();

        assert!(!case.verify_with(&wrong, &mut arena).is_correct());
        assert_eq!((case.probe_rejects(), case.survivors()), (1, 0));
        // The wrong candidate died on input 0: one source eval, no compile.
        assert_eq!(case.source_eval_count(), 1);

        assert!(case.verify_with(&right, &mut arena).is_correct());
        assert_eq!((case.probe_rejects(), case.survivors()), (1, 1));
        assert_eq!(case.candidates_checked(), 2);
        assert_eq!(case.source_eval_count(), 256);

        // Signature errors never count as checked candidates.
        let other = parse_function("define i8 @t(i16 %x) {\n %r = trunc i16 %x to i8\n ret i8 %r\n}").unwrap();
        assert!(matches!(case.verify_with(&other, &mut arena), Verdict::Error(_)));
        assert_eq!(case.candidates_checked(), 2);
    }

    #[test]
    fn probe_window_extremes_agree_with_the_reference() {
        let src = parse_function("define i8 @s(i8 %x) {\n %r = mul i8 %x, 2\n ret i8 %r\n}").unwrap();
        let candidates = [
            "define i8 @t(i8 %x) {\n %r = shl i8 %x, 1\n ret i8 %r\n}",
            "define i8 @t(i8 %x) {\n %r = shl i8 %x, 2\n ret i8 %r\n}",
        ];
        for text in candidates {
            let tgt = parse_function(text).unwrap();
            let reference = verify_refinement_reference(&src, &tgt, &TvConfig::default());
            for probe in [0usize, 1, 255, 256, usize::MAX] {
                let config = TvConfig { probe_inputs: probe, ..TvConfig::default() };
                assert_eq!(
                    verify_refinement_with(&src, &tgt, &config),
                    reference,
                    "probe {probe} diverged for {text}"
                );
            }
        }
    }

    #[test]
    fn sharded_sweep_matches_serial_for_every_shard_size() {
        use crate::frozen::SerialDriver;
        let src = parse_function("define i8 @s(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").unwrap();
        let candidates = [
            // Correct (full sweep, no finding).
            "define i8 @t(i8 %x) {\n %r = sub i8 %x, -1\n ret i8 %r\n}",
            // Refuted inside the probe window.
            "define i8 @t(i8 %x) {\n %r = add i8 %x, 2\n ret i8 %r\n}",
            // Refuted mid-sweep: wrong only for negative inputs (index 128+).
            "define i8 @t(i8 %x) {\n %c = icmp slt i8 %x, 0\n %a = add i8 %x, 1\n %b = add i8 %x, 2\n %r = select i1 %c, i8 %b, i8 %a\n ret i8 %r\n}",
            // More poisonous survivor.
            "define i8 @t(i8 %x) {\n %r = add nuw i8 %x, 1\n ret i8 %r\n}",
            // Signature error.
            "define i8 @t(i16 %x) {\n %r = trunc i16 %x to i8\n ret i8 %r\n}",
        ];
        let mut arena = EvalArena::new();
        for plane_sweep in [true, false] {
            let config = TvConfig { plane_sweep, ..TvConfig::default() };
            for text in candidates {
                let tgt = parse_function(text).unwrap();
                let serial_case = SourceCache::new(&src, config.clone());
                let serial = serial_case.verify_with(&tgt, &mut arena);
                for shard_size in [1usize, 7, 256, usize::MAX] {
                    let case = SourceCache::new(&src, config.clone());
                    let sharded =
                        case.verify_with_driver(&tgt, &mut arena, &SerialDriver, shard_size);
                    assert_eq!(
                        sharded, serial,
                        "shard size {shard_size} (plane {plane_sweep}) diverged for {text}"
                    );
                    assert_eq!(
                        case.verify_outcome_only_driver(&tgt, &mut arena, &SerialDriver, shard_size),
                        serial.is_correct(),
                        "outcome-only diverged at shard size {shard_size} for {text}"
                    );
                }
            }
        }
    }

    #[test]
    fn compile_cache_serves_structural_twins() {
        let cache = CompileCache::new();
        assert!(cache.is_empty());
        let a = parse_function("define i8 @a(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}").unwrap();
        let b = parse_function("define i8 @b(i8 %y) {\n %q = add i8 %y, 1\n ret i8 %q\n}").unwrap();
        let c = parse_function("define i8 @c(i8 %x) {\n %r = add i8 %x, 3\n ret i8 %r\n}").unwrap();
        let first = cache.get_or_compile(&a);
        let twin = cache.get_or_compile(&b);
        assert!(Arc::ptr_eq(&first, &twin), "structural twins must share one compile");
        let other = cache.get_or_compile(&c);
        assert!(!Arc::ptr_eq(&first, &other));
        assert_eq!((cache.hits(), cache.misses(), cache.len()), (1, 2, 2));
        assert!(format!("{cache:?}").contains("hits"));
    }

    #[test]
    fn validator_case_builder_matches_direct_verify() {
        let v = Validator::new();
        let src = parse_function("define i32 @a(i32 %x) {\n %r = mul i32 %x, 2\n ret i32 %r\n}").unwrap();
        let tgt = parse_function("define i32 @b(i32 %x) {\n %r = shl i32 %x, 1\n ret i32 %r\n}").unwrap();
        let case = v.case(&src);
        assert_eq!(case.source().name, "a");
        assert_eq!(case.verify(&tgt), v.verify(&src, &tgt));
    }

    #[test]
    fn absint_refutes_disjoint_candidates_with_zero_evaluations() {
        // Source pins bit 0 to zero, candidate pins it to one: the abstract
        // tier proves the return ranges disjoint, so the outcome-only path
        // rejects without generating a single concrete evaluation.
        let src = parse_function("define i8 @s(i8 %x) {\n %r = and i8 %x, -2\n ret i8 %r\n}").unwrap();
        let tgt = parse_function("define i8 @t(i8 %x) {\n %r = or i8 %x, 1\n ret i8 %r\n}").unwrap();
        let case = SourceCache::new(&src, TvConfig::default());
        let mut arena = EvalArena::new();
        assert!(!case.verify_outcome_only(&tgt, &mut arena));
        assert_eq!(case.source_eval_count(), 0, "abstract refutation must not evaluate");
        assert_eq!(case.absint_refuted(), 1);
        assert_eq!(case.probe_rejects(), 0, "certificate rejections are not probe rejects");
        assert_eq!(case.survivors(), 0);
        assert_eq!(case.last_tier(), Some(VerdictTier::RefutedAbstract));

        // The sharded outcome-only entry point takes the same shortcut.
        use crate::frozen::SerialDriver;
        let sharded = SourceCache::new(&src, TvConfig::default());
        assert!(!sharded.verify_outcome_only_driver(&tgt, &mut arena, &SerialDriver, 64));
        assert_eq!(sharded.source_eval_count(), 0);
        assert_eq!(sharded.absint_refuted(), 1);
        assert_eq!(sharded.last_tier(), Some(VerdictTier::RefutedAbstract));
    }

    #[test]
    fn absint_refutation_still_renders_the_reference_counterexample() {
        let src = parse_function("define i8 @s(i8 %x) {\n %r = and i8 %x, -2\n ret i8 %r\n}").unwrap();
        let tgt = parse_function("define i8 @t(i8 %x) {\n %r = or i8 %x, 1\n ret i8 %r\n}").unwrap();
        let case = SourceCache::new(&src, TvConfig::default());
        let mut arena = EvalArena::new();
        let verdict = case.verify_with(&tgt, &mut arena);
        assert_eq!(verdict, verify_refinement_reference(&src, &tgt, &TvConfig::default()));
        assert!(!verdict.is_correct());
        // The certificate tags the candidate; the probe merely supplies the
        // concrete diagnostic on the first input.
        assert_eq!(case.absint_refuted(), 1);
        assert_eq!(case.probe_rejects(), 0);
        assert_eq!(case.source_eval_count(), 1);
        assert_eq!(case.last_tier(), Some(VerdictTier::RefutedAbstract));
    }

    #[test]
    fn absint_proves_commuted_twins_without_a_sweep() {
        let src =
            parse_function("define i8 @s(i8 %x, i8 %y) {\n %r = add i8 %x, %y\n ret i8 %r\n}").unwrap();
        let tgt =
            parse_function("define i8 @t(i8 %a, i8 %b) {\n %q = add i8 %b, %a\n ret i8 %q\n}").unwrap();
        let case = SourceCache::new(&src, TvConfig::default());
        let mut arena = EvalArena::new();
        let verdict = case.verify_with(&tgt, &mut arena);
        assert_eq!(verdict, verify_refinement_reference(&src, &tgt, &TvConfig::default()));
        assert!(verdict.is_correct());
        assert_eq!(case.proved(), 1);
        assert_eq!(case.survivors(), 0, "a proved candidate never reaches the sweep");
        assert_eq!(case.source_eval_count(), 0, "a proved candidate costs no evaluation");
        assert_eq!(case.last_tier(), Some(VerdictTier::Proved));
    }

    #[test]
    fn tiers_tag_concrete_outcomes() {
        let src = parse_function("define i8 @s(i8 %x) {\n %r = mul i8 %x, 2\n ret i8 %r\n}").unwrap();
        let right = parse_function("define i8 @t(i8 %x) {\n %r = shl i8 %x, 1\n ret i8 %r\n}").unwrap();
        let wrong = parse_function("define i8 @t(i8 %x) {\n %r = shl i8 %x, 2\n ret i8 %r\n}").unwrap();
        let case = SourceCache::new(&src, TvConfig::default());
        let mut arena = EvalArena::new();
        assert!(case.verify_with(&right, &mut arena).is_correct());
        assert_eq!(case.last_tier(), Some(VerdictTier::Tested));
        assert!(!case.verify_with(&wrong, &mut arena).is_correct());
        assert_eq!(case.last_tier(), Some(VerdictTier::RefutedConcrete));
        assert_eq!((case.proved(), case.absint_refuted()), (0, 0));
        assert_eq!((case.probe_rejects(), case.survivors()), (1, 1));

        // Signature errors clear the tag.
        let other =
            parse_function("define i8 @t(i16 %x) {\n %r = trunc i16 %x to i8\n ret i8 %r\n}").unwrap();
        assert!(matches!(case.verify_with(&other, &mut arena), Verdict::Error(_)));
        assert_eq!(case.last_tier(), None);
    }

    #[test]
    fn absint_tier_preserves_verdicts_when_disabled() {
        let src = parse_function("define i8 @s(i8 %x) {\n %r = and i8 %x, -2\n ret i8 %r\n}").unwrap();
        let candidates = [
            "define i8 @t(i8 %x) {\n %r = or i8 %x, 1\n ret i8 %r\n}", // abstractly refutable
            "define i8 @t(i8 %y) {\n %q = and i8 %y, -2\n ret i8 %q\n}", // provable twin
            "define i8 @t(i8 %x) {\n %r = and i8 %x, -4\n ret i8 %r\n}", // needs concrete evidence
        ];
        let mut arena = EvalArena::new();
        let off = TvConfig { absint: false, ..TvConfig::default() };
        for text in candidates {
            let tgt = parse_function(text).unwrap();
            let with_absint = SourceCache::new(&src, TvConfig::default());
            let without = SourceCache::new(&src, off.clone());
            assert_eq!(
                with_absint.verify_with(&tgt, &mut arena),
                without.verify_with(&tgt, &mut arena),
                "absint on/off diverged for {text}"
            );
            assert_eq!((without.proved(), without.absint_refuted()), (0, 0));
            assert_eq!(without.last_tier().map(|t| t.as_str().contains("abstract")), Some(false));
        }
    }

    #[test]
    fn verdict_tier_names_round_trip() {
        for tier in [
            VerdictTier::Proved,
            VerdictTier::Tested,
            VerdictTier::RefutedAbstract,
            VerdictTier::RefutedConcrete,
        ] {
            assert_eq!(VerdictTier::parse(tier.as_str()), Some(tier));
            assert_eq!(tier.to_string(), tier.as_str());
        }
        assert_eq!(VerdictTier::parse("solved"), None);
    }

    #[test]
    fn correct_verdict_reports_exhaustiveness() {
        match check(
            "define i8 @src(i8 %x) {\n ret i8 %x\n}",
            "define i8 @tgt(i8 %x) {\n ret i8 %x\n}",
        ) {
            Verdict::Correct { inputs_checked, exhaustive } => {
                assert_eq!(inputs_checked, 256);
                assert!(exhaustive);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        match check(
            "define i64 @src(i64 %x) {\n ret i64 %x\n}",
            "define i64 @tgt(i64 %x) {\n ret i64 %x\n}",
        ) {
            Verdict::Correct { exhaustive, .. } => assert!(!exhaustive),
            other => panic!("unexpected verdict {other:?}"),
        }
    }
}
