//! The refinement relation and the counterexample-producing checker.
//!
//! A transformation from `src` to `tgt` is *correct* when every behaviour of
//! `tgt` is allowed by `src` (Section 2.4 of the paper):
//!
//! * on any input where `src` has undefined behaviour, anything is allowed;
//! * where `src` returns `poison`, `tgt` may return anything;
//! * where `src` returns `undef`, `tgt` may return anything except `poison`;
//! * where `src` returns a concrete value, `tgt` must return the same value
//!   (lane-wise for vectors, with the poison/undef rules applied per lane);
//! * the final contents of the memory reachable from the arguments must refine
//!   byte-for-byte under the same rules.
//!
//! The check evaluates both functions on the inputs produced by
//! [`generate_inputs`]; a failure yields a
//! [`Counterexample`] formatted the way Alive2 reports them, which the LPO
//! pipeline feeds back to the LLM.

use crate::inputs::{generate_inputs, InputConfig, TestInput};
use lpo_interp::compiled::{CompiledFunction, EvalArena};
use lpo_interp::eval::Ub;
use lpo_interp::memory::Memory;
use lpo_interp::value::EvalValue;
use lpo_ir::function::Function;
use lpo_ir::printer;
use std::cell::{Cell, OnceCell, RefCell};
use std::fmt;

/// How many instructions a single evaluation may execute.
const STEP_LIMIT: usize = 1 << 14;

/// The result of checking one candidate transformation.
#[derive(Clone, Debug, PartialEq)]
pub enum Verdict {
    /// Every tested behaviour of the target refines the source.
    Correct {
        /// How many inputs were checked.
        inputs_checked: usize,
        /// Whether the whole input space was enumerated.
        exhaustive: bool,
    },
    /// The transformation is wrong; a counterexample demonstrates it.
    Incorrect(Counterexample),
    /// The pair could not be compared (e.g. mismatched signatures). The
    /// message is suitable as feedback to the LLM.
    Error(String),
}

impl Verdict {
    /// Returns `true` for [`Verdict::Correct`].
    pub fn is_correct(&self) -> bool {
        matches!(self, Verdict::Correct { .. })
    }

    /// Returns the counterexample if the verdict is [`Verdict::Incorrect`].
    pub fn counterexample(&self) -> Option<&Counterexample> {
        match self {
            Verdict::Incorrect(cex) => Some(cex),
            _ => None,
        }
    }
}

/// A concrete input on which the target does not refine the source.
#[derive(Clone, Debug, PartialEq)]
pub struct Counterexample {
    /// Why the refinement fails, e.g. `Value mismatch` or
    /// `Target is more poisonous than source`.
    pub reason: String,
    /// Human-readable `name = value` bindings for the arguments.
    pub args: Vec<(String, String)>,
    /// Description of the source behaviour on this input.
    pub src_behaviour: String,
    /// Description of the target behaviour on this input.
    pub tgt_behaviour: String,
}

impl fmt::Display for Counterexample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Transformation doesn't verify!")?;
        writeln!(f, "ERROR: {}", self.reason)?;
        writeln!(f)?;
        writeln!(f, "Example:")?;
        for (name, value) in &self.args {
            writeln!(f, "{name} = {value}")?;
        }
        writeln!(f)?;
        writeln!(f, "Source:")?;
        writeln!(f, "{}", self.src_behaviour)?;
        writeln!(f)?;
        writeln!(f, "Target:")?;
        write!(f, "{}", self.tgt_behaviour)
    }
}

/// Configuration of the translation validator.
#[derive(Clone, Debug, Default)]
pub struct TvConfig {
    /// Input generation parameters.
    pub inputs: InputConfig,
}

/// The translation validator (this reproduction's stand-in for Alive2).
#[derive(Clone, Debug, Default)]
pub struct Validator {
    config: TvConfig,
}

impl Validator {
    /// Creates a validator with the default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a validator with a specific configuration.
    pub fn with_config(config: TvConfig) -> Self {
        Self { config }
    }

    /// Checks whether the transformation from `src` to `tgt` is a refinement.
    pub fn verify(&self, src: &Function, tgt: &Function) -> Verdict {
        verify_refinement_with(src, tgt, &self.config)
    }

    /// Prepares a cached per-case checker for `src`: the generated test
    /// inputs and the source's per-input outcomes are computed once and
    /// shared by every candidate verified against it.
    pub fn case<'a>(&self, src: &'a Function) -> SourceCache<'a> {
        SourceCache::new(src, self.config.clone())
    }

    /// Checks refinement in both directions; `true` means the two functions
    /// are observationally equivalent on every tested input.
    pub fn equivalent(&self, a: &Function, b: &Function) -> bool {
        self.verify(a, b).is_correct() && self.verify(b, a).is_correct()
    }
}

/// Checks refinement with the default configuration.
pub fn verify_refinement(src: &Function, tgt: &Function) -> Verdict {
    verify_refinement_with(src, tgt, &TvConfig::default())
}

/// Checks refinement with an explicit configuration.
///
/// One-shot convenience: callers that verify several candidate rewrites of
/// the same source (the LPO loop, the superoptimizer baselines) should build
/// a [`SourceCache`] instead, so the source's per-input outcomes and the
/// generated inputs are computed once per case instead of once per candidate.
pub fn verify_refinement_with(src: &Function, tgt: &Function, config: &TvConfig) -> Verdict {
    SourceCache::new(src, config.clone()).verify(tgt)
}

/// The outcome of evaluating the source function on one input: the returned
/// value and final memory, or the UB it exhibited.
type SourceOutcome = Result<(Option<EvalValue>, Memory), Ub>;

/// Per-case verification state, cached across candidate rewrites.
///
/// The refinement check's cost model is `candidates × inputs × (src eval +
/// tgt eval)`. For one extracted sequence the LPO loop verifies up to
/// `attempt_limit` candidates and the Souper baseline hundreds — but the
/// *source* side of every one of those checks is identical. `SourceCache`
/// computes, once per case and lazily on first use:
///
/// * the [`TestInput`]s for the source signature (exhaustive or sampled);
/// * the source's outcome per input — result, final memory and UB/poison
///   classification — via a pre-compiled [`CompiledFunction`], filled
///   **per input as the check walks them**, so a candidate rejected on the
///   third input costs three source evaluations, not the whole sweep;
///
/// so verifying the k-th candidate only evaluates the *target* (plus any
/// source inputs no earlier candidate reached). Each source input is
/// evaluated at most once per case, and verdicts are bit-identical to the
/// uncached [`verify_refinement_with`] path.
pub struct SourceCache<'a> {
    src: &'a Function,
    config: TvConfig,
    inputs: OnceCell<(Vec<TestInput>, bool)>,
    compiled_src: OnceCell<CompiledFunction>,
    outcomes: RefCell<Vec<Option<SourceOutcome>>>,
    source_evals: Cell<usize>,
}

impl<'a> SourceCache<'a> {
    /// Creates the cache for one source function. No inputs are generated and
    /// nothing is evaluated until the first [`verify`](Self::verify) call.
    pub fn new(src: &'a Function, config: TvConfig) -> Self {
        Self {
            src,
            config,
            inputs: OnceCell::new(),
            compiled_src: OnceCell::new(),
            outcomes: RefCell::new(Vec::new()),
            source_evals: Cell::new(0),
        }
    }

    /// The source function this cache verifies candidates against.
    pub fn source(&self) -> &'a Function {
        self.src
    }

    /// How many times the source function has been concretely evaluated.
    ///
    /// At most one evaluation per (case, input), independent of the candidate
    /// count; once any candidate has passed every input, this equals the
    /// input count exactly. Tests use this as the cache-hit oracle.
    pub fn source_eval_count(&self) -> usize {
        self.source_evals.get()
    }

    fn inputs(&self) -> &(Vec<TestInput>, bool) {
        self.inputs.get_or_init(|| {
            (generate_inputs(self.src, &self.config.inputs), is_exhaustive(self.src, &self.config.inputs))
        })
    }

    /// Fills the source outcome for input `index` if no earlier candidate
    /// reached it.
    fn ensure_outcome(&self, index: usize, total: usize, input: &TestInput, arena: &mut EvalArena) {
        let mut outcomes = self.outcomes.borrow_mut();
        if outcomes.len() != total {
            outcomes.resize_with(total, || None);
        }
        if outcomes[index].is_none() {
            let compiled = self.compiled_src.get_or_init(|| CompiledFunction::compile(self.src));
            self.source_evals.set(self.source_evals.get() + 1);
            outcomes[index] = Some(
                compiled
                    .evaluate_with_limit(arena, &input.args, input.memory.clone(), STEP_LIMIT)
                    .map(|o| (o.result, o.memory)),
            );
        }
    }

    /// Checks whether `tgt` refines the cached source, reusing `arena`'s
    /// register file for every evaluation.
    pub fn verify_with(&self, tgt: &Function, arena: &mut EvalArena) -> Verdict {
        // Signature compatibility: same parameter types (names may differ) and
        // the same return type. A mismatch is a *fixable* error reported as
        // feedback.
        if self.src.params.len() != tgt.params.len()
            || self.src.params.iter().zip(&tgt.params).any(|(a, b)| a.ty != b.ty)
        {
            return Verdict::Error(format!(
                "ERROR: program doesn't type check!\nsource signature:  {}\ntarget signature:  {}\nthe target function must take exactly the same parameters as the source",
                printer::signature(self.src),
                printer::signature(tgt)
            ));
        }
        if self.src.ret_ty != tgt.ret_ty {
            return Verdict::Error(format!(
                "ERROR: program doesn't type check!\nsource returns {} but target returns {}",
                self.src.ret_ty, tgt.ret_ty
            ));
        }

        let (inputs, exhaustive) = self.inputs();
        let compiled_tgt = CompiledFunction::compile(tgt);
        for (index, input) in inputs.iter().enumerate() {
            self.ensure_outcome(index, inputs.len(), input, arena);
            let outcomes = self.outcomes.borrow();
            let src_out = outcomes[index].as_ref().expect("outcome just ensured");
            if let Some(cex) = check_one(self.src, &compiled_tgt, input, src_out, arena) {
                return Verdict::Incorrect(cex);
            }
        }
        Verdict::Correct { inputs_checked: inputs.len(), exhaustive: *exhaustive }
    }

    /// [`verify_with`](Self::verify_with) on a fresh throwaway arena.
    pub fn verify(&self, tgt: &Function) -> Verdict {
        self.verify_with(tgt, &mut EvalArena::new())
    }
}

fn is_exhaustive(func: &Function, config: &InputConfig) -> bool {
    let mut bits = 0u32;
    for p in &func.params {
        match &p.ty {
            lpo_ir::types::Type::Int(w) => bits += w,
            lpo_ir::types::Type::Vector(n, e) => match e.as_ref() {
                lpo_ir::types::Type::Int(w) => bits += n * w,
                _ => return false,
            },
            _ => return false,
        }
    }
    bits <= config.exhaustive_bits
}

fn describe_args(func: &Function, input: &TestInput) -> Vec<(String, String)> {
    func.params
        .iter()
        .zip(&input.args)
        .map(|(p, v)| {
            let shown = if p.ty.is_ptr() {
                match v.as_ptr().and_then(|ptr| input.memory.allocation(ptr.alloc)) {
                    Some(alloc) => format!(
                        "&mem [{}]",
                        alloc.bytes()[..8.min(alloc.size())]
                            .iter()
                            .map(|b| format!("{b:#04x}"))
                            .collect::<Vec<_>>()
                            .join(" ")
                    ),
                    None => "null".to_string(),
                }
            } else {
                v.to_string()
            };
            (format!("{} %{}", p.ty, p.name), shown)
        })
        .collect()
}

fn describe_outcome(result: &SourceOutcome) -> String {
    match result {
        Err(ub) => format!("function exhibits undefined behaviour: {}", ub.message),
        Ok((None, _)) => "returns void".to_string(),
        Ok((Some(v), _)) => format!("ret {v}"),
    }
}

/// Checks a single input against the cached source outcome; returns a
/// counterexample on refinement failure.
fn check_one(
    src: &Function,
    compiled_tgt: &CompiledFunction,
    input: &TestInput,
    src_out: &SourceOutcome,
    arena: &mut EvalArena,
) -> Option<Counterexample> {
    // Source UB ⇒ any target behaviour is fine.
    let (src_ret, src_mem) = match src_out {
        Err(_) => return None,
        Ok(pair) => pair,
    };

    let tgt_out = compiled_tgt
        .evaluate_with_limit(arena, &input.args, input.memory.clone(), STEP_LIMIT)
        .map(|o| (o.result, o.memory));
    let cex = |reason: &str, tgt_desc: String| Counterexample {
        reason: reason.to_string(),
        args: describe_args(src, input),
        src_behaviour: describe_outcome(src_out),
        tgt_behaviour: tgt_desc,
    };

    let (tgt_ret, tgt_mem) = match tgt_out {
        Err(ub) => {
            return Some(cex(
                "Source is guaranteed to be defined, but target is not",
                format!("function exhibits undefined behaviour: {}", ub.message),
            ))
        }
        Ok(pair) => pair,
    };

    // Return value refinement.
    match (src_ret, &tgt_ret) {
        (None, None) => {}
        (Some(s), Some(t)) => {
            if let Some(reason) = value_refinement_failure(s, t) {
                return Some(cex(&reason, format!("ret {t}")));
            }
        }
        _ => {
            return Some(cex(
                "Value mismatch",
                format!("returns {}", tgt_ret.map(|v| v.to_string()).unwrap_or_else(|| "void".into())),
            ))
        }
    }

    // Memory refinement over the allocations that existed before execution
    // (allocas created inside the functions are not observable).
    let observable = input.memory.allocation_count();
    for alloc_id in 0..observable {
        let initial = input.memory.allocation(alloc_id).expect("input allocation");
        let s_alloc = src_mem.allocation(alloc_id);
        let t_alloc = tgt_mem.allocation(alloc_id);
        let (s_alloc, t_alloc) = match (s_alloc, t_alloc) {
            (Some(a), Some(b)) => (a, b),
            _ => continue,
        };
        for i in 0..initial.size() {
            let s_poison = s_alloc.poison_mask().get(i).copied().unwrap_or(false);
            let t_poison = t_alloc.poison_mask().get(i).copied().unwrap_or(false);
            let s_byte = s_alloc.bytes().get(i).copied().unwrap_or(0);
            let t_byte = t_alloc.bytes().get(i).copied().unwrap_or(0);
            if s_poison {
                continue; // source byte is poison: anything refines it
            }
            if t_poison {
                return Some(cex(
                    "Mismatch in memory",
                    format!("memory byte {i} of allocation #{alloc_id} is poison in the target"),
                ));
            }
            if s_byte != t_byte {
                return Some(cex(
                    "Mismatch in memory",
                    format!(
                        "memory byte {i} of allocation #{alloc_id}: source wrote {s_byte:#04x}, target wrote {t_byte:#04x}"
                    ),
                ));
            }
        }
    }
    None
}

/// Returns a failure reason if `tgt` does not refine `src` as a value.
fn value_refinement_failure(src: &EvalValue, tgt: &EvalValue) -> Option<String> {
    match (src, tgt) {
        (EvalValue::Vector(s), EvalValue::Vector(t)) => {
            if s.len() != t.len() {
                return Some("Value mismatch".to_string());
            }
            for (a, b) in s.iter().zip(t) {
                if let Some(r) = value_refinement_failure(a, b) {
                    return Some(r);
                }
            }
            None
        }
        (EvalValue::Poison, _) => None,
        (EvalValue::Undef, EvalValue::Poison) => {
            Some("Target is more poisonous than source".to_string())
        }
        (EvalValue::Undef, _) => None,
        (_, EvalValue::Poison) => Some("Target is more poisonous than source".to_string()),
        (_, EvalValue::Undef) => Some("Target is more undefined than source".to_string()),
        (s, t) => {
            if s.same_as(t) {
                None
            } else {
                Some("Value mismatch".to_string())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lpo_ir::parser::parse_function;

    fn check(src: &str, tgt: &str) -> Verdict {
        let s = parse_function(src).unwrap();
        let t = parse_function(tgt).unwrap();
        verify_refinement(&s, &t)
    }

    #[test]
    fn accepts_the_paper_clamp_optimization() {
        // Figure 1b → 1c.
        let verdict = check(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
            "define i8 @tgt(i32 %0) {\n\
             %2 = call i32 @llvm.smax.i32(i32 %0, i32 0)\n\
             %3 = call i32 @llvm.umin.i32(i32 %2, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             ret i8 %4\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
    }

    #[test]
    fn rejects_a_wrong_clamp_rewrite() {
        // Dropping the negative clamp changes behaviour for x < 0.
        let verdict = check(
            "define i8 @src(i32 %0) {\n\
             %2 = icmp slt i32 %0, 0\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc nuw i32 %3 to i8\n\
             %5 = select i1 %2, i8 0, i8 %4\n\
             ret i8 %5\n}",
            "define i8 @tgt(i32 %0) {\n\
             %3 = call i32 @llvm.umin.i32(i32 %0, i32 255)\n\
             %4 = trunc i32 %3 to i8\n\
             ret i8 %4\n}",
        );
        let cex = verdict.counterexample().expect("must be incorrect");
        assert_eq!(cex.reason, "Value mismatch");
        let rendered = cex.to_string();
        assert!(rendered.contains("Transformation doesn't verify!"));
        assert!(rendered.contains("Example:"));
        assert!(rendered.contains("Source:"));
        assert!(rendered.contains("Target:"));
    }

    #[test]
    fn rejects_added_poison() {
        // Claiming nuw on an add that can wrap makes the target more poisonous.
        let verdict = check(
            "define i8 @src(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}",
            "define i8 @tgt(i8 %x) {\n %r = add nuw i8 %x, 1\n ret i8 %r\n}",
        );
        let cex = verdict.counterexample().expect("must be incorrect");
        assert_eq!(cex.reason, "Target is more poisonous than source");
        // The reverse direction (dropping the flag) is a valid refinement.
        let verdict = check(
            "define i8 @src(i8 %x) {\n %r = add nuw i8 %x, 1\n ret i8 %r\n}",
            "define i8 @tgt(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}",
        );
        assert!(verdict.is_correct());
    }

    #[test]
    fn rejects_added_ub() {
        let verdict = check(
            "define i32 @src(i32 %x, i32 %y) {\n %r = add i32 %x, %y\n ret i32 %r\n}",
            "define i32 @tgt(i32 %x, i32 %y) {\n %d = udiv i32 %x, %y\n %r = add i32 %x, %y\n ret i32 %r\n}",
        );
        let cex = verdict.counterexample().expect("must be incorrect");
        assert!(cex.reason.contains("guaranteed to be defined"));
    }

    #[test]
    fn accepts_ub_refinement() {
        // Source divides (UB when %y == 0); target returns a constant. Every
        // defined source behaviour (x/x == 1 for x != 0 … well, only when x==y)
        // must still match, so use x/x to keep it simple.
        let verdict = check(
            "define i32 @src(i32 %x) {\n %r = udiv i32 %x, %x\n ret i32 %r\n}",
            "define i32 @tgt(i32 %x) {\n ret i32 1\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
        // The reverse is NOT correct: target would introduce UB at %x == 0.
        let verdict = check(
            "define i32 @src(i32 %x) {\n ret i32 1\n}",
            "define i32 @tgt(i32 %x) {\n %r = udiv i32 %x, %x\n ret i32 %r\n}",
        );
        assert!(!verdict.is_correct());
    }

    #[test]
    fn signature_mismatch_is_a_fixable_error() {
        let verdict = check(
            "define i32 @src(i32 %x) {\n ret i32 %x\n}",
            "define i32 @tgt(i32 %x, i32 %y) {\n ret i32 %x\n}",
        );
        match verdict {
            Verdict::Error(msg) => assert!(msg.contains("type check")),
            other => panic!("expected an error verdict, got {other:?}"),
        }
        let verdict = check(
            "define i32 @src(i32 %x) {\n ret i32 %x\n}",
            "define i64 @tgt(i32 %x) {\n %r = zext i32 %x to i64\n ret i64 %r\n}",
        );
        assert!(matches!(verdict, Verdict::Error(_)));
    }

    #[test]
    fn memory_effects_are_compared() {
        // Source stores 1; a target that stores 2 must be rejected,
        // a target that stores 1 through an equivalent computation accepted.
        let src = "define void @src(ptr %p) {\n store i32 1, ptr %p, align 4\n ret void\n}";
        let good = "define void @tgt(ptr %p) {\n %v = add i32 0, 1\n store i32 %v, ptr %p, align 4\n ret void\n}";
        let bad = "define void @tgt(ptr %p) {\n store i32 2, ptr %p, align 4\n ret void\n}";
        assert!(check(src, good).is_correct());
        let verdict = check(src, bad);
        assert_eq!(verdict.counterexample().unwrap().reason, "Mismatch in memory");
    }

    #[test]
    fn accepts_load_widening_case_study_1() {
        let verdict = check(
            "define i32 @src(ptr %0) {\n\
             %2 = load i16, ptr %0, align 2\n\
             %3 = getelementptr i8, ptr %0, i64 2\n\
             %4 = load i16, ptr %3, align 1\n\
             %5 = zext i16 %4 to i32\n\
             %6 = shl nuw i32 %5, 16\n\
             %7 = zext i16 %2 to i32\n\
             %8 = or disjoint i32 %6, %7\n\
             ret i32 %8\n}",
            "define i32 @tgt(ptr %0) {\n %2 = load i32, ptr %0, align 2\n ret i32 %2\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
    }

    #[test]
    fn accepts_redundant_umax_removal_case_study_2() {
        let verdict = check(
            "define i8 @src(i8 %0) {\n\
             %2 = call i8 @llvm.umax.i8(i8 %0, i8 1)\n\
             %3 = shl nuw i8 %2, 1\n\
             %4 = call i8 @llvm.umax.i8(i8 %3, i8 16)\n\
             ret i8 %4\n}",
            "define i8 @tgt(i8 %0) {\n\
             %2 = shl nuw i8 %0, 1\n\
             %3 = call i8 @llvm.umax.i8(i8 %2, i8 16)\n\
             ret i8 %3\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
    }

    #[test]
    fn accepts_fcmp_simplification_case_study_3() {
        let verdict = check(
            "define i1 @src(double %0) {\n\
             %2 = fcmp ord double %0, 0.000000e+00\n\
             %3 = select i1 %2, double %0, double 0.000000e+00\n\
             %4 = fcmp oeq double %3, 1.000000e+00\n\
             ret i1 %4\n}",
            "define i1 @tgt(double %0) {\n %2 = fcmp oeq double %0, 1.000000e+00\n ret i1 %2\n}",
        );
        assert!(verdict.is_correct(), "verdict: {verdict:?}");
    }

    #[test]
    fn rejects_vector_lane_errors() {
        let verdict = check(
            "define <4 x i8> @src(<4 x i8> %x) {\n\
             %r = add <4 x i8> %x, splat (i8 1)\n ret <4 x i8> %r\n}",
            "define <4 x i8> @tgt(<4 x i8> %x) {\n\
             %r = add <4 x i8> %x, <i8 1, i8 1, i8 2, i8 1>\n ret <4 x i8> %r\n}",
        );
        assert!(!verdict.is_correct());
        let verdict = check(
            "define <4 x i8> @src(<4 x i8> %x) {\n\
             %r = add <4 x i8> %x, splat (i8 1)\n ret <4 x i8> %r\n}",
            "define <4 x i8> @tgt(<4 x i8> %x) {\n\
             %r = sub <4 x i8> %x, splat (i8 -1)\n ret <4 x i8> %r\n}",
        );
        assert!(verdict.is_correct());
    }

    #[test]
    fn equivalence_helper() {
        let v = Validator::new();
        let a = parse_function("define i32 @a(i32 %x) {\n %r = mul i32 %x, 2\n ret i32 %r\n}").unwrap();
        let b = parse_function("define i32 @b(i32 %x) {\n %r = shl i32 %x, 1\n ret i32 %r\n}").unwrap();
        let c = parse_function("define i32 @c(i32 %x) {\n %r = shl nuw i32 %x, 1\n ret i32 %r\n}").unwrap();
        assert!(v.equivalent(&a, &b));
        // c is a refinement target of neither direction being equal: a ⇒ c adds poison.
        assert!(!v.equivalent(&a, &c));
        assert!(v.verify(&c, &a).is_correct());
    }

    #[test]
    fn source_cache_evaluates_the_source_once_per_input() {
        let src = parse_function(
            "define i8 @src(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}",
        )
        .unwrap();
        let candidates = [
            "define i8 @tgt(i8 %x) {\n %r = sub i8 %x, -1\n ret i8 %r\n}",
            "define i8 @tgt(i8 %x) {\n %r = add i8 %x, 2\n ret i8 %r\n}", // wrong
            "define i8 @tgt(i8 %x) {\n %r = add nuw i8 %x, 1\n ret i8 %r\n}", // more poisonous
            "define i8 @tgt(i8 %x) {\n %r = add i8 %x, 1\n ret i8 %r\n}",
        ];
        let cache = SourceCache::new(&src, TvConfig::default());
        assert_eq!(cache.source_eval_count(), 0, "lazy until the first verify");
        let mut arena = EvalArena::new();

        // Outcomes fill lazily per input: a candidate rejected on the very
        // first input (src(0) = 1, this tgt(0) = 2) costs one source
        // evaluation, not the whole 256-input sweep.
        let early = parse_function("define i8 @tgt(i8 %x) {\n %r = add i8 %x, 2\n ret i8 %r\n}").unwrap();
        assert!(!cache.verify_with(&early, &mut arena).is_correct());
        assert_eq!(cache.source_eval_count(), 1);
        let cached: Vec<Verdict> = candidates
            .iter()
            .map(|t| cache.verify_with(&parse_function(t).unwrap(), &mut arena))
            .collect();
        // i8 signature → 256 exhaustive inputs, each evaluated exactly once on
        // the source side no matter how many candidates were checked.
        assert_eq!(cache.source_eval_count(), 256);

        // Cached verdicts are identical to the uncached one-shot path.
        for (text, verdict) in candidates.iter().zip(&cached) {
            let uncached = verify_refinement(&src, &parse_function(text).unwrap());
            assert_eq!(*verdict, uncached, "cached verdict diverged for {text}");
        }
        assert!(cached[0].is_correct());
        assert_eq!(cached[1].counterexample().unwrap().reason, "Value mismatch");
        assert_eq!(
            cached[2].counterexample().unwrap().reason,
            "Target is more poisonous than source"
        );
        assert!(cached[3].is_correct());

        // A signature mismatch is rejected before any evaluation happens.
        let other = parse_function("define i8 @tgt(i16 %x) {\n %r = trunc i16 %x to i8\n ret i8 %r\n}").unwrap();
        assert!(matches!(cache.verify_with(&other, &mut arena), Verdict::Error(_)));
        assert_eq!(cache.source_eval_count(), 256);
    }

    #[test]
    fn validator_case_builder_matches_direct_verify() {
        let v = Validator::new();
        let src = parse_function("define i32 @a(i32 %x) {\n %r = mul i32 %x, 2\n ret i32 %r\n}").unwrap();
        let tgt = parse_function("define i32 @b(i32 %x) {\n %r = shl i32 %x, 1\n ret i32 %r\n}").unwrap();
        let case = v.case(&src);
        assert_eq!(case.source().name, "a");
        assert_eq!(case.verify(&tgt), v.verify(&src, &tgt));
    }

    #[test]
    fn correct_verdict_reports_exhaustiveness() {
        match check(
            "define i8 @src(i8 %x) {\n ret i8 %x\n}",
            "define i8 @tgt(i8 %x) {\n ret i8 %x\n}",
        ) {
            Verdict::Correct { inputs_checked, exhaustive } => {
                assert_eq!(inputs_checked, 256);
                assert!(exhaustive);
            }
            other => panic!("unexpected verdict {other:?}"),
        }
        match check(
            "define i64 @src(i64 %x) {\n ret i64 %x\n}",
            "define i64 @tgt(i64 %x) {\n ret i64 %x\n}",
        ) {
            Verdict::Correct { exhaustive, .. } => assert!(!exhaustive),
            other => panic!("unexpected verdict {other:?}"),
        }
    }
}
